//! Recovery equivalence: a run that absorbs injected transient
//! faults through the retry layer must be observationally identical
//! to a clean run — byte-identical final placement, intact payloads,
//! and the **same charged `IoStats`** (retried operations are charged
//! once) — across the geometry zoo, serial and threaded service
//! modes, and both the in-process and real-worker-process (UDS)
//! transports.
//!
//! The recovery ledger is pinned exactly: every injected fault that
//! fires costs exactly one retry (`retries == transient_faults`), the
//! attempt count decomposes as `parallel_ios + retries`, and a clean
//! run's ledger is all-zero. Fault schedules mix point transients
//! ([`FaultPlan::fail_transient_at`]) with flaky windows
//! ([`FaultPlan::fail_between`]); a window spanning the whole run
//! guarantees the schedule actually fires, so the equivalence claims
//! are never vacuous.
//!
//! The UDS cases spawn one real `pdm-diskd` worker process per disk,
//! so proptest case counts stay low; the deterministic sweep covers
//! the full zoo.

use bmmc::algorithm::perform_bmmc;
use bmmc::catalog;
use extsort::{sort_by_key_with, SortConfig};
use pdm::{
    Backend, DiskSystem, FaultPlan, Geometry, IoStats, RetryPolicy, RetryStats, ServiceMode,
    TaggedRecord, TransportConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The geometry zoo of `tests/transport_equivalence.rs`.
fn geometries() -> Vec<Geometry> {
    vec![
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap(),
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 5).unwrap(),
        Geometry::new(1 << 10, 1 << 1, 1 << 3, 1 << 4).unwrap(),
        Geometry::new(1 << 11, 1, 1 << 3, 1 << 4).unwrap(),
    ]
}

/// The transports under test: the in-process reference and the real
/// worker processes. (The simulated network shares the UDS command
/// sequence and is covered by the transport equivalence suite.)
fn transports() -> Vec<(&'static str, TransportConfig)> {
    vec![
        ("inproc", TransportConfig::InProc),
        ("uds", TransportConfig::Uds(Default::default())),
    ]
}

fn sortable(g: Geometry) -> bool {
    g.memory() / (g.block() * g.disks()) >= 3
}

fn mode_of(threaded: bool) -> ServiceMode {
    if threaded {
        ServiceMode::Threaded
    } else {
        ServiceMode::Serial
    }
}

/// A random schedule of transient faults: point faults at distinct
/// operations plus an optional flaky window, all within `total` ops.
#[derive(Clone, Debug)]
struct Schedule {
    points: Vec<(u64, usize)>,
    window: Option<(u64, u64, usize)>,
}

impl Schedule {
    /// Builds the fault plan. A point fault fires iff its disk
    /// participates in that operation; at most one transient is
    /// consumed per operation (the retry is a second attempt and is
    /// never re-checked).
    fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for &(op, disk) in &self.points {
            plan = plan.fail_transient_at(op, disk);
        }
        if let Some((start, end, disk)) = self.window {
            plan = plan.fail_between(start, end, disk);
        }
        plan
    }

    /// A schedule guaranteed to fire at least once on any run of
    /// `total` operations: a window over every operation on disk 0
    /// (which participates in every striped access) plus `k` point
    /// faults spread across ops and disks.
    fn covering(total: u64, disks: usize, k: u64) -> Self {
        let points = (0..k)
            .map(|i| ((i * total) / k.max(1), (i as usize + 1) % disks))
            .collect();
        Schedule {
            points,
            window: Some((0, total, 0)),
        }
    }
}

/// One run's observable outcome plus its recovery ledger.
struct Outcome {
    records: Vec<TaggedRecord>,
    ios: IoStats,
    retry: RetryStats,
}

enum Workload {
    Bmmc,
    Sort,
}

/// Runs the workload with the given fault schedule (empty = clean) and
/// a fault-tolerant retry policy, returning placement, charged I/O,
/// and the ledger.
fn run(
    g: Geometry,
    s: u64,
    cfg: &TransportConfig,
    mode: ServiceMode,
    workload: &Workload,
    plan: FaultPlan,
) -> Outcome {
    let mut sys = DiskSystem::new_with_transport(g, 2, &Backend::Mem, cfg)
        .expect("transport system construction");
    sys.set_service_mode(mode);
    sys.set_retry_policy(RetryPolicy::fault_tolerant());
    sys.set_faults(plan);
    let final_portion = match workload {
        Workload::Bmmc => {
            let mut rng = StdRng::seed_from_u64(s);
            let perm = catalog::random_bmmc(&mut rng, g.n());
            let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();
            sys.load_records(0, &input);
            perform_bmmc(&mut sys, &perm)
                .expect("bmmc run")
                .final_portion
        }
        Workload::Sort => {
            let mut keys: Vec<u64> = (0..g.records() as u64).collect();
            keys.shuffle(&mut StdRng::seed_from_u64(s));
            let input: Vec<TaggedRecord> = keys.into_iter().map(TaggedRecord::new).collect();
            sys.load_records(0, &input);
            sort_by_key_with(&mut sys, |r| r.key, SortConfig::default())
                .expect("sort run")
                .final_portion
        }
    };
    let records = sys.dump_records(final_portion);
    assert_eq!(sys.buffer_pool_stats().outstanding, 0, "buffers stranded");
    Outcome {
        records,
        ios: sys.stats(),
        retry: sys.retry_stats(),
    }
}

/// Checks one faulted run against its clean reference: identical
/// placement and charged I/O, intact payloads, and an exact ledger.
fn assert_recovered(label: &str, clean: &Outcome, faulted: &Outcome) -> Result<(), TestCaseError> {
    prop_assert!(
        clean.retry.is_clean(),
        "{label}: clean run has a dirty ledger: {}",
        clean.retry
    );
    prop_assert!(
        faulted.records.iter().all(TaggedRecord::intact),
        "{label}: payload corrupted during recovery"
    );
    prop_assert_eq!(
        &faulted.records,
        &clean.records,
        "{}: recovered placement diverged from clean",
        label
    );
    prop_assert_eq!(
        faulted.ios,
        clean.ios,
        "{label}: recovered run charged differently from clean"
    );
    let r = &faulted.retry;
    prop_assert!(
        r.transient_faults >= 1,
        "{label}: the schedule never fired — the equivalence is vacuous"
    );
    prop_assert_eq!(
        r.retries,
        r.transient_faults,
        "{}: each injected fault costs exactly one retry",
        label
    );
    prop_assert_eq!(r.timeouts, 0, "{label}: no timeouts were scheduled");
    prop_assert_eq!(r.respawns, 0, "{label}: no disconnects were scheduled");
    prop_assert_eq!(
        r.attempts,
        faulted.ios.parallel_ios() + r.retries,
        "{}: attempts decompose as admitted ops + retries",
        label
    );
    Ok(())
}

/// Deterministic sweep: every geometry, serial and threaded, both
/// transports, BMMC (everywhere) and sort (where the fan-in allows),
/// each against a covering schedule derived from the clean run's
/// operation count.
#[test]
fn recovered_runs_equal_clean_runs_across_the_zoo() {
    for (gi, g) in geometries().into_iter().enumerate() {
        let mut workloads = vec![Workload::Bmmc];
        if sortable(g) {
            workloads.push(Workload::Sort);
        }
        for workload in &workloads {
            for threaded in [false, true] {
                let mode = mode_of(threaded);
                let seed = 0x9EC0 + gi as u64;
                // The clean in-process run sizes the schedule; its op
                // count is transport- and mode-invariant.
                let reference = run(
                    g,
                    seed,
                    &TransportConfig::InProc,
                    mode,
                    workload,
                    FaultPlan::new(),
                );
                let schedule = Schedule::covering(reference.ios.parallel_ios(), g.disks(), 3);
                for (name, cfg) in transports() {
                    let label = format!(
                        "g{gi}/{}/threaded={threaded}/{name}",
                        match workload {
                            Workload::Bmmc => "bmmc",
                            Workload::Sort => "sort",
                        }
                    );
                    let faulted = run(g, seed, &cfg, mode, workload, schedule.plan());
                    assert_recovered(&label, &reference, &faulted).unwrap();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random transient-fault schedules over random BMMC permutations:
    /// point faults at random (op, disk) pairs plus a random flaky
    /// window, on both transports. (Each UDS case spawns a set of real
    /// worker processes, so cases stay few — the deterministic sweep
    /// above covers the full zoo.)
    #[test]
    fn random_fault_schedules_recover_exactly(
        s in any::<u64>(),
        fault_seed in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
        uds in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mode = mode_of(threaded);
        let workload = Workload::Bmmc;
        let reference = run(g, s, &TransportConfig::InProc, mode, &workload, FaultPlan::new());
        let total = reference.ios.parallel_ios();
        // Derive a random schedule inside the run: distinct ops (the
        // plan is a set; duplicate ops would consume only one retry),
        // disks in range, and a window guaranteeing >= 1 firing.
        let mut rng = StdRng::seed_from_u64(fault_seed);
        let mut points: Vec<(u64, usize)> = (0..5)
            .map(|_| (rng.gen_range(0..total), rng.gen_range(0..g.disks())))
            .collect();
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        let schedule = Schedule {
            points,
            window: Some((0, total, rng.gen_range(0..g.disks()))),
        };
        let cfg = if uds {
            TransportConfig::Uds(Default::default())
        } else {
            TransportConfig::InProc
        };
        let label = format!("g{gi}/threaded={threaded}/uds={uds}");
        let faulted = run(g, s, &cfg, mode, &workload, schedule.plan());
        assert_recovered(&label, &reference, &faulted)?;
    }
}
