//! Smoke test: every example in `examples/` must build and run to
//! completion. The examples double as executable documentation of the
//! paper's headline claims, so they must not silently rot.
//!
//! Each example already uses a laptop-scale geometry (N ≤ 2^16), so a
//! full run is fast; the dominant cost is the one-time `cargo build`.

use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "quickstart",
    "fft_bit_reversal",
    "gray_code_scan",
    "mld_pipeline",
    "out_of_core_transpose",
    "runtime_detection",
];

#[test]
fn all_examples_run() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for name in EXAMPLES {
        let out = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} failed ({}):\n--- stdout\n{}\n--- stderr\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(!out.stdout.is_empty(), "example {name} produced no output");
    }
}
