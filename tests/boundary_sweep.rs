//! Boundary sweep: the factoring engine and the one-pass executors
//! must be correct for *every* legal `(b, m, n)` boundary combination,
//! not just the comfortable ones. This suite sweeps all valid
//! geometries with n ≤ 10 (in simulation) and all (b, m) splits with
//! n = 9 (factoring only).

use bmmc::passes::reference_permute;
use bmmc::{catalog, factor, perform_bmmc};
use pdm::{DiskSystem, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Factoring alone across every split: b < m < n for n = 9.
#[test]
fn factoring_correct_for_every_split() {
    let mut rng = StdRng::seed_from_u64(4001);
    let n = 9;
    for b in 0..n {
        for m in (b + 1)..n {
            for _ in 0..3 {
                let perm = catalog::random_bmmc(&mut rng, n);
                let fac = factor(&perm, b, m)
                    .unwrap_or_else(|e| panic!("factor failed at b={b}, m={m}: {e}"));
                assert!(fac.verify(&perm), "recomposition failed at b={b}, m={m}");
                let rank_gm = gf2::elim::rank(&perm.matrix().submatrix(m..n, 0..m));
                let expect = if rank_gm == 0 {
                    1
                } else {
                    rank_gm.div_ceil(m - b) + 1
                };
                assert_eq!(fac.num_passes(), expect, "wrong pass count at b={b}, m={m}");
            }
        }
    }
}

/// Full simulation across every legal small geometry (n ≤ 10): all
/// power-of-two (B, D, M) with BD ≤ M < N and M > B.
#[test]
fn simulation_correct_for_every_small_geometry() {
    let mut rng = StdRng::seed_from_u64(4002);
    let n = 10usize;
    let records = 1usize << n;
    let mut geometries = 0;
    for b in 0..n {
        for d in 0..n {
            for m in 1..n {
                let (bb, dd, mm) = (1usize << b, 1usize << d, 1usize << m);
                if bb * dd > mm || mm >= records || mm <= bb {
                    continue;
                }
                let Ok(g) = Geometry::new(records, bb, dd, mm) else {
                    continue;
                };
                geometries += 1;
                let perm = catalog::random_bmmc(&mut rng, n);
                let input: Vec<u64> = (0..records as u64).collect();
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
                sys.load_records(0, &input);
                let report = perform_bmmc(&mut sys, &perm)
                    .unwrap_or_else(|e| panic!("b={b} d={d} m={m}: {e}"));
                let expect = reference_permute(&input, |x| perm.target(x));
                assert_eq!(
                    sys.dump_records(report.final_portion),
                    expect,
                    "misplaced records at b={b}, d={d}, m={m}"
                );
                // Pass cost identity: every pass reads and writes every
                // record exactly once.
                assert_eq!(
                    report.total.blocks_read,
                    (report.num_passes() * g.total_blocks()) as u64
                );
                assert_eq!(report.total.blocks_read, report.total.blocks_written);
            }
        }
    }
    assert!(
        geometries > 25,
        "sweep covered only {geometries} geometries — loosen the filters?"
    );
}

/// The detection path across every legal small geometry.
#[test]
fn detection_correct_for_every_small_geometry() {
    use bmmc::bounds::detection_reads;
    use bmmc::detect::{detect_bmmc, load_target_vector};
    let mut rng = StdRng::seed_from_u64(4003);
    let n = 10usize;
    let records = 1usize << n;
    for b in 0..n {
        for d in 0..n {
            for m in 1..n {
                let (bb, dd, mm) = (1usize << b, 1usize << d, 1usize << m);
                if bb * dd > mm || mm >= records || mm <= bb {
                    continue;
                }
                let Ok(g) = Geometry::new(records, bb, dd, mm) else {
                    continue;
                };
                let perm = catalog::random_bmmc(&mut rng, n);
                let mut sys = load_target_vector(g, &perm.target_vector());
                let det =
                    detect_bmmc(&mut sys, 0).unwrap_or_else(|e| panic!("b={b} d={d} m={m}: {e}"));
                assert_eq!(
                    det.bmmc().expect("positive instance"),
                    &perm,
                    "wrong candidate at b={b}, d={d}, m={m}"
                );
                assert_eq!(
                    det.stats().total(),
                    detection_reads(&g),
                    "read count off at b={b}, d={d}, m={m}"
                );
            }
        }
    }
}
