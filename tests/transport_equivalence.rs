//! Transport equivalence: a [`pdm::DiskSystem`] served in-process,
//! over per-disk `pdm-diskd` worker processes (Unix-domain sockets),
//! or over the deterministic simulated network must be observationally
//! identical — byte-identical final placement, intact payloads across
//! the wire serialization boundary, and the same `IoStats` (in
//! particular `parallel_ios()`) — for full BMMC plans and external
//! merge sorts, serial and threaded, across the geometry zoo
//! (including the degenerate D=1, B=1, and M=BD cases).
//!
//! The message counters are pinned alongside: the in-process runs move
//! zero transport messages, while the sim and UDS runs — both speaking
//! the `pdm::proto` wire protocol over the same command sequence —
//! move **exactly** the same message and wire-byte counts, which makes
//! the simulated network an exact cost model of the real sockets.
//!
//! The UDS runs spawn one real worker process per disk (the binary is
//! built into `target/` beside this test's executable), so the case
//! counts here are deliberately low; the cheap in-process/sim pair is
//! additionally swept by the deterministic all-geometries tests.

use bmmc::algorithm::perform_bmmc;
use bmmc::catalog;
use extsort::{sort_by_key_with, SortConfig};
use pdm::{
    Backend, DiskSystem, FaultPlan, Geometry, IoStats, MsgStats, PdmError, ServiceMode,
    TaggedRecord, TransportConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The geometry zoo of `tests/engine_equivalence.rs`: comfortable,
/// degenerate-D, and memory-boundary cases.
fn geometries() -> Vec<Geometry> {
    vec![
        // The test suite's staple: N=2^10, B=4, D=4, M=64.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        // Degenerate D=1: every "parallel" I/O moves one block.
        Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap(),
        // M = 2BD: two stripes per memoryload.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 5).unwrap(),
        // M = BD: a memoryload is a single stripe.
        Geometry::new(1 << 10, 1 << 1, 1 << 3, 1 << 4).unwrap(),
        // B = 1 with deep striping.
        Geometry::new(1 << 11, 1, 1 << 3, 1 << 4).unwrap(),
    ]
}

/// All three transports, reference first.
fn transports() -> Vec<(&'static str, TransportConfig)> {
    vec![
        ("inproc", TransportConfig::InProc),
        ("sim", TransportConfig::SimNet(Default::default())),
        ("uds", TransportConfig::Uds(Default::default())),
    ]
}

/// True if `g` leaves the default merge strategy a usable fan-in
/// (`M/BD − 1 ≥ 2`); the zoo's memory-boundary cases do not, and the
/// sort workload skips them (BMMC still covers them).
fn sortable(g: Geometry) -> bool {
    g.memory() / (g.block() * g.disks()) >= 3
}

fn mode_of(threaded: bool) -> ServiceMode {
    if threaded {
        ServiceMode::Threaded
    } else {
        ServiceMode::Serial
    }
}

/// One run's observable outcome.
struct Outcome {
    records: Vec<TaggedRecord>,
    ios: IoStats,
    msgs: MsgStats,
}

fn build(g: Geometry, cfg: &TransportConfig, mode: ServiceMode) -> DiskSystem<TaggedRecord> {
    let mut sys = DiskSystem::new_with_transport(g, 2, &Backend::Mem, cfg)
        .expect("transport system construction");
    sys.set_service_mode(mode);
    sys
}

/// Performs the BMMC permutation `seeded` by `s` on transport `cfg`.
fn run_bmmc(g: Geometry, s: u64, cfg: &TransportConfig, mode: ServiceMode) -> Outcome {
    let mut rng = StdRng::seed_from_u64(s);
    let perm = catalog::random_bmmc(&mut rng, g.n());
    let mut sys = build(g, cfg, mode);
    let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();
    sys.load_records(0, &input);
    let report = perform_bmmc(&mut sys, &perm).expect("bmmc run");
    let records = sys.dump_records(report.final_portion);
    assert_eq!(sys.buffer_pool_stats().outstanding, 0, "buffers stranded");
    Outcome {
        records,
        ios: report.total,
        msgs: report.msgs,
    }
}

/// External merge sort of a seeded shuffle on transport `cfg`.
fn run_sort(g: Geometry, s: u64, cfg: &TransportConfig, mode: ServiceMode) -> Outcome {
    let mut keys: Vec<u64> = (0..g.records() as u64).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(s));
    let input: Vec<TaggedRecord> = keys.into_iter().map(TaggedRecord::new).collect();
    let mut sys = build(g, cfg, mode);
    sys.load_records(0, &input);
    let report = sort_by_key_with(&mut sys, |r| r.key, SortConfig::default()).expect("sort run");
    let records = sys.dump_records(report.final_portion);
    assert_eq!(sys.buffer_pool_stats().outstanding, 0, "buffers stranded");
    Outcome {
        records,
        ios: report.total,
        msgs: report.msgs,
    }
}

/// Runs `workload` on every transport and checks the equivalence and
/// message-count contracts against the in-process reference.
fn assert_transports_agree(
    label: &str,
    workload: impl Fn(&TransportConfig) -> Outcome,
) -> Result<(), TestCaseError> {
    let mut reference: Option<Outcome> = None;
    let mut wire: Option<(&str, MsgStats)> = None;
    for (name, cfg) in transports() {
        let out = workload(&cfg);
        prop_assert!(
            out.records.iter().all(TaggedRecord::intact),
            "{label}/{name}: payload corrupted"
        );
        match &reference {
            None => {
                // The in-process run is the reference and must move no
                // transport messages at all.
                prop_assert!(
                    out.msgs.is_zero(),
                    "{label}/{name}: in-process run moved {}",
                    out.msgs
                );
                reference = Some(out);
            }
            Some(r) => {
                prop_assert_eq!(
                    &out.records,
                    &r.records,
                    "{}/{}: placement diverged from in-process",
                    label,
                    name
                );
                prop_assert_eq!(
                    out.ios,
                    r.ios,
                    "{label}/{name}: I/O accounting diverged from in-process"
                );
                prop_assert!(!out.msgs.is_zero(), "{label}/{name}: no messages counted");
                // sim and uds speak the identical protocol over the
                // identical command sequence: exactly equal counts.
                match &wire {
                    None => wire = Some((name, out.msgs)),
                    Some((first, m)) => prop_assert_eq!(
                        *m,
                        out.msgs,
                        "{}/{}: message counts diverge from {}",
                        label,
                        name,
                        first
                    ),
                }
            }
        }
    }
    Ok(())
}

/// Deterministic full coverage: every geometry in the zoo, serial and
/// threaded, both workloads, across all three transports. (The
/// proptests below add randomized permutations and shuffles on top.)
#[test]
fn all_geometries_agree_across_transports() {
    for (gi, g) in geometries().into_iter().enumerate() {
        for threaded in [false, true] {
            let mode = mode_of(threaded);
            let label = format!("g{gi}/bmmc/threaded={threaded}");
            assert_transports_agree(&label, |cfg| run_bmmc(g, 0xEC0 + gi as u64, cfg, mode))
                .unwrap();
            if sortable(g) {
                let label = format!("g{gi}/sort/threaded={threaded}");
                assert_transports_agree(&label, |cfg| run_sort(g, 0x50F + gi as u64, cfg, mode))
                    .unwrap();
            }
        }
    }
}

/// A disconnect injected mid-permutation over real sockets (the worker
/// process is killed) surfaces as `Disconnected` naming the disk,
/// leaves no stranded pooled buffers, keeps the surviving disks
/// serviceable, and stays dead for later operations.
#[test]
fn uds_disconnect_mid_bmmc_is_clean() {
    let g = geometries()[0];
    let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();
    let perm = catalog::random_bmmc(&mut StdRng::seed_from_u64(7), g.n());
    let uds = TransportConfig::Uds(Default::default());
    for threaded in [false, true] {
        // A clean run of the same permutation establishes the pool's
        // steady-state allocation: the faulted run may not exceed it.
        let mut clean = build(g, &uds, mode_of(threaded));
        clean.load_records(0, &input);
        perform_bmmc(&mut clean, &perm).expect("clean bmmc run");
        let steady = clean.buffer_pool_stats().allocated;
        drop(clean);

        let mut sys = build(g, &uds, mode_of(threaded));
        sys.load_records(0, &input);
        sys.set_faults(FaultPlan::new().disconnect_at(2, 1));
        let err = perform_bmmc(&mut sys, &perm).expect_err("link was severed");
        let bmmc::BmmcError::Pdm(e) = err else {
            panic!("unexpected error {err}");
        };
        assert!(
            matches!(e, PdmError::Disconnected { disk: 1 }),
            "threaded={threaded}: {e}"
        );
        let after = sys.buffer_pool_stats();
        assert_eq!(after.outstanding, 0, "buffers stranded after disconnect");
        assert!(
            after.allocated <= steady,
            "disconnect grew the pool past a clean run's working set: {} > {steady}",
            after.allocated,
        );
        // The link stays dead; disks that survived keep answering.
        let mut buf = vec![TaggedRecord::new(0); g.block() * g.disks()];
        assert!(matches!(
            sys.read_stripe_into(0, &mut buf).unwrap_err(),
            PdmError::Disconnected { disk: 1 }
        ));
        let only_disk0 = [pdm::BlockRef { disk: 0, slot: 0 }];
        sys.read_blocks_into(&only_disk0, &mut buf[..g.block()])
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random BMMC permutations agree across every transport (each
    /// case spawns two sets of worker processes, so cases stay few —
    /// the deterministic test above already covers the full zoo).
    #[test]
    fn random_bmmc_agrees_across_transports(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mode = mode_of(threaded);
        assert_transports_agree(
            &format!("g{gi}/bmmc/threaded={threaded}"),
            |cfg| run_bmmc(g, s, cfg, mode),
        )?;
    }

    /// Random shuffles sorted by the external merge sort agree across
    /// every transport.
    #[test]
    fn random_sort_agrees_across_transports(
        s in any::<u64>(),
        gi in 0usize..2,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        prop_assume!(sortable(g));
        let mode = mode_of(threaded);
        assert_transports_agree(
            &format!("g{gi}/sort/threaded={threaded}"),
            |cfg| run_sort(g, s, cfg, mode),
        )?;
    }
}
