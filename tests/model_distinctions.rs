//! Tests that make the paper's model distinctions executable:
//! striped vs independent I/O, simple-I/O potential accounting
//! (Lemma 6), and per-family permutation sweeps.

use bmmc::factoring::{Pass, PassKind};
use bmmc::passes::{execute_pass, reference_permute};
use bmmc::potential::{delta_max, togetherness};
use bmmc::{catalog, perform_bmmc};
use pdm::{DiskSystem, Geometry, PdmError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn geom() -> Geometry {
    Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
}

/// MRC passes survive a striped-only system; MLD passes genuinely
/// need independent writes (Section 3: "MLD permutations use striped
/// reads and independent writes").
#[test]
fn mld_requires_independent_io() {
    let g = geom();
    let mut rng = StdRng::seed_from_u64(3001);

    // MRC under striped-only: fine.
    let mrc = catalog::random_mrc(&mut rng, g.n(), g.m());
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.set_striped_only(true);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    let pass = Pass {
        matrix: mrc.matrix().clone(),
        complement: mrc.complement().clone(),
        kind: PassKind::Mrc,
    };
    execute_pass(&mut sys, 0, 1, &pass).expect("MRC is striped-only compatible");

    // A genuinely dispersing MLD under striped-only: must fail with
    // StripedOnly, not corrupt data.
    let mld = loop {
        let p = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
        if !bmmc::is_mrc(p.matrix(), g.m()) {
            break p;
        }
    };
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.set_striped_only(true);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    let pass = Pass {
        matrix: mld.matrix().clone(),
        complement: mld.complement().clone(),
        kind: PassKind::Mld,
    };
    let err = execute_pass(&mut sys, 0, 1, &pass).unwrap_err();
    assert!(
        matches!(err, bmmc::BmmcError::Pdm(PdmError::StripedOnly)),
        "expected StripedOnly, got {err:?}"
    );
}

/// Lemma 6 mechanics under simple I/O at D = 1: each *read* increases
/// the potential by at most `B(2/(e ln 2) + lg(M/B))` and each *write*
/// never increases it (the Section 7 refinement).
#[test]
fn lemma6_per_io_potential_gain() {
    // Tiny D = 1 geometry: N=256, B=8, M=32 (n=8, b=3, m=5).
    let (n_recs, block, mem) = (256usize, 8usize, 32usize);
    let lg_b = 3usize;
    let lg_mb = 2usize; // lg(M/B)
    let mut rng = StdRng::seed_from_u64(3002);
    // An MLD permutation: each memoryload's records fill whole target
    // blocks (Lemma 13), so the one-pass simple-I/O simulation below
    // completes the permutation exactly.
    let perm = catalog::random_mld(&mut rng, 8, 3, 5);
    let group_of = |key: u64| perm.target(key) >> lg_b;

    // State: source blocks (by index), target blocks, memory multiset.
    let mut source: Vec<Vec<u64>> = (0..n_recs / block)
        .map(|k| ((k * block) as u64..((k + 1) * block) as u64).collect())
        .collect();
    let mut target: Vec<Vec<u64>> = vec![Vec::new(); n_recs / block];
    let mut memory: Vec<u64> = Vec::new();

    let phi = |source: &Vec<Vec<u64>>, target: &Vec<Vec<u64>>, memory: &Vec<u64>| -> f64 {
        let container = |records: &[u64]| -> f64 {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for &r in records {
                *counts.entry(group_of(r)).or_insert(0) += 1;
            }
            togetherness(counts.values().copied())
        };
        source.iter().map(|b| container(b)).sum::<f64>()
            + target.iter().map(|b| container(b)).sum::<f64>()
            + container(memory)
    };
    let dmax = delta_max(block, 1, lg_mb);

    let mut current = phi(&source, &target, &memory);
    let blocks_per_ml = mem / block;
    for ml in 0..n_recs / mem {
        // Simple reads: one block per I/O into memory.
        for k in 0..blocks_per_ml {
            let blk = std::mem::take(&mut source[ml * blocks_per_ml + k]);
            memory.extend(blk);
            let next = phi(&source, &target, &memory);
            assert!(
                next - current <= dmax + 1e-9,
                "read gained {} > Δ_max {dmax}",
                next - current
            );
            current = next;
        }
        // Sort memory by target group, then write out full
        // same-group runs of B; this mimics in-memory permuting.
        memory.sort_unstable_by_key(|&r| perm.target(r));
        while memory.len() >= block {
            let out: Vec<u64> = memory.drain(..block).collect();
            let tblk = (perm.target(out[0]) >> lg_b) as usize;
            assert!(target[tblk].is_empty(), "target block written twice");
            target[tblk] = out;
            let next = phi(&source, &target, &memory);
            assert!(
                next - current <= 1e-9,
                "write increased potential by {}",
                next - current
            );
            current = next;
        }
    }
    // All records placed: final potential = N lg B.
    assert!((current - (n_recs * lg_b) as f64).abs() < 1e-6);
}

/// Family sweeps: every rotation, butterfly stage, and field swap on a
/// fixed geometry, end to end.
#[test]
fn permutation_family_sweeps() {
    let g = geom();
    let n = g.n();
    let input: Vec<u64> = (0..g.records() as u64).collect();
    let mut families: Vec<(String, bmmc::Bmmc)> = Vec::new();
    for k in 0..n {
        families.push((format!("rotation:{k}"), catalog::rotation(n, k)));
        families.push((format!("butterfly:{k}"), catalog::butterfly(n, k)));
    }
    for k in 0..=n / 2 {
        families.push((format!("swap-fields:{k}"), catalog::swap_fields(n, k)));
    }
    families.push(("morton".into(), catalog::morton(n)));
    families.push(("shuffle".into(), catalog::perfect_shuffle(n)));
    families.push(("unshuffle".into(), catalog::perfect_unshuffle(n)));
    for (name, perm) in families {
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &input);
        let report = perform_bmmc(&mut sys, &perm).unwrap_or_else(|e| panic!("{name}: {e}"));
        let expect = reference_permute(&input, |x| perm.target(x));
        assert_eq!(
            sys.dump_records(report.final_portion),
            expect,
            "{name} misplaced records"
        );
    }
}

/// Sampled mass test: many random BPC permutations with complements,
/// verified end to end against the reference.
#[test]
fn random_bpc_mass_verification() {
    let g = geom();
    let mut rng = StdRng::seed_from_u64(3003);
    let input: Vec<u64> = (0..g.records() as u64).collect();
    for i in 0..40 {
        let perm = catalog::random_bpc(&mut rng, g.n());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &input);
        let report = perform_bmmc(&mut sys, &perm).unwrap();
        let expect = reference_permute(&input, |x| perm.target(x));
        assert_eq!(
            sys.dump_records(report.final_portion),
            expect,
            "random BPC #{i} misplaced records"
        );
    }
}
