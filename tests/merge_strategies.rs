//! Forecast vs single-buffered merge: placement equivalence
//! (proptest), exact predicted-vs-measured costs for every strategy
//! (against `bmmc::bounds`), and the PR acceptance criterion at the
//! `engine_sweep` extsort geometry.

use bmmc::bounds;
use extsort::{sort_by_key_with, MergeStrategy, SortConfig};
use pdm::{DiskSystem, Geometry, ServiceMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The strategy zoo, paired across the crate boundary (extsort
/// executes, bmmc::bounds predicts).
const STRATEGIES: [(MergeStrategy, bounds::MergeStrategy); 3] = [
    (
        MergeStrategy::SingleBuffered,
        bounds::MergeStrategy::SingleBuffered,
    ),
    (
        MergeStrategy::DoubleBuffered,
        bounds::MergeStrategy::DoubleBuffered,
    ),
    (MergeStrategy::Forecast, bounds::MergeStrategy::Forecast),
];

/// Geometries where both the single-buffered and the forecasting merge
/// fit, including D = 1 and the minimum-memory corner. (The issue's
/// "M = 3·BD" fan-in-2 minimum is not expressible here — every
/// geometry dimension must be a power of two — so M = 4·BD is the
/// model's actual floor, and it is the floor for *both* strategies:
/// M/BD − 1 ≥ 3 and M/B − D − 1 ≥ 2 hold together exactly when
/// M ≥ 4BD.)
fn geometries() -> Vec<Geometry> {
    vec![
        // M = 4·BD at D = 4: the minimum-memory corner.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        // D = 1 at its own minimum M = 4·B (forecast fan-in 2).
        Geometry::new(1 << 9, 1 << 2, 1, 1 << 4).unwrap(),
        // Mid-size, deeper merge trees.
        Geometry::new(1 << 12, 1 << 3, 1 << 2, 1 << 8).unwrap(),
        // B = 1: every block is a single record.
        Geometry::new(1 << 12, 1, 1 << 2, 1 << 6).unwrap(),
        // Wide disk array relative to memory (D = 8).
        Geometry::new(1 << 11, 1 << 1, 1 << 3, 1 << 7).unwrap(),
    ]
}

fn run_sort(
    g: Geometry,
    input: &[u64],
    merge: MergeStrategy,
    mode: ServiceMode,
) -> (extsort::SortReport, Vec<u64>) {
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.set_service_mode(mode);
    sys.load_records(0, input);
    let report = sort_by_key_with(&mut sys, |&r| r, SortConfig { merge }).unwrap();
    assert_eq!(
        sys.buffer_pool_stats().outstanding,
        0,
        "merge stranded pooled buffers ({merge:?}, {mode:?})"
    );
    (report, sys.dump_records(report.final_portion))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Key-permutation inputs: forecast places every record
    /// byte-identically to the single-buffered merge, in serial and
    /// threaded service, and both match the exact predicted cost.
    #[test]
    fn forecast_matches_single_buffered_placement(seed in any::<u64>(), gi in 0usize..5) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut input: Vec<u64> = (0..g.records() as u64).collect();
        input.shuffle(&mut rng);
        let expect: Vec<u64> = (0..g.records() as u64).collect();
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let (sr, sout) = run_sort(g, &input, MergeStrategy::SingleBuffered, mode);
            let (fr, fout) = run_sort(g, &input, MergeStrategy::Forecast, mode);
            prop_assert_eq!(&sout, &expect, "single-buffered missorted ({:?})", mode);
            prop_assert_eq!(&fout, &sout, "placements diverged ({:?})", mode);
            // Exact cost agreement with the bounds-side replay.
            for (report, strategy) in [
                (&sr, bounds::MergeStrategy::SingleBuffered),
                (&fr, bounds::MergeStrategy::Forecast),
            ] {
                prop_assert_eq!(
                    Some(report.passes),
                    bounds::merge_sort_passes(&g, strategy)
                );
                prop_assert_eq!(
                    Some(report.total.parallel_ios()),
                    bounds::merge_sort_ios(&g, strategy)
                );
            }
        }
    }

    /// The adversarial key catalogs ([`extsort::keys`]): duplicate-
    /// heavy and skewed inputs sort correctly under *all three*
    /// strategies, with identical multisets across them.
    #[test]
    fn adversarial_key_catalogs_sort_under_every_strategy(
        seed in any::<u64>(),
        gi in 0usize..5,
        distinct in 1u64..8,
    ) {
        let g = geometries()[gi];
        let n = g.records();
        let catalogs = [
            extsort::keys::duplicate_heavy(seed, n, distinct),
            extsort::keys::skewed(seed, n, n as u64 * 4),
        ];
        for input in &catalogs {
            let mut reference = input.clone();
            reference.sort_unstable();
            for (merge, predicted) in STRATEGIES {
                if predicted.fan_in(&g) < 2 {
                    continue; // double-buffered may not fit the corner cases
                }
                let (_, out) = run_sort(g, input, merge, ServiceMode::Serial);
                // Records are their own keys here, so "sorted with the
                // right multiset" pins the full output vector.
                prop_assert_eq!(&out, &reference, "{:?} missorted", merge);
            }
        }
    }

    /// Duplicate keys: merge order may differ between strategies, but
    /// the output must be sorted and carry the same multiset.
    #[test]
    fn forecast_matches_single_buffered_multiset(
        seed in any::<u64>(),
        gi in 0usize..5,
        modulus in 1u64..40,
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut input: Vec<u64> = (0..g.records() as u64).map(|i| i % modulus).collect();
        input.shuffle(&mut rng);
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let (_, sout) = run_sort(g, &input, MergeStrategy::SingleBuffered, mode);
            let (_, fout) = run_sort(g, &input, MergeStrategy::Forecast, mode);
            prop_assert!(sout.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(fout.windows(2).all(|w| w[0] <= w[1]));
            let mut a = sout.clone();
            let mut b = fout.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "multisets diverged ({:?})", mode);
        }
    }
}

/// Every strategy's measured pass count and parallel-I/O count equals
/// the `bmmc::bounds` prediction on every geometry — the two enums (and
/// the leftover-singleton tightening) stay in lock-step across the
/// crate boundary.
#[test]
fn measured_costs_match_bounds_for_every_strategy() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for g in geometries() {
        let mut input: Vec<u64> = (0..g.records() as u64).collect();
        input.shuffle(&mut rng);
        for (merge, predicted) in STRATEGIES {
            if predicted.fan_in(&g) < 2 {
                continue; // double-buffered may not fit the corner cases
            }
            let (report, out) = run_sort(g, &input, merge, ServiceMode::Serial);
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "{merge:?} on {g:?}");
            assert_eq!(report.fan_in, predicted.fan_in(&g), "{merge:?} on {g:?}");
            assert_eq!(
                Some(report.passes),
                bounds::merge_sort_passes(&g, predicted),
                "pass count drifted from bounds ({merge:?} on {g:?})"
            );
            assert_eq!(
                Some(report.total.parallel_ios()),
                bounds::merge_sort_ios(&g, predicted),
                "parallel I/Os drifted from bounds ({merge:?} on {g:?})"
            );
        }
    }
}

/// The PR acceptance criterion at the `engine_sweep` extsort geometry
/// (B = 2^3, D = 2^4, M = 2^12; N = 2^17 keeps the test fast while
/// still forcing the single-buffered sort into two merge passes):
/// forecast fan-in ≥ 8× the single-buffered `M/BD − 1`, strictly fewer
/// passes, and exact parallel-I/O counts, identical across serial and
/// threaded service.
#[test]
fn acceptance_forecast_closes_fan_in_gap_at_bench_geometry() {
    let g = Geometry::new(1 << 17, 1 << 3, 1 << 4, 1 << 12).unwrap();
    let mut rng = StdRng::seed_from_u64(0xACCE);
    let mut input: Vec<u64> = (0..g.records() as u64).collect();
    input.shuffle(&mut rng);

    let (sr, sout) = run_sort(
        g,
        &input,
        MergeStrategy::SingleBuffered,
        ServiceMode::Serial,
    );
    let (fr, fout) = run_sort(g, &input, MergeStrategy::Forecast, ServiceMode::Serial);
    let (ft, fout_threaded) = run_sort(g, &input, MergeStrategy::Forecast, ServiceMode::Threaded);

    // Fan-in: 31 single-buffered, 495 forecasting — a 15.9× gap, well
    // past the required 8×.
    assert_eq!(sr.fan_in, 31);
    assert_eq!(fr.fan_in, 495);
    assert!(fr.fan_in >= 8 * sr.fan_in);

    // Strictly fewer passes: 32 runs collapse in one forecast merge.
    assert_eq!(sr.passes, 3);
    assert_eq!(fr.passes, 2);
    assert!(fr.passes < sr.passes);

    // Exact parallel-I/O counts (see bounds::merge_sort_ios): the
    // single-buffered sort charges 2048 (formation) + 1984 (merge pass
    // with its 32-stripe singleton left in place) + 2048; the forecast
    // merge charges 2048 + 1024·(D+1) = 2048 + 17408.
    assert_eq!(sr.total.parallel_ios(), 6080);
    assert_eq!(fr.total.parallel_ios(), 19456);
    assert_eq!(
        Some(sr.total.parallel_ios()),
        bounds::merge_sort_ios(&g, bounds::MergeStrategy::SingleBuffered)
    );
    assert_eq!(
        Some(fr.total.parallel_ios()),
        bounds::merge_sort_ios(&g, bounds::MergeStrategy::Forecast)
    );
    // Forecast write discipline stays striped; merge reads are
    // independent single-block operations.
    assert_eq!(fr.total.striped_writes, fr.total.parallel_writes);
    assert_eq!(fr.total.independent_reads(), 16384);

    // Threading changes neither placement nor any charged count.
    assert_eq!(fout, sout);
    assert_eq!(fout_threaded, fout);
    assert_eq!(ft.total, fr.total);
}
