//! Property tests: the streaming `PassEngine` executors must be
//! observationally identical to the superseded per-call-site loops
//! (`bmmc::passes::reference`) — same final record placement and the
//! same `IoStats` (in particular `parallel_ios()`), pass by pass — for
//! random BMMC matrices across geometries, including the degenerate
//! D=1 and the M=2BD / M=BD boundary cases exercised by
//! `tests/boundary_sweep.rs`. The same properties additionally pin the
//! `FileDisk` backend against MemDisk (byte-identical placement,
//! identical parallel-I/O counts, serial and threaded), with the
//! per-disk files in self-cleaning temp dirs.

use bmmc::algorithm::plan_passes;
use bmmc::factoring::{Pass, PassKind};
use bmmc::passes::{execute_pass, execute_pass_with_strategy, reference, EvalStrategy};
use bmmc::{catalog, Bmmc};
use pdm::{DiskSystem, Geometry, PassEngine, ServiceMode, TaggedRecord, TempDir};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The geometry zoo: comfortable, degenerate-D, and memory-boundary
/// cases. All have n ≤ 11 so a full simulation stays fast.
fn geometries() -> Vec<Geometry> {
    vec![
        // The test suite's staple: N=2^10, B=4, D=4, M=64.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        // Degenerate D=1: every "parallel" I/O moves one block.
        Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap(),
        // M = 2BD: two stripes per memoryload (boundary_sweep's edge).
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 5).unwrap(),
        // M = BD: a memoryload is a single stripe.
        Geometry::new(1 << 10, 1 << 1, 1 << 3, 1 << 4).unwrap(),
        // B = 1 with deep striping.
        Geometry::new(1 << 11, 1, 1 << 3, 1 << 4).unwrap(),
    ]
}

/// Runs `passes` with the engine executor (in `mode`) and the
/// reference loops (serial) on identical inputs; asserts equal
/// placement and equal per-pass I/O statistics.
fn assert_equivalent(g: Geometry, passes: &[Pass], mode: ServiceMode) -> Result<(), TestCaseError> {
    let input: Vec<u64> = (0..g.records() as u64).collect();
    let mut engine_sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    engine_sys.set_service_mode(mode);
    engine_sys.load_records(0, &input);
    let mut ref_sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    ref_sys.load_records(0, &input);
    let mut src = 0usize;
    for (i, pass) in passes.iter().enumerate() {
        let dst = 1 - src;
        let engine_stats = execute_pass(&mut engine_sys, src, dst, pass).expect("engine pass");
        let ref_stats = reference::execute_pass(&mut ref_sys, src, dst, pass).expect("ref pass");
        prop_assert_eq!(
            engine_stats.ios,
            ref_stats.ios,
            "I/O accounting diverged on pass {} ({:?})",
            i,
            pass.kind
        );
        prop_assert_eq!(
            engine_stats.ios.parallel_ios() as usize,
            g.ios_per_pass(),
            "pass {} not charged 2N/BD",
            i
        );
        src = dst;
    }
    prop_assert_eq!(
        engine_sys.dump_records(src),
        ref_sys.dump_records(src),
        "placements diverged after {} passes",
        passes.len()
    );
    prop_assert_eq!(
        engine_sys.buffer_pool_stats().outstanding,
        0,
        "engine stranded pooled buffers"
    );
    Ok(())
}

fn mode_of(threaded: bool) -> ServiceMode {
    if threaded {
        ServiceMode::Threaded
    } else {
        ServiceMode::Serial
    }
}

/// Runs `passes` once per [`EvalStrategy`] — block-run (the default)
/// and per-address — on identical inputs in `mode`; asserts
/// byte-identical final placement and *exactly* equal per-pass
/// `IoStats` and message counts. The evaluation strategy is an
/// in-memory concern only: nothing observable at the disks may change.
fn assert_strategies_equivalent(
    g: Geometry,
    passes: &[Pass],
    mode: ServiceMode,
) -> Result<(), TestCaseError> {
    let input: Vec<u64> = (0..g.records() as u64).collect();
    let run = |strategy: EvalStrategy| {
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.set_service_mode(mode);
        sys.load_records(0, &input);
        let mut engine = PassEngine::new(g);
        let mut src = 0usize;
        let mut stats = Vec::with_capacity(passes.len());
        for pass in passes {
            let dst = 1 - src;
            let st = execute_pass_with_strategy(&mut engine, &mut sys, src, dst, pass, strategy)
                .expect("pass execution");
            stats.push(st.ios);
            src = dst;
        }
        (sys.dump_records(src), stats, sys.message_stats())
    };
    let (block_out, block_stats, block_msgs) = run(EvalStrategy::BlockRun);
    let (addr_out, addr_stats, addr_msgs) = run(EvalStrategy::PerAddress);
    prop_assert_eq!(block_out, addr_out, "placements diverged across strategies");
    prop_assert_eq!(
        block_stats,
        addr_stats,
        "per-pass I/O accounting diverged across strategies"
    );
    prop_assert_eq!(
        block_msgs,
        addr_msgs,
        "message counts diverged across strategies"
    );
    Ok(())
}

/// Runs `passes` on a **file-backed** system (engine executor, in
/// `mode`) and on a MemDisk system (engine, serial) with identical
/// `TaggedRecord` inputs; asserts byte-identical final placement,
/// intact payloads, and identical per-pass `IoStats`. The per-disk
/// files live in a self-cleaning [`TempDir`] (dropped even on panic).
fn assert_file_matches_mem(
    g: Geometry,
    passes: &[Pass],
    mode: ServiceMode,
) -> Result<(), TestCaseError> {
    let dir = TempDir::new("pdm-engine-equiv");
    let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();
    let mut file_sys: DiskSystem<TaggedRecord> =
        DiskSystem::new_file(g, 2, dir.path()).expect("file-backed system");
    file_sys.set_service_mode(mode);
    file_sys.load_records(0, &input);
    let mut mem_sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
    mem_sys.load_records(0, &input);
    let mut src = 0usize;
    for (i, pass) in passes.iter().enumerate() {
        let dst = 1 - src;
        let file_stats = execute_pass(&mut file_sys, src, dst, pass).expect("file pass");
        let mem_stats = execute_pass(&mut mem_sys, src, dst, pass).expect("mem pass");
        prop_assert_eq!(
            file_stats.ios,
            mem_stats.ios,
            "I/O accounting diverged on pass {} ({:?})",
            i,
            pass.kind
        );
        src = dst;
    }
    let file_out = file_sys.dump_records(src);
    prop_assert_eq!(
        file_out.clone(),
        mem_sys.dump_records(src),
        "file-backed placement diverged after {} passes",
        passes.len()
    );
    prop_assert!(
        file_out.iter().all(TaggedRecord::intact),
        "payload corrupted crossing the byte-serialization boundary"
    );
    prop_assert_eq!(file_sys.buffer_pool_stats().outstanding, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary BMMC permutations: whatever plan the planner picks
    /// (one-pass fast paths or the Section 5 factoring), the engine
    /// and the old loops agree, serial and threaded.
    #[test]
    fn engine_matches_old_loops_for_random_bmmc(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let passes = plan_passes(&perm, g.b(), g.m()).expect("planning failed");
        assert_equivalent(g, &passes, mode_of(threaded))?;
    }

    /// The three one-pass disciplines, forced explicitly (random BMMC
    /// matrices rarely land in MLD⁻¹, so cover each executor head-on).
    #[test]
    fn engine_matches_old_loops_for_one_pass_classes(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let cases: Vec<(Bmmc, PassKind)> = vec![
            (catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc),
            (catalog::random_mld(&mut rng, g.n(), g.b(), g.m()), PassKind::Mld),
            (
                catalog::random_mld(&mut rng, g.n(), g.b(), g.m()).inverse(),
                PassKind::MldInverse,
            ),
        ];
        for (perm, kind) in cases {
            let pass = Pass {
                matrix: perm.matrix().clone(),
                complement: perm.complement().clone(),
                kind,
            };
            assert_equivalent(g, std::slice::from_ref(&pass), mode_of(threaded))?;
        }
    }

    /// Block-run evaluation is observationally identical to
    /// per-address evaluation: for arbitrary planned BMMC permutations
    /// the placement is byte-identical and the per-pass `IoStats` and
    /// message counts are exactly equal, serial and threaded.
    #[test]
    fn block_run_matches_per_address_for_random_bmmc(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let passes = plan_passes(&perm, g.b(), g.m()).expect("planning failed");
        assert_strategies_equivalent(g, &passes, mode_of(threaded))?;
    }

    /// The same strategy equivalence with each one-pass discipline
    /// forced explicitly, covering all four executors head-on.
    #[test]
    fn block_run_matches_per_address_for_one_pass_classes(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let cases: Vec<(Bmmc, PassKind)> = vec![
            (catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc),
            (catalog::random_mld(&mut rng, g.n(), g.b(), g.m()), PassKind::Mld),
            (
                catalog::random_mld(&mut rng, g.n(), g.b(), g.m()).inverse(),
                PassKind::MldInverse,
            ),
        ];
        for (perm, kind) in cases {
            let pass = Pass {
                matrix: perm.matrix().clone(),
                complement: perm.complement().clone(),
                kind,
            };
            assert_strategies_equivalent(g, std::slice::from_ref(&pass), mode_of(threaded))?;
        }
    }

    /// The file backend is observationally identical to MemDisk:
    /// random BMMC plans on `FileDisk` produce byte-identical
    /// placement (16-byte `TaggedRecord` serialization round-trips
    /// through the staging buffers) and the same parallel-I/O counts,
    /// serial and threaded, across the geometry zoo.
    #[test]
    fn file_backend_matches_mem_for_random_bmmc(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let passes = plan_passes(&perm, g.b(), g.m()).expect("planning failed");
        assert_file_matches_mem(g, &passes, mode_of(threaded))?;
    }

    /// Multi-pass plans keep agreeing when the engine (and its buffers)
    /// are reused across the whole plan via the algorithm layer. Uses
    /// the *unfused* route on purpose: this property pins the engine
    /// against the reference loops round-trip for round-trip
    /// (`tests/fusion_equivalence.rs` owns the fused≡unfused property).
    #[test]
    fn full_algorithm_matches_pass_by_pass_reference(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let input: Vec<u64> = (0..g.records() as u64).collect();

        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.set_service_mode(mode_of(threaded));
        sys.load_records(0, &input);
        let planned = plan_passes(&perm, g.b(), g.m()).expect("planning failed");
        let report = bmmc::execute_passes_unfused(&mut sys, &planned)
            .expect("execute_passes_unfused");

        let passes = plan_passes(&perm, g.b(), g.m()).expect("planning failed");
        let mut ref_sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        ref_sys.load_records(0, &input);
        let mut src = 0usize;
        let mut ref_total = pdm::IoStats::default();
        for pass in &passes {
            let dst = 1 - src;
            let st = reference::execute_pass(&mut ref_sys, src, dst, pass).expect("ref pass");
            ref_total = pdm::IoStats {
                parallel_reads: ref_total.parallel_reads + st.ios.parallel_reads,
                parallel_writes: ref_total.parallel_writes + st.ios.parallel_writes,
                striped_reads: ref_total.striped_reads + st.ios.striped_reads,
                striped_writes: ref_total.striped_writes + st.ios.striped_writes,
                blocks_read: ref_total.blocks_read + st.ios.blocks_read,
                blocks_written: ref_total.blocks_written + st.ios.blocks_written,
            };
            src = dst;
        }
        prop_assert_eq!(report.final_portion, src);
        prop_assert_eq!(report.total, ref_total, "total I/O diverged");
        prop_assert_eq!(
            sys.dump_records(report.final_portion),
            ref_sys.dump_records(src)
        );
    }
}
