//! Property-based tests (proptest) on the core invariants:
//! GF(2) algebra laws, factoring soundness, class closure theorems,
//! detection round-trips, and executor correctness.

use bmmc::classes::{is_mld, is_mrc};
use bmmc::factoring::factor;
use bmmc::{catalog, Bmmc};
use gf2::elim::{inverse, is_nonsingular, rank};
use gf2::kernel::{kernel_basis, kernel_contained_in};
use gf2::sample::{random_nonsingular, random_with_submatrix_rank};
use gf2::{BitMatrix, BitVec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a seed for deterministic matrix sampling.
fn seed() -> impl Strategy<Value = u64> {
    any::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_inverse_round_trip(s in seed(), n in 1usize..16) {
        let mut rng = StdRng::seed_from_u64(s);
        let a = random_nonsingular(&mut rng, n);
        let inv = inverse(&a).unwrap();
        prop_assert!(a.mul(&inv).is_identity());
        prop_assert!(inv.mul(&a).is_identity());
    }

    #[test]
    fn matrix_mul_associative(s in seed(), n in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(s);
        let a = random_nonsingular(&mut rng, n);
        let b = random_nonsingular(&mut rng, n);
        let c = random_nonsingular(&mut rng, n);
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn rank_invariant_under_nonsingular_multiplication(s in seed(), n in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(s);
        let a = random_nonsingular(&mut rng, n);
        let t = random_nonsingular(&mut rng, n);
        // Rank of any submatrix row-range is preserved by column ops on
        // the whole matrix (used implicitly throughout Section 5).
        prop_assert_eq!(rank(&a), rank(&a.mul(&t)));
        prop_assert_eq!(rank(&a), rank(&t.mul(&a)));
    }

    #[test]
    fn kernel_basis_spans_kernel(s in seed(), rows in 1usize..8, cols in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(s);
        let a = gf2::sample::random_matrix(&mut rng, rows, cols);
        let basis = kernel_basis(&a);
        prop_assert_eq!(basis.len(), cols - rank(&a));
        for v in &basis {
            prop_assert!(a.mul_vec(v).is_zero());
        }
        // Exhaustive check for small dims: every kernel vector is in the span.
        if cols <= 10 {
            let mut kernel_count = 0u64;
            for bits in 0..(1u64 << cols) {
                let x = BitVec::from_u64(cols, bits);
                if a.mul_vec(&x).is_zero() {
                    kernel_count += 1;
                }
            }
            prop_assert_eq!(kernel_count, 1u64 << basis.len());
        }
    }

    #[test]
    fn bmmc_compose_inverse_laws(s in seed(), n in 1usize..14) {
        let mut rng = StdRng::seed_from_u64(s);
        let p = catalog::random_bmmc(&mut rng, n);
        let q = catalog::random_bmmc(&mut rng, n);
        // (p∘q)⁻¹ = q⁻¹∘p⁻¹
        let left = p.compose(&q).inverse();
        let right = q.inverse().compose(&p.inverse());
        prop_assert_eq!(left, right);
        prop_assert!(p.compose(&p.inverse()).is_identity());
    }

    #[test]
    fn factoring_recomposes(s in seed()) {
        // Paper geometry n=13, b=3, m=8 plus a second small geometry.
        let mut rng = StdRng::seed_from_u64(s);
        for (n, b, m) in [(13usize, 3usize, 8usize), (9, 2, 5)] {
            let p = catalog::random_bmmc(&mut rng, n);
            let fac = factor(&p, b, m).unwrap();
            prop_assert!(fac.verify(&p), "recomposition failed");
            for pass in &fac.passes[..fac.passes.len().saturating_sub(1)] {
                prop_assert!(is_mld(&pass.matrix, b, m));
            }
            prop_assert!(is_mrc(&fac.passes.last().unwrap().matrix, m));
        }
    }

    #[test]
    fn theorem21_pass_bound(s in seed(), r in 0usize..4) {
        let (n, b, m) = (13usize, 3usize, 8usize);
        let mut rng = StdRng::seed_from_u64(s);
        let a = random_with_submatrix_rank(&mut rng, n, b, r.min(b));
        let p = Bmmc::linear(a).unwrap();
        let fac = factor(&p, b, m).unwrap();
        let bound = r.min(b).div_ceil(m - b) + 2;
        prop_assert!(fac.num_passes() <= bound);
    }

    #[test]
    fn theorem17_mld_compose_mrc_is_mld(s in seed()) {
        // Y (MLD) · X (MRC) characterizes an MLD permutation.
        let (n, b, m) = (10usize, 2usize, 6usize);
        let mut rng = StdRng::seed_from_u64(s);
        let y = catalog::random_mld(&mut rng, n, b, m);
        let x = catalog::random_mrc(&mut rng, n, m);
        let prod = y.matrix().mul(x.matrix());
        prop_assert!(is_mld(&prod, b, m), "Theorem 17 violated");
    }

    #[test]
    fn theorem18_mrc_closed_under_compose_and_inverse(s in seed()) {
        let (n, m) = (10usize, 6usize);
        let mut rng = StdRng::seed_from_u64(s);
        let a1 = catalog::random_mrc(&mut rng, n, m);
        let a2 = catalog::random_mrc(&mut rng, n, m);
        prop_assert!(is_mrc(&a1.matrix().mul(a2.matrix()), m));
        prop_assert!(is_mrc(&inverse(a1.matrix()).unwrap(), m));
    }

    #[test]
    fn mrc_implies_mld(s in seed()) {
        let (n, b, m) = (10usize, 2usize, 6usize);
        let mut rng = StdRng::seed_from_u64(s);
        let a = catalog::random_mrc(&mut rng, n, m);
        prop_assert!(is_mld(a.matrix(), b, m), "MRC ⊄ MLD?!");
    }

    #[test]
    fn lemma16_mld_gamma_rank_bounded(s in seed()) {
        // rank of the lower-left (n−m)×m block of an MLD matrix ≤ m−b.
        let (n, b, m) = (10usize, 2usize, 6usize);
        let mut rng = StdRng::seed_from_u64(s);
        let a = catalog::random_mld(&mut rng, n, b, m);
        let lower = a.matrix().submatrix(m..n, 0..m);
        prop_assert!(rank(&lower) <= m - b, "Lemma 16 violated");
    }

    #[test]
    fn lemma12_mld_leading_block_nonsingular(s in seed()) {
        let (n, b, m) = (10usize, 2usize, 6usize);
        let mut rng = StdRng::seed_from_u64(s);
        let a = catalog::random_mld(&mut rng, n, b, m);
        prop_assert!(is_nonsingular(&a.matrix().submatrix(0..m, 0..m)));
    }

    #[test]
    fn kernel_condition_iff_rowspace_containment(s in seed(), p in 1usize..6, q in 1usize..6, cols in 1usize..8) {
        // ker K ⊆ ker L ⟺ row L ⊆ row K (Lemma 11 and its converse).
        let mut rng = StdRng::seed_from_u64(s);
        let k = gf2::sample::random_matrix(&mut rng, p, cols);
        let l = gf2::sample::random_matrix(&mut rng, q, cols);
        let containment = kernel_contained_in(&k, &l);
        // row L ⊆ row K ⟺ rank [K; L] == rank K.
        let mut stacked = BitMatrix::zeros(p + q, cols);
        stacked.set_block(0, 0, &k);
        stacked.set_block(p, 0, &l);
        let rowspace = rank(&stacked) == rank(&k);
        prop_assert_eq!(containment, rowspace);
    }

    #[test]
    fn affine_evaluator_matches_matrix(s in seed(), n in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(s);
        let p = catalog::random_bmmc(&mut rng, n);
        let ev = bmmc::AffineEvaluator::new(&p);
        for x in (0..1u64 << n.min(12)).step_by(7) {
            prop_assert_eq!(ev.eval(x), p.target(x));
        }
    }

    #[test]
    fn in_place_permutation_matches_scatter(s in seed(), lgn in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(s);
        let n = 1usize << lgn;
        let perm = catalog::random_bmmc(&mut rng, lgn);
        let mut data: Vec<u64> = (0..n as u64).collect();
        let mut expect = vec![0u64; n];
        for i in 0..n {
            expect[perm.target(i as u64) as usize] = data[i];
        }
        pdm::permute_in_place(&mut data, |i| perm.target(i as u64) as usize);
        prop_assert_eq!(data, expect);
    }
}
