//! The unified plan IR and the DP whole-plan fuser, end to end.
//!
//! * The committed `MLD;MRC;MLD` re-association regression: the DP
//!   fuser executes the chain in one step where greedy pair fusion
//!   needs two — strictly fewer steps *and* strictly fewer measured
//!   parallel I/Os, with byte-identical placement.
//! * DP ≤ greedy across the geometry zoo (proptest): for random BMMC
//!   factorings and adversarial worst-cross-rank draws, the DP plan
//!   never has more steps, and both executions place every record
//!   byte-identically.
//! * The cost model: `plan::candidates` + `plan::choose` pick a plan
//!   whose predicted parallel I/Os the executor reproduces exactly.

use bmmc::algorithm::{execute_fused_plan_strategy, execute_passes};
use bmmc::passes::EvalStrategy;
use bmmc::plan::reassociation_case;
use bmmc::{
    candidates, catalog, choose, fuse_passes_dp, fuse_passes_greedy, plan_passes, Bmmc,
    CandidateKind,
};
use pdm::{DiskSystem, Geometry, TimingModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Geometries spanning the corners the fuser's legality rules care
/// about: minimum memory, B = 1, D = 1, wide arrays, deep factorings.
fn geometry_zoo() -> Vec<Geometry> {
    vec![
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        Geometry::new(1 << 9, 1 << 2, 1, 1 << 4).unwrap(),
        Geometry::new(1 << 12, 1 << 3, 1 << 2, 1 << 8).unwrap(),
        Geometry::new(1 << 12, 1, 1 << 2, 1 << 6).unwrap(),
        Geometry::new(1 << 11, 1 << 1, 1 << 3, 1 << 7).unwrap(),
        Geometry::new(1 << 13, 1 << 3, 1 << 1, 1 << 5).unwrap(),
    ]
}

/// Runs a fused plan on a fresh system and returns (placement, ios).
fn run_fused(g: Geometry, plan: &bmmc::FusedPlan) -> (Vec<u64>, u64) {
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    let report = execute_fused_plan_strategy(&mut sys, plan, EvalStrategy::default()).unwrap();
    (
        sys.dump_records(report.final_portion),
        report.total.parallel_ios(),
    )
}

/// The flagship regression: the committed chain where whole-plan DP
/// provably beats greedy pair fusion.
#[test]
fn reassociation_regression_fewer_steps_and_fewer_measured_ios() {
    let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
    let passes = reassociation_case(g.n(), g.b(), g.m());
    let greedy = fuse_passes_greedy(&passes, g.b(), g.m());
    let dp = fuse_passes_dp(&passes, g.b(), g.m());
    assert_eq!(greedy.num_steps(), 2);
    assert_eq!(dp.num_steps(), 1);

    let (greedy_out, greedy_ios) = run_fused(g, &greedy);
    let (dp_out, dp_ios) = run_fused(g, &dp);
    assert_eq!(dp_out, greedy_out, "placements must be byte-identical");
    assert!(
        dp_ios < greedy_ios,
        "DP must measure strictly fewer parallel I/Os ({dp_ios} vs {greedy_ios})"
    );
    assert_eq!(dp_ios, g.ios_per_pass() as u64);

    // And the reference permutation is actually performed.
    let mut composed = Bmmc::identity(g.n());
    for p in &passes {
        composed = p.as_bmmc().compose(&composed);
    }
    for x in 0..g.records() as u64 {
        assert_eq!(dp_out[composed.target(x) as usize], x);
    }
}

/// `--algorithm auto` machinery: the chosen candidate's predicted
/// parallel I/Os are exactly what the BMMC executor measures.
#[test]
fn chosen_bmmc_plan_predicts_measured_ios_exactly() {
    let mut rng = StdRng::seed_from_u64(77);
    for g in geometry_zoo() {
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let plans = candidates(&perm, &g);
        assert!(!plans.is_empty(), "bmmc route always applies");
        for timing in [TimingModel::hdd(), TimingModel::ssd()] {
            let chosen = choose(&plans, &g, &timing).unwrap();
            if chosen.candidate == CandidateKind::Bmmc {
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
                sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
                let passes = plan_passes(&perm, g.b(), g.m()).unwrap();
                let report = execute_passes(&mut sys, &passes).unwrap();
                assert_eq!(
                    report.total.parallel_ios(),
                    chosen.parallel_ios(&g),
                    "plan IR predicted I/Os must be exact"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DP never produces more steps than greedy, and both plans place
    /// every record byte-identically, across the zoo — for generic
    /// random BMMC draws and for adversarial worst-cross-rank draws
    /// (maximal `rank γ̂`, the longest factorings).
    #[test]
    fn dp_never_worse_than_greedy_and_placement_identical(
        seed in any::<u64>(),
        gi in 0usize..6,
        adversarial in any::<bool>(),
    ) {
        let g = geometry_zoo()[gi];
        let mut rng = StdRng::seed_from_u64(seed);
        let perm = if adversarial {
            catalog::random_worst_rank(&mut rng, g.n(), g.m())
        } else {
            catalog::random_bmmc(&mut rng, g.n())
        };
        let passes = plan_passes(&perm, g.b(), g.m()).unwrap();
        let greedy = fuse_passes_greedy(&passes, g.b(), g.m());
        let dp = fuse_passes_dp(&passes, g.b(), g.m());
        prop_assert!(dp.num_steps() <= greedy.num_steps());
        prop_assert!(dp.verify(&perm), "DP plan must recompose the permutation");

        let (greedy_out, greedy_ios) = run_fused(g, &greedy);
        let (dp_out, dp_ios) = run_fused(g, &dp);
        prop_assert_eq!(dp_out, greedy_out, "placements diverged");
        prop_assert!(dp_ios <= greedy_ios);
        prop_assert_eq!(
            dp_ios,
            dp.num_steps() as u64 * g.ios_per_pass() as u64,
            "each DP step is one full round-trip"
        );
    }
}
