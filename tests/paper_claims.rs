//! Direct checks of the paper's numbered claims against the
//! implementation: Table 1 pass counts, Theorems 3/15/21, the
//! Section 6 detection cost, and the potential-function accounting of
//! Section 2/7.

use bmmc::algorithm::perform_bmmc;
use bmmc::detect::{detect_bmmc, load_target_vector};
use bmmc::potential::{final_potential, initial_potential_formula, potential, trace_potential};
use bmmc::{bounds, catalog, factor, Bmmc};
use gf2::elim::rank;
use gf2::sample::random_with_submatrix_rank;
use pdm::{DiskSystem, Geometry, TaggedRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fig2_geometry() -> Geometry {
    // The paper's Figure 2: n=13, b=3, d=4, m=8.
    Geometry::new(1 << 13, 1 << 3, 1 << 4, 1 << 8).unwrap()
}

/// Table 1, row MRC: one pass, i.e. exactly 2N/BD parallel I/Os.
#[test]
fn table1_mrc_row() {
    let g = fig2_geometry();
    let mut rng = StdRng::seed_from_u64(2001);
    for _ in 0..3 {
        let perm = catalog::random_mrc(&mut rng, g.n(), g.m());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = perform_bmmc(&mut sys, &perm).unwrap();
        assert_eq!(report.num_passes(), 1);
        assert_eq!(
            report.total.parallel_ios(),
            bounds::one_pass_ios(&g),
            "MRC must cost exactly one pass"
        );
    }
}

/// Theorem 15: any MLD permutation in one pass, with striped reads and
/// independent writes.
#[test]
fn theorem15_mld_one_pass() {
    let g = fig2_geometry();
    let mut rng = StdRng::seed_from_u64(2002);
    for _ in 0..3 {
        let perm = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = perform_bmmc(&mut sys, &perm).unwrap();
        assert_eq!(report.num_passes(), 1, "Theorem 15");
        let ios = report.total;
        assert_eq!(
            ios.striped_reads, ios.parallel_reads,
            "MLD reads are striped"
        );
    }
}

/// Table 1, row BMMC (with the new Theorem 21 bound): measured I/Os
/// within [Theorem 3 expression, Theorem 21 bound] across γ ranks.
#[test]
fn theorem3_and_21_sandwich_measured_ios() {
    let g = fig2_geometry();
    let mut rng = StdRng::seed_from_u64(2003);
    for r in 0..=g.b().min(g.n() - g.b()) {
        let a = random_with_submatrix_rank(&mut rng, g.n(), g.b(), r);
        let perm = Bmmc::linear(a).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = perform_bmmc(&mut sys, &perm).unwrap();
        let measured = report.total.parallel_ios();
        assert!(
            measured <= bounds::theorem21_upper(&g, r),
            "rank {r}: {measured} exceeds upper bound"
        );
        if !perm.is_identity() {
            // The lower bound is Ω(·); the expression itself must not
            // exceed the measured count by more than the constant the
            // paper proves (≤ 2x here: 2 I/Os per pass vs N/BD term).
            let lower_expr = bounds::theorem3_lower(&g, r);
            assert!(
                measured as f64 >= lower_expr,
                "rank {r}: measured {measured} below the Theorem 3 expression {lower_expr}"
            );
        }
    }
}

/// Section 6: detection cost is exactly N/BD + ⌈(lg(N/B)+1)/D⌉
/// parallel reads on a positive instance, for several geometries.
#[test]
fn section6_detection_cost_all_geometries() {
    let mut rng = StdRng::seed_from_u64(2004);
    for g in [
        fig2_geometry(),
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        Geometry::new(1 << 11, 1 << 3, 1, 1 << 6).unwrap(),
        Geometry::new(1 << 12, 1, 1 << 3, 1 << 6).unwrap(),
    ] {
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let mut sys = load_target_vector(g, &perm.target_vector());
        let det = detect_bmmc(&mut sys, 0).unwrap();
        assert_eq!(
            det.stats().total(),
            bounds::detection_reads(&g),
            "detection cost formula mismatch for {g:?}"
        );
        assert_eq!(det.bmmc().unwrap(), &perm);
    }
}

/// Equation (9): Φ(0) = N(lg B − rank γ), and the final potential is
/// N lg B, for the real on-disk layout.
#[test]
fn potential_endpoints_match_paper() {
    let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
    let mut rng = StdRng::seed_from_u64(2005);
    for r in 0..=g.b() {
        let a = random_with_submatrix_rank(&mut rng, g.n(), g.b(), r);
        let perm = Bmmc::linear(a).unwrap();
        let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
        sys.load_records(
            0,
            &(0..g.records() as u64)
                .map(TaggedRecord::new)
                .collect::<Vec<_>>(),
        );
        let phi0 = potential(&mut sys, 0, |rec| perm.target(rec.key) >> g.b());
        assert!(
            (phi0 - initial_potential_formula(g.records(), g.b(), r)).abs() < 1e-6,
            "eq. (9) violated at rank {r}"
        );
        let fac = factor(&perm, g.b(), g.m()).unwrap();
        let (report, traj) =
            trace_potential(&mut sys, &fac, |rec| rec.key, |x| perm.target(x)).unwrap();
        assert!((traj.last().unwrap() - final_potential(g.records(), g.b())).abs() < 1e-6);
        assert_eq!(traj.len(), report.num_passes() + 1);
    }
}

/// Lemma 9's premise: a non-identity BMMC permutation moves at least
/// N/2 records (at most N/2 fixed points).
#[test]
fn lemma9_fixed_point_bound() {
    let mut rng = StdRng::seed_from_u64(2006);
    let n = 10;
    for _ in 0..20 {
        let perm = catalog::random_bmmc(&mut rng, n);
        if perm.is_identity() {
            continue;
        }
        let fixed = (0..(1u64 << n)).filter(|&x| perm.target(x) == x).count();
        assert!(
            fixed <= (1 << n) / 2,
            "{fixed} fixed points exceed N/2 for a non-identity BMMC"
        );
    }
}

/// The old-vs-new comparison of the conclusion: our pass count never
/// exceeds the old BMMC bound of [4], and beats it for low-rank
/// leading submatrices.
#[test]
fn new_algorithm_within_old_bound() {
    let g = fig2_geometry();
    let mut rng = StdRng::seed_from_u64(2007);
    for _ in 0..5 {
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = perform_bmmc(&mut sys, &perm).unwrap();
        let r_lead = rank(&perm.matrix().submatrix(0..g.m(), 0..g.m()));
        assert!(
            report.total.parallel_ios() <= bounds::old_bmmc_upper(&g, r_lead),
            "new algorithm slower than the old bound"
        );
    }
}

/// Figure 1: the exact record layout of the paper (N=64, B=2, D=8),
/// stripe by stripe.
#[test]
fn figure1_layout_reproduced() {
    let g = Geometry::new(64, 2, 8, 32).unwrap();
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 1);
    sys.load_records(0, &(0..64u64).collect::<Vec<_>>());
    // Row "stripe 1" of Figure 1: records 16..31 across disks 0..7.
    for disk in 0..8 {
        let block = sys.peek_block(pdm::BlockRef { disk, slot: 1 });
        assert_eq!(
            block,
            vec![16 + 2 * disk as u64, 17 + 2 * disk as u64],
            "Figure 1 stripe 1, disk {disk}"
        );
    }
}
