//! End-to-end integration: the full pipeline (sample → factor →
//! execute → verify) across a sweep of disk geometries, cross-checked
//! against the external-sort baseline.

use bmmc::algorithm::perform_bmmc;
use bmmc::bpc_baseline::perform_bpc_baseline;
use bmmc::passes::reference_permute;
use bmmc::{bounds, catalog};
use extsort::general_permute;
use gf2::elim::rank;
use pdm::{DiskSystem, Geometry, TaggedRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A spread of geometries: varying block size, disk count, and memory.
fn geometries() -> Vec<Geometry> {
    vec![
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        Geometry::new(1 << 12, 1 << 3, 1 << 2, 1 << 7).unwrap(),
        Geometry::new(1 << 12, 1 << 2, 1 << 4, 1 << 8).unwrap(),
        Geometry::new(1 << 14, 1 << 4, 1 << 3, 1 << 9).unwrap(),
        Geometry::new(1 << 12, 1, 1 << 2, 1 << 6).unwrap(), // B = 1
        Geometry::new(1 << 11, 1 << 3, 1, 1 << 6).unwrap(), // D = 1
    ]
}

#[test]
fn random_bmmc_across_geometries() {
    let mut rng = StdRng::seed_from_u64(1001);
    for g in geometries() {
        for _ in 0..3 {
            let perm = catalog::random_bmmc(&mut rng, g.n());
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            let input: Vec<u64> = (0..g.records() as u64).collect();
            sys.load_records(0, &input);
            let report = perform_bmmc(&mut sys, &perm).expect("perform_bmmc");
            let expect = reference_permute(&input, |x| perm.target(x));
            assert_eq!(
                sys.dump_records(report.final_portion),
                expect,
                "wrong placement for geometry {g:?}"
            );
            let r = rank(&perm.matrix().submatrix(g.b()..g.n(), 0..g.b()));
            assert!(
                report.total.parallel_ios() <= bounds::theorem21_upper(&g, r),
                "Theorem 21 violated for geometry {g:?}"
            );
        }
    }
}

#[test]
fn bmmc_agrees_with_sort_baseline() {
    let mut rng = StdRng::seed_from_u64(1002);
    let g = Geometry::new(1 << 12, 1 << 3, 1 << 2, 1 << 7).unwrap();
    for _ in 0..3 {
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let input: Vec<u64> = (0..g.records() as u64).collect();

        let mut sys1: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys1.load_records(0, &input);
        let r1 = perform_bmmc(&mut sys1, &perm).unwrap();

        let mut sys2: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys2.load_records(0, &input);
        let r2 = general_permute(&mut sys2, |&r| r, |x| perm.target(x)).unwrap();

        assert_eq!(
            sys1.dump_records(r1.final_portion),
            sys2.dump_records(r2.final_portion),
            "BMMC algorithm and sort baseline disagree"
        );
    }
}

#[test]
fn catalog_permutations_across_geometries() {
    for g in geometries() {
        let perms = vec![
            ("transpose", catalog::transpose(g.n(), g.n() / 2)),
            ("bit_reversal", catalog::bit_reversal(g.n())),
            ("vector_reversal", catalog::vector_reversal(g.n())),
            ("gray", catalog::gray_code(g.n())),
            ("gray_inv", catalog::gray_code_inverse(g.n())),
            ("hypercube", catalog::hypercube(g.n(), 0b101)),
        ];
        for (name, perm) in perms {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            let input: Vec<u64> = (0..g.records() as u64).collect();
            sys.load_records(0, &input);
            let report = perform_bmmc(&mut sys, &perm)
                .unwrap_or_else(|e| panic!("{name} failed on {g:?}: {e}"));
            let expect = reference_permute(&input, |x| perm.target(x));
            assert_eq!(
                sys.dump_records(report.final_portion),
                expect,
                "{name} misplaced records on {g:?}"
            );
        }
    }
}

#[test]
fn bpc_baseline_agrees_with_new_algorithm() {
    let mut rng = StdRng::seed_from_u64(1003);
    let g = Geometry::new(1 << 12, 1 << 2, 1 << 2, 1 << 7).unwrap();
    for _ in 0..5 {
        let perm = catalog::random_bpc(&mut rng, g.n());
        let input: Vec<u64> = (0..g.records() as u64).collect();

        let mut sys1: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys1.load_records(0, &input);
        let new = perform_bmmc(&mut sys1, &perm).unwrap();

        let mut sys2: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys2.load_records(0, &input);
        let old = perform_bpc_baseline(&mut sys2, &perm).unwrap();

        assert_eq!(
            sys1.dump_records(new.final_portion),
            sys2.dump_records(old.final_portion)
        );
        assert!(new.num_passes() <= old.num_passes());
    }
}

#[test]
fn file_backend_end_to_end() {
    let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
    let dir = std::env::temp_dir().join(format!("bmmc-e2e-{}", std::process::id()));
    let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_file(g, 2, &dir).expect("file backend");
    let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();
    sys.load_records(0, &input);
    let perm = catalog::bit_reversal(g.n());
    let report = perform_bmmc(&mut sys, &perm).unwrap();
    let out = sys.dump_records(report.final_portion);
    for (y, rec) in out.iter().enumerate() {
        assert!(rec.intact());
        assert_eq!(perm.target(rec.key), y as u64);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threaded_disks_match_serial() {
    let mut rng = StdRng::seed_from_u64(1004);
    let g = Geometry::new(1 << 12, 1 << 2, 1 << 3, 1 << 7).unwrap();
    let perm = catalog::random_bmmc(&mut rng, g.n());
    let input: Vec<u64> = (0..g.records() as u64).collect();

    let mut serial: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    serial.load_records(0, &input);
    let r1 = perform_bmmc(&mut serial, &perm).unwrap();

    let mut threaded: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    threaded.set_threaded(true);
    threaded.load_records(0, &input);
    let r2 = perform_bmmc(&mut threaded, &perm).unwrap();

    assert_eq!(
        serial.dump_records(r1.final_portion),
        threaded.dump_records(r2.final_portion)
    );
    assert_eq!(
        r1.total, r2.total,
        "I/O accounting must not depend on threading"
    );
}

#[test]
fn composed_permutations_chain() {
    // Performing π2 after π1 equals performing π2 ∘ π1 in one shot.
    let mut rng = StdRng::seed_from_u64(1005);
    let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
    let p1 = catalog::random_bmmc(&mut rng, g.n());
    let p2 = catalog::random_bmmc(&mut rng, g.n());
    let input: Vec<u64> = (0..g.records() as u64).collect();

    // Chain: perform p1, copy result back into a fresh portion-0, perform p2.
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.load_records(0, &input);
    let r1 = perform_bmmc(&mut sys, &p1).unwrap();
    let mid = sys.dump_records(r1.final_portion);
    let mut sys2: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys2.load_records(0, &mid);
    let r2 = perform_bmmc(&mut sys2, &p2).unwrap();
    let chained = sys2.dump_records(r2.final_portion);

    // One shot with the composition.
    let comp = p2.compose(&p1);
    let mut sys3: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys3.load_records(0, &input);
    let r3 = perform_bmmc(&mut sys3, &comp).unwrap();
    assert_eq!(sys3.dump_records(r3.final_portion), chained);
}
