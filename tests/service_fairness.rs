//! Fairness properties of the deficit-round-robin disk-bandwidth
//! scheduler, from the pure state machine up through the live service.
//!
//! Three layers:
//! * proptests drive [`pdm::sched::FairCore`] directly (it is
//!   deterministic and synchronization-free): K always-backlogged
//!   equal tenants stay within one quantum-plus-request of each other,
//!   and no backlogged job is ever starved by any mix of competitors;
//! * a starvation regression pins the exact scenario deficit
//!   round-robin exists for — one tenant whose every request is larger
//!   than the quantum, surrounded by greedy small-request tenants;
//! * live tests run K identical jobs through
//!   [`pdm_served::core::ServiceCore`] and assert *exact* per-job
//!   accounting (ledger == the job's own `IoStats`, identical across
//!   identical jobs) and crashed-client cleanup.

use pdm::sched::{FairCore, JobId};
use pdm_served::core::{JobState, ServiceConfig, ServiceCore};
use pdm_served::job::{JobKind, JobSpec};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

/// One round of "every backlogged job asks once, in ring order":
/// job `id` posts `cost` and takes the grant if the core offers it.
fn ask(core: &mut FairCore, id: u64, cost: u64) -> bool {
    core.request(JobId(id), cost);
    if core.try_grant(JobId(id)) {
        core.charge(JobId(id), 0..cost as usize, true, false);
        true
    } else {
        core.clear_request(JobId(id));
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K identical always-backlogged tenants: after any number of
    /// rounds, charged totals differ by at most one quantum + one
    /// request — the classic DRR bounded-unfairness guarantee. With
    /// the service's quantum (one memoryload) this is exactly the
    /// "each of K tenants sees ~1/K of the bandwidth" claim.
    #[test]
    fn equal_backlogged_tenants_stay_within_a_quantum(
        k in 2usize..6,
        quantum in 1u64..64,
        cost in 1u64..32,
        rounds in 1usize..200,
    ) {
        let mut core = FairCore::new(quantum);
        for id in 0..k as u64 {
            core.register(JobId(id));
        }
        for _ in 0..rounds {
            for id in 0..k as u64 {
                ask(&mut core, id, cost);
            }
        }
        let totals: Vec<u64> = (0..k as u64)
            .map(|id| core.usage(JobId(id)).unwrap().blocks())
            .collect();
        let max = *totals.iter().max().unwrap();
        let min = *totals.iter().min().unwrap();
        prop_assert!(
            max - min <= core.quantum() + cost,
            "equal tenants drifted: {totals:?} (quantum {quantum}, cost {cost})"
        );
    }

    /// No backlogged job starves, whatever the competitors request:
    /// every tenant posting every round is granted at least once per
    /// `ceil(cost/quantum) + 1` full rounds, because its deficit grows
    /// by one quantum per round it is visited and pending.
    #[test]
    fn no_backlogged_tenant_starves(
        quantum in 1u64..32,
        costs in proptest::collection::vec(1u64..64, 2..6),
        rounds in 10usize..100,
    ) {
        let mut core = FairCore::new(quantum);
        for id in 0..costs.len() as u64 {
            core.register(JobId(id));
        }
        let mut grants = vec![0u64; costs.len()];
        for _ in 0..rounds {
            for (id, &cost) in costs.iter().enumerate() {
                if ask(&mut core, id as u64, cost) {
                    grants[id] += 1;
                }
            }
        }
        for (id, &cost) in costs.iter().enumerate() {
            // Visits needed for the deficit to cover one request.
            let visits = cost.div_ceil(core.quantum()) as usize + 1;
            let floor = (rounds / visits).saturating_sub(1) as u64;
            prop_assert!(
                grants[id] >= floor,
                "job {id} (cost {cost}) starved: {} grants in {rounds} rounds \
                 (expected >= {floor}); all grants {grants:?}, quantum {quantum}",
                grants[id]
            );
        }
    }

    /// Work conservation: a lone backlogged tenant is granted every
    /// single round regardless of how many idle tenants surround it.
    #[test]
    fn idle_tenants_reserve_nothing(
        idle in 1usize..8,
        quantum in 1u64..32,
        cost in 1u64..16,
        rounds in 1usize..100,
    ) {
        let mut core = FairCore::new(quantum);
        core.register(JobId(0));
        for id in 1..=idle as u64 {
            core.register(JobId(id));
        }
        for round in 0..rounds {
            prop_assert!(
                ask(&mut core, 0, cost),
                "lone backlogged tenant refused at round {round}"
            );
        }
        prop_assert_eq!(
            core.usage(JobId(0)).unwrap().blocks(),
            rounds as u64 * cost
        );
    }
}

/// The scenario DRR exists for, pinned exactly: a tenant whose every
/// request exceeds the quantum, against two greedy single-block
/// tenants. A naive "fits in this visit's budget or you lose the
/// visit" discipline starves it forever; the carried deficit must
/// instead grant it every `ceil(cost/quantum)` visits.
#[test]
fn oversized_requests_survive_greedy_competition() {
    let quantum = 4u64;
    let big_cost = 10u64; // 2.5 quanta per request
    let mut core = FairCore::new(quantum);
    for id in 0..3u64 {
        core.register(JobId(id));
    }
    let rounds = 300;
    let mut big_grants = 0u64;
    for _ in 0..rounds {
        if ask(&mut core, 0, big_cost) {
            big_grants += 1;
        }
        ask(&mut core, 1, 1);
        ask(&mut core, 2, 1);
    }
    // Deficit grows by one quantum per round; a grant costs 10, so at
    // least one grant per 3 rounds, minus edge slack.
    assert!(
        big_grants >= (rounds / 3) - 2,
        "oversized-request tenant starved: {big_grants} grants in {rounds} rounds"
    );
    // And the greedy tenants were not locked out either.
    for id in 1..3u64 {
        assert!(
            core.usage(JobId(id)).unwrap().blocks() > 0,
            "small tenant {id} got nothing"
        );
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        block: 4,
        disks: 4,
        slots: 1 << 10,
        quantum: 16,
        max_queue: 16,
        max_running: 8,
        ..ServiceConfig::default()
    }
}

/// K=4 identical concurrent jobs through the live service: every job's
/// scheduler ledger equals its own disk system's counters exactly, and
/// all four charges are identical — fairness is provable from the
/// accounting alone, no timing involved.
#[test]
fn live_equal_jobs_are_charged_exactly_equally() {
    const K: usize = 4;
    let core = ServiceCore::new(service_config());
    let barrier = Arc::new(Barrier::new(K));
    let spec = JobSpec::new(JobKind::Bmmc, 1 << 12, 1 << 7, 99);
    let mut tenants = Vec::new();
    for _ in 0..K {
        let core = Arc::clone(&core);
        let barrier = Arc::clone(&barrier);
        tenants.push(std::thread::spawn(move || {
            barrier.wait();
            let id = core.submit(spec, None).expect("submit");
            core.wait(id).expect("known id")
        }));
    }
    let mut charges = Vec::new();
    for t in tenants {
        let status = t.join().expect("tenant thread");
        assert_eq!(status.state, JobState::Done);
        let report = status.report.expect("done job has a report");
        assert_eq!(
            status.usage.io, report.io,
            "ledger must equal the job's own counters exactly"
        );
        charges.push(status.usage.io);
    }
    for pair in charges.windows(2) {
        assert_eq!(pair[0], pair[1], "identical jobs, identical charges");
    }
    core.shutdown();
}

/// Crashed-client cleanup without a socket in the loop: jobs owned by
/// a connection are swept when that connection dies, terminal states
/// land, and every slot lease comes back.
#[test]
fn dead_connection_sweep_releases_everything() {
    let core = ServiceCore::new(service_config());
    let conn = 7u64;
    let long = JobSpec::new(JobKind::Sort, 1 << 13, 1 << 7, 5);
    let id = core.submit(long, Some(conn)).expect("submit");
    // The connection dies with the job still queued or running.
    core.cancel_owned_by(conn);
    let status = core.wait(id).expect("known id");
    assert!(
        matches!(status.state, JobState::Cancelled | JobState::Done),
        "sweep raced completion: {:?}",
        status.state
    );
    // Capacity is fully restored and the service still works.
    let after = core.submit(JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, 1), None);
    let status = core.wait(after.expect("accepted")).expect("known id");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(core.overview().free_slots, core.config().slots);
    core.shutdown();
}
