//! Property tests: block-hoisted address evaluation ≡ per-address
//! evaluation. For any BMMC permutation `y = Ax ⊕ c` and any block
//! size, [`bmmc::BlockEvaluator`] must reconstruct every target
//! address from its hoisted pieces — `block_base(x >> b) ^
//! residual(x & (B−1))` — exactly as [`bmmc::AffineEvaluator`]
//! computes it per address, across the five engine-equivalence
//! geometries (B=1, D=1, and the M=2BD / M=BD boundaries included)
//! for random and catalog matrices. For block-preserving matrices the
//! emitted [`bmmc::TargetRun`]s must additionally cover every source
//! block exactly once and agree with the per-address targets record
//! for record.

use bmmc::{catalog, AffineEvaluator, BlockEvaluator, Bmmc};
use gf2::{BitMatrix, BitVec};
use pdm::Geometry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The geometry zoo of `tests/engine_equivalence.rs`: comfortable,
/// degenerate-D, and memory-boundary cases.
fn geometries() -> Vec<Geometry> {
    vec![
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap(),
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 5).unwrap(),
        Geometry::new(1 << 10, 1 << 1, 1 << 3, 1 << 4).unwrap(),
        Geometry::new(1 << 11, 1, 1 << 3, 1 << 4).unwrap(),
    ]
}

/// Exhaustively checks, for all `2^n` addresses, that the hoisted
/// evaluation reassembles exactly the per-address result (which itself
/// must match the algebraic [`Bmmc::target`]).
fn assert_block_matches_affine(perm: &Bmmc, b: usize) -> Result<(), TestCaseError> {
    let n = perm.bits();
    let aff = AffineEvaluator::new(perm);
    let bev = BlockEvaluator::new(perm, b as u32);
    let mask = (1u64 << b) - 1;
    for x in 0..1u64 << n {
        let expect = perm.target(x);
        prop_assert_eq!(aff.eval(x), expect, "affine diverged at {}", x);
        prop_assert_eq!(
            bev.block_base(x >> b) ^ bev.residual(x & mask),
            expect,
            "hoisted evaluation diverged at {} (b = {})",
            x,
            b
        );
    }
    // The batch entry point over the full address space agrees too.
    let xs: Vec<u64> = (0..1u64 << n).collect();
    let mut ys = vec![0u64; xs.len()];
    aff.eval_batch(&xs, &mut ys);
    for (x, y) in xs.iter().zip(&ys) {
        prop_assert_eq!(*y, perm.target(*x), "batch diverged at {}", x);
    }
    Ok(())
}

/// Builds a block-preserving BMMC: block-diagonal `A` (a `b×b` mixer
/// on the offset bits, an `(n−b)×(n−b)` mixer on the block bits) with
/// an arbitrary complement. Offset bits never reach block bits, so
/// every source block maps onto exactly one target block.
fn random_block_preserving(rng: &mut StdRng, n: usize, b: usize) -> Bmmc {
    let mut a = BitMatrix::zeros(n, n);
    if b > 0 {
        let lo = catalog::random_bmmc(rng, b);
        for i in 0..b {
            for j in 0..b {
                a.set(i, j, lo.matrix().get(i, j));
            }
        }
    }
    let hi = catalog::random_bmmc(rng, n - b);
    for i in 0..n - b {
        for j in 0..n - b {
            a.set(b + i, b + j, hi.matrix().get(i, j));
        }
    }
    let mut c = BitVec::zeros(n);
    for i in 0..n {
        c.set(i, rng.gen_bool(0.5));
    }
    Bmmc::new(a, c).expect("block-diagonal matrix is nonsingular")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random BMMC matrices at the zoo's own block size: hoisted ≡
    /// per-address, exhaustively over all `N` addresses.
    #[test]
    fn block_eval_matches_affine_for_random_bmmc(
        s in any::<u64>(),
        gi in 0usize..5,
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        assert_block_matches_affine(&perm, g.b())?;
    }

    /// The same equivalence at *every* split point `0 ≤ b ≤ n`, not
    /// just the geometry's: the hoisting identity is split-agnostic.
    #[test]
    fn block_eval_matches_affine_for_all_splits(
        s in any::<u64>(),
        b in 0usize..=10,
    ) {
        let n = 10usize;
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, n);
        assert_block_matches_affine(&perm, b)?;
    }

    /// Block-preserving matrices announce themselves (`fanout == 1`)
    /// and their target runs cover every source block exactly once,
    /// agreeing with the per-address targets record for record.
    #[test]
    fn target_runs_agree_with_per_address_targets(
        s in any::<u64>(),
        gi in 0usize..5,
    ) {
        let g = geometries()[gi];
        let (n, b) = (g.n(), g.b());
        let mut rng = StdRng::seed_from_u64(s);
        let perm = random_block_preserving(&mut rng, n, b);
        let aff = AffineEvaluator::new(&perm);
        let bev = BlockEvaluator::new(&perm, b as u32);
        prop_assert!(bev.preserves_blocks(), "block-diagonal must have fanout 1");

        let num_blocks = 1u64 << (n - b);
        let mut covered = vec![false; num_blocks as usize];
        let mut total = 0u64;
        for run in bev.target_runs(0, num_blocks) {
            prop_assert!(run.len > 0);
            total += run.len;
            for k in 0..run.len {
                let src = run.src_block + k;
                let dst = run.target_block + k;
                prop_assert!(!covered[src as usize], "block {} emitted twice", src);
                covered[src as usize] = true;
                for off in 0..1u64 << b {
                    prop_assert_eq!(
                        aff.eval((src << b) | off) >> b,
                        dst,
                        "run target disagrees with per-address at block {} offset {}",
                        src,
                        off
                    );
                }
            }
        }
        prop_assert_eq!(total, num_blocks, "runs must cover every block once");
    }

    /// Fanout counts the distinct block-level residuals: a random
    /// (generally non-block-preserving) matrix reports exactly the
    /// number of distinct values of `(A·off) >> b` seen per-address.
    #[test]
    fn fanout_counts_distinct_block_residuals(
        s in any::<u64>(),
        gi in 0usize..5,
    ) {
        let g = geometries()[gi];
        let (n, b) = (g.n(), g.b());
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, n);
        let bev = BlockEvaluator::new(&perm, b as u32);
        let aff = AffineEvaluator::new(&perm);
        let c = perm.target(0);
        let mut distinct: Vec<u64> = (0..1u64 << b)
            .map(|off| (aff.eval(off) ^ c) >> b)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(bev.fanout(), Some(distinct.len()));
        prop_assert_eq!(bev.preserves_blocks(), distinct.len() == 1);
    }
}

/// The catalog's named permutations at each zoo geometry — the
/// matrices production actually runs — round-trip the hoisted
/// evaluation too.
#[test]
fn catalog_permutations_hoist_exactly() {
    for g in geometries() {
        let n = g.n();
        for perm in [
            catalog::bit_reversal(n),
            catalog::gray_code(n),
            catalog::vector_reversal(n),
            catalog::transpose(n, n / 2),
        ] {
            assert_block_matches_affine(&perm, g.b()).unwrap();
        }
    }
}
