//! Property tests: fused execution ≡ unfused execution. For any pass
//! plan, `bmmc::execute_passes` (pass fusion on, the default) and
//! `bmmc::execute_passes_unfused` must place every record — key *and*
//! payload — identically, across the five engine-equivalence
//! geometries in both serial and threaded service modes. The I/O
//! saving is asserted *exactly*: each skipped intermediate pass
//! removes precisely `N/BD` parallel reads, `N/BD` parallel writes,
//! and `N/B` blocks in each direction, so the fused `IoStats` equal
//! the unfused totals minus the skipped passes.

use bmmc::algorithm::{
    execute_passes, execute_passes_strategy, execute_passes_unfused, BmmcReport,
};
use bmmc::bpc_baseline::bpc_baseline_plan;
use bmmc::factoring::{Pass, PassKind};
use bmmc::fusion::fuse_passes;
use bmmc::passes::EvalStrategy;
use bmmc::{catalog, plan_passes, Bmmc};
use pdm::{DiskSystem, Geometry, ServiceMode, TaggedRecord};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The geometry zoo of `tests/engine_equivalence.rs`: comfortable,
/// degenerate-D, and memory-boundary cases.
fn geometries() -> Vec<Geometry> {
    vec![
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap(),
        Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap(),
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 5).unwrap(),
        Geometry::new(1 << 10, 1 << 1, 1 << 3, 1 << 4).unwrap(),
        Geometry::new(1 << 11, 1, 1 << 3, 1 << 4).unwrap(),
    ]
}

fn mode_of(threaded: bool) -> ServiceMode {
    if threaded {
        ServiceMode::Threaded
    } else {
        ServiceMode::Serial
    }
}

fn pass_of(perm: &Bmmc, kind: PassKind) -> Pass {
    Pass {
        matrix: perm.matrix().clone(),
        complement: perm.complement().clone(),
        kind,
    }
}

/// Runs `passes` fused and unfused on identical tagged inputs and
/// asserts byte-identical placement plus the exact I/O arithmetic.
/// Returns the two reports for plan-specific assertions.
fn assert_fused_equals_unfused(
    g: Geometry,
    passes: &[Pass],
    mode: ServiceMode,
) -> Result<(BmmcReport, BmmcReport), TestCaseError> {
    let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();

    let mut fused_sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
    fused_sys.set_service_mode(mode);
    fused_sys.load_records(0, &input);
    let fused = execute_passes(&mut fused_sys, passes).expect("fused execution");

    let mut plain_sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
    plain_sys.set_service_mode(mode);
    plain_sys.load_records(0, &input);
    let unfused = execute_passes_unfused(&mut plain_sys, passes).expect("unfused execution");

    // Identical final placement, keys and payloads alike. (The final
    // portion may differ when fusion removes an odd number of
    // ping-pong hops; the *contents* may not.)
    let fused_out = fused_sys.dump_records(fused.final_portion);
    let plain_out = plain_sys.dump_records(unfused.final_portion);
    prop_assert_eq!(&fused_out, &plain_out, "placements diverged");
    prop_assert!(
        fused_out.iter().all(TaggedRecord::intact),
        "payload corrupted by fused execution"
    );

    // The plan arithmetic: the planner and the executed report agree.
    let plan = fuse_passes(passes, g.b(), g.m());
    prop_assert_eq!(fused.num_passes(), plan.num_steps());
    prop_assert_eq!(fused.planned_passes(), passes.len());
    prop_assert_eq!(unfused.num_passes(), passes.len());

    // Exact stats: each skipped pass removes one full round-trip.
    let saved = plan.passes_saved() as u64;
    let stripes = g.stripes() as u64;
    let blocks = g.total_blocks() as u64;
    prop_assert_eq!(
        fused.total.parallel_reads,
        unfused.total.parallel_reads - saved * stripes,
        "parallel reads must drop by exactly N/BD per skipped pass"
    );
    prop_assert_eq!(
        fused.total.parallel_writes,
        unfused.total.parallel_writes - saved * stripes,
        "parallel writes must drop by exactly N/BD per skipped pass"
    );
    prop_assert_eq!(
        fused.total.blocks_read,
        unfused.total.blocks_read - saved * blocks
    );
    prop_assert_eq!(
        fused.total.blocks_written,
        unfused.total.blocks_written - saved * blocks
    );
    prop_assert_eq!(
        fused_sys.buffer_pool_stats().outstanding,
        0,
        "fused execution stranded pooled buffers"
    );
    Ok((fused, unfused))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary BMMC permutations through the planner: whatever plan
    /// comes out (one-pass fast paths or the Section 5 factoring),
    /// fusing it changes nothing but the round-trip count.
    #[test]
    fn fused_equals_unfused_for_random_bmmc(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let passes = plan_passes(&perm, g.b(), g.m()).expect("planning failed");
        assert_fused_equals_unfused(g, &passes, mode_of(threaded))?;
    }

    /// BPC baseline plans — the flagship fusion workload: `2k+1`
    /// planned passes must execute as exactly `k+1` steps.
    #[test]
    fn fused_equals_unfused_for_bpc_baseline_plans(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bpc(&mut rng, g.n());
        let passes = bpc_baseline_plan(&perm, g.b(), g.m())
            .expect("baseline planning failed")
            .passes;
        if passes.is_empty() {
            return Ok(()); // identity: nothing to execute
        }
        let (fused, unfused) =
            assert_fused_equals_unfused(g, &passes, mode_of(threaded))?;
        if passes.len() >= 3 {
            // The greedy pairing gives exactly ⌈len/2⌉ steps; the DP
            // fuser may occasionally re-associate below that.
            let k = (passes.len() - 1) / 2;
            prop_assert!(
                fused.num_passes() <= k + 1,
                "baseline fusion must at least halve round-trips: {} passes -> {} steps",
                passes.len(),
                fused.num_passes()
            );
            prop_assert!(fused.total.parallel_ios() < unfused.total.parallel_ios());
        }
    }

    /// Fused execution under the block-run evaluator (the default)
    /// and the per-address evaluator: byte-identical placement, the
    /// same step structure, and *exactly* equal total `IoStats` and
    /// message counts — the gather/scatter batches the fused executors
    /// build from target runs must be observationally indistinguishable
    /// from the per-address ones, serial and threaded.
    #[test]
    fn fused_block_run_matches_per_address(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let passes = plan_passes(&perm, g.b(), g.m()).expect("planning failed");
        let input: Vec<TaggedRecord> =
            (0..g.records() as u64).map(TaggedRecord::new).collect();

        let run = |strategy: EvalStrategy| {
            let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode_of(threaded));
            sys.load_records(0, &input);
            let report =
                execute_passes_strategy(&mut sys, &passes, strategy).expect("fused execution");
            let out = sys.dump_records(report.final_portion);
            (out, report, sys.message_stats())
        };
        let (block_out, block_report, block_msgs) = run(EvalStrategy::BlockRun);
        let (addr_out, addr_report, addr_msgs) = run(EvalStrategy::PerAddress);
        prop_assert_eq!(block_out, addr_out, "placements diverged across strategies");
        prop_assert_eq!(block_report.num_passes(), addr_report.num_passes());
        prop_assert_eq!(
            block_report.total,
            addr_report.total,
            "total I/O diverged across strategies"
        );
        prop_assert_eq!(
            block_msgs,
            addr_msgs,
            "message counts diverged across strategies"
        );
    }

    /// Hand-built fully-fusable chains: every pair the discipline rule
    /// covers collapses to a single round-trip — exactly half (or a
    /// k-th of) the unfused I/O.
    #[test]
    fn fully_fusable_chains_collapse_to_one_step(
        s in any::<u64>(),
        gi in 0usize..5,
        threaded in any::<bool>(),
        shape in 0usize..4,
    ) {
        let g = geometries()[gi];
        let mut rng = StdRng::seed_from_u64(s);
        let mut mrc = || pass_of(&catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc);
        let mut rng2 = StdRng::seed_from_u64(s ^ 0xDEAD);
        let mut mld = || {
            pass_of(
                &catalog::random_mld(&mut rng2, g.n(), g.b(), g.m()),
                PassKind::Mld,
            )
        };
        let mut rng3 = StdRng::seed_from_u64(s ^ 0xBEEF);
        let mut mld_inv = || {
            pass_of(
                &catalog::random_mld(&mut rng3, g.n(), g.b(), g.m()).inverse(),
                PassKind::MldInverse,
            )
        };
        let chain: Vec<Pass> = match shape {
            0 => vec![mrc(), mld()],
            1 => vec![mld_inv(), mrc()],
            2 => vec![mld_inv(), mld()],
            _ => vec![mrc(), mrc(), mrc()],
        };
        let planned = chain.len() as u64;
        let (fused, unfused) = assert_fused_equals_unfused(g, &chain, mode_of(threaded))?;
        prop_assert_eq!(fused.num_passes(), 1, "chain shape {} must fully fuse", shape);
        prop_assert_eq!(
            fused.total.parallel_ios() * planned,
            unfused.total.parallel_ios(),
            "fully-fusable chain must cut I/O by exactly the chain length"
        );
    }
}
