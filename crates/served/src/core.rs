//! The in-process service: admission, execution, fair sharing,
//! cancellation, and per-job accounting — everything the socket
//! layer ([`crate::server`]) needs, with no wire format attached, so
//! the whole multi-tenant discipline is testable in one process.
//!
//! A [`ServiceCore`] owns the shared [`DiskFarm`] and one
//! [`FairScheduler`]. [`ServiceCore::submit`] validates a
//! [`JobSpec`] against the farm's fixed block size and disk count,
//! applies the *typed* admission policy ([`Reject`]) and queues the
//! job FIFO. The pump admits queued jobs while executor slots and
//! disk capacity last — capacity admission is head-of-line, so a big
//! job waits rather than being overtaken forever — and each admitted
//! job runs on its own thread against its own leased
//! [`pdm::DiskSystem`] whose governor meters every parallel I/O
//! through the scheduler. K backlogged jobs therefore each see about
//! `1/K` of the array's bandwidth, and each job's charged ledger
//! ([`pdm::JobUsage`]) equals its own disk system's counters exactly.
//!
//! Jobs are also *resilient*: a run that dies with a retryable error
//! (transient fault, timeout, disk disconnect) within its
//! [`JobSpec::max_retries`] budget is requeued behind an exponential
//! backoff gate — lease and buffers released in between — and re-run
//! from scratch; a periodic sweeper (period
//! [`ServiceConfig::sweep_ms`]) expires those gates and enforces
//! per-job wall-clock deadlines ([`JobSpec::deadline_ms`]).

use crate::farm::DiskFarm;
use crate::job::{run_job, JobKind, JobReport, JobSpec};
use pdm::{FairScheduler, Geometry, JobId, JobUsage, PdmError};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Fixed properties of one service instance.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Records per block on every farm disk.
    pub block: usize,
    /// Number of disks.
    pub disks: usize,
    /// Block slots per disk (the farm's capacity).
    pub slots: usize,
    /// Scheduler quantum in blocks per round-robin turn. One
    /// memoryload of blocks (`M/B` for the typical job memory) gives
    /// memoryload-granular interleaving.
    pub quantum: u64,
    /// Maximum queued-but-not-yet-admitted jobs before submits are
    /// refused with [`Reject::QueueFull`].
    pub max_queue: usize,
    /// Maximum concurrently running jobs.
    pub max_running: usize,
    /// Period of the service sweeper, which expires retry backoffs
    /// and enforces per-job deadlines, in milliseconds.
    pub sweep_ms: u64,
    /// Base of the exponential backoff between a job's retry
    /// attempts, in milliseconds (`base << (attempt - 1)`).
    pub retry_backoff_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            block: 1 << 4,
            disks: 1 << 3,
            slots: 1 << 12,
            quantum: 1 << 6,
            max_queue: 64,
            max_running: 8,
            sweep_ms: 20,
            retry_backoff_ms: 10,
        }
    }
}

/// Why a submit was refused — typed, so clients can react instead of
/// parsing strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The admission queue is at [`ServiceConfig::max_queue`].
    QueueFull,
    /// The spec does not form a valid PDM geometry with the farm's
    /// block size and disk count.
    BadGeometry(String),
    /// The job could never fit: it needs more slots per disk than the
    /// farm has in total.
    TooLarge {
        /// Slots per disk the job needs.
        need: usize,
        /// Slots per disk the farm has.
        have: usize,
    },
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull => write!(f, "admission queue full"),
            Reject::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
            Reject::TooLarge { need, have } => {
                write!(
                    f,
                    "job too large: needs {need} slots per disk, farm has {have}"
                )
            }
        }
    }
}

/// Lifecycle of a job inside the service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for an executor slot or disk capacity.
    Queued,
    /// Running on its own executor thread.
    Running,
    /// Finished successfully; the report is available.
    Done,
    /// Failed; the error string is available.
    Failed,
    /// Cancelled (by request or because its client vanished).
    Cancelled,
}

impl JobState {
    /// True for states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Stable lowercase name, used on the wire and in the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Wire tag (one byte).
    pub fn code(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        }
    }

    /// Inverse of [`JobState::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelled,
            _ => return None,
        })
    }
}

/// A point-in-time view of one job, as reported to clients.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// The job's id.
    pub id: u64,
    /// Workload kind.
    pub kind: JobKind,
    /// Current lifecycle state.
    pub state: JobState,
    /// Disk bandwidth charged to the job so far (live while running,
    /// final afterwards).
    pub usage: JobUsage,
    /// The report, once [`JobState::Done`].
    pub report: Option<JobReport>,
    /// The failure, once [`JobState::Failed`] (or a note for
    /// [`JobState::Cancelled`]; during a retry backoff, the error
    /// the last attempt died with).
    pub error: Option<String>,
    /// Runs started so far: 1 for a job that never needed a retry,
    /// more when the service re-ran it after retryable failures.
    pub attempts: u32,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    /// Connection that owns the job (None once submitted in-process
    /// or after the client detaches cleanly).
    owner: Option<u64>,
    /// Final ledger, captured when the job leaves the scheduler.
    /// After a retry it is the *latest* attempt's ledger — earlier
    /// attempts' traffic hit the shared disks but is not re-charged
    /// to the final report.
    usage: JobUsage,
    report: Option<JobReport>,
    error: Option<String>,
    cancel_requested: bool,
    /// Runs started so far (see [`JobStatus::attempts`]).
    attempts: u32,
    /// Earliest instant the pump may admit the job again — the retry
    /// backoff gate. `None` means admissible now.
    not_before: Option<Instant>,
    /// Absolute deadline computed at submit from
    /// [`JobSpec::deadline_ms`].
    deadline: Option<Instant>,
    /// The sweeper caught the job past its deadline while running;
    /// its cancellation unwinds to `Failed("deadline exceeded")`
    /// rather than `Cancelled`.
    deadline_hit: bool,
}

struct CoreState {
    next_id: u64,
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    running: usize,
    stopping: bool,
}

/// Aggregate service counters for the overview status.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overview {
    /// Jobs waiting for admission.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs in a terminal state still in the table.
    pub finished: usize,
    /// Unleased block slots per disk.
    pub free_slots: usize,
    /// Disk worker processes respawned after crashes, across the
    /// farm's lifetime (always zero for the memory backend).
    pub respawns: u64,
}

/// The multi-tenant job service (in-process half). Create with
/// [`ServiceCore::new`], share via [`Arc`].
pub struct ServiceCore {
    farm: DiskFarm<u64>,
    sched: Arc<FairScheduler>,
    config: ServiceConfig,
    state: Mutex<CoreState>,
    cv: Condvar,
}

impl std::fmt::Debug for ServiceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCore")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ServiceCore {
    /// Builds a memory-backed farm and scheduler and starts with an
    /// empty table.
    pub fn new(config: ServiceConfig) -> Arc<Self> {
        Self::new_with_farm(
            config,
            DiskFarm::new(config.block, config.disks, config.slots),
        )
    }

    /// Builds the service over a caller-constructed farm (e.g. the
    /// UDS process-per-disk backend,
    /// [`crate::farm::DiskFarm::new_uds`]). The farm's block size,
    /// disk count, and slot count must match `config`.
    pub fn new_with_farm(config: ServiceConfig, farm: DiskFarm<u64>) -> Arc<Self> {
        assert_eq!(farm.block(), config.block, "farm/config block mismatch");
        assert_eq!(farm.disks(), config.disks, "farm/config disk mismatch");
        assert_eq!(farm.slots(), config.slots, "farm/config slot mismatch");
        let core = Arc::new(ServiceCore {
            farm,
            sched: FairScheduler::new(config.quantum),
            config,
            state: Mutex::new(CoreState {
                next_id: 1,
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                running: 0,
                stopping: false,
            }),
            cv: Condvar::new(),
        });
        Self::spawn_sweeper(&core);
        core
    }

    /// Starts the periodic sweeper: every [`ServiceConfig::sweep_ms`]
    /// it enforces deadlines and re-pumps so retry backoffs expire.
    /// The thread holds only a weak handle, so it dies with the
    /// service (on shutdown, or when the last strong reference
    /// drops).
    fn spawn_sweeper(core: &Arc<Self>) {
        let weak = Arc::downgrade(core);
        let period = Duration::from_millis(core.config.sweep_ms.max(1));
        std::thread::Builder::new()
            .name("pdm-sweeper".into())
            .spawn(move || loop {
                std::thread::sleep(period);
                let Some(core) = weak.upgrade() else { return };
                if core.sweep() {
                    return;
                }
            })
            .expect("spawn service sweeper");
    }

    /// One sweeper pass: fails jobs past their deadline, then pumps
    /// (admitting any job whose retry backoff has expired). Returns
    /// whether the service is stopping.
    fn sweep(self: &Arc<Self>) -> bool {
        let now = Instant::now();
        let (expired_running, stopping) = {
            let mut st = self.state.lock().expect("service state poisoned");
            let stopping = st.stopping;
            let over_deadline = |e: &JobEntry| e.deadline.is_some_and(|d| now >= d);
            let queued_expired: Vec<u64> = st
                .queue
                .iter()
                .copied()
                .filter(|id| over_deadline(&st.jobs[id]))
                .collect();
            st.queue.retain(|id| !queued_expired.contains(id));
            for &id in &queued_expired {
                let entry = st.jobs.get_mut(&id).expect("queued job in table");
                entry.state = JobState::Failed;
                entry.error = Some(format!("deadline exceeded ({} attempts)", entry.attempts));
            }
            if !queued_expired.is_empty() {
                self.cv.notify_all();
            }
            let expired_running: Vec<u64> = st
                .jobs
                .iter_mut()
                .filter(|(_, e)| e.state == JobState::Running && !e.deadline_hit)
                .filter(|(_, e)| e.deadline.is_some_and(|d| now >= d))
                .map(|(&id, e)| {
                    e.deadline_hit = true;
                    id
                })
                .collect();
            (expired_running, stopping)
        };
        for id in expired_running {
            // Refuse the job's next I/O grant; it unwinds through
            // run_job and finish() records the deadline failure.
            self.sched.cancel(JobId(id));
        }
        self.pump();
        stopping
    }

    /// The service's fixed configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Validates `spec`, queues it, and starts it if a slot is free.
    /// Returns the new job id, or a typed [`Reject`]. `owner` ties
    /// the job to a client connection for disconnect cleanup.
    pub fn submit(self: &Arc<Self>, spec: JobSpec, owner: Option<u64>) -> Result<u64, Reject> {
        let geom = Geometry::new(
            spec.records,
            self.config.block,
            self.config.disks,
            spec.memory,
        )
        .map_err(|e| Reject::BadGeometry(e.to_string()))?;
        let need = spec.kind.portions() * geom.stripes();
        if need > self.config.slots {
            return Err(Reject::TooLarge {
                need,
                have: self.config.slots,
            });
        }
        let id = {
            let mut st = self.state.lock().expect("service state poisoned");
            if st.stopping {
                return Err(Reject::QueueFull);
            }
            if st.queue.len() >= self.config.max_queue {
                return Err(Reject::QueueFull);
            }
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                JobEntry {
                    spec,
                    state: JobState::Queued,
                    owner,
                    usage: JobUsage::default(),
                    report: None,
                    error: None,
                    cancel_requested: false,
                    attempts: 0,
                    not_before: None,
                    deadline: spec
                        .deadline_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms)),
                    deadline_hit: false,
                },
            );
            st.queue.push_back(id);
            id
        };
        self.pump();
        Ok(id)
    }

    /// Admits queued jobs while executor slots and disk capacity
    /// last. Capacity admission is head-of-line: when the chosen
    /// job's lease fails, the pump stops rather than skipping ahead,
    /// so a large job cannot starve behind a stream of small ones.
    /// Jobs waiting out a retry backoff are the one exception — they
    /// are skipped (the sweeper re-pumps when their gate expires)
    /// rather than stalling everyone behind them.
    fn pump(self: &Arc<Self>) {
        loop {
            let now = Instant::now();
            let (id, mut spec) = {
                let mut st = self.state.lock().expect("service state poisoned");
                if st.stopping || st.running >= self.config.max_running {
                    return;
                }
                let mut chosen = None;
                let mut i = 0;
                while i < st.queue.len() {
                    let id = st.queue[i];
                    let entry = st.jobs.get_mut(&id).expect("queued job in table");
                    if entry.cancel_requested {
                        // Cancelled before it ever ran: terminal now.
                        st.queue.remove(i);
                        let entry = st.jobs.get_mut(&id).expect("queued job in table");
                        entry.state = JobState::Cancelled;
                        entry.error = Some("cancelled before start".into());
                        self.cv.notify_all();
                        continue;
                    }
                    if entry.not_before.is_none_or(|gate| gate <= now) {
                        chosen = Some((id, entry.spec));
                        break;
                    }
                    i += 1; // still backing off: skip, don't block
                }
                let Some((id, spec)) = chosen else { return };
                (id, spec)
            };
            // Lease outside the state lock (allocator has its own).
            let geom = Geometry::new(
                spec.records,
                self.config.block,
                self.config.disks,
                spec.memory,
            )
            .expect("validated at submit");
            let leased = self.farm.lease_system(geom, spec.kind.portions());
            let mut st = self.state.lock().expect("service state poisoned");
            let Some(pos) = st.queue.iter().position(|&q| q == id) else {
                // Someone else pumped this job meanwhile; retry.
                continue;
            };
            let Ok((mut sys, lease)) = leased else {
                // No capacity: leave the job in the queue, try again
                // when a running job releases its lease.
                return;
            };
            st.queue.remove(pos);
            st.running += 1;
            let entry = st.jobs.get_mut(&id).expect("admitted job in table");
            entry.state = JobState::Running;
            entry.attempts += 1;
            entry.not_before = None;
            if entry.attempts > 1 {
                // Injected faults are one-shot: the re-run goes clean,
                // like a recovered real-world transient would.
                spec.fault = None;
            }
            drop(st);

            let handle = self.sched.register(JobId(id));
            sys.set_governor(Some(handle));
            sys.set_threaded(true);
            let core = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("pdm-job-{id}"))
                .spawn(move || {
                    let result = run_job(&mut sys, &spec);
                    drop(sys); // release the transports, then the slots
                    drop(lease);
                    core.finish(id, result);
                })
                .expect("spawn job executor");
        }
    }

    /// Records a job's terminal state and admits successors — or, for
    /// a *retryable* failure within the job's retry budget, releases
    /// its lease back to the pool and requeues it behind an
    /// exponential backoff gate (the caller has already dropped the
    /// leased system, so the slots and scheduler slot are free while
    /// the job waits).
    fn finish(self: &Arc<Self>, id: u64, result: Result<JobReport, PdmError>) {
        let usage = self.sched.unregister(JobId(id)).unwrap_or_default();
        {
            let mut st = self.state.lock().expect("service state poisoned");
            st.running -= 1;
            let stopping = st.stopping;
            let entry = st.jobs.get_mut(&id).expect("finished job in table");
            entry.usage = usage;
            let now = Instant::now();
            let past_deadline = entry.deadline.is_some_and(|d| now >= d);
            match result {
                Ok(report) => {
                    entry.state = JobState::Done;
                    entry.report = Some(report);
                }
                Err(PdmError::Cancelled { .. }) if entry.deadline_hit => {
                    entry.state = JobState::Failed;
                    entry.error = Some(format!("deadline exceeded ({} attempts)", entry.attempts));
                }
                Err(PdmError::Cancelled { .. }) => {
                    entry.state = JobState::Cancelled;
                    entry.error = Some("cancelled while running".into());
                }
                Err(e)
                    if e.is_retryable()
                        && entry.attempts <= entry.spec.max_retries
                        && !entry.cancel_requested
                        && !stopping
                        && !past_deadline =>
                {
                    // Back off exponentially in the base, capped well
                    // short of overflow.
                    let exp = (entry.attempts - 1).min(10);
                    let backoff = self.config.retry_backoff_ms.saturating_mul(1 << exp);
                    entry.state = JobState::Queued;
                    entry.not_before = Some(now + Duration::from_millis(backoff));
                    entry.error = Some(format!("attempt {}: {e} (retrying)", entry.attempts));
                    entry.report = None;
                }
                Err(e) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(if entry.attempts > 1 {
                        format!("attempt {}: {e}", entry.attempts)
                    } else {
                        e.to_string()
                    });
                }
            }
            let requeued = entry.state == JobState::Queued;
            if requeued {
                st.queue.push_back(id);
            }
            self.cv.notify_all();
        }
        self.pump();
    }

    /// Requests cancellation. Queued jobs become terminal at the next
    /// pump; running jobs are refused their next I/O grant and unwind
    /// as [`PdmError::Cancelled`]. Unknown ids are ignored. Returns
    /// whether the job existed and was not already terminal.
    pub fn cancel(self: &Arc<Self>, id: u64) -> bool {
        let live = {
            let mut st = self.state.lock().expect("service state poisoned");
            match st.jobs.get_mut(&id) {
                Some(entry) if !entry.state.is_terminal() => {
                    entry.cancel_requested = true;
                    true
                }
                _ => false,
            }
        };
        if live {
            self.sched.cancel(JobId(id));
            self.pump(); // sweep it out of the queue if it never ran
        }
        live
    }

    /// Cancels every live job owned by connection `conn` — the
    /// crashed-client cleanup path. Returns the cancelled ids.
    pub fn cancel_owned_by(self: &Arc<Self>, conn: u64) -> Vec<u64> {
        let ids: Vec<u64> = {
            let st = self.state.lock().expect("service state poisoned");
            st.jobs
                .iter()
                .filter(|(_, e)| e.owner == Some(conn) && !e.state.is_terminal())
                .map(|(&id, _)| id)
                .collect()
        };
        ids.iter().filter(|&&id| self.cancel(id)).copied().collect()
    }

    /// A point-in-time view of job `id`, or `None` if unknown.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let st = self.state.lock().expect("service state poisoned");
        let entry = st.jobs.get(&id)?;
        let usage = if entry.state.is_terminal() {
            entry.usage.clone()
        } else {
            // Live ledger while queued (zero) or running.
            self.sched.usage(JobId(id)).unwrap_or_default()
        };
        Some(JobStatus {
            id,
            kind: entry.spec.kind,
            state: entry.state,
            usage,
            report: entry.report,
            error: entry.error.clone(),
            attempts: entry.attempts,
        })
    }

    /// Aggregate counters across the whole service.
    pub fn overview(&self) -> Overview {
        let st = self.state.lock().expect("service state poisoned");
        let finished = st.jobs.values().filter(|e| e.state.is_terminal()).count();
        Overview {
            queued: st.queue.len(),
            running: st.running,
            finished,
            free_slots: self.farm.free_slots(),
            respawns: self.farm.respawns(),
        }
    }

    /// Blocks until job `id` reaches a terminal state, then returns
    /// its final status (`None` for unknown ids).
    pub fn wait(&self, id: u64) -> Option<JobStatus> {
        let mut st = self.state.lock().expect("service state poisoned");
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(entry) if entry.state.is_terminal() => break,
                Some(_) => st = self.cv.wait(st).expect("service state poisoned"),
            }
        }
        drop(st);
        self.status(id)
    }

    /// Stops admitting, cancels everything live, and waits for the
    /// executors to drain. Idempotent; called by the server on exit
    /// (and by drop-order safety nets in tests).
    pub fn shutdown(self: &Arc<Self>) {
        let ids: Vec<u64> = {
            let mut st = self.state.lock().expect("service state poisoned");
            st.stopping = true;
            st.jobs
                .iter()
                .filter(|(_, e)| !e.state.is_terminal())
                .map(|(&id, _)| id)
                .collect()
        };
        for id in ids {
            self.cancel(id);
        }
        let mut st = self.state.lock().expect("service state poisoned");
        while st.running > 0 {
            st = self.cv.wait(st).expect("service state poisoned");
        }
        // Queued leftovers (cancel marked them; pump is stopped).
        let leftover: Vec<u64> = st.queue.drain(..).collect();
        for id in leftover {
            let entry = st.jobs.get_mut(&id).expect("queued job in table");
            if !entry.state.is_terminal() {
                entry.state = JobState::Cancelled;
                entry.error = Some("service shutting down".into());
            }
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_core() -> Arc<ServiceCore> {
        ServiceCore::new(ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 10,
            quantum: 16,
            max_queue: 8,
            max_running: 4,
            ..ServiceConfig::default()
        })
    }

    fn quick_spec(seed: u64) -> JobSpec {
        let mut s = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, seed);
        s.verify = true;
        s
    }

    #[test]
    fn submit_runs_to_done_with_exact_accounting() {
        let core = quick_core();
        let id = core.submit(quick_spec(1), None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        let report = status.report.unwrap();
        assert!(report.verified);
        // The scheduler's charged ledger equals the job's own counters.
        assert_eq!(status.usage.io, report.io);
        core.shutdown();
    }

    #[test]
    fn four_equal_jobs_equal_charges() {
        let core = quick_core();
        let ids: Vec<u64> = (0..4)
            .map(|_| core.submit(quick_spec(9), None).unwrap())
            .collect();
        let charges: Vec<u64> = ids
            .iter()
            .map(|&id| {
                let s = core.wait(id).unwrap();
                assert_eq!(s.state, JobState::Done);
                assert_eq!(s.usage.io, s.report.unwrap().io, "exact ledger");
                s.usage.io.parallel_ios()
            })
            .collect();
        assert!(
            charges.windows(2).all(|w| w[0] == w[1]),
            "equal jobs, equal charge: {charges:?}"
        );
        core.shutdown();
    }

    #[test]
    fn queue_full_and_bad_geometry_are_typed() {
        let core = ServiceCore::new(ServiceConfig {
            max_queue: 0,
            max_running: 0, // nothing ever admits: pure queue test
            ..ServiceConfig::default()
        });
        assert_eq!(
            core.submit(JobSpec::new(JobKind::Sort, 1 << 12, 1 << 8, 0), None),
            Err(Reject::QueueFull)
        );
        // 8 records in 16-record blocks is not a geometry.
        match core.submit(JobSpec::new(JobKind::Sort, 8, 1 << 8, 0), None) {
            Err(Reject::BadGeometry(_)) => {}
            other => panic!("expected BadGeometry, got {other:?}"),
        }
        match core.submit(JobSpec::new(JobKind::Sort, 1 << 24, 1 << 8, 0), None) {
            Err(Reject::TooLarge { need, have }) => assert!(need > have),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn cancel_queued_and_running() {
        let core = ServiceCore::new(ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 10,
            quantum: 16,
            max_queue: 8,
            max_running: 1, // second job stays queued
            ..ServiceConfig::default()
        });
        let a = core.submit(quick_spec(1), None).unwrap();
        let b = core.submit(quick_spec(2), None).unwrap();
        assert!(core.cancel(b), "queued job is cancellable");
        let sb = core.wait(b).unwrap();
        assert_eq!(sb.state, JobState::Cancelled);
        let sa = core.wait(a).unwrap();
        assert_eq!(sa.state, JobState::Done, "head job unaffected");
        assert!(!core.cancel(a), "terminal jobs are not cancellable");
        assert!(!core.cancel(999), "unknown ids are not cancellable");
        core.shutdown();
    }

    #[test]
    fn retryable_failure_requeues_to_done() {
        let core = ServiceCore::new(ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 10,
            quantum: 16,
            max_queue: 8,
            max_running: 4,
            sweep_ms: 5,
            retry_backoff_ms: 1,
        });
        let mut spec = quick_spec(7);
        spec.fault = Some((3, 1)); // kills attempt 1 on the mem farm
        spec.max_retries = 2;
        let id = core.submit(spec, None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done, "error: {:?}", status.error);
        assert_eq!(status.attempts, 2, "one crash, one clean re-run");
        let report = status.report.unwrap();
        assert!(report.verified);
        assert_eq!(status.usage.io, report.io, "final attempt's exact ledger");
        // The terminal report matches an identical never-faulted job.
        let mut clean = quick_spec(7);
        clean.max_retries = 2;
        let clean_id = core.submit(clean, None).unwrap();
        let clean_status = core.wait(clean_id).unwrap();
        assert_eq!(clean_status.attempts, 1);
        assert_eq!(clean_status.report.unwrap().io, report.io);
        core.shutdown();
        assert_eq!(
            core.overview().free_slots,
            core.config().slots,
            "lease released"
        );
    }

    #[test]
    fn without_retry_budget_the_fault_still_fails_the_job() {
        let core = quick_core();
        let mut spec = quick_spec(7);
        spec.fault = Some((3, 1));
        let id = core.submit(spec, None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert_eq!(status.attempts, 1);
        assert!(status.error.is_some());
        core.shutdown();
    }

    #[test]
    fn success_consumes_a_single_attempt_despite_budget() {
        // Which errors count as retryable is pinned by the pdm
        // crate's `retryable_classification` test; here: a clean run
        // with a generous budget must not retry at all.
        let core = quick_core();
        let mut spec = quick_spec(3);
        spec.max_retries = 3;
        let id = core.submit(spec, None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.attempts, 1, "no spurious retries on success");
        core.shutdown();
    }

    #[test]
    fn sweeper_fails_queued_job_past_deadline() {
        let core = ServiceCore::new(ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 10,
            quantum: 16,
            max_queue: 8,
            max_running: 0, // nothing ever admits: job ages in queue
            sweep_ms: 5,    // satellite: sweep interval is configurable
            retry_backoff_ms: 1,
        });
        let mut spec = quick_spec(1);
        spec.deadline_ms = Some(20);
        let id = core.submit(spec, None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert!(
            status.error.as_deref().unwrap_or("").contains("deadline"),
            "error: {:?}",
            status.error
        );
        assert_eq!(status.attempts, 0, "never ran");
        core.shutdown();
    }

    #[test]
    fn deadline_cuts_the_retry_loop_short() {
        let core = ServiceCore::new(ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 10,
            quantum: 16,
            max_queue: 8,
            max_running: 4,
            sweep_ms: 5,
            retry_backoff_ms: 1,
        });
        let mut spec = quick_spec(7);
        spec.fault = Some((3, 1));
        spec.max_retries = 10;
        spec.deadline_ms = Some(0); // already expired when attempt 1 dies
        let id = core.submit(spec, None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Failed, "error: {:?}", status.error);
        core.shutdown();
    }

    #[test]
    fn uds_farm_job_survives_worker_crash_without_job_retry() {
        let Some(bin) = pdm::transport::find_diskd() else {
            eprintln!("pdm-diskd not built; skipping UDS service test");
            return;
        };
        let config = ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 8,
            quantum: 16,
            max_queue: 8,
            max_running: 2,
            sweep_ms: 5,
            retry_backoff_ms: 1,
        };
        let farm = DiskFarm::new_uds(config.block, config.disks, config.slots, bin, 2).unwrap();
        let core = ServiceCore::new_with_farm(config, farm);
        // The same fault that kills a mem-farm attempt crashes a real
        // worker process here — recovered below the job, so no retry
        // is consumed.
        let mut spec = quick_spec(5);
        spec.fault = Some((3, 1));
        spec.max_retries = 2;
        let id = core.submit(spec, None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done, "error: {:?}", status.error);
        assert_eq!(status.attempts, 1, "recovered in place, not re-run");
        assert!(status.report.unwrap().verified);
        assert_eq!(core.overview().respawns, 1, "one crash, one respawn");
        core.shutdown();
    }

    #[test]
    fn owner_disconnect_cancels_only_their_jobs() {
        let core = quick_core();
        // Big enough that cancellation lands mid-run.
        let mine = core
            .submit(JobSpec::new(JobKind::Sort, 1 << 13, 1 << 8, 3), Some(7))
            .unwrap();
        let theirs = core.submit(quick_spec(4), Some(8)).unwrap();
        let swept = core.cancel_owned_by(7);
        assert!(swept.contains(&mine) || core.wait(mine).unwrap().state.is_terminal());
        let s = core.wait(mine).unwrap();
        assert!(
            matches!(s.state, JobState::Cancelled | JobState::Done),
            "cancel raced job completion: {:?}",
            s.state
        );
        assert_eq!(core.wait(theirs).unwrap().state, JobState::Done);
        // Nothing leaked: all capacity back, nobody left registered.
        core.shutdown();
        assert_eq!(core.overview().free_slots, core.config().slots);
        assert_eq!(core.overview().running, 0);
    }
}
