//! The in-process service: admission, execution, fair sharing,
//! cancellation, and per-job accounting — everything the socket
//! layer ([`crate::server`]) needs, with no wire format attached, so
//! the whole multi-tenant discipline is testable in one process.
//!
//! A [`ServiceCore`] owns the shared [`DiskFarm`] and one
//! [`FairScheduler`]. [`ServiceCore::submit`] validates a
//! [`JobSpec`] against the farm's fixed block size and disk count,
//! applies the *typed* admission policy ([`Reject`]) and queues the
//! job FIFO. The pump admits queued jobs while executor slots and
//! disk capacity last — capacity admission is head-of-line, so a big
//! job waits rather than being overtaken forever — and each admitted
//! job runs on its own thread against its own leased
//! [`pdm::DiskSystem`] whose governor meters every parallel I/O
//! through the scheduler. K backlogged jobs therefore each see about
//! `1/K` of the array's bandwidth, and each job's charged ledger
//! ([`pdm::JobUsage`]) equals its own disk system's counters exactly.

use crate::farm::DiskFarm;
use crate::job::{run_job, JobKind, JobReport, JobSpec};
use pdm::{FairScheduler, Geometry, JobId, JobUsage, PdmError};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Fixed properties of one service instance.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Records per block on every farm disk.
    pub block: usize,
    /// Number of disks.
    pub disks: usize,
    /// Block slots per disk (the farm's capacity).
    pub slots: usize,
    /// Scheduler quantum in blocks per round-robin turn. One
    /// memoryload of blocks (`M/B` for the typical job memory) gives
    /// memoryload-granular interleaving.
    pub quantum: u64,
    /// Maximum queued-but-not-yet-admitted jobs before submits are
    /// refused with [`Reject::QueueFull`].
    pub max_queue: usize,
    /// Maximum concurrently running jobs.
    pub max_running: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            block: 1 << 4,
            disks: 1 << 3,
            slots: 1 << 12,
            quantum: 1 << 6,
            max_queue: 64,
            max_running: 8,
        }
    }
}

/// Why a submit was refused — typed, so clients can react instead of
/// parsing strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The admission queue is at [`ServiceConfig::max_queue`].
    QueueFull,
    /// The spec does not form a valid PDM geometry with the farm's
    /// block size and disk count.
    BadGeometry(String),
    /// The job could never fit: it needs more slots per disk than the
    /// farm has in total.
    TooLarge {
        /// Slots per disk the job needs.
        need: usize,
        /// Slots per disk the farm has.
        have: usize,
    },
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull => write!(f, "admission queue full"),
            Reject::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
            Reject::TooLarge { need, have } => {
                write!(
                    f,
                    "job too large: needs {need} slots per disk, farm has {have}"
                )
            }
        }
    }
}

/// Lifecycle of a job inside the service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for an executor slot or disk capacity.
    Queued,
    /// Running on its own executor thread.
    Running,
    /// Finished successfully; the report is available.
    Done,
    /// Failed; the error string is available.
    Failed,
    /// Cancelled (by request or because its client vanished).
    Cancelled,
}

impl JobState {
    /// True for states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Stable lowercase name, used on the wire and in the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Wire tag (one byte).
    pub fn code(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        }
    }

    /// Inverse of [`JobState::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelled,
            _ => return None,
        })
    }
}

/// A point-in-time view of one job, as reported to clients.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// The job's id.
    pub id: u64,
    /// Workload kind.
    pub kind: JobKind,
    /// Current lifecycle state.
    pub state: JobState,
    /// Disk bandwidth charged to the job so far (live while running,
    /// final afterwards).
    pub usage: JobUsage,
    /// The report, once [`JobState::Done`].
    pub report: Option<JobReport>,
    /// The failure, once [`JobState::Failed`] (or a note for
    /// [`JobState::Cancelled`]).
    pub error: Option<String>,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    /// Connection that owns the job (None once submitted in-process
    /// or after the client detaches cleanly).
    owner: Option<u64>,
    /// Final ledger, captured when the job leaves the scheduler.
    usage: JobUsage,
    report: Option<JobReport>,
    error: Option<String>,
    cancel_requested: bool,
}

struct CoreState {
    next_id: u64,
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    running: usize,
    stopping: bool,
}

/// Aggregate service counters for the overview status.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overview {
    /// Jobs waiting for admission.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs in a terminal state still in the table.
    pub finished: usize,
    /// Unleased block slots per disk.
    pub free_slots: usize,
}

/// The multi-tenant job service (in-process half). Create with
/// [`ServiceCore::new`], share via [`Arc`].
pub struct ServiceCore {
    farm: DiskFarm<u64>,
    sched: Arc<FairScheduler>,
    config: ServiceConfig,
    state: Mutex<CoreState>,
    cv: Condvar,
}

impl std::fmt::Debug for ServiceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCore")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ServiceCore {
    /// Builds the farm and scheduler and starts with an empty table.
    pub fn new(config: ServiceConfig) -> Arc<Self> {
        Arc::new(ServiceCore {
            farm: DiskFarm::new(config.block, config.disks, config.slots),
            sched: FairScheduler::new(config.quantum),
            config,
            state: Mutex::new(CoreState {
                next_id: 1,
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                running: 0,
                stopping: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// The service's fixed configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Validates `spec`, queues it, and starts it if a slot is free.
    /// Returns the new job id, or a typed [`Reject`]. `owner` ties
    /// the job to a client connection for disconnect cleanup.
    pub fn submit(self: &Arc<Self>, spec: JobSpec, owner: Option<u64>) -> Result<u64, Reject> {
        let geom = Geometry::new(
            spec.records,
            self.config.block,
            self.config.disks,
            spec.memory,
        )
        .map_err(|e| Reject::BadGeometry(e.to_string()))?;
        let need = spec.kind.portions() * geom.stripes();
        if need > self.config.slots {
            return Err(Reject::TooLarge {
                need,
                have: self.config.slots,
            });
        }
        let id = {
            let mut st = self.state.lock().expect("service state poisoned");
            if st.stopping {
                return Err(Reject::QueueFull);
            }
            if st.queue.len() >= self.config.max_queue {
                return Err(Reject::QueueFull);
            }
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                JobEntry {
                    spec,
                    state: JobState::Queued,
                    owner,
                    usage: JobUsage::default(),
                    report: None,
                    error: None,
                    cancel_requested: false,
                },
            );
            st.queue.push_back(id);
            id
        };
        self.pump();
        Ok(id)
    }

    /// Admits queued jobs while executor slots and disk capacity
    /// last. Capacity admission is head-of-line: when the front job's
    /// lease fails, the pump stops rather than skipping ahead, so a
    /// large job cannot starve behind a stream of small ones.
    fn pump(self: &Arc<Self>) {
        loop {
            let (id, spec) = {
                let mut st = self.state.lock().expect("service state poisoned");
                if st.stopping || st.running >= self.config.max_running {
                    return;
                }
                let Some(&id) = st.queue.front() else { return };
                let entry = st.jobs.get_mut(&id).expect("queued job in table");
                if entry.cancel_requested {
                    // Cancelled before it ever ran: terminal now.
                    st.queue.pop_front();
                    let entry = st.jobs.get_mut(&id).expect("queued job in table");
                    entry.state = JobState::Cancelled;
                    entry.error = Some("cancelled before start".into());
                    self.cv.notify_all();
                    continue;
                }
                (id, entry.spec)
            };
            // Lease outside the state lock (allocator has its own).
            let geom = Geometry::new(
                spec.records,
                self.config.block,
                self.config.disks,
                spec.memory,
            )
            .expect("validated at submit");
            let leased = self.farm.lease_system(geom, spec.kind.portions());
            let mut st = self.state.lock().expect("service state poisoned");
            if st.queue.front() != Some(&id) {
                // Someone else pumped this job meanwhile; retry.
                continue;
            }
            let Ok((mut sys, lease)) = leased else {
                // No capacity: leave the job at the head, try again
                // when a running job releases its lease.
                return;
            };
            st.queue.pop_front();
            st.running += 1;
            st.jobs.get_mut(&id).expect("admitted job in table").state = JobState::Running;
            drop(st);

            let handle = self.sched.register(JobId(id));
            sys.set_governor(Some(handle));
            sys.set_threaded(true);
            let core = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("pdm-job-{id}"))
                .spawn(move || {
                    let result = run_job(&mut sys, &spec);
                    drop(sys); // release the transports, then the slots
                    drop(lease);
                    core.finish(id, result);
                })
                .expect("spawn job executor");
        }
    }

    /// Records a job's terminal state and admits successors.
    fn finish(self: &Arc<Self>, id: u64, result: Result<JobReport, PdmError>) {
        let usage = self.sched.unregister(JobId(id)).unwrap_or_default();
        {
            let mut st = self.state.lock().expect("service state poisoned");
            st.running -= 1;
            let entry = st.jobs.get_mut(&id).expect("finished job in table");
            entry.usage = usage;
            match result {
                Ok(report) => {
                    entry.state = JobState::Done;
                    entry.report = Some(report);
                }
                Err(PdmError::Cancelled { .. }) => {
                    entry.state = JobState::Cancelled;
                    entry.error = Some("cancelled while running".into());
                }
                Err(e) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(e.to_string());
                }
            }
            self.cv.notify_all();
        }
        self.pump();
    }

    /// Requests cancellation. Queued jobs become terminal at the next
    /// pump; running jobs are refused their next I/O grant and unwind
    /// as [`PdmError::Cancelled`]. Unknown ids are ignored. Returns
    /// whether the job existed and was not already terminal.
    pub fn cancel(self: &Arc<Self>, id: u64) -> bool {
        let live = {
            let mut st = self.state.lock().expect("service state poisoned");
            match st.jobs.get_mut(&id) {
                Some(entry) if !entry.state.is_terminal() => {
                    entry.cancel_requested = true;
                    true
                }
                _ => false,
            }
        };
        if live {
            self.sched.cancel(JobId(id));
            self.pump(); // sweep it out of the queue if it never ran
        }
        live
    }

    /// Cancels every live job owned by connection `conn` — the
    /// crashed-client cleanup path. Returns the cancelled ids.
    pub fn cancel_owned_by(self: &Arc<Self>, conn: u64) -> Vec<u64> {
        let ids: Vec<u64> = {
            let st = self.state.lock().expect("service state poisoned");
            st.jobs
                .iter()
                .filter(|(_, e)| e.owner == Some(conn) && !e.state.is_terminal())
                .map(|(&id, _)| id)
                .collect()
        };
        ids.iter().filter(|&&id| self.cancel(id)).copied().collect()
    }

    /// A point-in-time view of job `id`, or `None` if unknown.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let st = self.state.lock().expect("service state poisoned");
        let entry = st.jobs.get(&id)?;
        let usage = if entry.state.is_terminal() {
            entry.usage.clone()
        } else {
            // Live ledger while queued (zero) or running.
            self.sched.usage(JobId(id)).unwrap_or_default()
        };
        Some(JobStatus {
            id,
            kind: entry.spec.kind,
            state: entry.state,
            usage,
            report: entry.report,
            error: entry.error.clone(),
        })
    }

    /// Aggregate counters across the whole service.
    pub fn overview(&self) -> Overview {
        let st = self.state.lock().expect("service state poisoned");
        let finished = st.jobs.values().filter(|e| e.state.is_terminal()).count();
        Overview {
            queued: st.queue.len(),
            running: st.running,
            finished,
            free_slots: self.farm.free_slots(),
        }
    }

    /// Blocks until job `id` reaches a terminal state, then returns
    /// its final status (`None` for unknown ids).
    pub fn wait(&self, id: u64) -> Option<JobStatus> {
        let mut st = self.state.lock().expect("service state poisoned");
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(entry) if entry.state.is_terminal() => break,
                Some(_) => st = self.cv.wait(st).expect("service state poisoned"),
            }
        }
        drop(st);
        self.status(id)
    }

    /// Stops admitting, cancels everything live, and waits for the
    /// executors to drain. Idempotent; called by the server on exit
    /// (and by drop-order safety nets in tests).
    pub fn shutdown(self: &Arc<Self>) {
        let ids: Vec<u64> = {
            let mut st = self.state.lock().expect("service state poisoned");
            st.stopping = true;
            st.jobs
                .iter()
                .filter(|(_, e)| !e.state.is_terminal())
                .map(|(&id, _)| id)
                .collect()
        };
        for id in ids {
            self.cancel(id);
        }
        let mut st = self.state.lock().expect("service state poisoned");
        while st.running > 0 {
            st = self.cv.wait(st).expect("service state poisoned");
        }
        // Queued leftovers (cancel marked them; pump is stopped).
        let leftover: Vec<u64> = st.queue.drain(..).collect();
        for id in leftover {
            let entry = st.jobs.get_mut(&id).expect("queued job in table");
            if !entry.state.is_terminal() {
                entry.state = JobState::Cancelled;
                entry.error = Some("service shutting down".into());
            }
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_core() -> Arc<ServiceCore> {
        ServiceCore::new(ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 10,
            quantum: 16,
            max_queue: 8,
            max_running: 4,
        })
    }

    fn quick_spec(seed: u64) -> JobSpec {
        let mut s = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, seed);
        s.verify = true;
        s
    }

    #[test]
    fn submit_runs_to_done_with_exact_accounting() {
        let core = quick_core();
        let id = core.submit(quick_spec(1), None).unwrap();
        let status = core.wait(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        let report = status.report.unwrap();
        assert!(report.verified);
        // The scheduler's charged ledger equals the job's own counters.
        assert_eq!(status.usage.io, report.io);
        core.shutdown();
    }

    #[test]
    fn four_equal_jobs_equal_charges() {
        let core = quick_core();
        let ids: Vec<u64> = (0..4)
            .map(|_| core.submit(quick_spec(9), None).unwrap())
            .collect();
        let charges: Vec<u64> = ids
            .iter()
            .map(|&id| {
                let s = core.wait(id).unwrap();
                assert_eq!(s.state, JobState::Done);
                assert_eq!(s.usage.io, s.report.unwrap().io, "exact ledger");
                s.usage.io.parallel_ios()
            })
            .collect();
        assert!(
            charges.windows(2).all(|w| w[0] == w[1]),
            "equal jobs, equal charge: {charges:?}"
        );
        core.shutdown();
    }

    #[test]
    fn queue_full_and_bad_geometry_are_typed() {
        let core = ServiceCore::new(ServiceConfig {
            max_queue: 0,
            max_running: 0, // nothing ever admits: pure queue test
            ..ServiceConfig::default()
        });
        assert_eq!(
            core.submit(JobSpec::new(JobKind::Sort, 1 << 12, 1 << 8, 0), None),
            Err(Reject::QueueFull)
        );
        // 8 records in 16-record blocks is not a geometry.
        match core.submit(JobSpec::new(JobKind::Sort, 8, 1 << 8, 0), None) {
            Err(Reject::BadGeometry(_)) => {}
            other => panic!("expected BadGeometry, got {other:?}"),
        }
        match core.submit(JobSpec::new(JobKind::Sort, 1 << 24, 1 << 8, 0), None) {
            Err(Reject::TooLarge { need, have }) => assert!(need > have),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn cancel_queued_and_running() {
        let core = ServiceCore::new(ServiceConfig {
            block: 4,
            disks: 4,
            slots: 1 << 10,
            quantum: 16,
            max_queue: 8,
            max_running: 1, // second job stays queued
        });
        let a = core.submit(quick_spec(1), None).unwrap();
        let b = core.submit(quick_spec(2), None).unwrap();
        assert!(core.cancel(b), "queued job is cancellable");
        let sb = core.wait(b).unwrap();
        assert_eq!(sb.state, JobState::Cancelled);
        let sa = core.wait(a).unwrap();
        assert_eq!(sa.state, JobState::Done, "head job unaffected");
        assert!(!core.cancel(a), "terminal jobs are not cancellable");
        assert!(!core.cancel(999), "unknown ids are not cancellable");
        core.shutdown();
    }

    #[test]
    fn owner_disconnect_cancels_only_their_jobs() {
        let core = quick_core();
        // Big enough that cancellation lands mid-run.
        let mine = core
            .submit(JobSpec::new(JobKind::Sort, 1 << 13, 1 << 8, 3), Some(7))
            .unwrap();
        let theirs = core.submit(quick_spec(4), Some(8)).unwrap();
        let swept = core.cancel_owned_by(7);
        assert!(swept.contains(&mine) || core.wait(mine).unwrap().state.is_terminal());
        let s = core.wait(mine).unwrap();
        assert!(
            matches!(s.state, JobState::Cancelled | JobState::Done),
            "cancel raced job completion: {:?}",
            s.state
        );
        assert_eq!(core.wait(theirs).unwrap().state, JobState::Done);
        // Nothing leaked: all capacity back, nobody left registered.
        core.shutdown();
        assert_eq!(core.overview().free_slots, core.config().slots);
        assert_eq!(core.overview().running, 0);
    }
}
