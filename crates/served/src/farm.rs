//! The shared disk array behind the service: one worker thread per
//! physical disk, many tenant [`DiskSystem`]s.
//!
//! A [`DiskFarm`] owns `D` memory-backed disk workers, each a thread
//! looping over a command channel exactly like
//! [`pdm::parallel::InProcTransport`]'s service loop — except that
//! *many* clients hold senders to the same worker. Each admitted job
//! leases a contiguous range of block slots on every disk
//! ([`DiskFarm::lease_system`]) and gets its own
//! [`DiskSystem`] whose per-disk `FarmTransport`s translate the
//! job's slot addresses into the leased range and feed the shared
//! workers. The disks are therefore physically contended — commands
//! from all tenants interleave in each worker's queue — while
//! validation, buffer pools, and [`pdm::IoStats`] accounting stay
//! per-job, and the fair-share governor
//! ([`pdm::system::DiskSystem::set_governor`]) decides whose command
//! is *submitted* next.

use pdm::backend::{DiskUnit, MemDisk};
use pdm::parallel::{fail_disconnected, Cmd};
use pdm::record::{ByteRecord, Record};
use pdm::{DiskSystem, Geometry, MsgStats, PdmError, RemoteDisk, RespawnSpec, Result, Transport};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What backs the farm's disks.
#[derive(Clone, Debug, PartialEq)]
pub enum FarmBackend {
    /// In-process memory disks: fast, but a disk that dies is gone —
    /// an injected disconnect fails the tenant's operation.
    Mem,
    /// One `pdm-diskd` process per disk over Unix sockets, file-backed
    /// so a crashed worker can be respawned with its data intact. An
    /// injected disconnect *kills the real process*; the farm recovers
    /// it transparently, bounded by `max_respawns` per disk.
    Uds {
        /// Path to the `pdm-diskd` binary.
        bin: PathBuf,
        /// Respawn budget per disk over the farm's lifetime.
        max_respawns: u32,
    },
}

/// First-fit allocator over one disk's block slots (every disk is
/// sliced identically, so one allocator covers the whole array).
#[derive(Debug)]
struct SlotAllocator {
    /// Free ranges `(base, len)`, sorted by base, coalesced.
    free: Vec<(usize, usize)>,
}

impl SlotAllocator {
    fn new(slots: usize) -> Self {
        SlotAllocator {
            free: vec![(0, slots)],
        }
    }

    fn alloc(&mut self, len: usize) -> Option<usize> {
        let i = self.free.iter().position(|&(_, l)| l >= len)?;
        let (base, l) = self.free[i];
        if l == len {
            self.free.remove(i);
        } else {
            self.free[i] = (base + len, l - len);
        }
        Some(base)
    }

    fn release(&mut self, base: usize, len: usize) {
        let at = self
            .free
            .iter()
            .position(|&(b, _)| b > base)
            .unwrap_or(self.free.len());
        self.free.insert(at, (base, len));
        // Coalesce neighbours.
        let mut i = at.saturating_sub(1);
        while i + 1 < self.free.len() {
            let (b0, l0) = self.free[i];
            let (b1, l1) = self.free[i + 1];
            if b0 + l0 == b1 {
                self.free[i] = (b0, l0 + l1);
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    fn free_slots(&self) -> usize {
        self.free.iter().map(|&(_, l)| l).sum()
    }
}

/// A leased slot range on every disk of the farm; released back to the
/// allocator on drop. Keep it alive as long as the leased
/// [`DiskSystem`] is in use.
#[derive(Debug)]
pub struct Lease {
    alloc: Arc<Mutex<SlotAllocator>>,
    base: usize,
    len: usize,
}

impl Lease {
    /// First leased slot on each disk.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Leased slots per disk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the lease covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.alloc
            .lock()
            .expect("slot allocator poisoned")
            .release(self.base, self.len);
    }
}

/// The shared disk array: `D` worker threads, each owning one
/// memory-backed disk of `slots` blocks, serving commands from every
/// tenant's `FarmTransport`s.
#[derive(Debug)]
pub struct DiskFarm<R: Record> {
    block: usize,
    slots: usize,
    senders: Vec<Sender<Cmd<R>>>,
    workers: Vec<JoinHandle<()>>,
    alloc: Arc<Mutex<SlotAllocator>>,
    /// Per-disk crash-injection flags (UDS backend only; empty for
    /// memory disks). Arming a flag makes the disk's [`RemoteDisk`]
    /// kill its worker process at the next operation.
    kills: Vec<Arc<AtomicBool>>,
    /// Successful worker respawns across all disks.
    respawns: Arc<AtomicU64>,
    /// Holds the UDS backend's sockets and backing files.
    _dir: Option<pdm::TempDir>,
}

impl<R: Record> DiskFarm<R> {
    /// Spawns `disks` workers, each with a memory-backed disk of
    /// `slots` blocks of `block` records.
    pub fn new(block: usize, disks: usize, slots: usize) -> Self {
        let units = (0..disks)
            .map(|_| Box::new(MemDisk::new(block, slots)) as Box<dyn DiskUnit<R>>)
            .collect();
        Self::from_units(block, slots, units, Vec::new(), Arc::default(), None)
    }

    /// Spawns one worker thread per unit, each looping over its
    /// command channel.
    fn from_units(
        block: usize,
        slots: usize,
        units: Vec<Box<dyn DiskUnit<R>>>,
        kills: Vec<Arc<AtomicBool>>,
        respawns: Arc<AtomicU64>,
        dir: Option<pdm::TempDir>,
    ) -> Self {
        let disks = units.len();
        let mut senders = Vec::with_capacity(disks);
        let mut workers = Vec::with_capacity(disks);
        for (d, mut unit) in units.into_iter().enumerate() {
            let (tx, rx) = channel::<Cmd<R>>();
            let handle = std::thread::Builder::new()
                .name(format!("pdm-farm-{d}"))
                .spawn(move || {
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            Cmd::Read {
                                slot,
                                mut buf,
                                idx,
                                done,
                            } => {
                                let result = unit.read(slot, &mut buf);
                                let _ = done.send(pdm::parallel::Completion {
                                    idx,
                                    disk: d,
                                    buf,
                                    result,
                                });
                            }
                            Cmd::Write {
                                slot,
                                buf,
                                idx,
                                done,
                            } => {
                                let result = unit.write(slot, &buf);
                                let _ = done.send(pdm::parallel::Completion {
                                    idx,
                                    disk: d,
                                    buf,
                                    result,
                                });
                            }
                            // A farm worker serves many tenants: one
                            // tenant's stop must not kill the disk.
                            // (FarmTransport never forwards Stop; this
                            // is defense in depth.)
                            Cmd::Stop => {}
                        }
                    }
                })
                .expect("spawn farm worker");
            senders.push(tx);
            workers.push(handle);
        }
        DiskFarm {
            block,
            slots,
            senders,
            workers,
            alloc: Arc::new(Mutex::new(SlotAllocator::new(slots))),
            kills,
            respawns,
            _dir: dir,
        }
    }

    /// Records per block on every farm disk.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Successful worker respawns across all disks (always zero for
    /// the memory backend).
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.senders.len()
    }

    /// Block slots per disk.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Currently unleased slots per disk.
    pub fn free_slots(&self) -> usize {
        self.alloc
            .lock()
            .expect("slot allocator poisoned")
            .free_slots()
    }

    /// Leases a job its own [`DiskSystem`] over the shared disks:
    /// `portions × N/BD` slots per disk, allocated contiguously. The
    /// geometry's block size and disk count must match the farm's;
    /// the lease fails with a typed [`PdmError::Config`] when the
    /// farm lacks capacity. Drop the system before the [`Lease`].
    pub fn lease_system(&self, geom: Geometry, portions: usize) -> Result<(DiskSystem<R>, Lease)> {
        if geom.block() != self.block {
            return Err(PdmError::Config(format!(
                "job block size {} does not match the farm's {}",
                geom.block(),
                self.block
            )));
        }
        if geom.disks() != self.senders.len() {
            return Err(PdmError::Config(format!(
                "job wants {} disks, the farm has {}",
                geom.disks(),
                self.senders.len()
            )));
        }
        let need = portions * geom.stripes();
        let base = {
            let mut alloc = self.alloc.lock().expect("slot allocator poisoned");
            alloc.alloc(need).ok_or_else(|| {
                PdmError::Config(format!(
                    "farm capacity exhausted: need {need} slots per disk, {} free of {}",
                    alloc.free_slots(),
                    self.slots
                ))
            })?
        };
        let lease = Lease {
            alloc: Arc::clone(&self.alloc),
            base,
            len: need,
        };
        let transports: Vec<Box<dyn Transport<R>>> = self
            .senders
            .iter()
            .enumerate()
            .map(|(d, tx)| {
                Box::new(FarmTransport {
                    disk: d,
                    base,
                    tx: tx.clone(),
                    dead: false,
                    kill: self.kills.get(d).cloned(),
                }) as Box<dyn Transport<R>>
            })
            .collect();
        Ok((
            DiskSystem::new_from_transports(geom, portions, transports),
            lease,
        ))
    }
}

impl<R: Record + ByteRecord> DiskFarm<R> {
    /// Builds a farm over the chosen [`FarmBackend`].
    pub fn with_backend(
        block: usize,
        disks: usize,
        slots: usize,
        backend: &FarmBackend,
    ) -> Result<Self> {
        match backend {
            FarmBackend::Mem => Ok(Self::new(block, disks, slots)),
            FarmBackend::Uds { bin, max_respawns } => {
                Self::new_uds(block, disks, slots, bin.clone(), *max_respawns)
            }
        }
    }

    /// Spawns `disks` file-backed `pdm-diskd` worker processes (one
    /// per disk, sockets and backing files in a fresh temp
    /// directory) and a farm worker thread per process holding the
    /// blocking [`RemoteDisk`] client. Each disk carries a
    /// crash-injection kill flag and shares the farm's respawn
    /// ledger; a killed worker is relaunched with `--reopen`, so its
    /// store survives, up to `max_respawns` times per disk.
    pub fn new_uds(
        block: usize,
        disks: usize,
        slots: usize,
        bin: PathBuf,
        max_respawns: u32,
    ) -> Result<Self> {
        let dir = pdm::TempDir::new("pdm-farm");
        let respawns: Arc<AtomicU64> = Arc::default();
        let mut kills = Vec::with_capacity(disks);
        let mut units: Vec<Box<dyn DiskUnit<R>>> = Vec::with_capacity(disks);
        for d in 0..disks {
            let spec = RespawnSpec {
                bin: bin.clone(),
                socket: dir.path().join(format!("farm{d:03}.sock")),
                block,
                slots,
                file: Some(dir.path().join(format!("farm{d:03}.bin"))),
            };
            let kill = Arc::new(AtomicBool::new(false));
            let unit = RemoteDisk::<R>::launch(
                spec,
                max_respawns,
                Arc::clone(&kill),
                Arc::clone(&respawns),
            )?;
            kills.push(kill);
            units.push(Box::new(unit));
        }
        Ok(Self::from_units(
            block,
            slots,
            units,
            kills,
            respawns,
            Some(dir),
        ))
    }
}

impl<R: Record> Drop for DiskFarm<R> {
    fn drop(&mut self) {
        // Workers exit when the last sender drops; outstanding leases
        // hold sender clones, so drop the farm only after every leased
        // system is gone (the service core guarantees this).
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One disk's transport for one tenant: forwards commands to the
/// shared worker with the job's slot addresses translated into its
/// leased range. Message counters stay zero (commands cross by
/// reference, like the in-process transport); a severed transport
/// answers everything with [`PdmError::Disconnected`], buffer
/// attached, per the [`Transport`] contract.
struct FarmTransport<R: Record> {
    disk: usize,
    base: usize,
    tx: Sender<Cmd<R>>,
    dead: bool,
    /// UDS backend only: the disk's crash-injection flag. An injected
    /// disconnect arms it — killing the real worker process at its
    /// next operation — instead of severing this tenant's link, so
    /// the farm's respawn path gets to prove itself.
    kill: Option<Arc<AtomicBool>>,
}

impl<R: Record> Transport<R> for FarmTransport<R> {
    fn disk(&self) -> usize {
        self.disk
    }

    fn submit(&mut self, cmd: Cmd<R>) {
        if self.dead {
            fail_disconnected(cmd, self.disk);
            return;
        }
        let cmd = match cmd {
            Cmd::Read {
                slot,
                buf,
                idx,
                done,
            } => Cmd::Read {
                slot: slot + self.base,
                buf,
                idx,
                done,
            },
            Cmd::Write {
                slot,
                buf,
                idx,
                done,
            } => Cmd::Write {
                slot: slot + self.base,
                buf,
                idx,
                done,
            },
            // The shared worker outlives this tenant; swallow stops.
            Cmd::Stop => return,
        };
        if let Err(send_err) = self.tx.send(cmd) {
            self.dead = true;
            fail_disconnected(send_err.0, self.disk);
        }
    }

    fn message_stats(&self) -> MsgStats {
        MsgStats::default()
    }

    fn inject_disconnect(&mut self) {
        match &self.kill {
            // Crash the real worker; the farm respawns it in place and
            // the tenant's operation completes against the revived
            // disk (bounded by the farm's respawn budget).
            Some(kill) => kill.store(true, Ordering::Relaxed),
            // Memory disks die with their link: fail fast.
            None => self.dead = true,
        }
    }

    fn shutdown(&mut self) -> Option<Box<dyn DiskUnit<R>>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_first_fit_and_coalesce() {
        let mut a = SlotAllocator::new(100);
        let x = a.alloc(30).unwrap();
        let y = a.alloc(30).unwrap();
        let z = a.alloc(30).unwrap();
        assert_eq!((x, y, z), (0, 30, 60));
        assert_eq!(a.free_slots(), 10);
        assert!(a.alloc(20).is_none());
        a.release(y, 30);
        assert_eq!(a.free_slots(), 40);
        // Freed middle range is reused.
        assert_eq!(a.alloc(30).unwrap(), 30);
        a.release(0, 30);
        a.release(30, 30);
        a.release(60, 30);
        assert_eq!(a.free_slots(), 100);
        assert_eq!(a.free.len(), 1, "ranges coalesce: {:?}", a.free);
    }

    #[test]
    fn two_leases_are_disjoint_and_round_trip() {
        let farm: DiskFarm<u64> = DiskFarm::new(2, 4, 64);
        let geom = Geometry::new(64, 2, 4, 32).unwrap();
        let (mut a, _la) = farm.lease_system(geom, 2).unwrap();
        let (mut b, _lb) = farm.lease_system(geom, 2).unwrap();
        assert_eq!(farm.free_slots(), 64 - 2 * 2 * geom.stripes());
        a.load_records(0, &(0..64).collect::<Vec<_>>());
        b.load_records(0, &(1000..1064).collect::<Vec<_>>());
        assert_eq!(a.read_stripe(0).unwrap(), (0..8).collect::<Vec<_>>());
        assert_eq!(b.read_stripe(0).unwrap(), (1000..1008).collect::<Vec<_>>());
        // Threaded split-phase against the shared workers.
        a.set_threaded(true);
        let t = a.begin_read(&[pdm::BlockRef { disk: 0, slot: 0 }]).unwrap();
        let mut out = vec![0u64; 2];
        a.finish_read(t, &mut out).unwrap();
        assert_eq!(out, vec![0, 1]);
        assert_eq!(a.buffer_pool_stats().outstanding, 0);
        drop(a);
        drop(b);
        drop(_la);
        drop(_lb);
        assert_eq!(farm.free_slots(), 64);
    }

    #[test]
    fn lease_capacity_exhaustion_is_typed() {
        let farm: DiskFarm<u64> = DiskFarm::new(2, 4, 16);
        let geom = Geometry::new(64, 2, 4, 32).unwrap(); // needs 2*8=16
        let (_s, _l) = farm.lease_system(geom, 2).unwrap();
        match farm.lease_system(geom, 2) {
            Err(PdmError::Config(msg)) => assert!(msg.contains("capacity"), "{msg}"),
            Err(other) => panic!("expected capacity error, got {other:?}"),
            Ok(_) => panic!("expected capacity error, got a lease"),
        }
    }

    #[test]
    fn geometry_mismatch_is_refused() {
        let farm: DiskFarm<u64> = DiskFarm::new(2, 4, 64);
        let wrong_block = Geometry::new(64, 4, 4, 32).unwrap();
        assert!(matches!(
            farm.lease_system(wrong_block, 2),
            Err(PdmError::Config(_))
        ));
        let wrong_disks = Geometry::new(64, 2, 8, 32).unwrap();
        assert!(matches!(
            farm.lease_system(wrong_disks, 2),
            Err(PdmError::Config(_))
        ));
    }

    #[test]
    fn uds_farm_recovers_injected_crash_with_respawn() {
        let Some(bin) = pdm::transport::find_diskd() else {
            eprintln!("pdm-diskd not built; skipping UDS farm test");
            return;
        };
        let farm: DiskFarm<u64> = DiskFarm::new_uds(2, 2, 32, bin, 2).unwrap();
        assert_eq!(farm.respawns(), 0);
        let geom = Geometry::new(32, 2, 2, 16).unwrap();
        let (mut a, _la) = farm.lease_system(geom, 2).unwrap();
        a.load_records(0, &(0..32).collect::<Vec<_>>());
        // The same injection that fail-fasts a memory farm crashes and
        // transparently revives a real worker process here.
        a.set_faults(pdm::FaultPlan::new().disconnect_at(1, 0));
        a.set_threaded(true);
        for s in 0..geom.stripes() {
            let stripe = a.read_stripe(s).unwrap();
            assert_eq!(stripe[0], (s * geom.block() * geom.disks()) as u64);
        }
        assert_eq!(a.buffer_pool_stats().outstanding, 0);
        assert_eq!(farm.respawns(), 1, "one crash, one respawn");
    }

    #[test]
    fn disconnected_tenant_leaves_the_worker_alive() {
        let farm: DiskFarm<u64> = DiskFarm::new(2, 2, 32);
        let geom = Geometry::new(32, 2, 2, 16).unwrap();
        let (mut a, _la) = farm.lease_system(geom, 2).unwrap();
        let (mut b, _lb) = farm.lease_system(geom, 2).unwrap();
        a.load_records(0, &(0..32).collect::<Vec<_>>());
        b.load_records(0, &(0..32).collect::<Vec<_>>());
        // Sever tenant a mid-life via the fault plan, PR 6 style.
        a.set_faults(pdm::FaultPlan::new().disconnect_at(0, 0));
        a.set_threaded(true);
        let err = a.read_stripe(0);
        assert!(err.is_err(), "severed link must surface");
        assert_eq!(a.buffer_pool_stats().outstanding, 0, "pool hygiene");
        // Tenant b is unaffected.
        assert_eq!(b.read_stripe(0).unwrap().len(), 4);
    }
}
