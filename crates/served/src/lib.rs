//! Multi-tenant permutation job service over one parallel disk system.
//!
//! This crate grows the workspace from a library-plus-CLI into a
//! long-running *service*: one process owns a shared disk array (a
//! [`farm::DiskFarm`]) and accepts permutation jobs — BMMC, BPC,
//! out-of-core sort, general permutation — from many clients over a
//! socket. Admitted jobs run concurrently, each on its own thread
//! with its own leased [`pdm::DiskSystem`], while a deficit
//! round-robin governor ([`pdm::FairScheduler`]) meters every
//! parallel I/O so that `K` backlogged tenants each see about `1/K`
//! of the array's bandwidth instead of queueing behind one another.
//!
//! The crate splits into:
//!
//! - [`farm`] — the shared per-disk worker threads, slot leasing, and
//!   the per-tenant transports that feed them;
//! - [`job`] — job specifications and the executor that runs one job
//!   against a leased disk system;
//! - [`core`] — the in-process service: admission queue, job table,
//!   scheduler wiring, cancellation, and per-job usage ledgers;
//! - [`proto`] — the length-prefixed control-plane wire protocol
//!   (`SUBMIT` / `STATUS` / `CANCEL` / `RESULT`), built on
//!   [`pdm::proto`]'s framing toolkit;
//! - [`server`] / [`client`] — the Unix-socket endpoints, including
//!   the `pdm-served` binary's entry point.
#![deny(missing_docs)]

pub mod client;
pub mod core;
pub mod farm;
pub mod job;
pub mod proto;
pub mod server;
