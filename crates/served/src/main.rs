//! `pdm-served`: the multi-tenant permutation job service binary.
//! All logic lives in [`pdm_served::server::served_main`].

fn main() {
    std::process::exit(pdm_served::server::served_main(std::env::args().skip(1)));
}
