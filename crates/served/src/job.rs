//! Job specifications and the executor that runs one job to
//! completion against a leased [`DiskSystem`].
//!
//! A [`JobSpec`] is everything a client sends: what to run
//! ([`JobKind`]), the problem size (`records`, `memory` — block size
//! and disk count are properties of the *server's* farm), a `seed`
//! that makes the run deterministic, the merge strategy for
//! sort-based kinds, and optional self-check and fault-injection
//! switches. [`run_job`] is pure with respect to the service: it
//! takes a disk system, runs the requested algorithm, verifies the
//! output when asked, and reports passes and I/O. Cancellation and
//! fair-sharing are invisible here — they arrive through the
//! system's governor as [`PdmError::Cancelled`] from inside the
//! algorithm.

use bmmc::catalog::{random_bmmc, random_bpc};
use bmmc::verify::{verify_permutation, VerifyOutcome};
use bmmc::{perform_bmmc, BmmcError};
use extsort::{general_permute_with, sort_by_key_with, MergeStrategy, SortConfig};
use pdm::{DiskSystem, IoStats, PdmError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which permutation workload a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// A random nonsingular BMMC permutation (seeded), performed with
    /// the paper's factor-and-execute algorithm.
    Bmmc,
    /// A random BPC permutation (seeded), same execution path.
    Bpc,
    /// External merge sort of a seeded shuffle of `0..N`.
    Sort,
    /// A uniformly random (seeded) general permutation, routed through
    /// the sort-based fallback.
    Permute,
}

impl JobKind {
    /// Stable lowercase name, used on the wire and in the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Bmmc => "bmmc",
            JobKind::Bpc => "bpc",
            JobKind::Sort => "sort",
            JobKind::Permute => "permute",
        }
    }

    /// Wire tag (one byte).
    pub fn code(self) -> u8 {
        match self {
            JobKind::Bmmc => 0,
            JobKind::Bpc => 1,
            JobKind::Sort => 2,
            JobKind::Permute => 3,
        }
    }

    /// Inverse of [`JobKind::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => JobKind::Bmmc,
            1 => JobKind::Bpc,
            2 => JobKind::Sort,
            3 => JobKind::Permute,
            _ => return None,
        })
    }

    /// Parses the lowercase name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "bmmc" => JobKind::Bmmc,
            "bpc" => JobKind::Bpc,
            "sort" => JobKind::Sort,
            "permute" => JobKind::Permute,
            _ => return None,
        })
    }

    /// How many portions of the disk array this kind needs: BMMC/BPC
    /// ping-pong between two portions; the sort paths also need two
    /// (runs alternate portions between merge passes).
    pub fn portions(self) -> usize {
        2
    }
}

/// Everything needed to run one job deterministically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// Workload kind.
    pub kind: JobKind,
    /// Problem size `N` in records (power of two).
    pub records: usize,
    /// Memory size `M` in records (power of two); with the farm's
    /// block size and disk count this completes the PDM geometry.
    pub memory: usize,
    /// Seed for the permutation / shuffle; same seed, same work.
    pub seed: u64,
    /// Merge strategy for the sort-based kinds (ignored by BMMC/BPC).
    pub merge: MergeStrategy,
    /// Scan the output after the run and fail the job on misplacement.
    pub verify: bool,
    /// Optional transport fault: sever the link to `disk` at parallel
    /// I/O number `op` (PR 6's `disconnect_at` discipline), to prove
    /// the service survives a mid-job disk crash.
    pub fault: Option<(u64, usize)>,
    /// How many times the service may re-run the job after a
    /// *retryable* failure (transient fault, timeout, disconnect)
    /// before it goes [`crate::core::JobState::Failed`]. Zero means
    /// fail on the first error, the pre-recovery behaviour.
    pub max_retries: u32,
    /// Wall-clock budget from submission, in milliseconds. A job —
    /// queued, running, or waiting out a retry backoff — past its
    /// deadline is failed by the service sweeper. `None` means no
    /// deadline.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A spec with service defaults: verify off, single-buffered
    /// merge, no fault, no retries, no deadline.
    pub fn new(kind: JobKind, records: usize, memory: usize, seed: u64) -> Self {
        JobSpec {
            kind,
            records,
            memory,
            seed,
            merge: MergeStrategy::SingleBuffered,
            verify: false,
            fault: None,
            max_retries: 0,
            deadline_ms: None,
        }
    }
}

/// What a finished job reports back to its client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Passes over the data (algorithm steps, or sort passes).
    pub passes: u64,
    /// Total I/O the job performed (its own disk system's counters).
    pub io: IoStats,
    /// Whether the output was scanned and found correct (`false`
    /// means verification was not requested — a misplacement fails
    /// the job instead of reporting here).
    pub verified: bool,
}

/// Flattens the bmmc crate's error into the service's [`PdmError`]
/// space: disk-layer errors (including [`PdmError::Cancelled`]) pass
/// through untouched so the service can classify them; planning
/// errors become configuration errors.
fn flatten(e: BmmcError) -> PdmError {
    match e {
        BmmcError::Pdm(e) => e,
        other => PdmError::Config(other.to_string()),
    }
}

/// Runs `spec` on `sys` (which must have `spec.kind.portions()`
/// portions and a geometry matching the spec), returning the report
/// or the first disk/validation error. Input data is generated and
/// loaded here; the caller owns scheduling, cancellation, and
/// accounting.
pub fn run_job(sys: &mut DiskSystem<u64>, spec: &JobSpec) -> Result<JobReport, PdmError> {
    let geom = sys.geometry();
    let n = geom.records() as u64;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    if let Some((op, disk)) = spec.fault {
        sys.set_faults(pdm::FaultPlan::new().disconnect_at(op, disk));
    }
    match spec.kind {
        JobKind::Bmmc | JobKind::Bpc => {
            let perm = if spec.kind == JobKind::Bmmc {
                random_bmmc(&mut rng, geom.n())
            } else {
                random_bpc(&mut rng, geom.n())
            };
            sys.load_records(0, &(0..n).collect::<Vec<_>>());
            let report = perform_bmmc(sys, &perm).map_err(flatten)?;
            let verified = if spec.verify {
                match verify_permutation(sys, report.final_portion, &perm, |&k| k)
                    .map_err(flatten)?
                {
                    VerifyOutcome::Correct { .. } => true,
                    VerifyOutcome::Misplaced { address, .. } => {
                        return Err(PdmError::Config(format!(
                            "verification failed: record misplaced at address {address}"
                        )))
                    }
                }
            } else {
                false
            };
            Ok(JobReport {
                passes: report.num_passes() as u64,
                io: sys.stats(),
                verified,
            })
        }
        JobKind::Sort => {
            let mut data: Vec<u64> = (0..n).collect();
            data.shuffle(&mut rng);
            sys.load_records(0, &data);
            let report = sort_by_key_with(sys, |&k| k, SortConfig { merge: spec.merge })?;
            let verified = if spec.verify {
                let out = sys.dump_records(report.final_portion);
                if let Some(addr) = out.iter().enumerate().find(|(i, &k)| k != *i as u64) {
                    return Err(PdmError::Config(format!(
                        "verification failed: key {} at sorted position {}",
                        addr.1, addr.0
                    )));
                }
                true
            } else {
                false
            };
            Ok(JobReport {
                passes: report.passes as u64,
                io: sys.stats(),
                verified,
            })
        }
        JobKind::Permute => {
            let mut target: Vec<u64> = (0..n).collect();
            target.shuffle(&mut rng);
            sys.load_records(0, &(0..n).collect::<Vec<_>>());
            let t: &[u64] = &target;
            let report = general_permute_with(
                sys,
                |&k| k,
                move |k| t[k as usize],
                SortConfig { merge: spec.merge },
            )?;
            let verified = if spec.verify {
                let out = sys.dump_records(report.final_portion);
                for (src, &dst) in target.iter().enumerate() {
                    if out[dst as usize] != src as u64 {
                        return Err(PdmError::Config(format!(
                            "verification failed: source {} not at target {}",
                            src, dst
                        )));
                    }
                }
                true
            } else {
                false
            };
            Ok(JobReport {
                passes: report.passes as u64,
                io: sys.stats(),
                verified,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::Geometry;

    fn system(records: usize, memory: usize, portions: usize) -> DiskSystem<u64> {
        let geom = Geometry::new(records, 4, 4, memory).unwrap();
        DiskSystem::new_mem(geom, portions)
    }

    #[test]
    fn all_kinds_run_and_verify() {
        for kind in [JobKind::Bmmc, JobKind::Bpc, JobKind::Sort, JobKind::Permute] {
            let mut sys = system(1 << 10, 1 << 6, kind.portions());
            let mut spec = JobSpec::new(kind, 1 << 10, 1 << 6, 42);
            spec.verify = true;
            let report = run_job(&mut sys, &spec)
                .unwrap_or_else(|e| panic!("{} failed: {e}", kind.as_str()));
            assert!(report.verified, "{}", kind.as_str());
            assert!(report.passes >= 1);
            assert!(report.io.parallel_ios() > 0);
        }
    }

    #[test]
    fn same_seed_same_io_different_seed_same_size() {
        let run = |seed| {
            let mut sys = system(1 << 10, 1 << 6, 2);
            run_job(
                &mut sys,
                &JobSpec::new(JobKind::Sort, 1 << 10, 1 << 6, seed),
            )
            .unwrap()
            .io
        };
        assert_eq!(run(1), run(1), "deterministic");
        // Sort cost depends only on N, M: equal work for equal sizes.
        assert_eq!(run(1).parallel_ios(), run(2).parallel_ios());
    }

    #[test]
    fn injected_disconnect_fails_the_job_cleanly() {
        let mut sys = system(1 << 10, 1 << 6, 2);
        let mut spec = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, 7);
        spec.fault = Some((3, 1));
        let err = run_job(&mut sys, &spec);
        assert!(
            matches!(err, Err(PdmError::Disconnected { .. })),
            "got {err:?}"
        );
        assert_eq!(sys.buffer_pool_stats().outstanding, 0);
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [JobKind::Bmmc, JobKind::Bpc, JobKind::Sort, JobKind::Permute] {
            assert_eq!(JobKind::from_code(kind.code()), Some(kind));
            assert_eq!(JobKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(JobKind::from_code(9), None);
        assert_eq!(JobKind::parse("fft"), None);
    }
}
