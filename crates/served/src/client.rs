//! The job-service client: a blocking, one-request-at-a-time
//! connection speaking [`crate::proto`] over a Unix socket.
//!
//! Used by the CLI's `submit` / `status` / `cancel` subcommands, the
//! bench's load generator, and the service tests. Connecting retries
//! briefly so a client started alongside the server (the CI smoke
//! test, the bench harness) does not race the bind.

use crate::core::{JobStatus, Overview, Reject};
use crate::job::JobSpec;
use crate::proto;
use pdm::proto::read_frame;
use pdm::{PdmError, Result};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A connected job-service client.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
    buf: Vec<u8>,
    out: Vec<u8>,
}

fn io(e: std::io::Error) -> PdmError {
    PdmError::Io(format!("job service connection: {e}"))
}

impl Client {
    /// Connects and completes the handshake, retrying the connect for
    /// up to `timeout` while the server comes up.
    pub fn connect_with_retry(path: &Path, timeout: Duration) -> Result<Client> {
        let deadline = Instant::now() + timeout;
        let stream = loop {
            match UnixStream::connect(path) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(io(e)),
            }
        };
        let mut client = Client {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
        };
        client.out.clear();
        proto::encode_hello(&mut client.out);
        client.flush_out()?;
        client.read_reply_frame()?;
        proto::decode_hello_reply(&client.buf)?;
        Ok(client)
    }

    /// Connects with a 2-second retry window.
    pub fn connect(path: &Path) -> Result<Client> {
        Self::connect_with_retry(path, Duration::from_secs(2))
    }

    fn flush_out(&mut self) -> Result<()> {
        self.stream.write_all(&self.out).map_err(io)
    }

    fn read_reply_frame(&mut self) -> Result<()> {
        read_frame(&mut self.stream, &mut self.buf).map_err(io)?;
        Ok(())
    }

    fn round_trip(&mut self) -> Result<proto::Reply> {
        self.flush_out()?;
        self.read_reply_frame()?;
        proto::decode_reply(&self.buf)
    }

    /// Submits a job; `Ok(Ok(id))` on acceptance, `Ok(Err(reject))`
    /// when the server refused it, `Err` on transport trouble.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<std::result::Result<u64, Reject>> {
        self.out.clear();
        proto::encode_submit(&mut self.out, spec);
        match self.round_trip()? {
            proto::Reply::Submitted { id } => Ok(Ok(id)),
            proto::Reply::Rejected(reject) => Ok(Err(reject)),
            other => Err(unexpected("submit", &other)),
        }
    }

    /// Fetches a job snapshot; `None` when the server has never seen
    /// the id.
    pub fn status(&mut self, id: u64) -> Result<Option<JobStatus>> {
        self.out.clear();
        proto::encode_id_request(&mut self.out, proto::STATUS, id);
        match self.round_trip()? {
            proto::Reply::Job(status) => Ok(Some(status)),
            proto::Reply::UnknownJob { .. } => Ok(None),
            other => Err(unexpected("status", &other)),
        }
    }

    /// Fetches the aggregate service overview.
    pub fn overview(&mut self) -> Result<Overview> {
        self.out.clear();
        proto::encode_id_request(&mut self.out, proto::STATUS, 0);
        match self.round_trip()? {
            proto::Reply::Overview(o) => Ok(o),
            other => Err(unexpected("overview", &other)),
        }
    }

    /// Requests cancellation; true when it landed on a live job.
    pub fn cancel(&mut self, id: u64) -> Result<bool> {
        self.out.clear();
        proto::encode_id_request(&mut self.out, proto::CANCEL, id);
        match self.round_trip()? {
            proto::Reply::Cancelled { live } => Ok(live),
            other => Err(unexpected("cancel", &other)),
        }
    }

    /// Blocks until the job is terminal and returns its final
    /// snapshot; `None` for unknown ids.
    pub fn result(&mut self, id: u64) -> Result<Option<JobStatus>> {
        self.out.clear();
        proto::encode_id_request(&mut self.out, proto::RESULT, id);
        match self.round_trip()? {
            proto::Reply::Job(status) => Ok(Some(status)),
            proto::Reply::UnknownJob { .. } => Ok(None),
            other => Err(unexpected("result", &other)),
        }
    }
}

fn unexpected(what: &str, reply: &proto::Reply) -> PdmError {
    PdmError::Io(format!(
        "job service: unexpected reply to {what}: {reply:?}"
    ))
}
