//! The job-plane wire protocol: `SUBMIT` / `STATUS` / `CANCEL` /
//! `RESULT` over length-prefixed frames.
//!
//! This is a second, higher-level protocol next to [`pdm::proto`]'s
//! *data plane* (block reads and writes): same framing conventions —
//! a 4-byte little-endian length prefix per frame
//! ([`pdm::proto::FRAME_HEADER`]), a magic + version handshake frame
//! first, one request per frame, one reply per request — but its own
//! magic (`PDMS`, not `PDMD`) so the two endpoints cannot be
//! cross-connected silently, and typed messages about *jobs* rather
//! than blocks. Encoding reuses the framing toolkit
//! ([`pdm::proto::put_u32`], [`pdm::proto::begin_frame`],
//! [`pdm::proto::Take`], …), so truncation and garbage surface as
//! the same [`PdmError::Io`] family the data plane uses.

use crate::core::{JobState, JobStatus, Overview, Reject};
use crate::job::{JobKind, JobReport, JobSpec};
use extsort::MergeStrategy;
use pdm::proto::{begin_frame, end_frame, put_u32, put_u64, Take};
use pdm::{IoStats, JobUsage, PdmError, Result};

/// Job-plane magic, first 4 bytes of the client's handshake frame.
pub const MAGIC: [u8; 4] = *b"PDMS";

/// Job-plane protocol version; bumped on incompatible change.
/// Version 2 added the resilience fields: `max_retries` and the
/// optional deadline on `SUBMIT`, attempt counts on job snapshots,
/// and the farm's respawn counter on the overview.
pub const VERSION: u32 = 2;

// Request tags (client → server).
const T_SUBMIT: u8 = 0x10;
const T_STATUS: u8 = 0x11;
const T_CANCEL: u8 = 0x12;
const T_RESULT: u8 = 0x13;

// Reply tags (server → client).
const T_HELLO_OK: u8 = 0x01;
const T_HELLO_BAD: u8 = 0x02;
const T_SUBMITTED: u8 = 0x20;
const T_REJECTED: u8 = 0x21;
const T_JOB: u8 = 0x22;
const T_OVERVIEW: u8 = 0x23;
const T_CANCELLED: u8 = 0x24;
const T_UNKNOWN_JOB: u8 = 0x25;

// Reject codes inside T_REJECTED.
const R_QUEUE_FULL: u8 = 0;
const R_BAD_GEOMETRY: u8 = 1;
const R_TOO_LARGE: u8 = 2;

fn bad(what: &str) -> PdmError {
    PdmError::Io(format!("job-plane protocol: {what}"))
}

// ---------------------------------------------------------------------------
// Handshake.

/// Appends the client's handshake frame: magic + version.
pub fn encode_hello(out: &mut Vec<u8>) {
    let at = begin_frame(out);
    out.extend_from_slice(&MAGIC);
    put_u32(out, VERSION);
    end_frame(out, at);
}

/// Decodes a handshake body; returns the client's version.
pub fn decode_hello(body: &[u8]) -> Result<u32> {
    let mut t = Take(body);
    let magic = t.bytes(4)?;
    if magic != MAGIC {
        return Err(bad("bad magic (is this a data-plane endpoint?)"));
    }
    t.u32()
}

/// Appends the server's handshake acceptance.
pub fn encode_hello_ok(out: &mut Vec<u8>) {
    let at = begin_frame(out);
    out.push(T_HELLO_OK);
    put_u32(out, VERSION);
    end_frame(out, at);
}

/// Appends the server's handshake refusal (version mismatch).
pub fn encode_hello_bad(out: &mut Vec<u8>) {
    let at = begin_frame(out);
    out.push(T_HELLO_BAD);
    put_u32(out, VERSION);
    end_frame(out, at);
}

/// Decodes the server's handshake reply, failing on refusal.
pub fn decode_hello_reply(body: &[u8]) -> Result<()> {
    let mut t = Take(body);
    match t.u8()? {
        T_HELLO_OK => Ok(()),
        T_HELLO_BAD => {
            let server = t.u32()?;
            Err(bad(&format!(
                "server speaks job-plane version {server}, client speaks {VERSION}"
            )))
        }
        tag => Err(bad(&format!("unexpected handshake reply tag {tag:#04x}"))),
    }
}

// ---------------------------------------------------------------------------
// Requests.

/// A decoded client request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Request {
    /// Run this job; reply is [`Reply::Submitted`] or
    /// [`Reply::Rejected`].
    Submit(JobSpec),
    /// Report on one job (or the whole service for `id` 0).
    Status {
        /// Job id, or 0 for the service overview.
        id: u64,
    },
    /// Request cancellation of one job.
    Cancel {
        /// Job id.
        id: u64,
    },
    /// Block until the job is terminal, then report it.
    Result {
        /// Job id.
        id: u64,
    },
}

fn merge_code(m: MergeStrategy) -> u8 {
    match m {
        MergeStrategy::SingleBuffered => 0,
        MergeStrategy::DoubleBuffered => 1,
        MergeStrategy::Forecast => 2,
    }
}

fn merge_from_code(c: u8) -> Result<MergeStrategy> {
    Ok(match c {
        0 => MergeStrategy::SingleBuffered,
        1 => MergeStrategy::DoubleBuffered,
        2 => MergeStrategy::Forecast,
        _ => return Err(bad(&format!("unknown merge strategy code {c}"))),
    })
}

/// Appends a `SUBMIT` frame.
pub fn encode_submit(out: &mut Vec<u8>, spec: &JobSpec) {
    let at = begin_frame(out);
    out.push(T_SUBMIT);
    out.push(spec.kind.code());
    put_u64(out, spec.records as u64);
    put_u64(out, spec.memory as u64);
    put_u64(out, spec.seed);
    out.push(merge_code(spec.merge));
    out.push(u8::from(spec.verify));
    match spec.fault {
        Some((op, disk)) => {
            out.push(1);
            put_u64(out, op);
            put_u32(out, disk as u32);
        }
        None => out.push(0),
    }
    put_u32(out, spec.max_retries);
    match spec.deadline_ms {
        Some(ms) => {
            out.push(1);
            put_u64(out, ms);
        }
        None => out.push(0),
    }
    end_frame(out, at);
}

/// Appends a `STATUS` (`id` 0 = overview), `CANCEL`, or `RESULT`
/// frame — they share the tag-plus-id shape.
pub fn encode_id_request(out: &mut Vec<u8>, tag_status_cancel_result: u8, id: u64) {
    let at = begin_frame(out);
    out.push(tag_status_cancel_result);
    put_u64(out, id);
    end_frame(out, at);
}

/// Tag for [`encode_id_request`]: `STATUS`.
pub const STATUS: u8 = T_STATUS;
/// Tag for [`encode_id_request`]: `CANCEL`.
pub const CANCEL: u8 = T_CANCEL;
/// Tag for [`encode_id_request`]: `RESULT`.
pub const RESULT: u8 = T_RESULT;

/// Decodes one request frame body.
pub fn decode_request(body: &[u8]) -> Result<Request> {
    let mut t = Take(body);
    match t.u8()? {
        T_SUBMIT => {
            let kind = JobKind::from_code(t.u8()?).ok_or_else(|| bad("unknown job kind code"))?;
            let records = t.u64()? as usize;
            let memory = t.u64()? as usize;
            let seed = t.u64()?;
            let merge = merge_from_code(t.u8()?)?;
            let verify = t.u8()? != 0;
            let fault = match t.u8()? {
                0 => None,
                1 => Some((t.u64()?, t.u32()? as usize)),
                f => return Err(bad(&format!("bad fault flag {f}"))),
            };
            let max_retries = t.u32()?;
            let deadline_ms = match t.u8()? {
                0 => None,
                1 => Some(t.u64()?),
                f => return Err(bad(&format!("bad deadline flag {f}"))),
            };
            Ok(Request::Submit(JobSpec {
                kind,
                records,
                memory,
                seed,
                merge,
                verify,
                fault,
                max_retries,
                deadline_ms,
            }))
        }
        T_STATUS => Ok(Request::Status { id: t.u64()? }),
        T_CANCEL => Ok(Request::Cancel { id: t.u64()? }),
        T_RESULT => Ok(Request::Result { id: t.u64()? }),
        tag => Err(bad(&format!("unknown request tag {tag:#04x}"))),
    }
}

// ---------------------------------------------------------------------------
// Replies.

/// A decoded server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The job was accepted under this id.
    Submitted {
        /// The new job's id.
        id: u64,
    },
    /// The submit was refused.
    Rejected(Reject),
    /// A job snapshot (for `STATUS` and `RESULT`).
    Job(JobStatus),
    /// The service overview (for `STATUS` with id 0).
    Overview(Overview),
    /// Acknowledges a `CANCEL`; `live` is false when the job was
    /// already terminal or unknown.
    Cancelled {
        /// Whether the cancel actually landed on a live job.
        live: bool,
    },
    /// `STATUS`/`RESULT` named a job the service has never seen.
    UnknownJob {
        /// The id that was asked about.
        id: u64,
    },
}

/// Appends a `Submitted` reply.
pub fn encode_submitted(out: &mut Vec<u8>, id: u64) {
    let at = begin_frame(out);
    out.push(T_SUBMITTED);
    put_u64(out, id);
    end_frame(out, at);
}

/// Appends a `Rejected` reply.
pub fn encode_rejected(out: &mut Vec<u8>, reject: &Reject) {
    let at = begin_frame(out);
    out.push(T_REJECTED);
    match reject {
        Reject::QueueFull => out.push(R_QUEUE_FULL),
        Reject::BadGeometry(msg) => {
            out.push(R_BAD_GEOMETRY);
            put_u32(out, msg.len() as u32);
            out.extend_from_slice(msg.as_bytes());
        }
        Reject::TooLarge { need, have } => {
            out.push(R_TOO_LARGE);
            put_u64(out, *need as u64);
            put_u64(out, *have as u64);
        }
    }
    end_frame(out, at);
}

fn put_io(out: &mut Vec<u8>, io: &IoStats) {
    put_u64(out, io.parallel_reads);
    put_u64(out, io.parallel_writes);
    put_u64(out, io.striped_reads);
    put_u64(out, io.striped_writes);
    put_u64(out, io.blocks_read);
    put_u64(out, io.blocks_written);
}

fn take_io(t: &mut Take<'_>) -> Result<IoStats> {
    Ok(IoStats {
        parallel_reads: t.u64()?,
        parallel_writes: t.u64()?,
        striped_reads: t.u64()?,
        striped_writes: t.u64()?,
        blocks_read: t.u64()?,
        blocks_written: t.u64()?,
    })
}

/// Appends a `Job` snapshot reply.
pub fn encode_job(out: &mut Vec<u8>, s: &JobStatus) {
    let at = begin_frame(out);
    out.push(T_JOB);
    put_u64(out, s.id);
    out.push(s.kind.code());
    out.push(s.state.code());
    put_u32(out, s.attempts);
    put_io(out, &s.usage.io);
    put_u32(out, s.usage.blocks_per_disk.len() as u32);
    for &b in &s.usage.blocks_per_disk {
        put_u64(out, b);
    }
    match &s.report {
        Some(r) => {
            out.push(1);
            put_u64(out, r.passes);
            put_io(out, &r.io);
            out.push(u8::from(r.verified));
        }
        None => out.push(0),
    }
    match &s.error {
        Some(msg) => {
            out.push(1);
            put_u32(out, msg.len() as u32);
            out.extend_from_slice(msg.as_bytes());
        }
        None => out.push(0),
    }
    end_frame(out, at);
}

/// Appends an `Overview` reply.
pub fn encode_overview(out: &mut Vec<u8>, o: &Overview) {
    let at = begin_frame(out);
    out.push(T_OVERVIEW);
    put_u64(out, o.queued as u64);
    put_u64(out, o.running as u64);
    put_u64(out, o.finished as u64);
    put_u64(out, o.free_slots as u64);
    put_u64(out, o.respawns);
    end_frame(out, at);
}

/// Appends a `Cancelled` acknowledgement.
pub fn encode_cancelled(out: &mut Vec<u8>, live: bool) {
    let at = begin_frame(out);
    out.push(T_CANCELLED);
    out.push(u8::from(live));
    end_frame(out, at);
}

/// Appends an `UnknownJob` reply.
pub fn encode_unknown_job(out: &mut Vec<u8>, id: u64) {
    let at = begin_frame(out);
    out.push(T_UNKNOWN_JOB);
    put_u64(out, id);
    end_frame(out, at);
}

fn take_string(t: &mut Take<'_>) -> Result<String> {
    let len = t.u32()? as usize;
    let bytes = t.bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| bad("reply string is not UTF-8"))
}

/// Decodes one reply frame body.
pub fn decode_reply(body: &[u8]) -> Result<Reply> {
    let mut t = Take(body);
    match t.u8()? {
        T_SUBMITTED => Ok(Reply::Submitted { id: t.u64()? }),
        T_REJECTED => {
            let reject = match t.u8()? {
                R_QUEUE_FULL => Reject::QueueFull,
                R_BAD_GEOMETRY => Reject::BadGeometry(take_string(&mut t)?),
                R_TOO_LARGE => Reject::TooLarge {
                    need: t.u64()? as usize,
                    have: t.u64()? as usize,
                },
                c => return Err(bad(&format!("unknown reject code {c}"))),
            };
            Ok(Reply::Rejected(reject))
        }
        T_JOB => {
            let id = t.u64()?;
            let kind = JobKind::from_code(t.u8()?).ok_or_else(|| bad("unknown job kind code"))?;
            let state =
                JobState::from_code(t.u8()?).ok_or_else(|| bad("unknown job state code"))?;
            let attempts = t.u32()?;
            let io = take_io(&mut t)?;
            let disks = t.u32()? as usize;
            let mut blocks_per_disk = Vec::with_capacity(disks.min(1 << 16));
            for _ in 0..disks {
                blocks_per_disk.push(t.u64()?);
            }
            let report = match t.u8()? {
                0 => None,
                1 => Some(JobReport {
                    passes: t.u64()?,
                    io: take_io(&mut t)?,
                    verified: t.u8()? != 0,
                }),
                f => return Err(bad(&format!("bad report flag {f}"))),
            };
            let error = match t.u8()? {
                0 => None,
                1 => Some(take_string(&mut t)?),
                f => return Err(bad(&format!("bad error flag {f}"))),
            };
            Ok(Reply::Job(JobStatus {
                id,
                kind,
                state,
                usage: JobUsage {
                    io,
                    blocks_per_disk,
                },
                report,
                error,
                attempts,
            }))
        }
        T_OVERVIEW => Ok(Reply::Overview(Overview {
            queued: t.u64()? as usize,
            running: t.u64()? as usize,
            finished: t.u64()? as usize,
            free_slots: t.u64()? as usize,
            respawns: t.u64()?,
        })),
        T_CANCELLED => Ok(Reply::Cancelled { live: t.u8()? != 0 }),
        T_UNKNOWN_JOB => Ok(Reply::UnknownJob { id: t.u64()? }),
        tag => Err(bad(&format!("unknown reply tag {tag:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::proto::FRAME_HEADER;

    fn body(frame: &[u8]) -> &[u8] {
        &frame[FRAME_HEADER..]
    }

    #[test]
    fn handshake_round_trips_and_rejects_data_plane_magic() {
        let mut f = Vec::new();
        encode_hello(&mut f);
        assert_eq!(decode_hello(body(&f)).unwrap(), VERSION);
        let mut wrong = body(&f).to_vec();
        wrong[..4].copy_from_slice(&pdm::proto::MAGIC);
        assert!(decode_hello(&wrong).is_err());
        let mut ok = Vec::new();
        encode_hello_ok(&mut ok);
        decode_hello_reply(body(&ok)).unwrap();
        let mut nope = Vec::new();
        encode_hello_bad(&mut nope);
        assert!(decode_hello_reply(body(&nope)).is_err());
    }

    #[test]
    fn submit_round_trips_every_field() {
        let mut spec = JobSpec::new(JobKind::Permute, 1 << 12, 1 << 7, 99);
        spec.merge = MergeStrategy::Forecast;
        spec.verify = true;
        spec.fault = Some((17, 3));
        spec.max_retries = 3;
        spec.deadline_ms = Some(30_000);
        let mut f = Vec::new();
        encode_submit(&mut f, &spec);
        match decode_request(body(&f)).unwrap() {
            Request::Submit(got) => assert_eq!(got, spec),
            other => panic!("decoded {other:?}"),
        }
        // The defaults (no retries, no deadline) survive too.
        let plain = JobSpec::new(JobKind::Sort, 1 << 10, 1 << 6, 1);
        let mut f = Vec::new();
        encode_submit(&mut f, &plain);
        match decode_request(body(&f)).unwrap() {
            Request::Submit(got) => assert_eq!(got, plain),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn id_requests_round_trip() {
        for (tag, want) in [
            (STATUS, Request::Status { id: 5 }),
            (CANCEL, Request::Cancel { id: 5 }),
            (RESULT, Request::Result { id: 5 }),
        ] {
            let mut f = Vec::new();
            encode_id_request(&mut f, tag, 5);
            assert_eq!(decode_request(body(&f)).unwrap(), want);
        }
    }

    #[test]
    fn replies_round_trip() {
        let mut f = Vec::new();
        encode_submitted(&mut f, 42);
        assert_eq!(decode_reply(body(&f)).unwrap(), Reply::Submitted { id: 42 });

        for reject in [
            Reject::QueueFull,
            Reject::BadGeometry("M too small".into()),
            Reject::TooLarge { need: 9, have: 4 },
        ] {
            let mut f = Vec::new();
            encode_rejected(&mut f, &reject);
            assert_eq!(decode_reply(body(&f)).unwrap(), Reply::Rejected(reject));
        }

        let status = JobStatus {
            id: 7,
            kind: JobKind::Sort,
            state: JobState::Done,
            usage: JobUsage {
                io: IoStats {
                    parallel_reads: 10,
                    parallel_writes: 11,
                    striped_reads: 3,
                    striped_writes: 4,
                    blocks_read: 40,
                    blocks_written: 44,
                },
                blocks_per_disk: vec![21, 21, 21, 21],
            },
            report: Some(JobReport {
                passes: 3,
                io: IoStats::default(),
                verified: true,
            }),
            error: None,
            attempts: 2,
        };
        let mut f = Vec::new();
        encode_job(&mut f, &status);
        match decode_reply(body(&f)).unwrap() {
            Reply::Job(got) => {
                assert_eq!(got.id, status.id);
                assert_eq!(got.state, status.state);
                assert_eq!(got.usage, status.usage);
                assert_eq!(got.report.unwrap().passes, 3);
                assert_eq!(got.error, None);
                assert_eq!(got.attempts, 2);
            }
            other => panic!("decoded {other:?}"),
        }

        let mut f = Vec::new();
        encode_overview(
            &mut f,
            &Overview {
                queued: 1,
                running: 2,
                finished: 3,
                free_slots: 4,
                respawns: 5,
            },
        );
        match decode_reply(body(&f)).unwrap() {
            Reply::Overview(o) => assert_eq!(
                (o.queued, o.running, o.finished, o.free_slots, o.respawns),
                (1, 2, 3, 4, 5)
            ),
            other => panic!("decoded {other:?}"),
        }

        let mut f = Vec::new();
        encode_cancelled(&mut f, true);
        assert_eq!(
            decode_reply(body(&f)).unwrap(),
            Reply::Cancelled { live: true }
        );

        let mut f = Vec::new();
        encode_unknown_job(&mut f, 12);
        assert_eq!(
            decode_reply(body(&f)).unwrap(),
            Reply::UnknownJob { id: 12 }
        );
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut f = Vec::new();
        encode_submitted(&mut f, 42);
        let b = body(&f);
        for cut in 0..b.len() {
            assert!(decode_reply(&b[..cut]).is_err(), "cut at {cut}");
        }
    }
}
