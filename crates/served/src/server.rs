//! The Unix-socket server: accept loop, per-connection request
//! handling, and the `pdm-served` binary's entry point.
//!
//! One connection = one client. Each accepted connection gets its own
//! thread and a connection id; jobs submitted on it are owned by that
//! id, and when the connection dies — cleanly or not — every live job
//! it owns is cancelled ([`crate::core::ServiceCore::cancel_owned_by`]),
//! so a crashed client cannot pin disk capacity or scheduler slots.
//! Requests are served strictly in order per connection; `RESULT`
//! blocks its connection (not the service) until the job is terminal.

use crate::core::{ServiceConfig, ServiceCore};
use crate::farm::{DiskFarm, FarmBackend};
use crate::proto;
use pdm::proto::read_frame;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Serves connections on `listener` until accepting fails (i.e. the
/// listener is closed or the socket is unlinked and the process is
/// shutting down). Each connection is handled on its own thread.
pub fn serve_listener(listener: UnixListener, core: Arc<ServiceCore>) {
    let next_conn = AtomicU64::new(1);
    for stream in listener.incoming() {
        let Ok(stream) = stream else { return };
        let conn = next_conn.fetch_add(1, Ordering::Relaxed);
        let core = Arc::clone(&core);
        let _ = std::thread::Builder::new()
            .name(format!("pdm-conn-{conn}"))
            .spawn(move || {
                let _ = handle_conn(stream, &core, conn);
                // Clean or crashed, the client is gone: sweep its jobs.
                core.cancel_owned_by(conn);
            });
    }
}

/// Runs one connection's handshake + request loop. Returns `Ok` on
/// clean EOF; any error also just ends the connection (the caller
/// sweeps ownership either way).
fn handle_conn(mut stream: UnixStream, core: &Arc<ServiceCore>, conn: u64) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut buf = Vec::new();
    let mut out = Vec::new();

    // Handshake: one frame in, one frame out.
    read_frame(&mut reader, &mut buf)?;
    let version = proto::decode_hello(&buf).map_err(io_err)?;
    out.clear();
    if version != proto::VERSION {
        proto::encode_hello_bad(&mut out);
        stream.write_all(&out)?;
        return Ok(());
    }
    proto::encode_hello_ok(&mut out);
    stream.write_all(&out)?;

    loop {
        if read_frame(&mut reader, &mut buf).is_err() {
            return Ok(()); // EOF or a torn frame: connection over
        }
        let request = proto::decode_request(&buf).map_err(io_err)?;
        out.clear();
        match request {
            proto::Request::Submit(spec) => match core.submit(spec, Some(conn)) {
                Ok(id) => proto::encode_submitted(&mut out, id),
                Err(reject) => proto::encode_rejected(&mut out, &reject),
            },
            proto::Request::Status { id: 0 } => {
                proto::encode_overview(&mut out, &core.overview());
            }
            proto::Request::Status { id } => match core.status(id) {
                Some(status) => proto::encode_job(&mut out, &status),
                None => proto::encode_unknown_job(&mut out, id),
            },
            proto::Request::Cancel { id } => {
                proto::encode_cancelled(&mut out, core.cancel(id));
            }
            proto::Request::Result { id } => match core.wait(id) {
                Some(status) => proto::encode_job(&mut out, &status),
                None => proto::encode_unknown_job(&mut out, id),
            },
        }
        stream.write_all(&out)?;
    }
}

fn io_err(e: pdm::PdmError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Entry point for the `pdm-served` binary: parses flags, binds the
/// socket, and serves until killed. Returns the process exit code.
///
/// ```text
/// pdm-served --socket PATH [--block N] [--disks N] [--slots N]
///            [--quantum N] [--max-queue N] [--max-running N]
///            [--sweep-ms N] [--retry-backoff-ms N]
///            [--farm mem|uds] [--diskd PATH] [--max-respawns N]
/// ```
///
/// Sizes are in records (`--block`) and block slots per disk
/// (`--slots`, `--quantum`). `--farm uds` runs one file-backed
/// `pdm-diskd` process per disk (found next to this binary, or at
/// `--diskd`), with crashed workers respawned up to `--max-respawns`
/// times each.
pub fn served_main(args: impl Iterator<Item = String>) -> i32 {
    let mut socket: Option<PathBuf> = None;
    let mut config = ServiceConfig::default();
    let mut farm_uds = false;
    let mut diskd: Option<PathBuf> = None;
    let mut max_respawns: u32 = 4;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("pdm-served: {name} requires a value");
            }
            v
        };
        let parsed = |name: &str, v: Option<String>| -> Option<usize> {
            let parsed = v.as_deref().and_then(|v| v.parse().ok());
            if parsed.is_none() {
                eprintln!("pdm-served: {name} wants a number, got {v:?}");
            }
            parsed
        };
        match flag.as_str() {
            "--socket" => socket = value("--socket").map(PathBuf::from),
            "--block" => match parsed("--block", value("--block")) {
                Some(v) => config.block = v,
                None => return 2,
            },
            "--disks" => match parsed("--disks", value("--disks")) {
                Some(v) => config.disks = v,
                None => return 2,
            },
            "--slots" => match parsed("--slots", value("--slots")) {
                Some(v) => config.slots = v,
                None => return 2,
            },
            "--quantum" => match parsed("--quantum", value("--quantum")) {
                Some(v) => config.quantum = v as u64,
                None => return 2,
            },
            "--max-queue" => match parsed("--max-queue", value("--max-queue")) {
                Some(v) => config.max_queue = v,
                None => return 2,
            },
            "--max-running" => match parsed("--max-running", value("--max-running")) {
                Some(v) => config.max_running = v,
                None => return 2,
            },
            "--sweep-ms" => match parsed("--sweep-ms", value("--sweep-ms")) {
                Some(v) => config.sweep_ms = v as u64,
                None => return 2,
            },
            "--retry-backoff-ms" => {
                match parsed("--retry-backoff-ms", value("--retry-backoff-ms")) {
                    Some(v) => config.retry_backoff_ms = v as u64,
                    None => return 2,
                }
            }
            "--farm" => match value("--farm").as_deref() {
                Some("mem") => farm_uds = false,
                Some("uds") => farm_uds = true,
                other => {
                    eprintln!("pdm-served: --farm wants mem or uds, got {other:?}");
                    return 2;
                }
            },
            "--diskd" => diskd = value("--diskd").map(PathBuf::from),
            "--max-respawns" => match parsed("--max-respawns", value("--max-respawns")) {
                Some(v) => max_respawns = v as u32,
                None => return 2,
            },
            other => {
                eprintln!("pdm-served: unknown flag {other}");
                return 2;
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!(
            "usage: pdm-served --socket PATH [--block N] [--disks N] [--slots N] \
             [--quantum N] [--max-queue N] [--max-running N] [--sweep-ms N] \
             [--retry-backoff-ms N] [--farm mem|uds] [--diskd PATH] [--max-respawns N]"
        );
        return 2;
    };
    let backend = if farm_uds {
        let Some(bin) = diskd.or_else(pdm::transport::find_diskd) else {
            eprintln!(
                "pdm-served: --farm uds needs the pdm-diskd worker binary \
                 (build it, set PDM_DISKD_BIN, or pass --diskd PATH)"
            );
            return 2;
        };
        FarmBackend::Uds { bin, max_respawns }
    } else {
        FarmBackend::Mem
    };
    let farm = match DiskFarm::with_backend(config.block, config.disks, config.slots, &backend) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pdm-served: farm: {e}");
            return 1;
        }
    };
    let _ = std::fs::remove_file(&socket);
    let listener = match UnixListener::bind(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pdm-served: bind {}: {e}", socket.display());
            return 1;
        }
    };
    let core = ServiceCore::new_with_farm(config, farm);
    println!(
        "pdm-served: listening on {} (B={} D={} slots={} quantum={} farm={} sweep={}ms)",
        socket.display(),
        config.block,
        config.disks,
        config.slots,
        config.quantum,
        if farm_uds { "uds" } else { "mem" },
        config.sweep_ms
    );
    serve_listener(listener, Arc::clone(&core));
    core.shutdown();
    0
}
