//! End-to-end tests of the job service over a real Unix socket:
//! handshake, submit/status/cancel/result round trips, typed
//! rejection, and crashed-client cleanup.

use pdm_served::client::Client;
use pdm_served::core::{JobState, Reject, ServiceConfig, ServiceCore};
use pdm_served::job::{JobKind, JobSpec};
use pdm_served::server::serve_listener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn socket_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "pdm-served-test-{}-{tag}-{seq}.sock",
        std::process::id()
    ))
}

fn start(config: ServiceConfig, tag: &str) -> (Arc<ServiceCore>, PathBuf) {
    let path = socket_path(tag);
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind test socket");
    let core = ServiceCore::new(config);
    let served = Arc::clone(&core);
    std::thread::Builder::new()
        .name(format!("pdm-served-{tag}"))
        .spawn(move || serve_listener(listener, served))
        .expect("spawn server");
    (core, path)
}

fn quick_config() -> ServiceConfig {
    ServiceConfig {
        block: 4,
        disks: 4,
        slots: 1 << 10,
        quantum: 16,
        max_queue: 8,
        max_running: 4,
        ..ServiceConfig::default()
    }
}

#[test]
fn submit_result_status_cancel_over_the_socket() {
    let (core, path) = start(quick_config(), "roundtrip");
    let mut client = Client::connect(&path).expect("connect");

    // A bad spec is refused with a typed reject, not a dead socket.
    let bad = JobSpec::new(JobKind::Sort, 8, 1 << 6, 0);
    match client.submit(&bad).expect("transport fine") {
        Err(Reject::BadGeometry(_)) => {}
        other => panic!("expected BadGeometry, got {other:?}"),
    }

    let mut spec = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, 5);
    spec.verify = true;
    let id = client.submit(&spec).expect("transport").expect("accepted");
    let status = client.result(id).expect("transport").expect("known id");
    assert_eq!(status.state, JobState::Done);
    let report = status.report.expect("done jobs carry a report");
    assert!(report.verified);
    assert_eq!(status.usage.io, report.io, "ledger matches job counters");

    // Status after the fact still works; unknown ids are typed.
    let again = client.status(id).expect("transport").expect("known id");
    assert_eq!(again.state, JobState::Done);
    assert!(client.status(9999).expect("transport").is_none());
    assert!(!client.cancel(id).expect("transport"), "terminal: not live");

    let overview = client.overview().expect("transport");
    assert_eq!(overview.running, 0);
    assert_eq!(overview.finished, 1);
    assert_eq!(overview.free_slots, core.config().slots);
    core.shutdown();
}

#[test]
fn two_concurrent_clients_share_the_array() {
    let (core, path) = start(quick_config(), "pair");
    let mut a = Client::connect(&path).expect("connect a");
    let mut b = Client::connect(&path).expect("connect b");
    let spec = JobSpec::new(JobKind::Bmmc, 1 << 12, 1 << 7, 11);
    let ja = a.submit(&spec).unwrap().expect("a accepted");
    let jb = b.submit(&spec).unwrap().expect("b accepted");
    let sa = a.result(ja).unwrap().expect("known");
    let sb = b.result(jb).unwrap().expect("known");
    assert_eq!(sa.state, JobState::Done);
    assert_eq!(sb.state, JobState::Done);
    // Identical jobs: identical charged I/O, to the operation.
    assert_eq!(sa.usage.io, sb.usage.io);
    core.shutdown();
}

#[test]
fn client_disconnect_cancels_its_running_job() {
    let (core, path) = start(quick_config(), "disconnect");
    let mut doomed = Client::connect(&path).expect("connect doomed");
    let mut watcher = Client::connect(&path).expect("connect watcher");

    // Big enough to still be running when the client vanishes.
    let spec = JobSpec::new(JobKind::Sort, 1 << 13, 1 << 7, 3);
    let id = doomed.submit(&spec).unwrap().expect("accepted");
    drop(doomed); // crash: no CANCEL, no clean goodbye

    // The sweep lands asynchronously; poll through the other client.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let final_state = loop {
        let status = watcher.status(id).expect("transport").expect("known id");
        if status.state.is_terminal() {
            break status.state;
        }
        assert!(std::time::Instant::now() < deadline, "sweep never landed");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        matches!(final_state, JobState::Cancelled | JobState::Done),
        "cancel raced completion: {final_state:?}"
    );

    // All capacity is back and nothing is left running or leased.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let o = watcher.overview().expect("transport");
        if o.running == 0 && o.free_slots == core.config().slots {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "capacity never freed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The watcher's own connection still works end to end.
    let mut quick = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, 1);
    quick.verify = true;
    let qid = watcher.submit(&quick).unwrap().expect("accepted");
    let s = watcher.result(qid).unwrap().expect("known");
    assert_eq!(s.state, JobState::Done);
    core.shutdown();
}

#[test]
fn retry_budget_recovers_a_faulted_job_over_the_wire() {
    let mut config = quick_config();
    config.sweep_ms = 5;
    config.retry_backoff_ms = 1;
    let (core, path) = start(config, "retry");
    let mut client = Client::connect(&path).expect("connect");
    let mut spec = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, 21);
    spec.verify = true;
    spec.fault = Some((2, 1)); // kills attempt 1
    spec.max_retries = 2;
    spec.deadline_ms = Some(60_000);
    let id = client.submit(&spec).unwrap().expect("accepted");
    let s = client.result(id).unwrap().expect("known");
    assert_eq!(s.state, JobState::Done, "error: {:?}", s.error);
    assert_eq!(s.attempts, 2, "wire carries the attempt count");
    assert!(s.report.expect("report").verified);
    let o = client.overview().expect("transport");
    assert_eq!(o.free_slots, core.config().slots, "retry leaks no lease");
    core.shutdown();
}

#[test]
fn mid_job_disk_crash_fails_only_that_job() {
    let (core, path) = start(quick_config(), "fault");
    let mut client = Client::connect(&path).expect("connect");
    let mut faulty = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, 21);
    faulty.fault = Some((2, 1)); // sever disk 1 at parallel I/O 2
    let healthy = JobSpec::new(JobKind::Bmmc, 1 << 10, 1 << 6, 21);

    let jf = client.submit(&faulty).unwrap().expect("accepted");
    let jh = client.submit(&healthy).unwrap().expect("accepted");
    let sf = client.result(jf).unwrap().expect("known");
    let sh = client.result(jh).unwrap().expect("known");
    assert_eq!(sf.state, JobState::Failed);
    assert!(
        sf.error.as_deref().unwrap_or("").contains("disconnected")
            || sf.error.as_deref().unwrap_or("").contains("disk"),
        "error names the disk trouble: {:?}",
        sf.error
    );
    assert_eq!(sh.state, JobState::Done, "other tenants unaffected");
    let o = client.overview().expect("transport");
    assert_eq!(o.free_slots, core.config().slots, "fault leaks no lease");
    core.shutdown();
}
