//! Shared helpers for the table/figure regenerators and criterion
//! benches: canonical geometries, measurement wrappers, and plain-text
//! table formatting.

pub mod json;

use bmmc::algorithm::perform_bmmc;
use bmmc::passes::reference_permute;
use bmmc::Bmmc;
use pdm::{DiskSystem, Geometry, IoStats};

/// The paper's Figure 2 geometry: n=13, b=3, d=4, m=8.
pub fn fig2_geometry() -> Geometry {
    Geometry::new(1 << 13, 1 << 3, 1 << 4, 1 << 8).unwrap()
}

/// A laptop-scale default geometry for the experiments:
/// N=2^16, B=2^4, D=2^3, M=2^10.
pub fn default_geometry() -> Geometry {
    Geometry::new(1 << 16, 1 << 4, 1 << 3, 1 << 10).unwrap()
}

/// Measured outcome of performing one permutation.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Passes executed.
    pub passes: usize,
    /// Total I/O.
    pub ios: IoStats,
}

/// Runs `perm` on a fresh memory-backed system with identity-tagged
/// `u64` records, verifies the final placement, and returns the
/// measured cost.
pub fn measure_bmmc(geom: Geometry, perm: &Bmmc) -> Measured {
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
    let input: Vec<u64> = (0..geom.records() as u64).collect();
    sys.load_records(0, &input);
    let report = perform_bmmc(&mut sys, perm).expect("perform_bmmc failed");
    let expect = reference_permute(&input, |x| perm.target(x));
    assert_eq!(
        sys.dump_records(report.final_portion),
        expect,
        "verification failed while measuring"
    );
    Measured {
        passes: report.num_passes(),
        ios: report.total,
    }
}

/// A minimal fixed-width table printer for the regenerator binaries.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Pretty geometry label like `N=2^16 B=2^4 D=2^3 M=2^10`.
pub fn geom_label(g: &Geometry) -> String {
    format!("N=2^{} B=2^{} D=2^{} M=2^{}", g.n(), g.b(), g.d(), g.m())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmmc::catalog;

    #[test]
    fn measure_runs_and_verifies() {
        let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
        let m = measure_bmmc(g, &catalog::bit_reversal(g.n()));
        assert!(m.passes >= 1);
        assert!(m.ios.parallel_ios() > 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 3);
    }
}
