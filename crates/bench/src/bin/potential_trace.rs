//! The potential-function view of the algorithm (**Section 2 /
//! Section 7**): track the Aggarwal–Vitter potential Φ across the
//! passes of the factored algorithm, verify the endpoints
//! (`Φ(0) = N(lg B − rank γ)`, `Φ(t) = N lg B`), and compare per-I/O
//! potential gain with the sharpened Δ_max of Section 7 — the
//! open-question diagnostic ("does each pass increase the potential by
//! Ω((N/BD)·Δ_max)?").
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin potential_trace
//! ```

use bmmc::potential::{delta_max, final_potential, initial_potential_formula, trace_potential};
use bmmc::{bounds, factor, Bmmc};
use bmmc_bench::{geom_label, Table};
use gf2::elim::rank;
use gf2::sample::random_with_submatrix_rank;
use pdm::{DiskSystem, Geometry, TaggedRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(29);
    let geom = Geometry::new(1 << 14, 1 << 4, 1 << 2, 1 << 9).unwrap();
    println!("Potential trajectory @ {}\n", geom_label(&geom));
    let (n, b) = (geom.n(), geom.b());
    let r = b.min(n - b); // maximal rank: the hardest instances
    let a = random_with_submatrix_rank(&mut rng, n, b, r);
    let perm = Bmmc::linear(a).unwrap();
    let r_gamma = rank(&perm.matrix().submatrix(b..n, 0..b));

    let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(geom, 2);
    sys.load_records(
        0,
        &(0..geom.records() as u64)
            .map(TaggedRecord::new)
            .collect::<Vec<_>>(),
    );
    let fac = factor(&perm, geom.b(), geom.m()).unwrap();
    let (report, traj) =
        trace_potential(&mut sys, &fac, |rec| rec.key, |x| perm.target(x)).unwrap();

    let dmax = delta_max(geom.block(), geom.disks(), geom.lg_mb());
    let mut t = Table::new(&["after pass", "Φ", "ΔΦ", "I/Os", "gain/I/O", "Δ_max"]);
    t.row(&[
        "(start)".into(),
        format!("{:.0}", traj[0]),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{dmax:.1}"),
    ]);
    for (i, w) in traj.windows(2).enumerate() {
        let ios = report.passes[i].ios.parallel_ios();
        t.row(&[
            format!("{} ({})", i + 1, report.passes[i].label()),
            format!("{:.0}", w[1]),
            format!("{:+.0}", w[1] - w[0]),
            ios.to_string(),
            format!("{:.2}", (w[1] - w[0]) / ios as f64),
            format!("{dmax:.1}"),
        ]);
    }
    t.print();

    let phi0 = initial_potential_formula(geom.records(), geom.b(), r_gamma);
    let phit = final_potential(geom.records(), geom.b());
    println!(
        "\neq. (9) initial potential: {phi0:.0} (measured {:.0})",
        traj[0]
    );
    println!(
        "final potential N lg B:   {phit:.0} (measured {:.0})",
        traj.last().unwrap()
    );
    println!(
        "§7 precise lower bound:   {:.0} parallel I/Os (measured {}; Theorem 21 upper {})",
        bounds::precise_lower(&geom, r_gamma),
        report.total.parallel_ios(),
        bounds::theorem21_upper(&geom, r_gamma)
    );
    assert!((traj[0] - phi0).abs() < 1e-6);
    assert!((traj.last().unwrap() - phit).abs() < 1e-6);
}
