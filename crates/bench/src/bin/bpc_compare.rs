//! BPC permutations, old algorithm vs new (Section 1, "BPC
//! permutations"): the \[4\]-style baseline (executable, pass structure
//! `2⌈ρ_m/lg(M/B)⌉+1`) against the new BMMC algorithm on the paper's
//! named BPC workloads — showing the "factor of 2 → factor of 1"
//! improvement and that cross-rank is obviated.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin bpc_compare
//! ```

use bmmc::bpc_baseline::perform_bpc_baseline;
use bmmc::{bounds, catalog};
use bmmc_bench::{default_geometry, geom_label, measure_bmmc, Table};
use gf2::elim::rank;
use gf2::perm::bpc_cross_rank;
use pdm::DiskSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let geom = default_geometry();
    println!("BPC comparison @ {}\n", geom_label(&geom));
    let (n, b, m) = (geom.n(), geom.b(), geom.m());
    let mut t = Table::new(&[
        "permutation",
        "ρ(A)",
        "rank γ",
        "old bound I/Os",
        "baseline I/Os",
        "new I/Os",
        "baseline/new",
    ]);
    let cases: Vec<(String, bmmc::Bmmc)> = vec![
        ("transpose 2^8 x 2^8".into(), catalog::transpose(n, 8)),
        ("transpose 2^12 x 2^4".into(), catalog::transpose(n, 12)),
        ("bit reversal".into(), catalog::bit_reversal(n)),
        ("vector reversal".into(), catalog::vector_reversal(n)),
        ("reblocking".into(), catalog::swap_fields(n, b)),
        ("random BPC #0".into(), catalog::random_bpc(&mut rng, n)),
        ("random BPC #1".into(), catalog::random_bpc(&mut rng, n)),
    ];
    for (name, perm) in cases {
        let rho = bpc_cross_rank(perm.matrix(), b, m);
        let r_gamma = rank(&perm.matrix().submatrix(b..n, 0..b));
        let old_bound = bounds::old_bpc_upper(&geom, rho);

        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.load_records(0, &(0..geom.records() as u64).collect::<Vec<_>>());
        let baseline = perform_bpc_baseline(&mut sys, &perm).expect("baseline failed");
        let new = measure_bmmc(geom, &perm);

        t.row(&[
            name,
            rho.to_string(),
            r_gamma.to_string(),
            old_bound.to_string(),
            baseline.total.parallel_ios().to_string(),
            new.ios.parallel_ios().to_string(),
            format!(
                "{:.1}x",
                baseline.total.parallel_ios() as f64 / new.ios.parallel_ios() as f64
            ),
        ]);
        assert!(baseline.total.parallel_ios() <= old_bound);
    }
    t.print();
    println!(
        "\nThe new algorithm is asymptotically optimal for BPC inputs too, and its cost \
         depends on rank γ alone — the cross-rank ρ(A) of [4] is obviated (Section 1)."
    );
}
