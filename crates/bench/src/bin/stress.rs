//! Scale demonstration: a multi-million-record permutation through the
//! full pipeline, with wall-clock timing and throughput.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin stress
//! ```

use bmmc::{bounds, catalog, perform_bmmc};
use bmmc_bench::{geom_label, Table};
use gf2::elim::rank;
use pdm::{DiskSystem, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut t = Table::new(&[
        "geometry",
        "records",
        "passes",
        "parallel I/Os",
        "wall time",
        "Mrec/s",
    ]);
    for n_exp in [18u32, 20, 22] {
        let geom = Geometry::new(1 << n_exp, 1 << 6, 1 << 3, 1 << 14).unwrap();
        let perm = catalog::random_bmmc(&mut rng, geom.n());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.load_records(0, &(0..geom.records() as u64).collect::<Vec<_>>());
        let start = Instant::now();
        let report = perform_bmmc(&mut sys, &perm).expect("stress run failed");
        let dt = start.elapsed();
        // Spot-verify a sample of placements.
        let out = sys.dump_records(report.final_portion);
        for x in (0..geom.records() as u64).step_by(9973) {
            assert_eq!(out[perm.target(x) as usize], x, "misplaced record {x}");
        }
        let r = rank(&perm.matrix().submatrix(geom.b()..geom.n(), 0..geom.b()));
        assert!(report.total.parallel_ios() <= bounds::theorem21_upper(&geom, r));
        t.row(&[
            geom_label(&geom),
            geom.records().to_string(),
            report.num_passes().to_string(),
            report.total.parallel_ios().to_string(),
            format!("{:.2}s", dt.as_secs_f64()),
            format!(
                "{:.1}",
                geom.records() as f64 * report.num_passes() as f64 / dt.as_secs_f64() / 1e6
            ),
        ]);
    }
    t.print();
    println!("\nall placements spot-verified; Theorem 21 bound held at every size.");
}
