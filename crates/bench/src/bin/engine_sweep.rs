//! Old loop vs. streaming engine, across disk counts and service
//! disciplines — the bench behind `BENCH_PR2.json` and the CI
//! `bench-smoke` perf gate.
//!
//! For each `D` the sweep performs the same seeded one-pass MLD
//! permutation (striped reads + independent writes, the paper's
//! Theorem 15 discipline) four ways:
//!
//! * `legacy`/`serial`   — the superseded per-call-site loop
//!   (`bmmc::passes::reference`) with serial disk servicing;
//! * `legacy`/`threaded` — the same loop with the old
//!   spawn-one-thread-per-disk-per-I/O servicing
//!   ([`ServiceMode::SpawnPerOp`]);
//! * `engine`/`serial`   — the [`pdm::PassEngine`] streaming loop,
//!   serial servicing (buffer reuse only);
//! * `engine`/`threaded` — the engine on the persistent per-disk
//!   service threads ([`ServiceMode::Threaded`]), overlapping the
//!   reads of memoryload *k+1* with the permute of memoryload *k*.
//!
//! Every configuration is verified against the reference permutation
//! and must charge the *identical* number of parallel I/Os — the model
//! cost may not change, only the wall clock.
//!
//! Since PR 3 the document also carries a **fusion** section (multi-
//! pass plans executed fused vs. unfused — the fused runs must charge
//! strictly fewer parallel I/Os, exactly 2× fewer on fully-fusable
//! chains, with identical final placement) and an **extsort** section.
//! Since PR 8 a **recovery** section runs the same seeded BMMC
//! permutation clean and under a ~1%-transient-fault plan with the
//! retry layer engaged: placement, charged parallel I/Os, and the
//! retry ledger are exact-gated, and `--baseline` requires recovered
//! throughput ≥ 0.8× clean.
//! Since PR 5 the extsort section sweeps all three merge strategies
//! (single-buffered, double-buffered, and the forecasting
//! block-granular merge whose fan-in `M/B − D − 1` closes the D× gap
//! to Vitter–Shriver) across serial/threaded service and mem/file
//! backends, asserting every row's pass count and parallel-I/O count
//! equals the `bmmc::bounds::merge_sort_*` prediction and that the
//! forecast rows reach ≥8× the single-buffered fan-in in strictly
//! fewer passes. Since PR 4 a **file** section runs the same engine
//! pass on MemDisk vs. `FileDisk` (real positional file I/O) under the
//! serial / spawn-per-op / persistent-DiskPool disciplines: placement
//! must be byte-identical and the charged parallel-I/O counts
//! identical — only the wall clock may move. Since PR 6 a **transport**
//! section serves the same engine pass in-process, over per-disk
//! `pdm-diskd` worker processes (Unix-domain sockets), and over the
//! deterministic simulated network: placement and parallel-I/O counts
//! identical, in-process rows move zero messages, and the sim rows'
//! message/byte counts equal the real socket rows' exactly.
//! Since PR 9 an **addr_eval** section measures the block-run address
//! evaluator against the per-address one, both as an isolated kernel
//! (addresses/s over ~2^22 sequential addresses, no I/O) and end to
//! end on the bpc-baseline bit-reversal workload run per strategy:
//! placement and parallel-I/O counts are exact-gated, and `--baseline`
//! requires the block-run kernel ≥ 4× and the block-run end-to-end
//! ≥ 1.2× their per-address counterparts.
//! Since PR 10 a **planner** section emits the `--algorithm auto`
//! crossover table: for each named workload × geometry × timing model,
//! `bmmc::plan::candidates` + `choose` pick among the DP-fused BMMC
//! route and the three external-sort routes, and the pick itself is
//! part of the row *key* — a code change that flips any crossover
//! decision fails the `--check` gate as a missing row rather than
//! silently re-baselining. The section also carries the committed
//! `MLD;MRC;MLD` re-association chain (greedy pair fusion stuck at two
//! steps, the DP whole-plan fuser at one); the addr_eval section gains
//! a residual-table **cap sweep** (flat table vs byte-sliced fallback
//! per width — the tuning evidence behind `RESIDUAL_TABLE_MAX_BITS`);
//! and the extsort section gains adversarial-input rows
//! (duplicate-heavy and skewed key catalogs from `extsort::keys`),
//! whose schedules must stay input-independent.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin engine_sweep -- [FLAGS]
//!   --quick          small sizes (CI smoke); emits the "quick",
//!                    "fusion", "extsort", "service", "recovery",
//!                    "addr_eval", "planner", "transport", and "file"
//!                    sections
//!   --baseline       run full + quick and insist on the acceptance ratios
//!   --file-dir DIR   parent directory for the file section's per-disk
//!                    files (e.g. a tmpfs mount); default: a
//!                    self-cleaning temp dir
//!   --file-only      run (and with --check, gate) only the file section
//!   --transport X    run (and with --check, gate) only the transport
//!                    section, restricted to {inproc, X} — the CI UDS
//!                    smoke step (needs the pdm-diskd binary for X=uds)
//!   --out FILE       write the JSON document to FILE
//!   --check FILE     compare this run's quick/fusion/extsort/service/
//!                    recovery/addr_eval/planner/file/transport
//!                    sections against FILE's; exit 1 if the
//!                    engine regressed >20% vs. the recorded speedup
//!                    (rows whose recorded ratio is below the 1.5x
//!                    acceptance bar are noise and not time-gated) or
//!                    any parallel-I/O or transport message count moved
//!                    at all
//!   --check-latest   like --check, against the newest BENCH_PR*.json in
//!                    the working directory (per-PR bench trajectory)
//! ```

use bmmc::algorithm::{execute_passes, execute_passes_strategy, execute_passes_unfused};
use bmmc::bounds;
use bmmc::bpc_baseline::bpc_baseline_plan;
use bmmc::catalog;
use bmmc::factoring::{Pass, PassKind};
use bmmc::fusion::fuse_passes;
use bmmc::passes::{execute_pass, reference, reference_permute, EvalStrategy};
use bmmc::{
    candidates, choose, fuse_passes_greedy, AffineEvaluator, BlockEvaluator, Bmmc, CandidateKind,
    Plan, PlanStep,
};
use bmmc_bench::json::Json;
use extsort::{keys, sort_by_key_with, MergeStrategy, SortConfig};
use pdm::{
    Backend, DiskSystem, FaultPlan, Geometry, MsgStats, RetryPolicy, ServiceMode, TimingModel,
    TransportConfig,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

#[derive(Clone, Copy, Debug)]
struct Row {
    disks: usize,
    mode: &'static str,  // "serial" | "threaded"
    impl_: &'static str, // "legacy" | "engine"
    records_per_sec: f64,
    elapsed_ms: f64,
    parallel_ios: u64,
    passes: usize,
}

impl Row {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("disks", Json::Num(self.disks as f64)),
            ("mode", Json::Str(self.mode.into())),
            ("impl", Json::Str(self.impl_.into())),
            (
                "records_per_sec",
                Json::Num((self.records_per_sec * 10.0).round() / 10.0),
            ),
            (
                "elapsed_ms",
                Json::Num((self.elapsed_ms * 1000.0).round() / 1000.0),
            ),
            ("parallel_ios", Json::Num(self.parallel_ios as f64)),
            ("passes", Json::Num(self.passes as f64)),
        ])
    }
}

/// One sweep (a set of sizes): the geometry template and disk counts.
struct SweepSpec {
    name: &'static str,
    lg_records: usize,
    lg_block: usize,
    lg_memory: usize,
    disk_counts: &'static [usize],
    reps: usize,
}

const FULL: SweepSpec = SweepSpec {
    name: "full",
    lg_records: 20,
    lg_block: 3,
    lg_memory: 13,
    disk_counts: &[1, 4, 16, 64],
    reps: 5,
};

const QUICK: SweepSpec = SweepSpec {
    name: "quick",
    lg_records: 18,
    lg_block: 3,
    lg_memory: 12,
    disk_counts: &[1, 4, 16],
    reps: 5,
};

fn service_mode(mode: &str, use_engine: bool) -> ServiceMode {
    match (mode, use_engine) {
        ("serial", _) => ServiceMode::Serial,
        // "threaded" means each implementation's own threading story:
        // the old loop only ever had spawn-per-op servicing.
        ("threaded", false) => ServiceMode::SpawnPerOp,
        ("threaded", true) => ServiceMode::Threaded,
        _ => unreachable!("unknown mode {mode}"),
    }
}

fn run_config(
    geom: Geometry,
    pass: &Pass,
    expect: &[u64],
    mode: &'static str,
    impl_: &'static str,
    reps: usize,
) -> Row {
    let use_engine = impl_ == "engine";
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
    sys.set_service_mode(service_mode(mode, use_engine));
    let input: Vec<u64> = (0..geom.records() as u64).collect();
    sys.load_records(0, &input);
    let execute = |sys: &mut DiskSystem<u64>| {
        if use_engine {
            execute_pass(sys, 0, 1, pass).expect("engine pass failed")
        } else {
            reference::execute_pass(sys, 0, 1, pass).expect("reference pass failed")
        }
    };
    // Warm-up rep doubles as the correctness check.
    let stats = execute(&mut sys);
    assert_eq!(
        sys.dump_records(1),
        expect,
        "{impl_}/{mode} D={} produced a wrong permutation",
        geom.disks()
    );
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = execute(&mut sys);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(
            s.ios.parallel_ios(),
            stats.ios.parallel_ios(),
            "parallel I/O count changed between reps"
        );
        best = best.min(dt);
    }
    Row {
        disks: geom.disks(),
        mode,
        impl_,
        records_per_sec: geom.records() as f64 / best,
        elapsed_ms: best * 1e3,
        parallel_ios: stats.ios.parallel_ios(),
        passes: 1,
    }
}

fn run_sweep(spec: &SweepSpec) -> (Vec<Row>, Json) {
    let mut rows = Vec::new();
    eprintln!(
        "== {} sweep: N=2^{}, B=2^{}, M=2^{}, best of {} reps",
        spec.name, spec.lg_records, spec.lg_block, spec.lg_memory, spec.reps
    );
    for &d in spec.disk_counts {
        let geom = Geometry::new(
            1 << spec.lg_records,
            1 << spec.lg_block,
            d,
            1 << spec.lg_memory,
        )
        .expect("sweep geometry is valid");
        // One seeded MLD permutation per geometry so every
        // implementation performs the identical data movement.
        let mut rng = StdRng::seed_from_u64(0xB44C + d as u64);
        let perm = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
        let pass = Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind: PassKind::Mld,
        };
        let input: Vec<u64> = (0..geom.records() as u64).collect();
        let expect = reference_permute(&input, |x| perm.target(x));
        for mode in ["serial", "threaded"] {
            let mut ios = None;
            for impl_ in ["legacy", "engine"] {
                let row = run_config(geom, &pass, &expect, mode, impl_, spec.reps);
                eprintln!(
                    "   D={:<3} {:<8} {:<6} {:>12.0} rec/s  {:>8.2} ms  {} parallel I/Os",
                    row.disks, mode, impl_, row.records_per_sec, row.elapsed_ms, row.parallel_ios
                );
                if let Some(prev) = ios {
                    assert_eq!(
                        prev, row.parallel_ios,
                        "engine changed the charged I/O count at D={d} {mode}"
                    );
                }
                ios = Some(row.parallel_ios);
                rows.push(row);
            }
        }
    }
    let rows_ref = &rows;
    let speedups: Vec<Json> = spec
        .disk_counts
        .iter()
        .flat_map(|&d| {
            ["serial", "threaded"].into_iter().map(move |mode| {
                let s = speedup(rows_ref, d, mode).expect("both impls present");
                Json::obj(vec![
                    ("disks", Json::Num(d as f64)),
                    ("mode", Json::Str(mode.into())),
                    (
                        "engine_over_legacy",
                        Json::Num((s * 1000.0).round() / 1000.0),
                    ),
                ])
            })
        })
        .collect();
    let section = Json::obj(vec![
        (
            "geometry",
            Json::obj(vec![
                ("lg_records", Json::Num(spec.lg_records as f64)),
                ("lg_block", Json::Num(spec.lg_block as f64)),
                ("lg_memory", Json::Num(spec.lg_memory as f64)),
            ]),
        ),
        ("reps", Json::Num(spec.reps as f64)),
        (
            "rows",
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        ),
        ("speedups", Json::Arr(speedups)),
    ]);
    (rows, section)
}

/// One fusion workload: a named multi-pass plan on a geometry.
struct FusionCase {
    workload: &'static str,
    geom: Geometry,
    passes: Vec<Pass>,
    expect: Vec<u64>,
    /// True when the whole chain must fuse pairwise (exactly 2× fewer
    /// I/Os).
    fully_fusable: bool,
}

fn fusion_cases(lg_records: usize) -> Vec<FusionCase> {
    let mut cases = Vec::new();
    let pass_of = |perm: &Bmmc, kind: PassKind| Pass {
        matrix: perm.matrix().clone(),
        complement: perm.complement().clone(),
        kind,
    };

    // Workload 1: the BPC baseline plan for bit reversal at a geometry
    // with a narrow middle section (m − b = 3), so the exchange needs
    // several chunks: 2k+1 planned passes fuse to k+1 steps.
    {
        let geom = Geometry::new(1 << lg_records, 1 << 6, 1 << 2, 1 << 9).expect("bpc geometry");
        let perm = catalog::bit_reversal(geom.n());
        let passes = bpc_baseline_plan(&perm, geom.b(), geom.m())
            .expect("bit reversal is BPC")
            .passes;
        assert!(passes.len() >= 5, "want a multi-chunk baseline plan");
        let input: Vec<u64> = (0..geom.records() as u64).collect();
        let expect = reference_permute(&input, |x| perm.target(x));
        cases.push(FusionCase {
            workload: "bpc-baseline",
            geom,
            passes,
            expect,
            fully_fusable: false,
        });
    }

    // Workload 2: an alternating MRC/MLD chain — every pair fuses by
    // the discipline rule, so the fused run must charge exactly half.
    {
        let geom = Geometry::new(1 << lg_records, 1 << 3, 1 << 2, 1 << 12).expect("alt geometry");
        let mut rng = StdRng::seed_from_u64(0xF05E);
        let mut passes = Vec::new();
        let mut composed = Bmmc::identity(geom.n());
        for _ in 0..3 {
            let mrc = catalog::random_mrc(&mut rng, geom.n(), geom.m());
            let mld = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
            passes.push(pass_of(&mrc, PassKind::Mrc));
            passes.push(pass_of(&mld, PassKind::Mld));
            composed = mld.compose(&mrc.compose(&composed));
        }
        let input: Vec<u64> = (0..geom.records() as u64).collect();
        let expect = reference_permute(&input, |x| composed.target(x));
        cases.push(FusionCase {
            workload: "alternating-chain",
            geom,
            passes,
            expect,
            fully_fusable: true,
        });
    }

    // Workload 3: the Section 7 MLD⁻¹;MLD pair — gathered reads,
    // scattered writes, one round-trip instead of two.
    {
        let geom = Geometry::new(1 << lg_records, 1 << 3, 1 << 2, 1 << 12).expect("pair geometry");
        let mut rng = StdRng::seed_from_u64(0xF19A);
        let z = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
        let y = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
        let passes = vec![
            pass_of(&z.inverse(), PassKind::MldInverse),
            pass_of(&y, PassKind::Mld),
        ];
        let composed = y.compose(&z.inverse());
        let input: Vec<u64> = (0..geom.records() as u64).collect();
        let expect = reference_permute(&input, |x| composed.target(x));
        cases.push(FusionCase {
            workload: "mld-pair",
            geom,
            passes,
            expect,
            fully_fusable: true,
        });
    }
    cases
}

/// Fused vs. unfused execution of multi-pass plans. Verifies identical
/// placement and strictly fewer parallel I/Os fused (exactly 2× on the
/// fully-fusable chains) — the PR 3 acceptance criterion — and reports
/// the timings.
fn run_fusion_sweep(lg_records: usize, reps: usize) -> Json {
    eprintln!("== fusion sweep: N=2^{lg_records}, threaded, best of {reps} reps");
    let mut rows: Vec<Json> = Vec::new();
    for case in fusion_cases(lg_records) {
        let geom = case.geom;
        let plan = fuse_passes(&case.passes, geom.b(), geom.m());
        let mut ios = [0u64; 2]; // [unfused, fused]
        for (fi, fused) in [false, true].into_iter().enumerate() {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
            sys.set_service_mode(ServiceMode::Threaded);
            let input: Vec<u64> = (0..geom.records() as u64).collect();
            sys.load_records(0, &input);
            let execute = |sys: &mut DiskSystem<u64>| {
                if fused {
                    execute_passes(sys, &case.passes).expect("fused run")
                } else {
                    execute_passes_unfused(sys, &case.passes).expect("unfused run")
                }
            };
            let report = execute(&mut sys);
            assert_eq!(
                sys.dump_records(report.final_portion),
                case.expect,
                "{} ({}) produced a wrong permutation",
                case.workload,
                if fused { "fused" } else { "unfused" }
            );
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let r = execute(&mut sys);
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(r.total.parallel_ios(), report.total.parallel_ios());
            }
            ios[fi] = report.total.parallel_ios();
            eprintln!(
                "   {:<18} {:<8} {:>2} pass(es) for {:>2} planned  {:>7} parallel I/Os  {:>8.2} ms",
                case.workload,
                if fused { "fused" } else { "unfused" },
                report.num_passes(),
                case.passes.len(),
                report.total.parallel_ios(),
                best * 1e3,
            );
            rows.push(Json::obj(vec![
                ("workload", Json::Str(case.workload.into())),
                (
                    "impl",
                    Json::Str(if fused { "fused" } else { "unfused" }.into()),
                ),
                ("planned_passes", Json::Num(case.passes.len() as f64)),
                ("executed_passes", Json::Num(report.num_passes() as f64)),
                (
                    "parallel_ios",
                    Json::Num(report.total.parallel_ios() as f64),
                ),
                (
                    "records_per_sec",
                    Json::Num(((geom.records() as f64 / best) * 10.0).round() / 10.0),
                ),
                (
                    "elapsed_ms",
                    Json::Num((best * 1e3 * 1000.0).round() / 1000.0),
                ),
            ]));
        }
        // The acceptance criterion: strictly fewer parallel I/Os with
        // identical placement; exactly 2× on fully-fusable chains.
        assert!(
            ios[1] < ios[0],
            "{}: fused {} parallel I/Os not strictly below unfused {}",
            case.workload,
            ios[1],
            ios[0]
        );
        assert_eq!(
            ios[1] as usize,
            plan.num_steps() * geom.ios_per_pass(),
            "{}: fused cost must be one pass per step",
            case.workload
        );
        if case.fully_fusable {
            assert_eq!(
                2 * ios[1],
                ios[0],
                "{}: fully-fusable chain must halve the I/O count",
                case.workload
            );
        }
    }
    Json::obj(vec![
        ("mode", Json::Str("threaded".into())),
        ("lg_records", Json::Num(lg_records as f64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// The PR 9 address-evaluation sweep: per-address vs. block-hoisted
/// target computation, measured twice.
///
/// * **kernel** rows isolate the address math from all I/O: for the
///   bit-reversal matrix at the bpc-baseline geometry, evaluate ~2^22
///   consecutive addresses with a full [`AffineEvaluator::eval`] walk
///   per address, then block-hoisted (one
///   [`BlockEvaluator::block_base`] per `B`-record block plus a
///   residual-table lookup per record). Both kernels fold their
///   targets into a wrapping sum — compared for equality, and fed to
///   [`std::hint::black_box`] so neither loop can be dead-code
///   eliminated. Under `--baseline` the block-run kernel must clear
///   ≥ 4× the per-address addresses/s.
/// * **end_to_end** rows run the fusion sweep's bpc-baseline workload
///   (BPC bit reversal, `B = 2^6`, `D = 2^2`, `M = 2^9`, threaded
///   MemDisk) through [`execute_passes_strategy`] with
///   [`EvalStrategy::PerAddress`] vs. [`EvalStrategy::BlockRun`]:
///   placement must be byte-identical and the charged parallel-I/O
///   counts equal (exact-gated by `--check`); under `--baseline` the
///   block-run execution must clear ≥ 1.2× the per-address records/s.
fn run_addr_eval_sweep(lg_records: usize, reps: usize, baseline_mode: bool) -> Json {
    let geom = Geometry::new(1 << lg_records, 1 << 6, 1 << 2, 1 << 9).expect("addr_eval geometry");
    let (n, b) = (geom.n(), geom.b());
    let perm = catalog::bit_reversal(n);
    let records = geom.records() as u64;
    // ---- Kernel: raw addresses/s over ~2^22 sequential addresses.
    let rounds = ((1u64 << 22) / records).max(1);
    let total = rounds * records;
    eprintln!(
        "== addr_eval sweep: N=2^{lg_records}, B=2^{b}, bit reversal, \
         {total} kernel addresses, best of {reps} reps"
    );
    let aff = AffineEvaluator::new(&perm);
    let bev = BlockEvaluator::new(&perm, b as u32);
    let rtab = bev
        .residual_table()
        .expect("b = 6 is within the residual-table cap");
    let blocks = records >> b;
    let mut rows: Vec<Json> = Vec::new();
    let mut kernel_rates = [0.0f64; 2]; // [per_address, block_run]
    let mut sums = [0u64; 2];
    for (ki, kimpl) in ["per_address", "block_run"].into_iter().enumerate() {
        let mut best = f64::INFINITY;
        let mut sum = 0u64;
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..rounds {
                if ki == 0 {
                    for x in 0..records {
                        acc = acc.wrapping_add(aff.eval(x));
                    }
                } else {
                    for blk in 0..blocks {
                        let ybase = bev.block_base(blk);
                        for &r in rtab {
                            acc = acc.wrapping_add(ybase ^ r);
                        }
                    }
                }
            }
            best = best.min(t0.elapsed().as_secs_f64());
            sum = std::hint::black_box(acc);
        }
        sums[ki] = sum;
        kernel_rates[ki] = total as f64 / best;
        eprintln!(
            "   kernel     {:<11} {:>13.0} addresses/s  {:>8.3} ms",
            kimpl,
            kernel_rates[ki],
            best * 1e3
        );
        rows.push(Json::obj(vec![
            ("kind", Json::Str("kernel".into())),
            ("impl", Json::Str(kimpl.into())),
            (
                "addresses_per_sec",
                Json::Num((kernel_rates[ki] * 10.0).round() / 10.0),
            ),
            (
                "elapsed_ms",
                Json::Num((best * 1e3 * 1000.0).round() / 1000.0),
            ),
            ("parallel_ios", Json::Num(0.0)),
        ]));
    }
    assert_eq!(
        sums[0], sums[1],
        "kernels disagree: hoisted evaluation diverged from per-address"
    );
    let kernel_speedup = kernel_rates[1] / kernel_rates[0];
    eprintln!("   kernel block-run speedup: {kernel_speedup:.2}x");
    if baseline_mode {
        assert!(
            kernel_speedup >= 4.0,
            "acceptance criterion failed: block-run kernel only {kernel_speedup:.2}x per-address"
        );
    }
    // ---- Cap sweep (PR 10): the flat residual table against the
    // byte-sliced fallback at each plausible block width — the tuning
    // evidence behind `bmmc::eval::RESIDUAL_TABLE_MAX_BITS`. The tuned
    // cap must admit the table at every swept width; both paths must
    // produce identical target checksums; and under --baseline the
    // flat table must win wherever the fallback pays more than one
    // byte lookup per record.
    let sweep_bits = 22u32;
    let wperm = catalog::bit_reversal(sweep_bits as usize);
    let sweep_total = 1u64 << sweep_bits;
    let mut cap_ratios: Vec<Json> = Vec::new();
    for width in [6u32, 12, 16] {
        let mut rates = [0.0f64; 2]; // [flat, sliced]
        let mut csums = [0u64; 2];
        for (vi, vname) in ["flat", "sliced"].into_iter().enumerate() {
            let bev = if vi == 0 {
                let ev = BlockEvaluator::new(&wperm, width);
                assert!(
                    ev.residual_table().is_some(),
                    "the tuned cap must admit a width-{width} residual table"
                );
                ev
            } else {
                BlockEvaluator::with_table_cap(&wperm, width, 0)
            };
            let blocks = sweep_total >> width;
            let offsets = 1u64 << width;
            let mut best = f64::INFINITY;
            let mut sum = 0u64;
            for _ in 0..reps {
                let t0 = Instant::now();
                let mut acc = 0u64;
                if let Some(rtab) = bev.residual_table() {
                    for blk in 0..blocks {
                        let ybase = bev.block_base(blk);
                        for &r in rtab {
                            acc = acc.wrapping_add(ybase ^ r);
                        }
                    }
                } else {
                    for blk in 0..blocks {
                        let ybase = bev.block_base(blk);
                        for off in 0..offsets {
                            acc = acc.wrapping_add(ybase ^ bev.residual(off));
                        }
                    }
                }
                best = best.min(t0.elapsed().as_secs_f64());
                sum = std::hint::black_box(acc);
            }
            csums[vi] = sum;
            rates[vi] = sweep_total as f64 / best;
            eprintln!(
                "   cap_sweep  b={width:<2} {vname:<7} {:>13.0} addresses/s  {:>8.3} ms",
                rates[vi],
                best * 1e3
            );
            rows.push(Json::obj(vec![
                ("kind", Json::Str("cap_sweep".into())),
                ("impl", Json::Str(format!("b{width}-{vname}"))),
                (
                    "addresses_per_sec",
                    Json::Num((rates[vi] * 10.0).round() / 10.0),
                ),
                (
                    "elapsed_ms",
                    Json::Num((best * 1e3 * 1000.0).round() / 1000.0),
                ),
                ("parallel_ios", Json::Num(0.0)),
            ]));
        }
        assert_eq!(
            csums[0], csums[1],
            "width {width}: capped evaluation diverged from the flat table"
        );
        let ratio = rates[0] / rates[1];
        eprintln!("   cap_sweep  b={width:<2} flat/sliced: {ratio:.2}x");
        if baseline_mode && width > 8 {
            // At one byte and below both paths are a single table
            // lookup and the comparison is noise; past that the
            // fallback pays an extra lookup per record and the flat
            // table must win.
            assert!(
                ratio >= 1.0,
                "acceptance criterion failed: width-{width} flat residual table only \
                 {ratio:.2}x the byte-sliced fallback"
            );
        }
        cap_ratios.push(Json::obj(vec![
            ("width", Json::Num(width as f64)),
            (
                "flat_over_sliced",
                Json::Num((ratio * 1000.0).round() / 1000.0),
            ),
        ]));
    }
    // ---- End to end: the bpc-baseline fusion workload per strategy.
    let passes = bpc_baseline_plan(&perm, geom.b(), geom.m())
        .expect("bit reversal is BPC")
        .passes;
    let input: Vec<u64> = (0..records).collect();
    let expect = reference_permute(&input, |x| perm.target(x));
    let mut e2e_rates = [0.0f64; 2]; // [per_address, block_run]
    for (si, (simpl, strategy)) in [
        ("per_address", EvalStrategy::PerAddress),
        ("block_run", EvalStrategy::BlockRun),
    ]
    .into_iter()
    .enumerate()
    {
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.set_service_mode(ServiceMode::Threaded);
        sys.load_records(0, &input);
        let execute = |sys: &mut DiskSystem<u64>| {
            execute_passes_strategy(sys, &passes, strategy).expect("bpc-baseline run")
        };
        // Warm-up rep doubles as the correctness check.
        let report = execute(&mut sys);
        assert_eq!(
            sys.dump_records(report.final_portion),
            expect,
            "{simpl} produced a wrong permutation"
        );
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = execute(&mut sys);
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(r.total.parallel_ios(), report.total.parallel_ios());
        }
        e2e_rates[si] = records as f64 / best;
        eprintln!(
            "   end_to_end {:<11} {:>13.0} records/s    {:>8.3} ms  {:>6} parallel I/Os",
            simpl,
            e2e_rates[si],
            best * 1e3,
            report.total.parallel_ios()
        );
        rows.push(Json::obj(vec![
            ("kind", Json::Str("end_to_end".into())),
            ("impl", Json::Str(simpl.into())),
            ("executed_passes", Json::Num(report.num_passes() as f64)),
            (
                "parallel_ios",
                Json::Num(report.total.parallel_ios() as f64),
            ),
            (
                "records_per_sec",
                Json::Num((e2e_rates[si] * 10.0).round() / 10.0),
            ),
            (
                "elapsed_ms",
                Json::Num((best * 1e3 * 1000.0).round() / 1000.0),
            ),
        ]));
    }
    let e2e_speedup = e2e_rates[1] / e2e_rates[0];
    eprintln!("   end_to_end block-run speedup: {e2e_speedup:.2}x");
    if baseline_mode {
        assert!(
            e2e_speedup >= 1.2,
            "acceptance criterion failed: block-run end-to-end only {e2e_speedup:.2}x per-address"
        );
    }
    Json::obj(vec![
        ("geometry", Json::Str(bmmc_bench::geom_label(&geom))),
        ("kernel_addresses", Json::Num(total as f64)),
        ("rows", Json::Arr(rows)),
        (
            "kernel_block_run_over_per_address",
            Json::Num((kernel_speedup * 1000.0).round() / 1000.0),
        ),
        (
            "end_to_end_block_run_over_per_address",
            Json::Num((e2e_speedup * 1000.0).round() / 1000.0),
        ),
        ("cap_sweep_flat_over_sliced", Json::Arr(cap_ratios)),
    ])
}

/// One planner crossover row. Every field is deterministic — the sweep
/// is purely analytic (`bmmc::plan::candidates` + `choose` over exact
/// per-step counts), so `steps` and `parallel_ios` are exact-gated and
/// the pick string sits in the row *key*.
fn planner_row(
    workload: &str,
    geometry: &str,
    timing: &str,
    pick: &str,
    steps: usize,
    parallel_ios: u64,
    modeled_ms: f64,
) -> Json {
    Json::obj(vec![
        ("workload", Json::Str(workload.into())),
        ("geometry", Json::Str(geometry.into())),
        ("timing", Json::Str(timing.into())),
        ("pick", Json::Str(pick.into())),
        ("steps", Json::Num(steps as f64)),
        ("parallel_ios", Json::Num(parallel_ios as f64)),
        (
            "modeled_ms",
            Json::Num((modeled_ms * 1000.0).round() / 1000.0),
        ),
    ])
}

/// The PR 10 planner sweep: the `--algorithm auto` crossover table.
///
/// For each named workload × geometry × timing model the unified plan
/// IR enumerates every executable candidate (the DP-fused BMMC route
/// plus the three external-sort routes) and `choose` picks the
/// cheapest by modeled wall-clock, exact parallel I/Os breaking ties.
/// The table spans the regimes the cost model distinguishes:
///
/// * BMMC-structured workloads (transpose, bit reversal, random,
///   adversarial worst-cross-rank) — where the paper's factoring
///   usually dominates, but a worst-rank matrix can push the BMMC
///   route past the sort route's pass count;
/// * a `shuffle` workload — a general permutation with no BMMC
///   structure, so the candidates are the merge strategies alone and
///   the pick is the strategy crossover (seek-heavy models favor the
///   fewer-operation single-buffered merge; flat models favor
///   whichever schedule moves fewest blocks);
/// * the `tiny-mem` geometry — `M = BD`, where no merge fits and the
///   sort route vanishes exactly where BMMC factoring is costliest;
/// * the committed `MLD;MRC;MLD` re-association chain
///   ([`bmmc::plan::reassociation_case`]) planned both ways: greedy
///   pair fusion is stuck at two steps, the DP whole-plan fuser
///   executes it in one — strictly fewer steps and parallel I/Os,
///   asserted here and exact-gated by `--check`.
fn run_planner_sweep() -> Json {
    let geoms = [
        (
            "fig2",
            Geometry::new(1 << 13, 1 << 3, 1 << 4, 1 << 8).expect("fig2 geometry"),
        ),
        (
            "bench",
            Geometry::new(1 << 18, 1 << 3, 1 << 4, 1 << 12).expect("bench geometry"),
        ),
        (
            "narrow",
            Geometry::new(1 << 9, 1 << 2, 1 << 1, 1 << 6).expect("narrow geometry"),
        ),
        (
            "tiny-mem",
            Geometry::new(1 << 13, 1 << 3, 1 << 2, 1 << 5).expect("tiny-mem geometry"),
        ),
    ];
    let timings = [("hdd", TimingModel::hdd()), ("ssd", TimingModel::ssd())];
    eprintln!(
        "== planner sweep: crossover picks over {} geometries x {{hdd,ssd}} (analytic)",
        geoms.len()
    );
    let mut rows: Vec<Json> = Vec::new();
    for (gi, (gname, g)) in geoms.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0x10AD + gi as u64);
        let workloads: Vec<(&str, Bmmc)> = vec![
            ("transpose", catalog::transpose(g.n(), g.n() / 2)),
            ("bit-reversal", catalog::bit_reversal(g.n())),
            ("random", catalog::random_bmmc(&mut rng, g.n())),
            (
                "worst-rank",
                catalog::random_worst_rank(&mut rng, g.n(), g.m()),
            ),
        ];
        for (wname, perm) in &workloads {
            let plans = candidates(perm, g);
            assert!(!plans.is_empty(), "the BMMC route always applies");
            for (tname, timing) in &timings {
                let pick = choose(&plans, g, timing).expect("candidates is nonempty");
                eprintln!(
                    "   {:<8} {:<12} {:<3} -> {:<13} {:>2} steps  {:>7} parallel I/Os  \
                     {:>12.2} modeled ms  ({} candidates)",
                    gname,
                    wname,
                    tname,
                    pick.candidate.name(),
                    pick.num_steps(),
                    pick.parallel_ios(g),
                    pick.modeled_ms(g, timing),
                    plans.len()
                );
                rows.push(planner_row(
                    wname,
                    gname,
                    tname,
                    pick.candidate.name(),
                    pick.num_steps(),
                    pick.parallel_ios(g),
                    pick.modeled_ms(g, timing),
                ));
            }
        }
        // The sort-only shuffle workload: a general permutation with no
        // BMMC structure, so the candidates are the merge strategies
        // alone and the pick is the pure strategy crossover.
        let sort_plans: Vec<Plan> = [
            bmmc::bounds::MergeStrategy::SingleBuffered,
            bmmc::bounds::MergeStrategy::DoubleBuffered,
            bmmc::bounds::MergeStrategy::Forecast,
        ]
        .into_iter()
        .filter_map(|s| Plan::sort(g, s))
        .collect();
        if sort_plans.is_empty() {
            eprintln!(
                "   {gname:<8} shuffle: no merge fits (fan-in < 2) — the sort route \
                 vanishes exactly where BMMC factoring is costliest"
            );
            continue;
        }
        for (tname, timing) in &timings {
            let pick = choose(&sort_plans, g, timing).expect("sort candidates exist");
            eprintln!(
                "   {:<8} {:<12} {:<3} -> {:<13} {:>2} steps  {:>7} parallel I/Os  \
                 {:>12.2} modeled ms  ({} candidates)",
                gname,
                "shuffle",
                tname,
                pick.candidate.name(),
                pick.num_steps(),
                pick.parallel_ios(g),
                pick.modeled_ms(g, timing),
                sort_plans.len()
            );
            rows.push(planner_row(
                "shuffle",
                gname,
                tname,
                pick.candidate.name(),
                pick.num_steps(),
                pick.parallel_ios(g),
                pick.modeled_ms(g, timing),
            ));
        }
    }
    // The committed re-association chain at the fig2 boundaries:
    // greedy pair fusion closes its first group after p1 (the pair seam
    // classifies nowhere), but the whole product telescopes into MLD⁻¹
    // and the DP's full-gather split executes all three passes in one
    // round-trip.
    let (gname, g) = &geoms[0];
    let passes = catalog::reassociation_chain(g.n(), g.b(), g.m());
    let greedy = fuse_passes_greedy(&passes, g.b(), g.m());
    let greedy_plan = Plan {
        candidate: CandidateKind::Bmmc,
        steps: greedy.steps.iter().cloned().map(PlanStep::Bmmc).collect(),
    };
    let dp = Plan::from_passes(&passes, g.b(), g.m());
    assert!(
        dp.num_steps() < greedy_plan.num_steps(),
        "the DP fuser must beat greedy on the committed re-association chain"
    );
    assert!(dp.parallel_ios(g) < greedy_plan.parallel_ios(g));
    eprintln!(
        "   {:<8} reassoc: greedy {} steps ({} parallel I/Os), dp {} step(s) ({} parallel I/Os)",
        gname,
        greedy_plan.num_steps(),
        greedy_plan.parallel_ios(g),
        dp.num_steps(),
        dp.parallel_ios(g)
    );
    for (tname, timing) in &timings {
        for (fuser, plan) in [("greedy", &greedy_plan), ("dp", &dp)] {
            rows.push(planner_row(
                "reassoc",
                gname,
                tname,
                fuser,
                plan.num_steps(),
                plan.parallel_ios(g),
                plan.modeled_ms(g, timing),
            ));
        }
    }
    Json::obj(vec![
        (
            "timing_models",
            Json::Arr(vec![Json::Str("hdd".into()), Json::Str("ssd".into())]),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// MemDisk vs. FileDisk under the engine, across service disciplines.
///
/// Every row performs the identical seeded one-pass MLD permutation
/// through the [`pdm::PassEngine`]; the placement must be
/// byte-identical to the reference (hence to MemDisk) and the charged
/// parallel-I/O count identical across **all** rows — backends may
/// only move the wall clock. The interesting comparison is
/// `file`/`threaded` (persistent `DiskPool` workers issuing positional
/// reads/writes, split-phase overlap) against `file`/`spawn` (the
/// legacy spawn-per-operation servicing) on the same files.
fn run_file_sweep(lg_records: usize, reps: usize, parent: &Path) -> Json {
    let geom = Geometry::new(1 << lg_records, 1 << 3, 1 << 4, 1 << 12).expect("file geometry");
    eprintln!(
        "== file sweep: N=2^{lg_records}, B=2^3, D=2^4, M=2^12, engine, best of {reps} reps \
         (files under {})",
        parent.display()
    );
    let mut rng = StdRng::seed_from_u64(0xF11E + lg_records as u64);
    let perm = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
    let pass = Pass {
        matrix: perm.matrix().clone(),
        complement: perm.complement().clone(),
        kind: PassKind::Mld,
    };
    let input: Vec<u64> = (0..geom.records() as u64).collect();
    let expect = reference_permute(&input, |x| perm.target(x));
    let modes = [
        ("serial", ServiceMode::Serial),
        ("spawn", ServiceMode::SpawnPerOp),
        ("threaded", ServiceMode::Threaded),
    ];
    let mut rows: Vec<Json> = Vec::new();
    let mut rps: Vec<(&str, &str, f64)> = Vec::new();
    let mut ios: Option<u64> = None;
    for backend in ["mem", "file"] {
        for (mode_name, mode) in modes {
            let scratch = parent.join(format!("{backend}-{mode_name}"));
            let mut sys: DiskSystem<u64> = if backend == "file" {
                DiskSystem::new_file(geom, 2, &scratch).expect("file-backed system")
            } else {
                DiskSystem::new_mem(geom, 2)
            };
            sys.set_service_mode(mode);
            sys.load_records(0, &input);
            // Warm-up rep doubles as the correctness check: the file
            // backend must place every record byte-identically.
            let stats = execute_pass(&mut sys, 0, 1, &pass).expect("engine pass failed");
            assert_eq!(
                sys.dump_records(1),
                expect,
                "{backend}/{mode_name} produced a wrong permutation"
            );
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let s = execute_pass(&mut sys, 0, 1, &pass).expect("engine pass failed");
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(s.ios.parallel_ios(), stats.ios.parallel_ios());
            }
            drop(sys);
            if backend == "file" {
                std::fs::remove_dir_all(&scratch).ok();
            }
            if let Some(prev) = ios {
                assert_eq!(
                    prev,
                    stats.ios.parallel_ios(),
                    "{backend}/{mode_name} changed the charged I/O count"
                );
            }
            ios = Some(stats.ios.parallel_ios());
            let records_per_sec = geom.records() as f64 / best;
            rps.push((backend, mode_name, records_per_sec));
            eprintln!(
                "   {:<5} {:<9} {:>12.0} rec/s  {:>8.2} ms  {} parallel I/Os",
                backend,
                mode_name,
                records_per_sec,
                best * 1e3,
                stats.ios.parallel_ios()
            );
            rows.push(Json::obj(vec![
                ("backend", Json::Str(backend.into())),
                ("mode", Json::Str(mode_name.into())),
                (
                    "records_per_sec",
                    Json::Num((records_per_sec * 10.0).round() / 10.0),
                ),
                (
                    "elapsed_ms",
                    Json::Num((best * 1e3 * 1000.0).round() / 1000.0),
                ),
                ("parallel_ios", Json::Num(stats.ios.parallel_ios() as f64)),
            ]));
        }
    }
    let ratio = |backend: &str, num: &str, den: &str| {
        let get = |mode: &str| {
            rps.iter()
                .find(|(b, m, _)| *b == backend && *m == mode)
                .map(|(_, _, r)| *r)
                .expect("row measured")
        };
        get(num) / get(den)
    };
    let speedups: Vec<Json> = ["mem", "file"]
        .into_iter()
        .map(|backend| {
            Json::obj(vec![
                ("backend", Json::Str(backend.into())),
                (
                    "threaded_over_spawn",
                    Json::Num((ratio(backend, "threaded", "spawn") * 1000.0).round() / 1000.0),
                ),
                (
                    "threaded_over_serial",
                    Json::Num((ratio(backend, "threaded", "serial") * 1000.0).round() / 1000.0),
                ),
            ])
        })
        .collect();
    eprintln!(
        "   file threaded/spawn: {:.2}x, file threaded/serial: {:.2}x",
        ratio("file", "threaded", "spawn"),
        ratio("file", "threaded", "serial")
    );
    Json::obj(vec![
        (
            "geometry",
            Json::obj(vec![
                ("lg_records", Json::Num(lg_records as f64)),
                ("lg_block", Json::Num(3.0)),
                ("lg_disks", Json::Num(4.0)),
                ("lg_memory", Json::Num(12.0)),
            ]),
        ),
        ("reps", Json::Num(reps as f64)),
        ("rows", Json::Arr(rows)),
        ("speedups", Json::Arr(speedups)),
    ])
}

/// Builds the `TransportConfig` for a transport-sweep row name.
fn transport_config(name: &str) -> TransportConfig {
    match name {
        "inproc" => TransportConfig::InProc,
        "uds" => TransportConfig::Uds(Default::default()),
        "sim" => TransportConfig::SimNet(Default::default()),
        other => unreachable!("unknown transport {other}"),
    }
}

/// The service sweep: the multi-tenant job service under three
/// scenarios, all in-process against one shared [`pdm_served`] disk
/// farm.
///
/// * `single` — the same seeded BMMC job run directly on a private
///   `DiskSystem` and through the service (one tenant, governor
///   engaged). Both rows must charge identical parallel I/Os — the
///   scheduler may not change the model cost — and under `--baseline`
///   the served row must reach ≥ 0.9× the direct records/s.
/// * `fair` — K=4 *identical* jobs (same seed) submitted at the same
///   instant by four client threads. Every job's charged ledger must
///   equal its own disk system's counters exactly, all four charges
///   must be equal to the operation, and under `--baseline` the
///   completion-time spread must stay within 25% of the mean — the
///   deficit round-robin discipline, not FIFO head-of-line blocking.
/// * `load` — an open-loop generator: jobs submitted on a fixed
///   arrival clock regardless of completions, reporting aggregate
///   throughput and p50/p95/p99 job latency.
///
/// The per-job parallel-I/O counts (single and fair rows) are
/// deterministic and exact-gated by `--check`; the latencies are
/// recorded, not gated.
fn run_service_sweep(reps: usize, baseline_mode: bool) -> Json {
    use pdm_served::core::{JobState, ServiceConfig, ServiceCore};
    use pdm_served::job::{run_job, JobKind, JobSpec};
    use std::sync::{Arc, Barrier};

    let lg_records = 14;
    let geom = Geometry::new(1 << lg_records, 1 << 3, 1 << 3, 1 << 10).expect("service geometry");
    let config = ServiceConfig {
        block: geom.block(),
        disks: geom.disks(),
        slots: 1 << 12,
        quantum: geom.blocks_per_memoryload() as u64,
        max_queue: 64,
        max_running: 8,
        ..ServiceConfig::default()
    };
    eprintln!(
        "== service sweep: N=2^{lg_records}, B=2^3, D=2^3, M=2^10, quantum {} blocks, best of {reps} reps",
        config.quantum
    );
    let spec = JobSpec::new(JobKind::Bmmc, geom.records(), geom.memory(), 0xFA1);
    let mut rows: Vec<Json> = Vec::new();

    // -- single: direct vs served ------------------------------------
    // Interleaved direct/served pairs (rather than two back-to-back
    // loops) so a drifting machine hits both paths alike; the baseline
    // run takes extra reps because it *asserts* on the ratio.
    let single_reps = if baseline_mode {
        reps.max(7)
    } else {
        reps.max(1)
    };
    let mut direct_best = f64::MAX;
    let mut direct_ios = 0u64;
    let mut served_best = f64::MAX;
    let mut served_ios = 0u64;
    for _ in 0..single_reps {
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.set_threaded(true);
        let t0 = Instant::now();
        let report = run_job(&mut sys, &spec).expect("direct job");
        direct_best = direct_best.min(t0.elapsed().as_secs_f64());
        direct_ios = report.io.parallel_ios();

        let core = ServiceCore::new(config);
        let t0 = Instant::now();
        let id = core.submit(spec, None).expect("submit");
        let status = core.wait(id).expect("known id");
        served_best = served_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(status.state, JobState::Done, "served single job");
        let report = status.report.expect("done job has report");
        assert_eq!(
            status.usage.io, report.io,
            "scheduler ledger equals the job's own counters"
        );
        served_ios = status.usage.io.parallel_ios();
        core.shutdown();
    }
    assert_eq!(
        direct_ios, served_ios,
        "the governor may not change the model cost"
    );
    let n = geom.records() as f64;
    let single_ratio = (n / served_best) / (n / direct_best);
    eprintln!(
        "   single: direct {:.1} ms, served {:.1} ms, ratio {single_ratio:.3}",
        direct_best * 1e3,
        served_best * 1e3
    );
    if baseline_mode {
        assert!(
            single_ratio >= 0.9,
            "acceptance criterion failed: served single-job throughput only \
             {single_ratio:.3}x of the direct path"
        );
    }
    for (job, ios, secs) in [
        ("direct", direct_ios, direct_best),
        ("served", served_ios, served_best),
    ] {
        rows.push(Json::obj(vec![
            ("scenario", Json::Str("single".into())),
            ("job", Json::Str(job.into())),
            ("parallel_ios", Json::Num(ios as f64)),
            (
                "records_per_sec",
                Json::Num(((n / secs) * 10.0).round() / 10.0),
            ),
            (
                "elapsed_ms",
                Json::Num((secs * 1e3 * 1000.0).round() / 1000.0),
            ),
        ]));
    }

    // -- fair: K=4 identical tenants ---------------------------------
    const K: usize = 4;
    let core = ServiceCore::new(config);
    let barrier = Arc::new(Barrier::new(K));
    let mut tenants = Vec::new();
    for _ in 0..K {
        let core = Arc::clone(&core);
        let barrier = Arc::clone(&barrier);
        tenants.push(std::thread::spawn(move || {
            barrier.wait();
            let t0 = Instant::now();
            let id = core.submit(spec, None).expect("fair submit");
            let status = core.wait(id).expect("known id");
            (id, status, t0.elapsed().as_secs_f64())
        }));
    }
    let mut completions = Vec::new();
    for t in tenants {
        let (id, status, secs) = t.join().expect("tenant thread");
        assert_eq!(status.state, JobState::Done, "fair job {id}");
        let report = status.report.expect("done job has report");
        assert_eq!(
            status.usage.io, report.io,
            "fair job {id}: exact per-job accounting"
        );
        completions.push((id, status.usage.io.parallel_ios(), secs));
    }
    core.shutdown();
    completions.sort_by_key(|&(id, _, _)| id);
    let charges: Vec<u64> = completions.iter().map(|&(_, c, _)| c).collect();
    assert!(
        charges.windows(2).all(|w| w[0] == w[1]),
        "identical jobs must be charged identically: {charges:?}"
    );
    let times: Vec<f64> = completions.iter().map(|&(_, _, s)| s).collect();
    let mean = times.iter().sum::<f64>() / K as f64;
    let spread = times.iter().cloned().fold(f64::MIN, f64::max)
        - times.iter().cloned().fold(f64::MAX, f64::min);
    let spread_pct = 100.0 * spread / mean;
    eprintln!(
        "   fair: {K} tenants, {} parallel I/Os each, completions {:?} ms, spread {spread_pct:.1}% of mean",
        charges[0],
        times.iter().map(|s| (s * 1e3).round()).collect::<Vec<_>>()
    );
    if baseline_mode {
        assert!(
            spread_pct <= 25.0,
            "acceptance criterion failed: fair-share completion spread {spread_pct:.1}% > 25% of mean"
        );
    }
    for &(id, ios, secs) in &completions {
        rows.push(Json::obj(vec![
            ("scenario", Json::Str("fair".into())),
            ("job", Json::Str(format!("tenant-{id}"))),
            ("parallel_ios", Json::Num(ios as f64)),
            (
                "elapsed_ms",
                Json::Num((secs * 1e3 * 1000.0).round() / 1000.0),
            ),
        ]));
    }

    // -- load: open-loop multi-tenant generator ----------------------
    const JOBS: usize = 24;
    let interval = std::time::Duration::from_millis(2);
    let small = JobSpec::new(
        JobKind::Bmmc,
        1 << 12,
        1 << 8,
        0xBEEF, // same work per job; arrivals, not content, vary
    );
    let core = ServiceCore::new(config);
    let t0 = Instant::now();
    let mut waiters = Vec::new();
    for _ in 0..JOBS {
        let id = core.submit(small, None).expect("load submit");
        let submitted = Instant::now();
        let core = Arc::clone(&core);
        waiters.push(std::thread::spawn(move || {
            let status = core.wait(id).expect("known id");
            assert_eq!(status.state, JobState::Done, "load job {id}");
            submitted.elapsed().as_secs_f64()
        }));
        std::thread::sleep(interval); // open loop: the clock, not the
                                      // completions, paces arrivals
    }
    let mut latencies: Vec<f64> = waiters
        .into_iter()
        .map(|w| w.join().expect("waiter thread"))
        .collect();
    let total = t0.elapsed().as_secs_f64();
    core.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| latencies[((p * (JOBS - 1) as f64).round() as usize).min(JOBS - 1)];
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let throughput = JOBS as f64 / total;
    eprintln!(
        "   load: {JOBS} jobs open-loop @ {:?}, {throughput:.1} jobs/s, \
         p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        interval,
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );

    Json::obj(vec![
        ("geometry", Json::Str(bmmc_bench::geom_label(&geom))),
        ("quantum_blocks", Json::Num(config.quantum as f64)),
        ("rows", Json::Arr(rows)),
        (
            "single_ratio",
            Json::Num((single_ratio * 1000.0).round() / 1000.0),
        ),
        (
            "fair_spread_pct",
            Json::Num((spread_pct * 10.0).round() / 10.0),
        ),
        (
            "load",
            Json::obj(vec![
                ("jobs", Json::Num(JOBS as f64)),
                ("arrival_interval_ms", Json::Num(2.0)),
                (
                    "throughput_jobs_per_sec",
                    Json::Num((throughput * 10.0).round() / 10.0),
                ),
                ("p50_ms", Json::Num((p50 * 1e3 * 100.0).round() / 100.0)),
                ("p95_ms", Json::Num((p95 * 1e3 * 100.0).round() / 100.0)),
                ("p99_ms", Json::Num((p99 * 1e3 * 100.0).round() / 100.0)),
            ]),
        ),
    ])
}

/// The recovery sweep: the same seeded BMMC permutation performed
/// clean and under a ~1%-of-operations transient-fault plan with a
/// fault-tolerant retry policy. Recovery must be *invisible* in the
/// model: byte-identical final placement, exactly equal charged
/// parallel I/Os (retried operations are charged once), and a ledger
/// showing exactly one retry per injected firing — both counts are
/// deterministic and exact-gated by `--check`. Under `--baseline` the
/// recovered run must keep ≥ 0.8× the clean run's records/s.
fn run_recovery_sweep(lg_records: usize, reps: usize, baseline_mode: bool) -> Json {
    use bmmc::algorithm::perform_bmmc;
    let geom = Geometry::new(1 << lg_records, 1 << 3, 1 << 4, 1 << 12).expect("recovery geometry");
    let perm = catalog::random_bmmc(&mut StdRng::seed_from_u64(0xFA01), geom.n());
    let input: Vec<u64> = (0..geom.records() as u64).collect();
    let reps = reps.max(1);

    // One run of the workload under `plan`, returning placement,
    // charged I/O, the ledger, and the elapsed seconds.
    let run = |plan: FaultPlan| {
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.set_service_mode(ServiceMode::Threaded);
        sys.set_retry_policy(RetryPolicy::fault_tolerant());
        sys.set_faults(plan);
        sys.load_records(0, &input);
        let t0 = Instant::now();
        let report = perform_bmmc(&mut sys, &perm).expect("recovery bmmc run");
        let secs = t0.elapsed().as_secs_f64();
        let records = sys.dump_records(report.final_portion);
        assert_eq!(sys.buffer_pool_stats().outstanding, 0, "buffers stranded");
        (records, sys.stats(), sys.retry_stats(), secs)
    };

    // The clean run sizes the fault plan: its operation count is
    // deterministic, so "1% of operations" is a fixed schedule.
    let (clean_records, clean_ios, clean_retry, mut clean_best) = run(FaultPlan::new());
    assert!(clean_retry.is_clean(), "clean run has a dirty ledger");
    let total_ops = clean_ios.parallel_ios();
    let fault_plan = || {
        let mut plan = FaultPlan::new();
        for (i, op) in (0..total_ops).step_by(100).enumerate() {
            plan = plan.fail_transient_at(op, i % geom.disks());
        }
        plan
    };
    let injected = fault_plan().len();
    eprintln!(
        "== recovery sweep: N=2^{lg_records}, B=2^3, D=2^4, M=2^12, \
         {injected} transient faults over {total_ops} ops, best of {reps} reps"
    );

    let (recovered_records, recovered_ios, recovered_retry, mut recovered_best) = run(fault_plan());
    assert_eq!(
        recovered_records, clean_records,
        "recovered placement diverged from clean"
    );
    assert_eq!(
        recovered_ios, clean_ios,
        "recovery changed the charged model cost"
    );
    assert!(recovered_retry.transient_faults >= 1, "no fault ever fired");
    assert_eq!(
        recovered_retry.retries, recovered_retry.transient_faults,
        "each injected firing costs exactly one retry"
    );
    for _ in 1..reps {
        let (_, _, _, secs) = run(FaultPlan::new());
        clean_best = clean_best.min(secs);
        let (_, _, retry, secs) = run(fault_plan());
        assert_eq!(retry, recovered_retry, "ledger changed between reps");
        recovered_best = recovered_best.min(secs);
    }

    let ratio = clean_best / recovered_best;
    eprintln!(
        "   clean {:.1} ms, recovered {:.1} ms ({} retries absorbed), ratio {ratio:.3}",
        clean_best * 1e3,
        recovered_best * 1e3,
        recovered_retry.retries
    );
    if baseline_mode {
        assert!(
            ratio >= 0.8,
            "acceptance criterion failed: recovered throughput only {ratio:.3}x of clean"
        );
    }
    let n = geom.records() as f64;
    let rows: Vec<Json> = [
        ("clean", clean_ios, 0u64, clean_best),
        (
            "recovered",
            recovered_ios,
            recovered_retry.retries,
            recovered_best,
        ),
    ]
    .into_iter()
    .map(|(label, ios, retries, secs)| {
        Json::obj(vec![
            ("run", Json::Str(label.into())),
            ("parallel_ios", Json::Num(ios.parallel_ios() as f64)),
            ("retries", Json::Num(retries as f64)),
            (
                "records_per_sec",
                Json::Num(((n / secs) * 10.0).round() / 10.0),
            ),
            (
                "elapsed_ms",
                Json::Num((secs * 1e3 * 1000.0).round() / 1000.0),
            ),
        ])
    })
    .collect();
    Json::obj(vec![
        ("geometry", Json::Str(bmmc_bench::geom_label(&geom))),
        ("injected_faults", Json::Num(injected as f64)),
        (
            "fired_faults",
            Json::Num(recovered_retry.transient_faults as f64),
        ),
        ("rows", Json::Arr(rows)),
        (
            "recovered_ratio",
            Json::Num((ratio * 1000.0).round() / 1000.0),
        ),
    ])
}

/// The transport sweep: the same seeded engine MLD pass served
/// in-process, over per-disk `pdm-diskd` worker processes (Unix-domain
/// sockets), and over the deterministic simulated network.
///
/// Placement and the charged parallel-I/O count must be identical
/// across every transport — the transport may only move the wall
/// clock. The in-process rows must move **zero** transport messages,
/// and the sim rows must move exactly the same message and wire-byte
/// counts as the real socket rows (both sides speak the identical
/// `pdm::proto` protocol, so the simulation is an exact cost model of
/// the sockets). Under `--baseline` the threaded UDS row must reach
/// ≥ 0.5× the threaded in-process records/s.
///
/// `only` restricts the sweep to `{inproc, only}` (the CI UDS smoke
/// step). The UDS rows need the `pdm-diskd` worker binary; a full run
/// skips them with a loud warning when it is missing, but a restricted
/// `--transport uds` run fails — that run exists to test the sockets.
fn run_transport_sweep(
    lg_records: usize,
    reps: usize,
    only: Option<&str>,
    baseline_mode: bool,
) -> Json {
    let geom = Geometry::new(1 << lg_records, 1 << 3, 1 << 4, 1 << 12).expect("transport geometry");
    eprintln!(
        "== transport sweep: N=2^{lg_records}, B=2^3, D=2^4, M=2^12, engine, best of {reps} reps"
    );
    let mut rng = StdRng::seed_from_u64(0x7BA7 + lg_records as u64);
    let perm = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
    let pass = Pass {
        matrix: perm.matrix().clone(),
        complement: perm.complement().clone(),
        kind: PassKind::Mld,
    };
    let input: Vec<u64> = (0..geom.records() as u64).collect();
    let expect = reference_permute(&input, |x| perm.target(x));
    let transports: Vec<&'static str> = match only {
        None => vec!["inproc", "uds", "sim"],
        Some("inproc") => vec!["inproc"],
        Some("uds") => vec!["inproc", "uds"],
        Some("sim") => vec!["inproc", "sim"],
        Some(other) => {
            eprintln!("unknown --transport {other} (expected inproc, uds, or sim)");
            std::process::exit(2);
        }
    };
    let have_diskd = pdm::transport::find_diskd().is_some();
    if !have_diskd && transports.contains(&"uds") {
        if only.is_some() {
            eprintln!(
                "--transport uds: pdm-diskd worker binary not found — build it \
                 (cargo build --release) or set PDM_DISKD_BIN"
            );
            std::process::exit(1);
        }
        eprintln!(
            "   WARNING: pdm-diskd worker binary not found (PDM_DISKD_BIN unset, not \
             beside this executable) — skipping the uds rows"
        );
    }
    let mut rows: Vec<Json> = Vec::new();
    let mut rps: Vec<(&str, &str, f64)> = Vec::new();
    let mut ios: Option<u64> = None;
    let mut wire: Option<(&str, MsgStats)> = None;
    for transport in transports {
        if transport == "uds" && !have_diskd {
            continue;
        }
        let config = transport_config(transport);
        for (mode_name, mode) in [
            ("serial", ServiceMode::Serial),
            ("threaded", ServiceMode::Threaded),
        ] {
            let mut sys: DiskSystem<u64> =
                DiskSystem::new_with_transport(geom, 2, &Backend::Mem, &config)
                    .expect("transport system");
            sys.set_service_mode(mode);
            sys.load_records(0, &input);
            let run = |sys: &mut DiskSystem<u64>| {
                let m0 = sys.message_stats();
                let t0 = Instant::now();
                let stats = execute_pass(sys, 0, 1, &pass).expect("engine pass failed");
                let dt = t0.elapsed().as_secs_f64();
                (stats, sys.message_stats().since(&m0), dt)
            };
            // Warm-up rep doubles as the correctness check.
            let (stats, msgs, _) = run(&mut sys);
            assert_eq!(
                sys.dump_records(1),
                expect,
                "{transport}/{mode_name} produced a wrong permutation"
            );
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let (s, m, dt) = run(&mut sys);
                best = best.min(dt);
                assert_eq!(s.ios.parallel_ios(), stats.ios.parallel_ios());
                assert_eq!(
                    m, msgs,
                    "{transport}/{mode_name}: message count not deterministic"
                );
            }
            if let Some(prev) = ios {
                assert_eq!(
                    prev,
                    stats.ios.parallel_ios(),
                    "{transport}/{mode_name} changed the charged I/O count"
                );
            }
            ios = Some(stats.ios.parallel_ios());
            if transport == "inproc" {
                assert!(
                    msgs.is_zero(),
                    "in-process rows must move no messages, got {msgs}"
                );
            } else {
                // Both remote transports speak the same wire protocol
                // over the same op sequence: identical counts, exactly.
                match &wire {
                    None => wire = Some((transport, msgs)),
                    Some((first, m)) => assert_eq!(
                        *m, msgs,
                        "{transport}/{mode_name} message counts diverge from {first}"
                    ),
                }
            }
            let records_per_sec = geom.records() as f64 / best;
            rps.push((transport, mode_name, records_per_sec));
            eprintln!(
                "   {:<6} {:<9} {:>12.0} rec/s  {:>8.2} ms  {} parallel I/Os  \
                 {} msgs  {} wire bytes",
                transport,
                mode_name,
                records_per_sec,
                best * 1e3,
                stats.ios.parallel_ios(),
                msgs.messages(),
                msgs.bytes()
            );
            rows.push(Json::obj(vec![
                ("transport", Json::Str(transport.into())),
                ("mode", Json::Str(mode_name.into())),
                (
                    "records_per_sec",
                    Json::Num((records_per_sec * 10.0).round() / 10.0),
                ),
                (
                    "elapsed_ms",
                    Json::Num((best * 1e3 * 1000.0).round() / 1000.0),
                ),
                ("parallel_ios", Json::Num(stats.ios.parallel_ios() as f64)),
                ("messages", Json::Num(msgs.messages() as f64)),
                ("wire_bytes", Json::Num(msgs.bytes() as f64)),
            ]));
        }
    }
    let get = |transport: &str, mode: &str| {
        rps.iter()
            .find(|(t, m, _)| *t == transport && *m == mode)
            .map(|(_, _, r)| *r)
    };
    if let (Some(uds), Some(inproc)) = (get("uds", "threaded"), get("inproc", "threaded")) {
        let ratio = uds / inproc;
        eprintln!("   uds/inproc threaded: {ratio:.2}x");
        if baseline_mode {
            assert!(
                ratio >= 0.5,
                "acceptance criterion failed: threaded uds only {ratio:.2}x of in-process"
            );
        }
    }
    Json::obj(vec![
        (
            "geometry",
            Json::obj(vec![
                ("lg_records", Json::Num(lg_records as f64)),
                ("lg_block", Json::Num(3.0)),
                ("lg_disks", Json::Num(4.0)),
                ("lg_memory", Json::Num(12.0)),
            ]),
        ),
        ("reps", Json::Num(reps as f64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Maps an extsort strategy to its `bmmc::bounds` mirror (the two
/// crates are siblings, so the enum exists on both sides).
fn bounds_strategy(merge: MergeStrategy) -> bounds::MergeStrategy {
    match merge {
        MergeStrategy::SingleBuffered => bounds::MergeStrategy::SingleBuffered,
        MergeStrategy::DoubleBuffered => bounds::MergeStrategy::DoubleBuffered,
        MergeStrategy::Forecast => bounds::MergeStrategy::Forecast,
    }
}

/// The extsort merge-strategy sweep: single- vs double-buffered vs
/// forecasting merge, across serial/threaded service and mem/file
/// backends. Every row's pass count and parallel-I/O count must equal
/// the `bmmc::bounds` prediction (service mode and backend may only
/// move the wall clock), and the forecasting rows must realize the
/// PR 5 acceptance criterion: fan-in ≥ 8× the single-buffered
/// `M/BD − 1` and strictly fewer passes at this geometry.
fn run_extsort_sweep(lg_records: usize, reps: usize, parent: &Path) -> Json {
    let geom = Geometry::new(1 << lg_records, 1 << 3, 1 << 4, 1 << 12).expect("extsort geometry");
    // The merge is comparison-bound; 3 reps is plenty for a best-of.
    let reps = reps.min(3);
    eprintln!(
        "== extsort sweep: N=2^{lg_records}, B=2^3, D=2^4, M=2^12, \
         {{single,double,forecast}} x {{serial,threaded}} x {{mem,file}}, best of {reps} reps"
    );
    let mut rng = StdRng::seed_from_u64(0x50C7);
    let mut input: Vec<u64> = (0..geom.records() as u64).collect();
    input.shuffle(&mut rng);
    let strategies = [
        MergeStrategy::SingleBuffered,
        MergeStrategy::DoubleBuffered,
        MergeStrategy::Forecast,
    ];
    let mut rows: Vec<Json> = Vec::new();
    for backend in ["mem", "file"] {
        for (mode_name, mode) in [
            ("serial", ServiceMode::Serial),
            ("threaded", ServiceMode::Threaded),
        ] {
            for merge in strategies {
                let variant = merge.as_str();
                let scratch = parent.join(format!("extsort-{backend}-{mode_name}-{variant}"));
                let run = |input: &[u64]| {
                    let mut sys: DiskSystem<u64> = if backend == "file" {
                        DiskSystem::new_file(geom, 2, &scratch).expect("file-backed system")
                    } else {
                        DiskSystem::new_mem(geom, 2)
                    };
                    sys.set_service_mode(mode);
                    sys.load_records(0, input);
                    let t0 = Instant::now();
                    let report =
                        sort_by_key_with(&mut sys, |&r| r, SortConfig { merge }).expect("sort");
                    let dt = t0.elapsed().as_secs_f64();
                    let out = sys.dump_records(report.final_portion);
                    assert!(out.windows(2).all(|w| w[0] <= w[1]), "missorted output");
                    (report, dt)
                };
                let (report, mut best) = run(&input);
                for _ in 1..reps {
                    let (r, dt) = run(&input);
                    assert_eq!(r.total.parallel_ios(), report.total.parallel_ios());
                    best = best.min(dt);
                }
                if backend == "file" {
                    std::fs::remove_dir_all(&scratch).ok();
                }
                // The model cost is a function of the strategy alone:
                // exactly the bounds-side replay, on every backend and
                // service mode.
                let predicted = bounds_strategy(merge);
                assert_eq!(
                    Some(report.passes),
                    bounds::merge_sort_passes(&geom, predicted),
                    "{variant}/{backend}/{mode_name}: pass count drifted from bounds"
                );
                assert_eq!(
                    Some(report.total.parallel_ios()),
                    bounds::merge_sort_ios(&geom, predicted),
                    "{variant}/{backend}/{mode_name}: parallel I/Os drifted from bounds"
                );
                eprintln!(
                    "   {:<8} {:<5} {:<9} fan-in {:>3}  {} passes  {:>7} parallel I/Os  \
                     {:>12.0} rec/s  {:>8.2} ms",
                    variant,
                    backend,
                    mode_name,
                    report.fan_in,
                    report.passes,
                    report.total.parallel_ios(),
                    geom.records() as f64 / best,
                    best * 1e3
                );
                rows.push(Json::obj(vec![
                    ("variant", Json::Str(variant.into())),
                    ("input", Json::Str("perm".into())),
                    ("backend", Json::Str(backend.into())),
                    ("mode", Json::Str(mode_name.into())),
                    ("fan_in", Json::Num(report.fan_in as f64)),
                    ("passes", Json::Num(report.passes as f64)),
                    (
                        "parallel_ios",
                        Json::Num(report.total.parallel_ios() as f64),
                    ),
                    (
                        "records_per_sec",
                        Json::Num(((geom.records() as f64 / best) * 10.0).round() / 10.0),
                    ),
                    (
                        "elapsed_ms",
                        Json::Num((best * 1e3 * 1000.0).round() / 1000.0),
                    ),
                ]));
            }
        }
    }
    // Adversarial key catalogs (PR 10, `extsort::keys`): duplicate-
    // heavy and log-uniform skewed inputs through every strategy on
    // mem/serial. The merge schedule is a function of the geometry
    // alone, so these rows must replay the same bounds counts as the
    // permutation input — the gate holds the schedule input-
    // independent — and the outputs must be exactly the sorted input.
    let records = geom.records();
    let adversarial: [(&str, Vec<u64>); 2] = [
        ("dup", keys::duplicate_heavy(0xD0B1, records, 4)),
        ("skew", keys::skewed(0x53E9, records, records as u64 * 4)),
    ];
    for (iname, input) in &adversarial {
        let mut expect = input.clone();
        expect.sort_unstable();
        for merge in strategies {
            let variant = merge.as_str();
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
            sys.set_service_mode(ServiceMode::Serial);
            sys.load_records(0, input);
            let t0 = Instant::now();
            let report = sort_by_key_with(&mut sys, |&r| r, SortConfig { merge }).expect("sort");
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(
                sys.dump_records(report.final_portion),
                expect,
                "{variant}/{iname}: adversarial input missorted"
            );
            let predicted = bounds_strategy(merge);
            assert_eq!(
                Some(report.passes),
                bounds::merge_sort_passes(&geom, predicted),
                "{variant}/{iname}: the merge schedule must be input-independent"
            );
            assert_eq!(
                Some(report.total.parallel_ios()),
                bounds::merge_sort_ios(&geom, predicted),
                "{variant}/{iname}: parallel I/Os drifted from bounds"
            );
            eprintln!(
                "   {:<8} {:<5} {:<9} fan-in {:>3}  {} passes  {:>7} parallel I/Os  \
                 {:>12.0} rec/s  {:>8.2} ms",
                variant,
                iname,
                "serial",
                report.fan_in,
                report.passes,
                report.total.parallel_ios(),
                records as f64 / dt,
                dt * 1e3
            );
            rows.push(Json::obj(vec![
                ("variant", Json::Str(variant.into())),
                ("input", Json::Str((*iname).into())),
                ("backend", Json::Str("mem".into())),
                ("mode", Json::Str("serial".into())),
                ("fan_in", Json::Num(report.fan_in as f64)),
                ("passes", Json::Num(report.passes as f64)),
                (
                    "parallel_ios",
                    Json::Num(report.total.parallel_ios() as f64),
                ),
                (
                    "records_per_sec",
                    Json::Num(((records as f64 / dt) * 10.0).round() / 10.0),
                ),
                (
                    "elapsed_ms",
                    Json::Num((dt * 1e3 * 1000.0).round() / 1000.0),
                ),
            ]));
        }
    }
    // Acceptance: forecasting closes the D× fan-in gap at this
    // geometry (M/B − D − 1 ≥ 8·(M/BD − 1)) and needs strictly fewer
    // passes than the single-buffered merge.
    let single = bounds::MergeStrategy::SingleBuffered;
    let forecast = bounds::MergeStrategy::Forecast;
    assert!(
        forecast.fan_in(&geom) >= 8 * single.fan_in(&geom),
        "forecast fan-in {} below 8x single-buffered {}",
        forecast.fan_in(&geom),
        single.fan_in(&geom)
    );
    assert!(
        bounds::merge_sort_passes(&geom, forecast) < bounds::merge_sort_passes(&geom, single),
        "forecast must sort in strictly fewer passes at the bench geometry"
    );
    Json::obj(vec![
        ("lg_records", Json::Num(lg_records as f64)),
        ("rows", Json::Arr(rows)),
    ])
}

fn speedup(rows: &[Row], disks: usize, mode: &str) -> Option<f64> {
    let rps = |impl_: &str| {
        rows.iter()
            .find(|r| r.disks == disks && r.mode == mode && r.impl_ == impl_)
            .map(|r| r.records_per_sec)
    };
    Some(rps("engine")? / rps("legacy")?)
}

/// Extracts `(disks, mode) → (engine_over_legacy, engine parallel_ios)`
/// from a document's section.
fn section_metrics(doc: &Json, section: &str) -> Vec<(u64, String, f64, u64)> {
    let Some(sec) = doc.get(section) else {
        return Vec::new();
    };
    let speedups = sec.get("speedups").and_then(Json::as_array).unwrap_or(&[]);
    let rows = sec.get("rows").and_then(Json::as_array).unwrap_or(&[]);
    speedups
        .iter()
        .filter_map(|s| {
            let disks = s.get("disks")?.as_u64()?;
            let mode = s.get("mode")?.as_str()?.to_string();
            let ratio = s.get("engine_over_legacy")?.as_f64()?;
            let ios = rows.iter().find_map(|r| {
                (r.get("disks")?.as_u64()? == disks
                    && r.get("mode")?.as_str()? == mode
                    && r.get("impl")?.as_str()? == "engine")
                    .then(|| r.get("parallel_ios")?.as_u64())?
            })?;
            Some((disks, mode, ratio, ios))
        })
        .collect()
}

/// Extracts `(label, field value)` pairs from a section's rows, keyed
/// by the row's identifying fields.
fn counter_rows(doc: &Json, section: &str, key_fields: &[&str], field: &str) -> Vec<(String, u64)> {
    let Some(rows) = doc
        .get(section)
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|r| {
            let label = key_fields
                .iter()
                .map(|f| r.get(f).and_then(Json::as_str).unwrap_or("?").to_string())
                .collect::<Vec<_>>()
                .join("/");
            Some((label, r.get(field)?.as_u64()?))
        })
        .collect()
}

/// Legacy shorthand: the `parallel_ios` column of a section.
fn io_rows(doc: &Json, section: &str, key_fields: &[&str]) -> Vec<(String, u64)> {
    counter_rows(doc, section, key_fields, "parallel_ios")
}

/// The CI gate: compares this run's quick section with the checked-in
/// baseline. Fails on a >20% speedup regression or any change in the
/// charged parallel-I/O counts — including the fusion, extsort, file,
/// and transport sections' counts (and the transport rows' message
/// counts), which are fully deterministic. With `file_only` set (the
/// tmpfs file-backend smoke step), only the file section's I/O counts
/// are compared. With `transport_only` set (the UDS smoke step), only
/// the transport rows this restricted run produced are compared — the
/// baseline's other transports are not required to be present.
fn check_against_baseline(
    current: &Json,
    baseline_path: &str,
    file_only: bool,
    transport_only: bool,
) -> Result<(), String> {
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let baseline = Json::parse(&text).map_err(|e| format!("parse {baseline_path}: {e}"))?;
    let mut failures = Vec::new();
    const TRANSPORT_KEYS: &[&str] = &["transport", "mode"];
    // The pick sits in the key: a flipped crossover decision surfaces
    // as a missing row, never as a silently re-baselined count.
    const PLANNER_KEYS: &[&str] = &["workload", "geometry", "timing", "pick"];
    let gated: &[(&str, &[&str], &str)] = if file_only {
        // The dedicated file gate must never pass vacuously: a
        // baseline without file rows means there is nothing it could
        // be checking, which is itself a failure.
        if io_rows(&baseline, "file", &["backend", "mode"]).is_empty() {
            return Err(format!(
                "{baseline_path} has no file section to compare — \
                 regenerate it with a post-PR4 engine_sweep"
            ));
        }
        &[("file", &["backend", "mode"], "parallel_ios")]
    } else if transport_only {
        // Same vacuity rule for the dedicated transport gate.
        if io_rows(&baseline, "transport", TRANSPORT_KEYS).is_empty() {
            return Err(format!(
                "{baseline_path} has no transport section to compare — \
                 regenerate it with a post-PR6 engine_sweep"
            ));
        }
        &[
            ("transport", TRANSPORT_KEYS, "parallel_ios"),
            ("transport", TRANSPORT_KEYS, "messages"),
        ]
    } else {
        &[
            ("fusion", &["workload", "impl"], "parallel_ios"),
            (
                "extsort",
                &["variant", "input", "backend", "mode"],
                "parallel_ios",
            ),
            ("file", &["backend", "mode"], "parallel_ios"),
            ("transport", TRANSPORT_KEYS, "parallel_ios"),
            ("transport", TRANSPORT_KEYS, "messages"),
            ("service", &["scenario", "job"], "parallel_ios"),
            ("recovery", &["run"], "parallel_ios"),
            ("recovery", &["run"], "retries"),
            ("addr_eval", &["kind", "impl"], "parallel_ios"),
            ("planner", PLANNER_KEYS, "parallel_ios"),
            ("planner", PLANNER_KEYS, "steps"),
        ]
    };
    for &(section, keys, field) in gated {
        let base_rows = counter_rows(&baseline, section, keys, field);
        let cur_rows = counter_rows(current, section, keys, field);
        // A restricted transport run carries fewer rows than the full
        // baseline: walk the current rows and look them up in the
        // baseline. Every other gate walks the baseline, so dropping a
        // row is a failure.
        let (from, to, to_name) = if transport_only {
            (&cur_rows, &base_rows, "baseline")
        } else {
            (&base_rows, &cur_rows, "current run")
        };
        for (label, from_val) in from {
            match to.iter().find(|(l, _)| l == label) {
                Some((_, to_val)) if to_val == from_val => {
                    eprintln!("check {section} {label}: {field} {from_val} — ok");
                }
                Some((_, to_val)) => {
                    let (base_val, cur_val) = if transport_only {
                        (to_val, from_val)
                    } else {
                        (from_val, to_val)
                    };
                    failures.push(format!(
                        "{section} {label}: {field} changed {base_val} → {cur_val}"
                    ));
                }
                None => failures.push(format!("{section} {label}: missing from {to_name}")),
            }
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    if file_only || transport_only {
        return Ok(());
    }
    let base = section_metrics(&baseline, "quick");
    let cur = section_metrics(current, "quick");
    if base.is_empty() {
        return Err(format!("{baseline_path} has no quick section to compare"));
    }
    for (disks, mode, base_ratio, base_ios) in &base {
        let Some((_, _, cur_ratio, cur_ios)) =
            cur.iter().find(|(d, m, _, _)| d == disks && m == mode)
        else {
            failures.push(format!("D={disks} {mode}: missing from current run"));
            continue;
        };
        if cur_ios != base_ios {
            failures.push(format!(
                "D={disks} {mode}: parallel I/Os changed {base_ios} → {cur_ios} \
                 (the engine may not change the model cost)"
            ));
        }
        // "Regressed >20% vs. the checked-in baseline" — applied only
        // to rows whose recorded ratio clears the 1.5x acceptance bar
        // (the serial rows sit at ~1.0x ± noise; gating noise would
        // flake). The parallel-I/O check above stays exact for every
        // row. If the CI fleet's hardware proves systematically
        // different from the machine that recorded BENCH_PR2.json,
        // the remedy is regenerating the baseline there
        // (`engine_sweep --baseline --out BENCH_PR2.json`), not
        // loosening this rule.
        if *base_ratio < 1.5 {
            eprintln!(
                "check D={disks} {mode}: recorded ratio {base_ratio:.2}x is noise-level, \
                 timing not gated (I/O counts still exact)"
            );
            continue;
        }
        let floor = 0.8 * base_ratio;
        if *cur_ratio < floor {
            failures.push(format!(
                "D={disks} {mode}: engine speedup {cur_ratio:.2}x regressed >20% below \
                 the recorded {base_ratio:.2}x (floor {floor:.2}x)"
            ));
        } else {
            eprintln!(
                "check D={disks} {mode}: speedup {cur_ratio:.2}x vs recorded {base_ratio:.2}x — ok"
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // --baseline always runs the full sweep (it must enforce the
    // acceptance ratios), so it overrides --quick. --file-only runs
    // just the file section (the CI file-backend smoke step);
    // --transport X runs just the transport section restricted to
    // {inproc, X} (the CI UDS smoke step).
    let baseline_mode = has("--baseline");
    let transport_flag = value_of("--transport");
    let file_only = has("--file-only") && !baseline_mode;
    let transport_only = transport_flag.is_some() && !baseline_mode && !file_only;
    let quick_only = has("--quick") && !baseline_mode;

    // File-backend scratch space: --file-dir points it at, e.g., a
    // tmpfs mount; otherwise a self-cleaning temp dir (the guard
    // removes it on exit).
    let mut _file_guard: Option<pdm::TempDir> = None;
    let file_parent: std::path::PathBuf = match value_of("--file-dir") {
        Some(p) => {
            std::fs::create_dir_all(&p).expect("create --file-dir");
            p.into()
        }
        None => {
            let g = pdm::TempDir::new("engine-sweep-file");
            let p = g.path().to_path_buf();
            _file_guard = Some(g);
            p
        }
    };

    let mut sections: Vec<(&str, Json)> = Vec::new();
    let mut full_rows = Vec::new();
    let mut fusion_section = None;
    let mut extsort_section = None;
    let mut service_section = None;
    let mut recovery_section = None;
    let mut addr_eval_section = None;
    let mut planner_section = None;
    if !file_only && !transport_only {
        if !quick_only {
            let (rows, section) = run_sweep(&FULL);
            full_rows = rows;
            sections.push(("full", section));
        }
        if quick_only || baseline_mode {
            let (_, section) = run_sweep(&QUICK);
            sections.push(("quick", section));
        }
        // The fusion and extsort sections run at the quick size in
        // every mode: their parallel-I/O counts are deterministic (and
        // exactly gated by --check), their timings cheap.
        let fusion = run_fusion_sweep(QUICK.lg_records, QUICK.reps);
        sections.push(("fusion", fusion.clone()));
        fusion_section = Some(fusion);
        let extsort = run_extsort_sweep(QUICK.lg_records, QUICK.reps, &file_parent);
        sections.push(("extsort", extsort.clone()));
        extsort_section = Some(extsort);
        let service = run_service_sweep(QUICK.reps.min(3), baseline_mode);
        sections.push(("service", service.clone()));
        service_section = Some(service);
        let recovery = run_recovery_sweep(QUICK.lg_records, QUICK.reps.min(3), baseline_mode);
        sections.push(("recovery", recovery.clone()));
        recovery_section = Some(recovery);
        let addr_eval = run_addr_eval_sweep(QUICK.lg_records, QUICK.reps, baseline_mode);
        sections.push(("addr_eval", addr_eval.clone()));
        addr_eval_section = Some(addr_eval);
        // The planner section is purely analytic — every row is a
        // deterministic function of the cost model, so it runs (and is
        // exact-gated) in every non-restricted mode.
        let planner = run_planner_sweep();
        sections.push(("planner", planner.clone()));
        planner_section = Some(planner);
    }
    // The transport section runs at the quick size in every mode but
    // --file-only: the same engine pass over in-process channels, UDS
    // worker processes, and the simulated network.
    let mut transport_section = None;
    if !file_only {
        let only = if baseline_mode {
            None
        } else {
            transport_flag.as_deref()
        };
        let t = run_transport_sweep(QUICK.lg_records, QUICK.reps, only, baseline_mode);
        sections.push(("transport", t.clone()));
        transport_section = Some(t);
    }
    // The file section likewise runs at the quick size in every mode
    // but --transport: MemDisk vs. FileDisk under the engine, all
    // service disciplines.
    let mut file_section = None;
    if !transport_only {
        let f = run_file_sweep(QUICK.lg_records, QUICK.reps, &file_parent);
        sections.push(("file", f.clone()));
        file_section = Some(f);
    }

    let mut doc_pairs = vec![
        ("bench", Json::Str("engine_sweep".into())),
        ("version", Json::Num(7.0)),
        (
            "acceptance",
            Json::Str(
                "engine >= 1.5x legacy records/s at D=16 threaded, identical parallel_ios; \
                 fused execution strictly fewer parallel I/Os than unfused (2x on \
                 fully-fusable chains), identical placement; file backend byte-identical \
                 to mem with identical parallel_ios, threaded (DiskPool) file >= spawn-per-op \
                 file records/s; every transport byte-identical with identical parallel_ios, \
                 inproc moves zero messages, sim message/byte counts equal uds exactly, \
                 threaded uds >= 0.5x inproc records/s; service: governor charges identical \
                 parallel_ios to the direct path, served single-job throughput >= 0.9x direct, \
                 K=4 identical tenants charged exactly equally with completion spread <= 25% \
                 of mean; recovery: a ~1%-transient-fault run places byte-identically with \
                 identical charged parallel_ios and exactly one retry per injected firing, \
                 recovered throughput >= 0.8x clean; addr_eval: block-run kernel >= 4x \
                 per-address addresses/s, block-run end-to-end >= 1.2x per-address records/s \
                 on the threaded bpc bit-reversal config, identical placement and parallel_ios, \
                 and the flat residual table >= the byte-sliced fallback addresses/s at every \
                 multi-byte width (the RESIDUAL_TABLE_MAX_BITS tuning evidence); planner: \
                 every crossover pick, step count, and predicted parallel-I/O count is a pure \
                 function of the cost model (pick-in-key exact gate), and the DP fuser executes \
                 the committed MLD;MRC;MLD re-association chain in one pass where greedy pair \
                 fusion needs two; extsort adversarial inputs (duplicate-heavy, skewed) sort \
                 exactly under every strategy with the input-independent schedule"
                    .into(),
            ),
        ),
    ];
    for (name, section) in sections {
        doc_pairs.push((name, section));
    }
    let doc = Json::obj(doc_pairs);

    if !full_rows.is_empty() {
        let s = speedup(&full_rows, 16, "threaded").expect("D=16 threaded measured");
        eprintln!("D=16 threaded engine speedup: {s:.2}x");
        if baseline_mode {
            assert!(
                s >= 1.5,
                "acceptance criterion failed: engine only {s:.2}x at D=16 threaded"
            );
        }
    }

    if let Some(path) = value_of("--out") {
        std::fs::write(&path, doc.to_pretty()).expect("write --out file");
        eprintln!("wrote {path}");
    } else {
        print!("{}", doc.to_pretty());
    }

    // --check FILE compares against a named baseline; --check-latest
    // finds the newest BENCH_PR*.json in the working directory, so the
    // gate follows the per-PR bench trajectory without CI edits.
    let check_target = value_of("--check").or_else(|| {
        has("--check-latest").then(|| {
            latest_bench_baseline(".").unwrap_or_else(|| {
                eprintln!("--check-latest: no BENCH_PR*.json found");
                std::process::exit(1);
            })
        })
    });
    if let Some(baseline) = check_target {
        eprintln!("bench-smoke gate: checking against {baseline}");
        match check_against_baseline(&doc, &baseline, file_only, transport_only) {
            Ok(()) => eprintln!("bench-smoke gate: PASS"),
            Err(msg) if file_only || transport_only => {
                // These restricted gates compare deterministic I/O and
                // message counts exclusively — a failure is real
                // drift, not timing noise, so there is nothing to
                // retry.
                eprintln!("bench-smoke gate: FAIL\n{msg}");
                std::process::exit(1);
            }
            Err(msg) => {
                // Timing on a loaded host is noisy even best-of-N (the
                // legacy spawn-per-op side swings the most); a single
                // clean retry separates real regressions from flakes.
                // The --out artifact keeps the first attempt's numbers.
                // The fusion/extsort/file/transport counts are
                // deterministic, so the first run's sections are
                // reused verbatim.
                eprintln!("bench-smoke gate: first attempt failed:\n{msg}\nretrying once…");
                let (_, retry_section) = run_sweep(&QUICK);
                let retry_doc = Json::obj(vec![
                    ("quick", retry_section),
                    ("fusion", fusion_section.expect("fusion ran")),
                    ("extsort", extsort_section.expect("extsort ran")),
                    ("file", file_section.expect("file ran")),
                    ("transport", transport_section.expect("transport ran")),
                    ("service", service_section.expect("service ran")),
                    ("recovery", recovery_section.expect("recovery ran")),
                    ("addr_eval", addr_eval_section.expect("addr_eval ran")),
                    ("planner", planner_section.expect("planner ran")),
                ]);
                match check_against_baseline(&retry_doc, &baseline, false, false) {
                    Ok(()) => eprintln!("bench-smoke gate: PASS (on retry)"),
                    Err(msg) => {
                        eprintln!("bench-smoke gate: FAIL (twice)\n{msg}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}

/// The newest committed bench baseline: the `BENCH_PR<k>.json` in
/// `dir` with the highest PR number.
fn latest_bench_baseline(dir: &str) -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        // Skip unreadable or non-UTF-8 entries rather than aborting
        // the scan — one stray file must not hide the baseline.
        let Some(name) = entry.ok().and_then(|e| e.file_name().into_string().ok()) else {
            continue;
        };
        let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| num > *b) {
            best = Some((num, name));
        }
    }
    best.map(|(_, name)| name)
}
