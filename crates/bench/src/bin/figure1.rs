//! Regenerates **Figure 1** of the paper: the layout of N = 64 records
//! on a parallel disk system with B = 2 and D = 8, and asserts the
//! simulator places every record accordingly.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin figure1
//! ```

use pdm::{BlockRef, DiskSystem, Geometry};

fn main() {
    let geom = Geometry::new(64, 2, 8, 32).unwrap();
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 1);
    sys.load_records(0, &(0..64u64).collect::<Vec<_>>());

    println!("Figure 1: N = 64 records, B = 2, D = 8, N/BD = 4 stripes\n");
    print!("{:<10}", "");
    for d in 0..8 {
        print!("{:^8}", format!("D{d}"));
    }
    println!();
    for stripe in 0..geom.stripes() {
        print!("{:<10}", format!("stripe {stripe}"));
        for disk in 0..geom.disks() {
            let block = sys.peek_block(BlockRef { disk, slot: stripe });
            // Assert the paper's layout: record indices vary most
            // rapidly within a block, then among disks, then stripes.
            let expect0 = (stripe * geom.disks() + disk) as u64 * geom.block() as u64;
            assert_eq!(block[0], expect0, "layout mismatch");
            assert_eq!(block[1], expect0 + 1, "layout mismatch");
            print!("{:^8}", format!("{:2} {:2}", block[0], block[1]));
        }
        println!();
    }
    println!("\nlayout verified: offset bits 0..b, disk bits b..b+d, stripe bits b+d..n");
}
