//! Beyond the paper's cost model: simulated *service time* under a
//! seek-aware disk model. The paper charges every parallel I/O equally
//! (Section 1 justifies this); this experiment quantifies what that
//! abstraction hides — an MLD pass's independent scattered writes pay
//! seeks that an MRC pass's sequential stripes do not, and on
//! seek-dominated disks a 2-pass plan of sequential passes can rival a
//! 1-pass scattered one.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin latency_model
//! ```

use bmmc::algorithm::{perform_bmmc, plan_passes};
use bmmc::catalog;

use bmmc_bench::{default_geometry, geom_label, Table};
use extsort::general_permute;
use pdm::{DiskSystem, TimingModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let geom = default_geometry();
    println!("Service-time model @ {}\n", geom_label(&geom));
    let mut rng = StdRng::seed_from_u64(31);
    let input: Vec<u64> = (0..geom.records() as u64).collect();

    let cases: Vec<(String, bmmc::Bmmc)> = vec![
        ("MRC (gray code)".into(), catalog::gray_code(geom.n())),
        (
            "MLD (random)".into(),
            catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m()),
        ),
        (
            "MLD⁻¹ (random)".into(),
            catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m()).inverse(),
        ),
        (
            "BMMC (bit reversal)".into(),
            catalog::bit_reversal(geom.n()),
        ),
        (
            "BMMC (random)".into(),
            catalog::random_bmmc(&mut rng, geom.n()),
        ),
    ];
    for (model_name, model) in [("HDD", TimingModel::hdd()), ("SSD", TimingModel::ssd())] {
        println!(
            "-- {model_name} model (seek {} ms, sequential {} ms, transfer {} ms/block)",
            model.seek_ms, model.sequential_ms, model.transfer_ms
        );
        let mut t = Table::new(&[
            "permutation",
            "passes",
            "parallel I/Os",
            "seeks",
            "sequential",
            "sim time (s)",
        ]);
        for (name, perm) in &cases {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
            sys.set_timing(model);
            sys.load_records(0, &input);
            let report = perform_bmmc(&mut sys, perm).unwrap();
            let timing = sys.timing().unwrap();
            let kinds: Vec<String> = report.passes.iter().map(|p| p.label()).collect();
            t.row(&[
                format!("{name} {kinds:?}"),
                report.num_passes().to_string(),
                report.total.parallel_ios().to_string(),
                timing.seeks().to_string(),
                timing.sequential_accesses().to_string(),
                format!("{:.2}", timing.elapsed_ms() / 1000.0),
            ]);
            // Also verify plan classification is stable.
            let _ = plan_passes(perm, geom.b(), geom.m()).unwrap();
        }
        // The sort baseline under the same model.
        let perm = catalog::bit_reversal(geom.n());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.set_timing(model);
        sys.load_records(0, &input);
        let report = general_permute(&mut sys, |&x| x, |x| perm.target(x)).unwrap();
        let timing = sys.timing().unwrap();
        t.row(&[
            "sort baseline (bit reversal)".into(),
            report.passes.to_string(),
            report.total.parallel_ios().to_string(),
            timing.seeks().to_string(),
            timing.sequential_accesses().to_string(),
            format!("{:.2}", timing.elapsed_ms() / 1000.0),
        ]);
        t.print();
        println!();
    }
    println!(
        "Reading: under the HDD model the MLD pass pays one seek per independent write, \
         so its simulated time exceeds an MRC pass with the identical parallel-I/O count; \
         under the SSD model the paper's pure operation count predicts time almost \
         perfectly. The paper's model choice (Section 1) is an SSD-world assumption \
         stated twenty years early."
    );
}
