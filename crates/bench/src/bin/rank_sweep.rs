//! The central experiment (**Theorems 3 & 21**): sweep the rank of the
//! lower-left submatrix `γ = A_{b..n−1, 0..b−1}` and show the measured
//! parallel-I/O count of the algorithm sandwiched between the
//! universal lower bound and the asymptotically matching upper bound.
//!
//! Also reports the Section 7 sharpened lower bound (exact constants)
//! and the eq. (17) pass prediction — the ablation for the swap/erase
//! chunking (`m−b` columns per round).
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin rank_sweep
//! ```

use bmmc::{bounds, Bmmc};
use bmmc_bench::{geom_label, measure_bmmc, Table};
use gf2::elim::rank;
use gf2::sample::random_with_submatrix_rank;
use pdm::Geometry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // A geometry with a wide rank range and a small lg(M/B) = 2, so
    // the sweep crosses several pass thresholds: rank γ runs 0..8 and
    // Lemma 20 forces rank γ̂ ≥ rank γ − 2, i.e. up to 4 passes.
    let geom = Geometry::new(1 << 16, 1 << 8, 1 << 2, 1 << 10).unwrap();
    println!(
        "Rank sweep @ {}   lg(M/B) = {}, one pass = {} I/Os\n",
        geom_label(&geom),
        geom.lg_mb(),
        geom.ios_per_pass()
    );
    let mut t = Table::new(&[
        "rank γ",
        "Thm 3 lower",
        "§7 precise lower",
        "measured I/Os",
        "Thm 21 upper",
        "passes",
        "eq.17 predicted",
    ]);
    let (n, b) = (geom.n(), geom.b());
    for r in 0..=b.min(n - b) {
        let trials = 3;
        let mut ios = 0u64;
        let mut passes = 0usize;
        let mut predicted = 0usize;
        for _ in 0..trials {
            let a = random_with_submatrix_rank(&mut rng, n, b, r);
            let perm = Bmmc::linear(a).unwrap();
            let r_gamma_m = rank(&perm.matrix().submatrix(geom.m()..n, 0..geom.m()));
            predicted += bounds::factoring_passes(&geom, r_gamma_m);
            let m = measure_bmmc(geom, &perm);
            ios += m.ios.parallel_ios();
            passes += m.passes;
        }
        let ios = ios / trials as u64;
        t.row(&[
            r.to_string(),
            format!("{:.0}", bounds::theorem3_lower(&geom, r)),
            format!("{:.0}", bounds::precise_lower(&geom, r)),
            ios.to_string(),
            bounds::theorem21_upper(&geom, r).to_string(),
            format!("{:.1}", passes as f64 / trials as f64),
            format!("{:.1}", predicted as f64 / trials as f64),
        ]);
        assert!(
            ios <= bounds::theorem21_upper(&geom, r),
            "upper bound violated"
        );
    }
    t.print();
    println!(
        "\nShape check: measured I/Os grow linearly in ⌈rank γ/lg(M/B)⌉ and stay within \
         [lower, upper] at every rank — the asymptotically tight sandwich of the title."
    );
}
