//! Ablation: the swap/erase chunk size of Section 5.
//!
//! The engine moves up to `lg(M/B) = m − b` lower-left columns per
//! swap/erase round, the most the middle section can hold. This
//! ablation re-runs the factoring with artificially smaller chunks and
//! confirms the pass count degrades as `⌈rank γ̂ / chunk⌉ + 1` — i.e.
//! the paper's choice is the optimal one.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin ablation_chunk
//! ```

use bmmc::algorithm::execute_passes;
use bmmc::{catalog, factor_chunked};
use bmmc_bench::{geom_label, Table};
use gf2::elim::rank;
use pdm::{DiskSystem, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // lg(M/B) = 4 gives chunk sizes 1..=4 to sweep.
    let geom = Geometry::new(1 << 14, 1 << 4, 1 << 2, 1 << 8).unwrap();
    println!(
        "Chunk-size ablation @ {}   (Section 5 uses chunk = lg(M/B) = {})\n",
        geom_label(&geom),
        geom.lg_mb()
    );
    let mut rng = StdRng::seed_from_u64(37);
    let perm = catalog::random_bmmc(&mut rng, geom.n());
    let rank_gm = rank(&perm.matrix().submatrix(geom.m()..geom.n(), 0..geom.m()));
    println!("instance: random BMMC with rank γ̂ = {rank_gm}\n");

    let mut t = Table::new(&[
        "chunk",
        "predicted passes",
        "actual passes",
        "parallel I/Os",
        "verified",
    ]);
    let input: Vec<u64> = (0..geom.records() as u64).collect();
    for chunk in 1..=geom.lg_mb() {
        let fac = factor_chunked(&perm, geom.b(), geom.m(), chunk).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.load_records(0, &input);
        let report = execute_passes(&mut sys, &fac.passes).unwrap();
        let out = sys.dump_records(report.final_portion);
        let ok = out
            .iter()
            .enumerate()
            .all(|(y, &k)| perm.target(k) == y as u64);
        let predicted = if rank_gm == 0 {
            1
        } else {
            rank_gm.div_ceil(chunk) + 1
        };
        t.row(&[
            chunk.to_string(),
            predicted.to_string(),
            report.num_passes().to_string(),
            report.total.parallel_ios().to_string(),
            if ok { "yes".into() } else { "NO".into() },
        ]);
        assert!(ok, "chunk {chunk} produced a wrong permutation");
        assert_eq!(report.num_passes(), predicted);
    }
    t.print();
    println!(
        "\npasses = ⌈rank γ̂ / chunk⌉ + 1 exactly; the full-width chunk (m−b) of \
         Section 5 minimizes both passes and I/Os."
    );
}
