//! Detection cost (**Section 6**): measured parallel reads vs the
//! formula `N/BD + ⌈(lg(N/B)+1)/D⌉` across geometries, for positive
//! instances, plus the early-exit behaviour on negative ones.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin detection
//! ```

use bmmc::detect::{detect_bmmc, load_target_vector, Detection};
use bmmc::{bounds, catalog};
use bmmc_bench::{geom_label, Table};
use pdm::Geometry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(19);
    let geoms = [
        Geometry::new(1 << 13, 1 << 3, 1 << 4, 1 << 8).unwrap(), // Figure 2
        Geometry::new(1 << 16, 1 << 4, 1 << 3, 1 << 10).unwrap(),
        Geometry::new(1 << 14, 1 << 2, 1, 1 << 8).unwrap(), // single disk
        Geometry::new(1 << 16, 1, 1 << 4, 1 << 8).unwrap(), // B = 1
    ];
    let mut t = Table::new(&[
        "geometry",
        "instance",
        "verdict",
        "candidate reads",
        "verify reads",
        "total",
        "formula",
    ]);
    for geom in geoms {
        let perm = catalog::random_bmmc(&mut rng, geom.n());
        let cases: Vec<(&str, Vec<u64>)> = vec![
            ("random BMMC", perm.target_vector()),
            ("gray code", catalog::gray_code(geom.n()).target_vector()),
            ("shuffle", {
                let mut v: Vec<u64> = (0..geom.records() as u64).collect();
                v.shuffle(&mut rng);
                v
            }),
        ];
        for (name, targets) in cases {
            let mut sys = load_target_vector(geom, &targets);
            let det = detect_bmmc(&mut sys, 0).unwrap();
            let stats = det.stats();
            let verdict = match det {
                Detection::Bmmc { .. } => "BMMC",
                Detection::NotBmmc { .. } => "not BMMC",
            };
            t.row(&[
                geom_label(&geom),
                name.into(),
                verdict.into(),
                stats.candidate_reads.to_string(),
                stats.verify_reads.to_string(),
                stats.total().to_string(),
                bounds::detection_reads(&geom).to_string(),
            ]);
            assert!(stats.total() <= bounds::detection_reads(&geom));
        }
    }
    t.print();
    println!(
        "\npositive instances meet the Section 6 read count exactly; negative instances \
         exit early ('usually far fewer when the permutation turns out not to be BMMC')."
    );
}
