//! The old-vs-new comparison (Section 1 + Conclusion): the BMMC bound
//! of Cormen \[4\] — `2N/BD·(2⌈(lgM−r)/lg(M/B)⌉ + H(N,M,B))` — against
//! Theorem 21, across the three regimes of `H` (eq. 1), with the
//! measured cost of this implementation alongside.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin old_vs_new
//! ```

use bmmc::{bounds, catalog};
use bmmc_bench::{geom_label, measure_bmmc, Table};
use gf2::elim::rank;
use pdm::Geometry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    // Fixed N = 2^18, B = 2^4, D = 2^2; sweep M to cross the three H
    // regimes: M ≤ √N (m ≤ 9), √N < M < √(NB) (9 < m < 11), √(NB) ≤ M.
    let mut t = Table::new(&[
        "geometry",
        "H regime",
        "H",
        "old bound I/Os",
        "new bound I/Os",
        "measured I/Os",
        "old/new",
    ]);
    for m_exp in [8usize, 10, 12, 14] {
        let geom = Geometry::new(1 << 18, 1 << 4, 1 << 2, 1 << m_exp).unwrap();
        let regime = if 2 * geom.m() <= geom.n() {
            "M ≤ √N"
        } else if 2 * geom.m() < geom.n() + geom.b() {
            "√N < M < √(NB)"
        } else {
            "√(NB) ≤ M"
        };
        let mut old_sum = 0u64;
        let mut new_sum = 0u64;
        let mut meas_sum = 0u64;
        let trials = 3;
        for _ in 0..trials {
            let perm = catalog::random_bmmc(&mut rng, geom.n());
            let r_lead = rank(&perm.matrix().submatrix(0..geom.m(), 0..geom.m()));
            let r_gamma = rank(&perm.matrix().submatrix(geom.b()..geom.n(), 0..geom.b()));
            old_sum += bounds::old_bmmc_upper(&geom, r_lead);
            new_sum += bounds::theorem21_upper(&geom, r_gamma);
            meas_sum += measure_bmmc(geom, &perm).ios.parallel_ios();
        }
        let (old, new, meas) = (old_sum / trials, new_sum / trials, meas_sum / trials);
        t.row(&[
            geom_label(&geom),
            regime.into(),
            bounds::h_function(&geom).to_string(),
            old.to_string(),
            new.to_string(),
            meas.to_string(),
            format!("{:.1}x", old as f64 / new as f64),
        ]);
    }
    t.print();
    println!(
        "\nThe paper's claim (Section 1): the Ω(N/BD·H) additive term of the old bound \
         is unnecessary — the new bound removes it in every regime, and the measured \
         cost tracks the new bound."
    );
}
