//! MLD permutations in one pass (**Theorem 15**) and the closure
//! theorems (**17, 18**): measured pass counts and the striped /
//! independent I/O breakdown that defines the class (striped reads,
//! independent writes), plus the non-closure counterexample of
//! Section 3.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin mld_onepass
//! ```

use bmmc::{catalog, classes, is_mld, is_mrc};
use bmmc_bench::{default_geometry, geom_label, measure_bmmc, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let geom = default_geometry();
    let (n, b, m) = (geom.n(), geom.b(), geom.m());
    println!("MLD one-pass @ {}\n", geom_label(&geom));
    let mut t = Table::new(&[
        "instance",
        "class",
        "passes",
        "striped reads",
        "indep reads",
        "striped writes",
        "indep writes",
    ]);
    let mut cases: Vec<(String, bmmc::Bmmc)> = Vec::new();
    for i in 0..3 {
        cases.push((
            format!("random MLD #{i}"),
            catalog::random_mld(&mut rng, n, b, m),
        ));
    }
    // Theorem 17: MLD ∘ MRC is MLD (matrix product Y·X).
    for i in 0..2 {
        let y = catalog::random_mld(&mut rng, n, b, m);
        let x = catalog::random_mrc(&mut rng, n, m);
        cases.push((format!("MLD·MRC #{i}"), y.compose(&x)));
    }
    // Theorem 18: MRC ∘ MRC is MRC.
    let x1 = catalog::random_mrc(&mut rng, n, m);
    let x2 = catalog::random_mrc(&mut rng, n, m);
    cases.push(("MRC·MRC".into(), x1.compose(&x2)));
    // Section 7: inverses of MLD permutations are one pass too.
    for i in 0..2 {
        let y = catalog::random_mld(&mut rng, n, b, m);
        cases.push((format!("MLD⁻¹ #{i}"), y.inverse()));
    }

    for (name, perm) in &cases {
        let flags = classes::classify(perm.matrix(), b, m);
        let class = if flags.mrc {
            "MRC"
        } else if flags.mld {
            "MLD"
        } else if flags.mld_inverse {
            "MLD⁻¹"
        } else {
            "BMMC"
        };
        let meas = measure_bmmc(geom, perm);
        t.row(&[
            name.clone(),
            class.into(),
            meas.passes.to_string(),
            meas.ios.striped_reads.to_string(),
            meas.ios.independent_reads().to_string(),
            meas.ios.striped_writes.to_string(),
            meas.ios.independent_writes().to_string(),
        ]);
        assert_eq!(meas.passes, 1, "{name} should be one pass");
    }
    t.print();

    // Section 7's paired-MLD extension: Y ∘ Z⁻¹ in ONE pass with
    // independent reads AND writes, where the generic planner needs 2+.
    let y = catalog::random_mld(&mut rng, n, b, m);
    let z = catalog::random_mld(&mut rng, n, b, m);
    let composed = y.compose(&z.inverse());
    let planner_passes = bmmc::plan_passes(&composed, b, m).unwrap().len();
    let mut sys: pdm::DiskSystem<u64> = pdm::DiskSystem::new_mem(geom, 2);
    sys.load_records(0, &(0..geom.records() as u64).collect::<Vec<_>>());
    let stats = bmmc::perform_mld_pair(&mut sys, &y, &z, 0, 1).unwrap();
    println!(
        "\nSection 7 pair extension: Y·Z⁻¹ executed in 1 pass ({} I/Os, {} independent \
         reads, {} independent writes); the generic planner would use {} passes.",
        stats.ios.parallel_ios(),
        stats.ios.independent_reads(),
        stats.ios.independent_writes(),
        planner_passes
    );

    // The Section 3 counterexample: MRC·MLD (reversed order) need not
    // be MLD. Reproduce it structurally on this geometry.
    let mut non_mld = None;
    for _ in 0..200 {
        let x = catalog::random_mrc(&mut rng, n, m);
        let y = catalog::random_mld(&mut rng, n, b, m);
        let prod = x.compose(&y); // X·Y, the reversed order
        if !is_mld(prod.matrix(), b, m) {
            non_mld = Some(prod);
            break;
        }
    }
    match non_mld {
        Some(prod) => {
            let meas = measure_bmmc(geom, &prod);
            println!(
                "\nSection 3 non-closure: found MRC·MLD product that is NOT MLD \
                 (it needed {} passes, {} I/Os) — composition order matters.",
                meas.passes,
                meas.ios.parallel_ios()
            );
            assert!(!is_mrc(prod.matrix(), m));
        }
        None => println!("\n(no MRC·MLD counterexample sampled this run)"),
    }
}
