//! Regenerates **Figure 2** of the paper: parsing the address
//! `x = (x_0 … x_{n−1})` with n = 13, b = 3, d = 4, m = 8, s = 6, and
//! verifies every field extractor against exhaustive enumeration.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin figure2
//! ```

use pdm::Layout;

fn main() {
    let (b, d, m, n) = (3u32, 4u32, 8u32, 13u32);
    let l = Layout::from_bits(b, d, m, n);
    println!(
        "Figure 2: n = {n}, b = {b}, d = {d}, m = {m}, s = {}\n",
        l.s()
    );

    // Draw the field map, least significant bit first as in the paper.
    let mut fields = vec![String::new(); n as usize];
    for (i, f) in fields.iter_mut().enumerate() {
        let i = i as u32;
        *f = format!("x{i}:");
        if i < b {
            f.push_str(" offset");
        } else if i < b + d {
            f.push_str(" disk");
        } else {
            f.push_str(" stripe");
        }
        if i >= b && i < m {
            f.push_str(" | relative-block");
        }
        if i >= m {
            f.push_str(" | memoryload");
        }
    }
    for f in &fields {
        println!("  {f}");
    }

    // Exhaustive verification of the field decomposition.
    for x in 0..(1u64 << n) {
        assert_eq!(l.offset(x), x & 0b111);
        assert_eq!(l.disk(x), (x >> 3) & 0b1111);
        assert_eq!(l.stripe(x), x >> 7);
        assert_eq!(l.relative_block(x), (x >> 3) & 0b11111);
        assert_eq!(l.memoryload(x), x >> 8);
        assert_eq!(l.compose(l.offset(x), l.disk(x), l.stripe(x)), x);
    }
    println!(
        "\nverified all 2^{n} addresses: offset = bits 0..{b}, disk = bits {b}..{}, \
         stripe = bits {}..{n}, relative block = bits {b}..{m}, memoryload = bits {m}..{n}",
        b + d,
        b + d
    );
}
