//! Regenerates **Table 1** of the paper: permutation classes, their
//! characteristic-matrix structure, and the number of passes needed —
//! with the paper's bound column next to the measured pass count of
//! this implementation.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin table1
//! ```

use bmmc::{bounds, catalog};
use bmmc_bench::{fig2_geometry, geom_label, measure_bmmc, Table};
use gf2::elim::rank;
use gf2::perm::bpc_cross_rank;
use pdm::Geometry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    for geom in [
        fig2_geometry(),
        Geometry::new(1 << 16, 1 << 4, 1 << 3, 1 << 10).unwrap(),
    ] {
        println!(
            "\n== Table 1 @ {} (one pass = 2N/BD = {} parallel I/Os)",
            geom_label(&geom),
            geom.ios_per_pass()
        );
        let (n, b, m) = (geom.n(), geom.b(), geom.m());
        let mut t = Table::new(&[
            "class",
            "instance",
            "old bound (passes)",
            "new bound (passes)",
            "measured passes",
            "measured I/Os",
        ]);

        // --- BMMC rows: random instances + a permuted Gray code.
        for i in 0..3 {
            let perm = catalog::random_bmmc(&mut rng, n);
            let r_gamma = rank(&perm.matrix().submatrix(b..n, 0..b));
            let r_lead = rank(&perm.matrix().submatrix(0..m, 0..m));
            let old = 2 * (m - r_lead).div_ceil(geom.lg_mb()) + bounds::h_function(&geom);
            let new = r_gamma.div_ceil(geom.lg_mb()) + 2;
            let meas = measure_bmmc(geom, &perm);
            t.row(&[
                "BMMC".into(),
                format!("random #{i} (rank γ={r_gamma})"),
                old.to_string(),
                new.to_string(),
                meas.passes.to_string(),
                meas.ios.parallel_ios().to_string(),
            ]);
        }

        // --- BPC rows: the paper's named examples.
        let bpc_cases: Vec<(&str, bmmc::Bmmc)> = vec![
            ("transpose (square)", catalog::transpose(n, n / 2)),
            ("bit reversal", catalog::bit_reversal(n)),
            ("vector reversal", catalog::vector_reversal(n)),
            ("hypercube", catalog::hypercube(n, 0b1011)),
            ("reblocking", catalog::swap_fields(n, b)),
            ("random BPC", catalog::random_bpc(&mut rng, n)),
        ];
        for (name, perm) in bpc_cases {
            let rho = bpc_cross_rank(perm.matrix(), b, m);
            let r_gamma = rank(&perm.matrix().submatrix(b..n, 0..b));
            let old = 2 * rho.div_ceil(geom.lg_mb()) + 1;
            let new = r_gamma.div_ceil(geom.lg_mb()) + 2;
            let meas = measure_bmmc(geom, &perm);
            t.row(&[
                "BPC".into(),
                format!("{name} (ρ={rho})"),
                old.to_string(),
                new.to_string(),
                meas.passes.to_string(),
                meas.ios.parallel_ios().to_string(),
            ]);
        }

        // --- MRC rows.
        for (name, perm) in [
            ("Gray code", catalog::gray_code(n)),
            ("inverse Gray code", catalog::gray_code_inverse(n)),
            ("random MRC", catalog::random_mrc(&mut rng, n, m)),
        ] {
            let meas = measure_bmmc(geom, &perm);
            t.row(&[
                "MRC".into(),
                name.into(),
                "1".into(),
                "1".into(),
                meas.passes.to_string(),
                meas.ios.parallel_ios().to_string(),
            ]);
        }

        // --- MLD rows (the class this paper introduces).
        for i in 0..2 {
            let perm = catalog::random_mld(&mut rng, n, b, m);
            let meas = measure_bmmc(geom, &perm);
            t.row(&[
                "MLD".into(),
                format!("random #{i}"),
                "- (new class)".into(),
                "1".into(),
                meas.passes.to_string(),
                meas.ios.parallel_ios().to_string(),
            ]);
        }
        t.print();
    }
    println!(
        "\nold BMMC bound = 2⌈(lgM−r)/lg(M/B)⌉+H(N,M,B); old BPC bound = 2⌈ρ/lg(M/B)⌉+1 \
         (both Cormen [4], Table 1); new bound = ⌈rank γ/lg(M/B)⌉+2 (Theorem 21)."
    );
}
