//! The general-permutation crossover (Section 1: "When rank γ is low,
//! this method is an improvement over the general-permutation
//! bound"): measured I/Os of the BMMC algorithm vs the executable
//! external-sort baseline, sweeping rank γ to locate the crossover.
//!
//! ```text
//! cargo run --release -p bmmc-bench --bin general_crossover
//! ```

use bmmc::{bounds, Bmmc};
use bmmc_bench::{geom_label, measure_bmmc, Table};
use extsort::general_permute;
use gf2::sample::random_with_submatrix_rank;
use pdm::{DiskSystem, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    // Small lg(M/B) = 4 keeps multi-pass BMMC instances possible while
    // leaving the sort baseline enough memory to merge (fan-in 3).
    let geom = Geometry::new(1 << 18, 1 << 6, 1 << 2, 1 << 10).unwrap();
    let sort_ios = bounds::merge_sort_ios(&geom, bounds::MergeStrategy::SingleBuffered)
        .expect("geometry can merge");
    println!(
        "Crossover sweep @ {}   lg(M/B) = {}, sort baseline = {} I/Os\n",
        geom_label(&geom),
        geom.lg_mb(),
        sort_ios
    );
    let mut t = Table::new(&[
        "rank γ",
        "BMMC measured",
        "sort measured",
        "winner",
        "factor",
    ]);
    let (n, b) = (geom.n(), geom.b());
    let mut crossover: Option<usize> = None;
    for r in 0..=b.min(n - b) {
        let a = random_with_submatrix_rank(&mut rng, n, b, r);
        let perm = Bmmc::linear(a).unwrap();
        let bmmc_meas = measure_bmmc(geom, &perm).ios.parallel_ios();

        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
        sys.load_records(0, &(0..geom.records() as u64).collect::<Vec<_>>());
        let sort_rep = general_permute(&mut sys, |&x| x, |x| perm.target(x)).unwrap();
        let sort_meas = sort_rep.total.parallel_ios();

        let (winner, factor) = if bmmc_meas <= sort_meas {
            ("BMMC", sort_meas as f64 / bmmc_meas as f64)
        } else {
            if crossover.is_none() {
                crossover = Some(r);
            }
            ("sort", bmmc_meas as f64 / sort_meas as f64)
        };
        t.row(&[
            r.to_string(),
            bmmc_meas.to_string(),
            sort_meas.to_string(),
            winner.into(),
            format!("{factor:.2}x"),
        ]);
    }
    t.print();
    match crossover {
        Some(r) => println!(
            "\ncrossover at rank γ = {r}: below it the BMMC algorithm wins, above it \
             general sorting is competitive — exactly the paper's low-rank claim."
        ),
        None => println!(
            "\nthe BMMC algorithm won at every rank (it is asymptotically optimal, so \
             it can only converge toward — never lose to — the sorting baseline as \
             rank γ approaches its maximum; the low-rank gap is the paper's claim)."
        ),
    }
}
