//! A minimal JSON value, emitter, and parser — just enough for the
//! machine-readable bench artifacts (`BENCH_*.json`) without an
//! external dependency. Supports objects, arrays, strings (with the
//! common escapes), finite numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys, for deterministic emission).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON numbers must be finite");
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => Self::write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    Self::write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses a JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u escape: {e}"))?;
                        *pos += 4;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            c => {
                // Re-assemble UTF-8 sequences byte by byte.
                let start = *pos - 1;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(start..start + len)
                    .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                s.push_str(std::str::from_utf8(chunk).map_err(|e| format!("invalid UTF-8: {e}"))?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("invalid number '{text}' at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_document() {
        let doc = Json::obj(vec![
            ("bench", Json::Str("engine_sweep".into())),
            ("version", Json::Num(1.0)),
            ("quick", Json::Bool(true)),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("disks", Json::Num(16.0)),
                    ("mode", Json::Str("threaded".into())),
                    ("records_per_sec", Json::Num(123456.789)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("rows").unwrap().as_array().unwrap()[0]
                .get("disks")
                .unwrap()
                .as_u64(),
            Some(16)
        );
    }

    #[test]
    fn parses_escapes_and_nested_values() {
        let v = Json::parse(r#"{"a": [1, -2.5, null, true], "s": "x\n\"y\" A"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\" A"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_pretty(), "42\n");
        assert_eq!(Json::Num(2.5).to_pretty(), "2.5\n");
    }
}
