//! Wall-clock throughput of the one-pass executors (MRC and MLD) —
//! the inner loop of every experiment.

use bmmc::catalog;
use bmmc::factoring::{Pass, PassKind};
use bmmc::passes::execute_pass;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdm::{DiskSystem, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_passes(c: &mut Criterion) {
    let geom = Geometry::new(1 << 16, 1 << 4, 1 << 3, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let input: Vec<u64> = (0..geom.records() as u64).collect();

    let mut group = c.benchmark_group("one_pass");
    group.throughput(Throughput::Elements(geom.records() as u64));
    group.sample_size(20);

    let mrc = catalog::random_mrc(&mut rng, geom.n(), geom.m());
    let mrc_pass = Pass {
        matrix: mrc.matrix().clone(),
        complement: mrc.complement().clone(),
        kind: PassKind::Mrc,
    };
    group.bench_function("mrc_pass_2^16", |b| {
        b.iter_batched(
            || {
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
                sys.load_records(0, &input);
                sys
            },
            |mut sys| execute_pass(&mut sys, 0, 1, &mrc_pass).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });

    let mld = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
    let mld_pass = Pass {
        matrix: mld.matrix().clone(),
        complement: mld.complement().clone(),
        kind: PassKind::Mld,
    };
    group.bench_function("mld_pass_2^16", |b| {
        b.iter_batched(
            || {
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
                sys.load_records(0, &input);
                sys
            },
            |mut sys| execute_pass(&mut sys, 0, 1, &mld_pass).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
