//! End-to-end wall-clock benchmarks: the full BMMC algorithm vs the
//! external-sort baseline, plus the DESIGN.md ablations — serial vs
//! threaded disk service, and memory vs file backends.

use bmmc::algorithm::perform_bmmc;
use bmmc::catalog;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use extsort::general_permute;
use pdm::{DiskSystem, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_algorithms(c: &mut Criterion) {
    let geom = Geometry::new(1 << 16, 1 << 4, 1 << 3, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let perm = catalog::random_bmmc(&mut rng, geom.n());
    let input: Vec<u64> = (0..geom.records() as u64).collect();

    let mut group = c.benchmark_group("end_to_end");
    group.throughput(Throughput::Elements(geom.records() as u64));
    group.sample_size(15);

    group.bench_function("bmmc_2^16", |b| {
        b.iter_batched(
            || {
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
                sys.load_records(0, &input);
                sys
            },
            |mut sys| perform_bmmc(&mut sys, &perm).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("sort_baseline_2^16", |b| {
        let p = perm.clone();
        b.iter_batched(
            || {
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
                sys.load_records(0, &input);
                sys
            },
            move |mut sys| general_permute(&mut sys, |&x| x, |x| p.target(x)).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });

    // Ablation: threaded (one thread per disk) vs serial service on
    // the memory backend — measures pure dispatch overhead.
    group.bench_function("bmmc_2^16_threaded_disks", |b| {
        b.iter_batched(
            || {
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
                sys.set_threaded(true);
                sys.load_records(0, &input);
                sys
            },
            |mut sys| perform_bmmc(&mut sys, &perm).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();

    // Ablation: real files, serial vs threaded service.
    let mut fgroup = c.benchmark_group("file_backend");
    fgroup.sample_size(10);
    let fgeom = Geometry::new(1 << 14, 1 << 4, 1 << 3, 1 << 9).unwrap();
    let finput: Vec<u64> = (0..fgeom.records() as u64).collect();
    let fperm = catalog::random_bmmc(&mut rng, fgeom.n());
    for threaded in [false, true] {
        let name = if threaded {
            "bmmc_2^14_file_threaded"
        } else {
            "bmmc_2^14_file_serial"
        };
        let dir = std::env::temp_dir().join(format!("bmmc-bench-{name}"));
        fgroup.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sys: DiskSystem<u64> = DiskSystem::new_file(fgeom, 2, &dir).unwrap();
                    sys.set_threaded(threaded);
                    sys.load_records(0, &finput);
                    sys
                },
                |mut sys| perform_bmmc(&mut sys, &fperm).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    fgroup.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
