//! Wall-clock cost of the Section 5 factoring — the paper's "on-line"
//! claim: all matrix work is polynomial in lg N (O(lg³ N)), so
//! factoring must be microseconds even for petabyte-scale N.

use bmmc::{catalog, factor};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_factoring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("factoring");
    // n = 40 ⇒ N = 2^40 records (a terabyte-scale address space);
    // the factoring cost depends only on n.
    for (n, b, m) in [(16usize, 4usize, 10usize), (28, 6, 16), (40, 8, 24)] {
        let perm = catalog::random_bmmc(&mut rng, n);
        group.bench_with_input(
            BenchmarkId::new("factor", format!("n{n}")),
            &perm,
            |bch, perm| bch.iter(|| factor(black_box(perm), b, m).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_factoring);
criterion_main!(benches);
