//! Wall-clock benchmarks for the GF(2) substrate: elimination, inverse,
//! products, and the bit-packed vs byte-table evaluator ablation
//! (DESIGN.md "Bit-packed vs bool-matrix GF(2) ops").

use bmmc::{catalog, AffineEvaluator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gf2::elim::{inverse, rank};
use gf2::sample::random_nonsingular;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_elimination(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("gf2");
    for n in [16usize, 32, 64] {
        let a = random_nonsingular(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("rank", n), &a, |b, a| {
            b.iter(|| rank(black_box(a)))
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &a, |b, a| {
            b.iter(|| inverse(black_box(a)).unwrap())
        });
        let bm = random_nonsingular(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("mul", n), &(a.clone(), bm), |b, (x, y)| {
            b.iter(|| x.mul(black_box(y)))
        });
    }
    group.finish();
}

fn bench_evaluator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 24usize;
    let perm = catalog::random_bmmc(&mut rng, n);
    let ev = AffineEvaluator::new(&perm);
    let mut group = c.benchmark_group("affine_eval");
    // Ablation: generic bit-matrix path vs the byte-table evaluator.
    group.bench_function("matrix_mul_vec", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for x in 0..1024u64 {
                acc ^= perm.target(black_box(x));
            }
            acc
        })
    });
    group.bench_function("byte_tables", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for x in 0..1024u64 {
                acc ^= ev.eval(black_box(x));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_elimination, bench_evaluator);
criterion_main!(benches);
