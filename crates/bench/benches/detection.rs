//! Wall-clock cost of Section 6 run-time detection (candidate
//! recovery + full verification sweep).

use bmmc::catalog;
use bmmc::detect::{detect_bmmc, load_target_vector};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdm::Geometry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_detection(c: &mut Criterion) {
    let geom = Geometry::new(1 << 16, 1 << 4, 1 << 3, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let perm = catalog::random_bmmc(&mut rng, geom.n());
    let targets = perm.target_vector();

    let mut group = c.benchmark_group("detection");
    group.throughput(Throughput::Elements(geom.records() as u64));
    group.sample_size(20);
    group.bench_function("positive_2^16", |b| {
        b.iter_batched(
            || load_target_vector(geom, &targets),
            |mut sys| detect_bmmc(&mut sys, 0).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    // Negative case: early exit is nearly free.
    let mut corrupted = targets.clone();
    corrupted.swap(1, 2);
    group.bench_function("negative_2^16", |b| {
        b.iter_batched(
            || load_target_vector(geom, &corrupted),
            |mut sys| detect_bmmc(&mut sys, 0).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
