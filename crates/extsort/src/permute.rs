//! General permutations via external sorting — the Vitter–Shriver
//! baseline the BMMC algorithm is compared against.
//!
//! To perform an arbitrary permutation `π`, tag each record with its
//! target address `π(x)` and sort by the tag: the sorted order *is*
//! the permuted order, because the tags are exactly `0..N`.
//!
//! The sort itself runs on the shared streaming machinery of
//! `pdm::engine` (see [`crate::merge`]): run formation is a
//! [`pdm::PassEngine`] pass, so with
//! [`pdm::ServiceMode::Threaded`] the per-disk service threads
//! prefetch the next memoryload while the current one is sorted. The
//! merge strategy (single-buffered, double-buffered, or forecasting —
//! see [`crate::MergeStrategy`]) is selectable via
//! [`general_permute_with`].

use crate::merge::{sort_by_key_with, SortConfig, SortReport};
use pdm::{DiskSystem, PdmError, Record};

/// Performs an arbitrary permutation of the records in portion 0 with
/// the default (single-buffered) merge. See [`general_permute_with`].
///
/// * `key_of` recovers a record's *source address* (its identity) —
///   e.g. `|r| r.key` for [`pdm::TaggedRecord`] or `|&r| r` for `u64`
///   records initialized to their own index.
/// * `target` is the permutation: source address → target address.
pub fn general_permute<R: Record>(
    sys: &mut DiskSystem<R>,
    key_of: impl Fn(&R) -> u64 + Copy,
    target: impl Fn(u64) -> u64 + Copy,
) -> Result<SortReport, PdmError> {
    general_permute_with(sys, key_of, target, SortConfig::default())
}

/// [`general_permute`] with an explicit [`SortConfig`], so callers
/// (the CLI's `--merge` flag, the benches) can pick the merge
/// strategy.
pub fn general_permute_with<R: Record>(
    sys: &mut DiskSystem<R>,
    key_of: impl Fn(&R) -> u64 + Copy,
    target: impl Fn(u64) -> u64 + Copy,
    cfg: SortConfig,
) -> Result<SortReport, PdmError> {
    sort_by_key_with(sys, move |r| target(key_of(r)), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergeStrategy;
    use pdm::{Geometry, TaggedRecord};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    #[test]
    fn performs_random_general_permutation() {
        let g = geom();
        let n = g.records();
        let mut rng = StdRng::seed_from_u64(111);
        let mut targets: Vec<u64> = (0..n as u64).collect();
        targets.shuffle(&mut rng);
        let targets2 = targets.clone();

        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..n as u64).collect::<Vec<_>>());
        let tmap = &targets;
        let report = general_permute(&mut sys, |&r| r, move |x| tmap[x as usize]).unwrap();
        let out = sys.dump_records(report.final_portion);
        for (x, &y) in targets2.iter().enumerate() {
            assert_eq!(out[y as usize], x as u64, "record {x} misplaced");
        }
    }

    #[test]
    fn forecast_strategy_performs_identical_permutation() {
        let g = geom();
        let n = g.records();
        let mut rng = StdRng::seed_from_u64(112);
        let mut targets: Vec<u64> = (0..n as u64).collect();
        targets.shuffle(&mut rng);

        let run = |merge: MergeStrategy| {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.load_records(0, &(0..n as u64).collect::<Vec<_>>());
            let tmap = &targets;
            let report = general_permute_with(
                &mut sys,
                |&r| r,
                move |x| tmap[x as usize],
                SortConfig { merge },
            )
            .unwrap();
            assert_eq!(report.strategy, merge);
            sys.dump_records(report.final_portion)
        };
        assert_eq!(
            run(MergeStrategy::SingleBuffered),
            run(MergeStrategy::Forecast),
            "strategies must place every record identically"
        );
    }

    #[test]
    fn cost_matches_general_bound_shape() {
        // The executable baseline's I/O count equals the sorting term
        // of the general-permutation bound with fan-in M/BD − 1,
        // tightened by the leftover-singleton rule: merge pass 1
        // (16 runs = 5 groups of 3 + one of 1) leaves one 4-stripe run
        // in place instead of copying it.
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = general_permute(
            &mut sys,
            |&r| r,
            |x| {
                // bit-reversal as a stand-in permutation
                x.reverse_bits() >> (64 - g.n())
            },
        )
        .unwrap();
        let mut runs = g.memoryloads();
        let mut merge_passes = 0;
        while runs > 1 {
            runs = runs.div_ceil(report.fan_in);
            merge_passes += 1;
        }
        assert_eq!(report.passes, 1 + merge_passes);
        assert_eq!(
            report.total.parallel_ios() as usize,
            report.passes * g.ios_per_pass() - 2 * g.stripes_per_memoryload()
        );
    }

    #[test]
    fn tagged_records_preserve_payload() {
        let g = geom();
        let n = g.records();
        let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..n as u64).map(TaggedRecord::new).collect::<Vec<_>>());
        // vector reversal
        let max = n as u64 - 1;
        let report = general_permute(&mut sys, |r: &TaggedRecord| r.key, move |x| max - x).unwrap();
        let out = sys.dump_records(report.final_portion);
        for (y, rec) in out.iter().enumerate() {
            assert!(rec.intact());
            assert_eq!(rec.key, max - y as u64);
        }
    }
}
