//! Adversarial key distributions for the sort benches and property
//! tests.
//!
//! The merge layer's interesting failure modes are not uniform random
//! permutations: long runs of *equal* keys stress cursor tie-handling
//! and the forecasting heap (every forecast key equal), and heavily
//! *skewed* distributions produce unbalanced merge groups where a few
//! runs carry almost all records. These named generators give the
//! bench `extsort` rows and the `tests/merge_strategies.rs` proptests
//! a shared, seeded vocabulary for those inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `len` keys drawn uniformly from only `distinct` values, shuffled:
/// with `len ≫ distinct` every merge step compares mostly-equal keys
/// and tie order is decided by cursor priority alone.
///
/// # Panics
/// Panics if `distinct` is zero.
pub fn duplicate_heavy(seed: u64, len: usize, distinct: u64) -> Vec<u64> {
    assert!(distinct > 0, "need at least one distinct key");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..distinct)).collect()
}

/// `len` keys log-uniform over `[0, max)`: small values dominate by
/// orders of magnitude (value `v` is roughly `1/(v+1)` likely), so
/// sorted runs are wildly unequal in content and merge groups are
/// unbalanced.
///
/// # Panics
/// Panics if `max` is zero.
pub fn skewed(seed: u64, len: usize, max: u64) -> Vec<u64> {
    assert!(max > 0, "need a nonzero key range");
    let mut rng = StdRng::seed_from_u64(seed);
    let lg_max = (max as f64).ln();
    (0..len)
        .map(|_| {
            let v = (rng.gen::<f64>() * lg_max).exp() as u64 - 1;
            v.min(max - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_heavy_stays_in_range_and_repeats() {
        let keys = duplicate_heavy(1, 4096, 5);
        assert_eq!(keys.len(), 4096);
        assert!(keys.iter().all(|&k| k < 5));
        // With 4096 draws over 5 values, every value appears.
        for v in 0..5 {
            assert!(keys.contains(&v), "value {v} missing");
        }
    }

    #[test]
    fn skewed_is_in_range_and_head_heavy() {
        let keys = skewed(2, 4096, 1 << 20);
        assert!(keys.iter().all(|&k| k < (1 << 20)));
        // Log-uniform over [1, 2^20]: P(v < 32) = lg 32 / lg 2^20 = 1/4,
        // versus 32/2^20 ≈ 0.003% for a uniform draw.
        let small = keys.iter().filter(|&&k| k < 32).count();
        assert!(
            small > keys.len() / 5,
            "log-uniform draw should be head-heavy, got {small}/4096 below 32"
        );
    }

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        assert_eq!(duplicate_heavy(7, 100, 3), duplicate_heavy(7, 100, 3));
        assert_eq!(skewed(7, 100, 1000), skewed(7, 100, 1000));
        assert_ne!(skewed(7, 100, 1000), skewed(8, 100, 1000));
    }
}
