//! External merge sort on the parallel disk model, in three merge
//! flavours (see DESIGN.md for the full cost table).
//!
//! 1. **Run formation**: each memoryload streams through the shared
//!    [`PassEngine`] — striped reads, in-memory sort,
//!    striped writes back as a sorted run of `M` records — one pass,
//!    `2N/BD` parallel I/Os. In [`pdm::ServiceMode::Threaded`] the
//!    engine overlaps the reads of memoryload *k+1* with the sort of
//!    memoryload *k*.
//! 2. **Merge passes**: groups of up to `F` consecutive runs are
//!    merged, where `F` depends on the [`MergeStrategy`]. A leftover
//!    group of a *single* run is never copied: it stays where it is
//!    (zero I/O) and `Run::portion` records which portion it lives
//!    in for the next pass.
//!
//! # Merge strategies
//!
//! * [`MergeStrategy::SingleBuffered`] (the default): each active run
//!   buffers one stripe (`B·D` records) and the output buffers one
//!   stripe, so memory holds at most `(F+1)·BD = M` records and
//!   `F₁ = M/BD − 1`. Every transfer is a striped parallel I/O through
//!   a reusable stripe buffer ([`pdm::DiskSystem::read_stripe_into`]);
//!   a full merge pass costs exactly `2N/BD`.
//! * [`MergeStrategy::DoubleBuffered`]: each cursor holds *two* stripe
//!   buffers and prefetches its next stripe split-phase
//!   ([`pdm::DiskSystem::begin_read`]) while the heap drains the
//!   current one, so in [`pdm::ServiceMode::Threaded`] the refill
//!   latency hides behind the comparisons. To stay inside `M` records
//!   the fan-in is halved — `F₂ = (M/BD − 1)/2` — which *raises* the
//!   pass count.
//! * [`MergeStrategy::Forecast`]: the Vitter–Shriver forecasting
//!   merge at *block* granularity. Each run buffers a single block
//!   (`B` records) and carries a **forecasting key** — the key of the
//!   last record of its current block. Blocks within a run are sorted,
//!   so the run whose forecasting key is smallest is *exactly* the run
//!   whose buffer empties next; its next block is prefetched
//!   split-phase into one shared landing block while the heap drains.
//!   Memory holds `F` run blocks, the landing block, and the output
//!   stripe: `F₃ = M/B − D − 1 = Θ(M/B)` — a factor ~`D` more fan-in
//!   than `F₁`, hence strictly fewer merge passes whenever the
//!   single-buffered sort needs more than one. The price is the read
//!   discipline: refills are independent single-block parallel I/Os
//!   (`D` read operations per stripe instead of one striped read), so
//!   a forecast merge pass charges `(D+1)·N/BD` parallel I/Os against
//!   the single-buffered `2N/BD`. Fewer passes, cheaper passes for the
//!   striped strategies — `bmmc::bounds::merge_sort_ios` computes both
//!   sides exactly and the `engine_sweep` extsort section measures
//!   them.

use pdm::engine::{ReadPlan, WritePlan};
use pdm::{
    BlockRef, DiskSystem, Geometry, IoStats, MsgStats, PassEngine, PdmError, ReadTicket, Record,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the merge passes buffer their runs. See the module docs for the
/// cost trade-offs; `bmmc::bounds` mirrors the fan-in and cost
/// formulas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeStrategy {
    /// One stripe buffer per run, striped I/O only, fan-in
    /// `M/BD − 1`. The memory-model-faithful default.
    #[default]
    SingleBuffered,
    /// Two stripe buffers per run with split-phase prefetch, fan-in
    /// `(M/BD − 1)/2`.
    DoubleBuffered,
    /// One *block* buffer per run plus a forecasting key driving a
    /// single split-phase block prefetch, fan-in `M/B − D − 1`.
    Forecast,
}

impl MergeStrategy {
    /// The merge fan-in this strategy reaches on `geom` (may be < 2,
    /// in which case [`sort_by_key_with`] rejects the geometry).
    pub fn fan_in(&self, geom: &Geometry) -> usize {
        let stripes_in_memory = geom.stripes_per_memoryload();
        match self {
            MergeStrategy::SingleBuffered => stripes_in_memory.saturating_sub(1),
            MergeStrategy::DoubleBuffered => stripes_in_memory.saturating_sub(1) / 2,
            MergeStrategy::Forecast => geom
                .blocks_per_memoryload()
                .saturating_sub(geom.disks() + 1),
        }
    }

    /// Stable lower-case label (`single`, `double`, `forecast`) used
    /// by the CLI flag and the bench row keys.
    pub fn as_str(&self) -> &'static str {
        match self {
            MergeStrategy::SingleBuffered => "single",
            MergeStrategy::DoubleBuffered => "double",
            MergeStrategy::Forecast => "forecast",
        }
    }
}

impl std::str::FromStr for MergeStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "single" => Ok(MergeStrategy::SingleBuffered),
            "double" => Ok(MergeStrategy::DoubleBuffered),
            "forecast" => Ok(MergeStrategy::Forecast),
            other => Err(format!(
                "unknown merge strategy {other:?} (expected single, double, or forecast)"
            )),
        }
    }
}

/// Configuration for [`sort_by_key_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SortConfig {
    /// Which merge strategy the merge passes use (see [`MergeStrategy`]
    /// and the module docs). Default: [`MergeStrategy::SingleBuffered`].
    pub merge: MergeStrategy,
}

/// Outcome of an external sort.
#[derive(Clone, Copy, Debug)]
pub struct SortReport {
    /// Number of passes over the data (run formation + merge passes).
    pub passes: usize,
    /// The merge fan-in actually used — the strategy's own value
    /// ([`MergeStrategy::fan_in`]): `M/BD − 1` single-buffered,
    /// `(M/BD − 1)/2` double-buffered, `M/B − D − 1` forecasting.
    pub fan_in: usize,
    /// The merge strategy that produced this report (so benches and
    /// the CLI can label rows).
    pub strategy: MergeStrategy,
    /// Total I/O.
    pub total: IoStats,
    /// Transport messages and wire bytes moved by the whole sort —
    /// identically zero when the disk system is served in process.
    pub msgs: MsgStats,
    /// Portion holding the sorted data.
    pub final_portion: usize,
}

/// A run: a contiguous range of stripes, sorted by key, living in
/// `portion`. Between passes runs may live in *either* portion: a
/// leftover singleton group is left in place (zero I/O) rather than
/// copied, so the next pass finds it where the previous one did.
#[derive(Clone, Copy, Debug)]
struct Run {
    start: usize,
    end: usize, // exclusive, in stripes
    portion: usize,
}

/// One run being consumed during a single-buffered merge: a reusable
/// one-stripe buffer plus the read cursor.
struct Cursor<R> {
    run: Run,
    /// `portion_base` of the run's portion.
    base: usize,
    next_stripe: usize,
    buf: Vec<R>,
    /// Valid records in `buf` (0 until the first refill).
    filled: usize,
    pos: usize,
}

impl<R: Record> Cursor<R> {
    fn new(run: Run, base: usize, stripe_len: usize) -> Self {
        Cursor {
            run,
            base,
            next_stripe: run.start,
            buf: vec![R::default(); stripe_len],
            filled: 0,
            pos: 0,
        }
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.filled && self.next_stripe >= self.run.end
    }

    /// Refills the buffer (in place, no allocation) if empty; returns
    /// false when the run is done.
    fn ensure(&mut self, sys: &mut DiskSystem<R>) -> Result<bool, PdmError> {
        if self.pos < self.filled {
            return Ok(true);
        }
        if self.next_stripe >= self.run.end {
            return Ok(false);
        }
        sys.read_stripe_into(self.base + self.next_stripe, &mut self.buf)?;
        self.filled = self.buf.len();
        self.pos = 0;
        self.next_stripe += 1;
        Ok(true)
    }

    fn peek(&self) -> &R {
        &self.buf[self.pos]
    }

    fn pop(&mut self) -> R {
        let r = self.buf[self.pos];
        self.pos += 1;
        r
    }
}

/// Sorts the `N` records in portion 0 by `key`, ascending, with the
/// default (single-buffered, memory-model-faithful) merge. See
/// [`sort_by_key_with`].
pub fn sort_by_key<R: Record>(
    sys: &mut DiskSystem<R>,
    key: impl Fn(&R) -> u64 + Copy,
) -> Result<SortReport, PdmError> {
    sort_by_key_with(sys, key, SortConfig::default())
}

/// Sorts the `N` records in portion 0 by `key`, ascending. Requires a
/// disk system with at least two portions, and enough memory for a
/// fan-in of at least two runs plus the buffers the chosen
/// [`MergeStrategy`] needs.
pub fn sort_by_key_with<R: Record>(
    sys: &mut DiskSystem<R>,
    key: impl Fn(&R) -> u64 + Copy,
    cfg: SortConfig,
) -> Result<SortReport, PdmError> {
    let geom = sys.geometry();
    if sys.portions() < 2 {
        return Err(PdmError::Config(format!(
            "merge sort needs a disk system with at least two portions, got {}",
            sys.portions()
        )));
    }
    let fan_in = cfg.merge.fan_in(&geom);
    if fan_in < 2 {
        return Err(PdmError::Config(format!(
            "merge sort needs fan-in >= 2, got {fan_in} \
             (M/BD = {}, M/B = {}, strategy = {})",
            geom.stripes_per_memoryload(),
            geom.blocks_per_memoryload(),
            cfg.merge.as_str()
        )));
    }
    let before = sys.stats();
    let msgs_before = sys.message_stats();

    // --- Run formation: memoryload-sized sorted runs into portion 1,
    // streamed through the engine.
    let mut engine: PassEngine<R> = PassEngine::new(geom);
    engine.run_pass(
        sys,
        |ml, _gather| ReadPlan::Memoryload { portion: 0, ml },
        |ml, records, _scratch, _scatter| {
            records.sort_unstable_by_key(|r| key(r));
            WritePlan::Memoryload { portion: 1, ml }
        },
    )?;
    let spm = geom.stripes_per_memoryload();
    let mut runs: Vec<Run> = (0..geom.memoryloads())
        .map(|ml| Run {
            start: ml * spm,
            end: (ml + 1) * spm,
            portion: 1,
        })
        .collect();
    let mut passes = 1usize;

    // --- Merge passes. The target portion alternates per pass; every
    // *merged* group lands there, while a leftover singleton group
    // keeps its `Run::portion`. At most one run is ever off the common
    // source portion, and it is the globally last run, so within a
    // group at most the final run lives in the target portion — the
    // one arrangement where in-place output is safe (the output cursor
    // reaches a target-portion stripe only after every block of it has
    // been consumed, because all earlier-ranged runs together hold
    // exactly the records written before it).
    let stripe_len = geom.block() * geom.disks();
    let mut out: Vec<R> = Vec::with_capacity(stripe_len);
    let mut target = 0usize;
    while runs.len() > 1 {
        let mut next_runs: Vec<Run> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            if group.len() == 1 {
                // Leftover singleton: already a sorted run — leave it
                // in place instead of paying 2·|run| parallel I/Os of
                // pure copy.
                next_runs.push(group[0]);
                continue;
            }
            match cfg.merge {
                MergeStrategy::SingleBuffered => merge_group(sys, target, group, key, &mut out)?,
                MergeStrategy::DoubleBuffered => merge_group_db(sys, target, group, key, &mut out)?,
                MergeStrategy::Forecast => merge_group_fc(sys, target, group, key, &mut out)?,
            }
            next_runs.push(Run {
                start: group[0].start,
                end: group.last().unwrap().end,
                portion: target,
            });
        }
        runs = next_runs;
        target = 1 - target;
        passes += 1;
    }

    Ok(SortReport {
        passes,
        fan_in,
        strategy: cfg.merge,
        total: sys.stats().since(&before),
        msgs: sys.message_stats().since(&msgs_before),
        final_portion: runs[0].portion,
    })
}

/// Merges a group of consecutive runs (each read from its own
/// [`Run::portion`]) into the same stripe range of portion `dst`.
/// `out` is the reusable one-stripe output buffer.
fn merge_group<R: Record>(
    sys: &mut DiskSystem<R>,
    dst: usize,
    group: &[Run],
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let dst_base = sys.portion_base(dst);
    let stripe_len = geom.block() * geom.disks();

    let mut cursors: Vec<Cursor<R>> = group
        .iter()
        .map(|&run| Cursor::new(run, sys.portion_base(run.portion), stripe_len))
        .collect();
    // Heap of (key, cursor index); pull the global minimum, refilling
    // that cursor's stripe buffer on demand.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        if c.ensure(sys)? {
            heap.push(Reverse((key(c.peek()), i)));
        }
    }
    out.clear();
    let mut out_stripe = group[0].start;
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = cursors[i].pop();
        out.push(rec);
        if out.len() == stripe_len {
            sys.write_stripe(dst_base + out_stripe, out)?;
            out_stripe += 1;
            out.clear();
        }
        if cursors[i].ensure(sys)? {
            heap.push(Reverse((key(cursors[i].peek()), i)));
        }
    }
    debug_assert!(out.is_empty(), "runs are stripe-aligned");
    debug_assert!(cursors.iter().all(Cursor::exhausted));
    Ok(())
}

/// One run being consumed by the double-buffered merge: two stripe
/// buffers, the active one draining while the other's refill is in
/// flight split-phase.
struct DbCursor<R: Record> {
    run: Run,
    base: usize,
    /// Next stripe to *submit* (not yet issued).
    next_stripe: usize,
    bufs: [Vec<R>; 2],
    /// Which buffer the heap is draining.
    cur: usize,
    filled: usize,
    pos: usize,
    /// In-flight refill of `bufs[1 - cur]`.
    pending: Option<ReadTicket<R>>,
}

impl<R: Record> DbCursor<R> {
    fn new(run: Run, base: usize, stripe_len: usize) -> Self {
        DbCursor {
            run,
            base,
            next_stripe: run.start,
            bufs: [
                vec![R::default(); stripe_len],
                vec![R::default(); stripe_len],
            ],
            cur: 0,
            filled: 0,
            pos: 0,
            pending: None,
        }
    }

    /// Submits the next stripe read split-phase, if any remain and
    /// none is in flight. `refs` is a reusable scratch.
    fn prefetch(
        &mut self,
        sys: &mut DiskSystem<R>,
        refs: &mut Vec<BlockRef>,
    ) -> Result<(), PdmError> {
        if self.pending.is_some() || self.next_stripe >= self.run.end {
            return Ok(());
        }
        let slot = self.base + self.next_stripe;
        refs.clear();
        refs.extend((0..sys.geometry().disks()).map(|disk| BlockRef { disk, slot }));
        self.pending = Some(sys.begin_read(refs)?);
        self.next_stripe += 1;
        Ok(())
    }

    /// Makes the next record available, completing the in-flight
    /// refill and chaining the next prefetch; false when the run is
    /// done.
    fn ensure(
        &mut self,
        sys: &mut DiskSystem<R>,
        refs: &mut Vec<BlockRef>,
    ) -> Result<bool, PdmError> {
        if self.pos < self.filled {
            return Ok(true);
        }
        let Some(ticket) = self.pending.take() else {
            return Ok(false);
        };
        let other = 1 - self.cur;
        let len = self.bufs[other].len();
        sys.finish_read(ticket, &mut self.bufs[other][..])?;
        self.cur = other;
        self.filled = len;
        self.pos = 0;
        // Start refilling the buffer just drained.
        self.prefetch(sys, refs).map(|()| true)
    }

    fn peek(&self) -> &R {
        &self.bufs[self.cur][self.pos]
    }

    fn pop(&mut self) -> R {
        let r = self.bufs[self.cur][self.pos];
        self.pos += 1;
        r
    }
}

/// Merges a group of consecutive runs with double-buffered cursors
/// (split-phase prefetch). I/O *counts* are identical to
/// [`merge_group`] — every stripe is still read exactly once — but in
/// threaded mode the refills overlap the heap work.
fn merge_group_db<R: Record>(
    sys: &mut DiskSystem<R>,
    dst: usize,
    group: &[Run],
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let stripe_len = geom.block() * geom.disks();
    let mut cursors: Vec<DbCursor<R>> = group
        .iter()
        .map(|&run| DbCursor::new(run, sys.portion_base(run.portion), stripe_len))
        .collect();
    let mut refs: Vec<BlockRef> = Vec::with_capacity(geom.disks());
    let result = merge_group_db_inner(sys, dst, group, &mut cursors, &mut refs, key, out);
    if result.is_err() {
        // Abort path: reclaim every in-flight prefetch so no pooled
        // buffers are stranded.
        for c in &mut cursors {
            if let Some(t) = c.pending.take() {
                sys.discard_read(t);
            }
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn merge_group_db_inner<R: Record>(
    sys: &mut DiskSystem<R>,
    dst: usize,
    group: &[Run],
    cursors: &mut [DbCursor<R>],
    refs: &mut Vec<BlockRef>,
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let dst_base = sys.portion_base(dst);
    let stripe_len = geom.block() * geom.disks();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        c.prefetch(sys, refs)?;
        if c.ensure(sys, refs)? {
            heap.push(Reverse((key(c.peek()), i)));
        }
    }
    out.clear();
    let mut out_stripe = group[0].start;
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = cursors[i].pop();
        out.push(rec);
        if out.len() == stripe_len {
            sys.write_stripe(dst_base + out_stripe, out)?;
            out_stripe += 1;
            out.clear();
        }
        if cursors[i].ensure(sys, refs)? {
            heap.push(Reverse((key(cursors[i].peek()), i)));
        }
    }
    debug_assert!(out.is_empty(), "runs are stripe-aligned");
    debug_assert!(cursors
        .iter()
        .all(|c| c.pending.is_none() && c.pos >= c.filled));
    Ok(())
}

/// One run being consumed by the forecasting merge: a single *block*
/// buffer plus the forecasting key (the key of the buffer's last
/// record — blocks within a run are sorted, so the run with the
/// smallest forecasting key is exactly the run whose buffer empties
/// next).
struct FcCursor<R> {
    run: Run,
    base: usize,
    /// Next block (0-based within the run) not yet landed or in
    /// flight. Block `k` of a run lives at stripe `start + k/D`,
    /// disk `k mod D`.
    next_block: usize,
    total_blocks: usize,
    buf: Vec<R>,
    filled: usize,
    pos: usize,
    /// Forecasting key (valid while `filled > 0`).
    fkey: u64,
}

impl<R: Record> FcCursor<R> {
    fn new(run: Run, base: usize, block: usize, disks: usize) -> Self {
        FcCursor {
            run,
            base,
            next_block: 0,
            total_blocks: (run.end - run.start) * disks,
            buf: vec![R::default(); block],
            filled: 0,
            pos: 0,
            fkey: 0,
        }
    }

    /// True while this cursor still has blocks that were neither
    /// landed nor submitted.
    fn has_unfetched(&self) -> bool {
        self.next_block < self.total_blocks
    }

    /// The [`BlockRef`] of the next unfetched block.
    fn next_ref(&self, disks: usize) -> BlockRef {
        BlockRef {
            disk: self.next_block % disks,
            slot: self.base + self.run.start + self.next_block / disks,
        }
    }

    fn peek(&self) -> &R {
        &self.buf[self.pos]
    }

    fn pop(&mut self) -> R {
        let r = self.buf[self.pos];
        self.pos += 1;
        r
    }

    /// Installs a freshly landed block and refreshes the forecasting
    /// key.
    fn install(&mut self, key: impl Fn(&R) -> u64) {
        self.filled = self.buf.len();
        self.pos = 0;
        self.fkey = key(&self.buf[self.filled - 1]);
    }
}

/// The in-flight forecast prefetch: which cursor it refills and its
/// split-phase ticket.
struct FcPending<R: Record> {
    cursor: usize,
    ticket: ReadTicket<R>,
}

/// Merges a group of consecutive runs with forecasting block-granular
/// cursors. Reads are independent single-block parallel I/Os (every
/// block of the group is read exactly once — `D` read operations per
/// stripe); writes remain striped. The one split-phase prefetch in
/// flight always belongs to the run that empties next, so in threaded
/// mode every refill is already resident when the heap demands it.
fn merge_group_fc<R: Record>(
    sys: &mut DiskSystem<R>,
    dst: usize,
    group: &[Run],
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let block = geom.block();
    let disks = geom.disks();
    let mut cursors: Vec<FcCursor<R>> = group
        .iter()
        .map(|&run| FcCursor::new(run, sys.portion_base(run.portion), block, disks))
        .collect();
    let mut pending: Option<FcPending<R>> = None;
    let result = merge_group_fc_inner(sys, dst, group, &mut cursors, &mut pending, key, out);
    if result.is_err() {
        // Abort path: reclaim the in-flight prefetch so no pooled
        // buffers are stranded.
        if let Some(p) = pending.take() {
            sys.discard_read(p.ticket);
        }
    }
    result
}

/// Submits the next prefetch: the first unfetched block of the run
/// predicted to empty next (smallest `(fkey, index)` — ties broken
/// like the merge heap, so the prediction is exact even with
/// duplicate keys).
fn fc_issue_prefetch<R: Record>(
    sys: &mut DiskSystem<R>,
    cursors: &mut [FcCursor<R>],
    pending: &mut Option<FcPending<R>>,
) -> Result<(), PdmError> {
    debug_assert!(pending.is_none());
    let disks = sys.geometry().disks();
    let predicted = cursors
        .iter()
        .enumerate()
        .filter(|(_, c)| c.has_unfetched())
        .min_by_key(|(i, c)| (c.fkey, *i))
        .map(|(i, _)| i);
    if let Some(i) = predicted {
        let ticket = sys.begin_read_block(cursors[i].next_ref(disks))?;
        cursors[i].next_block += 1;
        *pending = Some(FcPending { cursor: i, ticket });
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn merge_group_fc_inner<R: Record>(
    sys: &mut DiskSystem<R>,
    dst: usize,
    group: &[Run],
    cursors: &mut [FcCursor<R>],
    pending: &mut Option<FcPending<R>>,
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let dst_base = sys.portion_base(dst);
    let disks = geom.disks();
    let stripe_len = geom.block() * disks;
    // Shared landing buffer for the split-phase prefetch: the one
    // extra block of residency the strategy charges against M.
    let mut landing: Vec<R> = vec![R::default(); geom.block()];

    // Initial fill: every cursor's first block, demand-read (all runs
    // start at a stripe boundary, i.e. on disk 0, so these reads
    // cannot batch).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        debug_assert!(c.has_unfetched(), "runs are non-empty");
        sys.read_block_into(c.next_ref(disks), &mut c.buf)?;
        c.next_block += 1;
        c.install(key);
        heap.push(Reverse((key(c.peek()), i)));
    }
    fc_issue_prefetch(sys, cursors, pending)?;

    out.clear();
    let mut out_stripe = group[0].start;
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = cursors[i].pop();
        out.push(rec);
        if out.len() == stripe_len {
            sys.write_stripe(dst_base + out_stripe, out)?;
            out_stripe += 1;
            out.clear();
        }
        if cursors[i].pos < cursors[i].filled {
            heap.push(Reverse((key(cursors[i].peek()), i)));
            continue;
        }
        // Cursor i drained its block. If it has more, the forecast
        // guarantees the in-flight prefetch is exactly its next block.
        match pending.take() {
            Some(p) if p.cursor == i => {
                sys.finish_read(p.ticket, &mut landing)?;
                std::mem::swap(&mut cursors[i].buf, &mut landing);
                cursors[i].install(key);
                heap.push(Reverse((key(cursors[i].peek()), i)));
                fc_issue_prefetch(sys, cursors, pending)?;
            }
            other => {
                *pending = other;
                // The run is exhausted: the prediction is exact, so a
                // drained cursor that is not the prefetch target has
                // no blocks left. Guarded by a demand read rather than
                // trusting the invariant: if a future edit ever breaks
                // the exactness argument, the merge must fail loudly
                // under debug and stay correct (every block still read
                // exactly once) in release — not silently truncate the
                // group.
                if cursors[i].has_unfetched() {
                    debug_assert!(false, "forecast mispredicted the next empty run");
                    let r = cursors[i].next_ref(disks);
                    sys.read_block_into(r, &mut cursors[i].buf)?;
                    cursors[i].next_block += 1;
                    cursors[i].install(key);
                    heap.push(Reverse((key(cursors[i].peek()), i)));
                }
            }
        }
    }
    debug_assert!(out.is_empty(), "runs are stripe-aligned");
    debug_assert!(pending.is_none(), "prefetch outlived the merge");
    debug_assert!(cursors
        .iter()
        .all(|c| c.pos >= c.filled && !c.has_unfetched()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::{FaultPlan, Geometry, ServiceMode};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        // N=2^10, B=2^2, D=2^2, M=2^6: M/BD = 4 stripes, fan-in 3.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    fn cfg(merge: MergeStrategy) -> SortConfig {
        SortConfig { merge }
    }

    #[test]
    fn sorts_shuffled_records() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(101);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        let expect: Vec<u64> = (0..g.records() as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sorts_identically_threaded() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(103);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let run = |mode: ServiceMode| {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &records);
            let report = sort_by_key(&mut sys, |&r| r).unwrap();
            (report.total, sys.dump_records(report.final_portion))
        };
        let (serial_total, serial_out) = run(ServiceMode::Serial);
        let (threaded_total, threaded_out) = run(ServiceMode::Threaded);
        assert_eq!(serial_out, threaded_out);
        assert_eq!(serial_total, threaded_total);
    }

    #[test]
    fn pass_count_matches_formula() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let mut records: Vec<u64> = (0..g.records() as u64).rev().collect();
        records.rotate_left(7);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        // N/M = 16 runs, fan-in 3: 16 → 6 → 2 → 1 = 3 merge passes.
        assert_eq!(report.fan_in, 3);
        assert_eq!(report.strategy, MergeStrategy::SingleBuffered);
        assert_eq!(report.passes, 4);
        // Every merged stripe costs one striped read + one striped
        // write, but the leftover singleton of merge pass 1 (16 runs =
        // 5 groups of 3 + one of 1) stays in place: 4·128 minus the
        // 2·4 parallel I/Os the old wholesale copy used to charge.
        assert_eq!(
            report.total.parallel_ios() as usize,
            report.passes * g.ios_per_pass() - 2 * g.stripes_per_memoryload()
        );
        assert_eq!(report.total.striped_reads, report.total.parallel_reads);
        assert_eq!(report.total.striped_writes, report.total.parallel_writes);
    }

    #[test]
    fn already_sorted_input() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorts_with_duplicate_keys() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let records: Vec<u64> = (0..g.records() as u64).map(|i| i % 17).collect();
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        // Same multiset.
        let mut a = out.clone();
        let mut b = records.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_tiny_memory() {
        // M = BD: zero fan-in for every strategy.
        let g = Geometry::new(1 << 8, 1 << 2, 1 << 2, 1 << 4).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..256u64).collect::<Vec<_>>());
        for strategy in [
            MergeStrategy::SingleBuffered,
            MergeStrategy::DoubleBuffered,
            MergeStrategy::Forecast,
        ] {
            assert!(matches!(
                sort_by_key_with(&mut sys, |&r| r, cfg(strategy)),
                Err(PdmError::Config(_))
            ));
        }
    }

    #[test]
    fn single_portion_system_is_a_typed_error() {
        // Regression test: a 1-portion system used to hit an assert!
        // and panic; it must return the same typed error as the fan-in
        // check.
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 1);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let err = sort_by_key(&mut sys, |&r| r).unwrap_err();
        assert!(matches!(err, PdmError::Config(_)), "got {err:?}");
        assert!(err.to_string().contains("two portions"), "{err}");
    }

    #[test]
    fn single_disk_sort() {
        let g = Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap();
        let mut rng = StdRng::seed_from_u64(102);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert_eq!(out, (0..g.records() as u64).collect::<Vec<u64>>());
    }

    /// Geometry with M/BD = 8 stripes in memory: single-buffered
    /// fan-in 7, double-buffered fan-in 3, forecast fan-in
    /// M/B − D − 1 = 16 − 3 = 13.
    fn db_geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 1, 1 << 1, 1 << 5).unwrap()
    }

    #[test]
    fn all_strategies_sort_identically() {
        let g = db_geom();
        let mut rng = StdRng::seed_from_u64(104);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let run = |cfg: SortConfig, mode: ServiceMode| {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &records);
            let report = sort_by_key_with(&mut sys, |&r| r, cfg).unwrap();
            assert_eq!(
                sys.buffer_pool_stats().outstanding,
                0,
                "merge stranded pooled buffers"
            );
            (report, sys.dump_records(report.final_portion))
        };
        let expect: Vec<u64> = (0..g.records() as u64).collect();
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let (sr, sout) = run(cfg(MergeStrategy::SingleBuffered), mode);
            let (dr, dout) = run(cfg(MergeStrategy::DoubleBuffered), mode);
            let (fr, fout) = run(cfg(MergeStrategy::Forecast), mode);
            assert_eq!(sout, expect, "single-buffered missorted in {mode:?}");
            assert_eq!(dout, expect, "double-buffered missorted in {mode:?}");
            assert_eq!(fout, expect, "forecast missorted in {mode:?}");
            // 32 runs of 8 stripes each; N/BD = 256 stripes total.
            // Single (fan-in 7): 32 → 5 → 1, no singletons, 3 passes of
            // exactly 2·256 parallel I/Os.
            assert_eq!(sr.fan_in, 7);
            assert_eq!(sr.passes, 3);
            assert_eq!(sr.total.parallel_ios(), 3 * 512);
            // Double (fan-in 3): 32 → 11 → 4 → 2 → 1; merge pass 3
            // leaves a 40-stripe singleton in place (saving 80).
            assert_eq!(dr.fan_in, 3);
            assert_eq!(dr.passes, 5);
            assert_eq!(dr.total.parallel_ios(), 5 * 512 - 80);
            // Forecast (fan-in 13): 32 → 3 → 1 — this geometry is too
            // small for the fan-in gain to drop a pass (strictly fewer
            // passes needs >F₁ runs; see tests/merge_strategies.rs) —
            // and merge reads are per-block (D per stripe):
            // formation 512 + 2·(2·256 + 256) = 2048.
            assert_eq!(fr.fan_in, 13);
            assert_eq!(fr.passes, 3);
            assert!(fr.passes <= sr.passes);
            assert_eq!(fr.total.parallel_ios(), 512 + 2 * (2 * 256 + 256));
            for r in [&sr, &dr] {
                assert_eq!(r.total.striped_reads, r.total.parallel_reads);
                assert_eq!(r.total.striped_writes, r.total.parallel_writes);
            }
            // Forecast: writes stay striped, merge reads are
            // independent single-block operations (formation reads are
            // striped).
            assert_eq!(fr.total.striped_writes, fr.total.parallel_writes);
            assert_eq!(fr.total.striped_reads, 256);
            assert_eq!(fr.total.independent_reads(), 2 * 512);
            assert_eq!(fr.total.blocks_read, 256 * 2 + 2 * 512);
        }
    }

    #[test]
    fn double_buffered_pass_count_matches_halved_fan_in_formula() {
        let g = db_geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).rev().collect::<Vec<_>>());
        let report =
            sort_by_key_with(&mut sys, |&r| r, cfg(MergeStrategy::DoubleBuffered)).unwrap();
        // N/M = 32 runs at fan-in 3: 32 → 11 → 4 → 2 → 1, so 4 merge
        // passes + run formation.
        assert_eq!(report.passes, 5);
    }

    #[test]
    fn double_buffered_rejects_too_small_memory() {
        // M/BD = 4: single-buffered fan-in 3 works, double-buffered
        // fan-in 1 must be rejected.
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        assert!(sort_by_key_with(&mut sys, |&r| r, cfg(MergeStrategy::DoubleBuffered)).is_err());
        assert!(sort_by_key(&mut sys, |&r| r).is_ok());
    }

    #[test]
    fn forecast_merge_sorts_with_duplicate_keys() {
        // Duplicate keys stress the forecast tie-break: the prediction
        // orders runs by (fkey, index) exactly like the merge heap.
        let g = db_geom();
        let mut rng = StdRng::seed_from_u64(105);
        let mut records: Vec<u64> = (0..g.records() as u64).map(|i| i % 5).collect();
        records.shuffle(&mut rng);
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &records);
            let report = sort_by_key_with(&mut sys, |&r| r, cfg(MergeStrategy::Forecast)).unwrap();
            let out = sys.dump_records(report.final_portion);
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "missorted {mode:?}");
            let mut a = out;
            let mut b = records.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "multiset changed in {mode:?}");
        }
    }

    #[test]
    fn forecast_single_disk_sort() {
        // D=1: every "single-block" read is also a full stripe, and
        // the forecast fan-in is M/B − 2 = 6.
        let g = Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap();
        assert_eq!(MergeStrategy::Forecast.fan_in(&g), 6);
        let mut rng = StdRng::seed_from_u64(106);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &records);
        let report = sort_by_key_with(&mut sys, |&r| r, cfg(MergeStrategy::Forecast)).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert_eq!(out, (0..g.records() as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn forecast_abort_reclaims_prefetch_buffers() {
        // A fault mid-merge must surface as an error (not a panic) and
        // leave zero pooled buffers outstanding — the in-flight
        // forecast prefetch is discarded on the abort path.
        let g = db_geom();
        let mut rng = StdRng::seed_from_u64(107);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            // Fault a handful of operation indices inside the merge
            // phase (run formation is 512 ops).
            for op in [600u64, 700, 1000] {
                let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
                sys.set_service_mode(mode);
                sys.load_records(0, &records);
                // Fault every disk at this op: a forecast refill is a
                // single-block read touching just one (data-dependent)
                // disk.
                let mut plan = FaultPlan::new();
                for disk in 0..g.disks() {
                    plan = plan.fail_at(op, disk);
                }
                sys.set_faults(plan);
                let err = sort_by_key_with(&mut sys, |&r| r, cfg(MergeStrategy::Forecast))
                    .expect_err("fault must abort the sort");
                assert!(matches!(err, PdmError::Fault { .. }), "got {err:?}");
                assert_eq!(
                    sys.buffer_pool_stats().outstanding,
                    0,
                    "abort stranded pooled buffers (mode {mode:?}, op {op})"
                );
            }
        }
    }

    #[test]
    fn merge_strategy_labels_round_trip() {
        for s in [
            MergeStrategy::SingleBuffered,
            MergeStrategy::DoubleBuffered,
            MergeStrategy::Forecast,
        ] {
            assert_eq!(s.as_str().parse::<MergeStrategy>().unwrap(), s);
        }
        assert!("fancy".parse::<MergeStrategy>().is_err());
    }

    #[test]
    fn descending_key_sort() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let max = g.records() as u64 - 1;
        let report = sort_by_key(&mut sys, move |&r| max - r).unwrap();
        let out = sys.dump_records(report.final_portion);
        let expect: Vec<u64> = (0..g.records() as u64).rev().collect();
        assert_eq!(out, expect);
    }
}
