//! Stripe-granular external merge sort.
//!
//! 1. **Run formation**: each memoryload streams through the shared
//!    [`PassEngine`](pdm::PassEngine) — striped reads, in-memory sort,
//!    striped writes back as a sorted run of `M` records — one pass,
//!    `2N/BD` parallel I/Os. In [`pdm::ServiceMode::Threaded`] the
//!    engine overlaps the reads of memoryload *k+1* with the sort of
//!    memoryload *k*.
//! 2. **Merge passes**: groups of up to `F = M/BD − 1` consecutive
//!    runs are merged; each active run buffers one stripe and the
//!    output buffers one stripe, so memory holds at most
//!    `(F+1)·BD = M` records. Every transfer is a striped parallel
//!    I/O through a reusable stripe buffer
//!    ([`pdm::DiskSystem::read_stripe_into`] — no per-refill
//!    allocation); each pass costs exactly `2N/BD`.
//!
//!    (The default merge keeps single-buffered cursors on purpose:
//!    prefetching each run's next stripe would double the resident
//!    buffers to `2F·BD > M` records and violate the memory model, so
//!    the engine's overlap applies to run formation only.)
//!
//! Total: `(2N/BD)·(1 + ⌈log_F(N/M)⌉)` parallel I/Os.
//!
//! # Double-buffered merge variant
//!
//! [`SortConfig::double_buffered_merge`] trades fan-in for overlap:
//! each cursor holds *two* stripe buffers and prefetches its next
//! stripe split-phase ([`pdm::DiskSystem::begin_read`]) while the heap
//! drains the current one, so in [`pdm::ServiceMode::Threaded`] the
//! refill latency hides behind the comparisons. To stay inside `M`
//! records the fan-in is halved — `F₂ = (M/BD − 1)/2` (two stripes per
//! run plus the output stripe: `2F₂ + 1 ≤ M/BD`) — which *raises* the
//! pass count to `1 + ⌈log_{F₂}(N/M)⌉`. Whether the per-pass overlap
//! pays for the extra passes is exactly what the `engine_sweep`
//! bench's `extsort` section measures; the model-faithful
//! single-buffered merge remains the default.

use pdm::engine::{ReadPlan, WritePlan};
use pdm::{BlockRef, DiskSystem, IoStats, PassEngine, PdmError, ReadTicket, Record};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration for [`sort_by_key_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SortConfig {
    /// Use the double-buffered merge with halved fan-in (see the
    /// module docs). Default false: the memory-model-faithful
    /// single-buffered merge.
    pub double_buffered_merge: bool,
}

/// Outcome of an external sort.
#[derive(Clone, Copy, Debug)]
pub struct SortReport {
    /// Number of passes over the data (run formation + merge passes).
    pub passes: usize,
    /// Merge fan-in used (`M/BD − 1`).
    pub fan_in: usize,
    /// Total I/O.
    pub total: IoStats,
    /// Portion holding the sorted data.
    pub final_portion: usize,
}

/// A run: a contiguous range of stripes within a portion, sorted by
/// key.
#[derive(Clone, Copy, Debug)]
struct Run {
    start: usize,
    end: usize, // exclusive, in stripes
}

/// One run being consumed during a merge: a reusable one-stripe buffer
/// plus the read cursor.
struct Cursor<R> {
    run: Run,
    next_stripe: usize,
    buf: Vec<R>,
    /// Valid records in `buf` (0 until the first refill).
    filled: usize,
    pos: usize,
}

impl<R: Record> Cursor<R> {
    fn new(run: Run, stripe_len: usize) -> Self {
        Cursor {
            run,
            next_stripe: run.start,
            buf: vec![R::default(); stripe_len],
            filled: 0,
            pos: 0,
        }
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.filled && self.next_stripe >= self.run.end
    }

    /// Refills the buffer (in place, no allocation) if empty; returns
    /// false when the run is done.
    fn ensure(&mut self, sys: &mut DiskSystem<R>, base: usize) -> Result<bool, PdmError> {
        if self.pos < self.filled {
            return Ok(true);
        }
        if self.next_stripe >= self.run.end {
            return Ok(false);
        }
        sys.read_stripe_into(base + self.next_stripe, &mut self.buf)?;
        self.filled = self.buf.len();
        self.pos = 0;
        self.next_stripe += 1;
        Ok(true)
    }

    fn peek(&self) -> &R {
        &self.buf[self.pos]
    }

    fn pop(&mut self) -> R {
        let r = self.buf[self.pos];
        self.pos += 1;
        r
    }
}

/// Sorts the `N` records in portion 0 by `key`, ascending, with the
/// default (single-buffered, memory-model-faithful) merge. See
/// [`sort_by_key_with`].
pub fn sort_by_key<R: Record>(
    sys: &mut DiskSystem<R>,
    key: impl Fn(&R) -> u64 + Copy,
) -> Result<SortReport, PdmError> {
    sort_by_key_with(sys, key, SortConfig::default())
}

/// Sorts the `N` records in portion 0 by `key`, ascending. Requires a
/// disk system with at least two portions, and enough memory for a
/// fan-in of at least two runs plus the output buffer (`M ≥ 3·BD`
/// single-buffered, `M ≥ 5·BD` double-buffered).
pub fn sort_by_key_with<R: Record>(
    sys: &mut DiskSystem<R>,
    key: impl Fn(&R) -> u64 + Copy,
    cfg: SortConfig,
) -> Result<SortReport, PdmError> {
    let geom = sys.geometry();
    assert!(sys.portions() >= 2, "sort needs two portions");
    let stripes_in_memory = geom.memory() / (geom.block() * geom.disks());
    // Single-buffered: F + 1 stripes resident. Double-buffered: each
    // run holds two stripes, so 2F + 1 ≤ M/BD.
    let fan_in = if cfg.double_buffered_merge {
        stripes_in_memory.saturating_sub(1) / 2
    } else {
        stripes_in_memory.saturating_sub(1)
    };
    if fan_in < 2 {
        return Err(PdmError::Config(format!(
            "merge sort needs fan-in >= 2, got {fan_in} \
             (M/BD = {stripes_in_memory}, double_buffered = {})",
            cfg.double_buffered_merge
        )));
    }
    let before = sys.stats();

    // --- Run formation: memoryload-sized sorted runs into portion 1,
    // streamed through the engine.
    let mut engine: PassEngine<R> = PassEngine::new(geom);
    engine.run_pass(
        sys,
        |ml, _gather| ReadPlan::Memoryload { portion: 0, ml },
        |ml, records, _scratch, _scatter| {
            records.sort_unstable_by_key(|r| key(r));
            WritePlan::Memoryload { portion: 1, ml }
        },
    )?;
    let spm = geom.stripes_per_memoryload();
    let mut runs: Vec<Run> = (0..geom.memoryloads())
        .map(|ml| Run {
            start: ml * spm,
            end: (ml + 1) * spm,
        })
        .collect();
    let mut src = 1usize;
    let mut passes = 1usize;

    // --- Merge passes.
    let stripe_len = geom.block() * geom.disks();
    let mut out: Vec<R> = Vec::with_capacity(stripe_len);
    while runs.len() > 1 {
        let dst = 1 - src;
        let mut next_runs: Vec<Run> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            let start = group[0].start;
            let end = group.last().unwrap().end;
            if cfg.double_buffered_merge {
                merge_group_db(sys, src, dst, group, key, &mut out)?;
            } else {
                merge_group(sys, src, dst, group, key, &mut out)?;
            }
            next_runs.push(Run { start, end });
        }
        runs = next_runs;
        src = dst;
        passes += 1;
    }

    Ok(SortReport {
        passes,
        fan_in,
        total: sys.stats().since(&before),
        final_portion: src,
    })
}

/// Merges a group of consecutive runs from `src` into the same stripe
/// range of `dst`. `out` is the reusable one-stripe output buffer.
fn merge_group<R: Record>(
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    group: &[Run],
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let src_base = sys.portion_base(src);
    let dst_base = sys.portion_base(dst);
    let stripe_len = geom.block() * geom.disks();

    let mut cursors: Vec<Cursor<R>> = group
        .iter()
        .map(|&run| Cursor::new(run, stripe_len))
        .collect();
    // Heap of (key, cursor index); pull the global minimum, refilling
    // that cursor's stripe buffer on demand.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        if c.ensure(sys, src_base)? {
            heap.push(Reverse((key(c.peek()), i)));
        }
    }
    out.clear();
    let mut out_stripe = group[0].start;
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = cursors[i].pop();
        out.push(rec);
        if out.len() == stripe_len {
            sys.write_stripe(dst_base + out_stripe, out)?;
            out_stripe += 1;
            out.clear();
        }
        if cursors[i].ensure(sys, src_base)? {
            heap.push(Reverse((key(cursors[i].peek()), i)));
        }
    }
    debug_assert!(out.is_empty(), "runs are stripe-aligned");
    debug_assert!(cursors.iter().all(Cursor::exhausted));
    Ok(())
}

/// One run being consumed by the double-buffered merge: two stripe
/// buffers, the active one draining while the other's refill is in
/// flight split-phase.
struct DbCursor<R: Record> {
    run: Run,
    /// Next stripe to *submit* (not yet issued).
    next_stripe: usize,
    bufs: [Vec<R>; 2],
    /// Which buffer the heap is draining.
    cur: usize,
    filled: usize,
    pos: usize,
    /// In-flight refill of `bufs[1 - cur]`.
    pending: Option<ReadTicket<R>>,
}

impl<R: Record> DbCursor<R> {
    fn new(run: Run, stripe_len: usize) -> Self {
        DbCursor {
            run,
            next_stripe: run.start,
            bufs: [
                vec![R::default(); stripe_len],
                vec![R::default(); stripe_len],
            ],
            cur: 0,
            filled: 0,
            pos: 0,
            pending: None,
        }
    }

    /// Submits the next stripe read split-phase, if any remain and
    /// none is in flight. `refs` is a reusable scratch.
    fn prefetch(
        &mut self,
        sys: &mut DiskSystem<R>,
        base: usize,
        refs: &mut Vec<BlockRef>,
    ) -> Result<(), PdmError> {
        if self.pending.is_some() || self.next_stripe >= self.run.end {
            return Ok(());
        }
        let slot = base + self.next_stripe;
        refs.clear();
        refs.extend((0..sys.geometry().disks()).map(|disk| BlockRef { disk, slot }));
        self.pending = Some(sys.begin_read(refs)?);
        self.next_stripe += 1;
        Ok(())
    }

    /// Makes the next record available, completing the in-flight
    /// refill and chaining the next prefetch; false when the run is
    /// done.
    fn ensure(
        &mut self,
        sys: &mut DiskSystem<R>,
        base: usize,
        refs: &mut Vec<BlockRef>,
    ) -> Result<bool, PdmError> {
        if self.pos < self.filled {
            return Ok(true);
        }
        let Some(ticket) = self.pending.take() else {
            return Ok(false);
        };
        let other = 1 - self.cur;
        let len = self.bufs[other].len();
        sys.finish_read(ticket, &mut self.bufs[other][..])?;
        self.cur = other;
        self.filled = len;
        self.pos = 0;
        // Start refilling the buffer just drained.
        self.prefetch(sys, base, refs).map(|()| true)
    }

    fn peek(&self) -> &R {
        &self.bufs[self.cur][self.pos]
    }

    fn pop(&mut self) -> R {
        let r = self.bufs[self.cur][self.pos];
        self.pos += 1;
        r
    }
}

/// Merges a group of consecutive runs with double-buffered cursors
/// (split-phase prefetch). I/O *counts* are identical to
/// [`merge_group`] — every stripe is still read exactly once — but in
/// threaded mode the refills overlap the heap work.
fn merge_group_db<R: Record>(
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    group: &[Run],
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let src_base = sys.portion_base(src);
    let stripe_len = geom.block() * geom.disks();
    let mut cursors: Vec<DbCursor<R>> = group
        .iter()
        .map(|&run| DbCursor::new(run, stripe_len))
        .collect();
    let mut refs: Vec<BlockRef> = Vec::with_capacity(geom.disks());
    let result = merge_group_db_inner(sys, src_base, dst, group, &mut cursors, &mut refs, key, out);
    if result.is_err() {
        // Abort path: reclaim every in-flight prefetch so no pooled
        // buffers are stranded.
        for c in &mut cursors {
            if let Some(t) = c.pending.take() {
                sys.discard_read(t);
            }
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn merge_group_db_inner<R: Record>(
    sys: &mut DiskSystem<R>,
    src_base: usize,
    dst: usize,
    group: &[Run],
    cursors: &mut [DbCursor<R>],
    refs: &mut Vec<BlockRef>,
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let dst_base = sys.portion_base(dst);
    let stripe_len = geom.block() * geom.disks();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        c.prefetch(sys, src_base, refs)?;
        if c.ensure(sys, src_base, refs)? {
            heap.push(Reverse((key(c.peek()), i)));
        }
    }
    out.clear();
    let mut out_stripe = group[0].start;
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = cursors[i].pop();
        out.push(rec);
        if out.len() == stripe_len {
            sys.write_stripe(dst_base + out_stripe, out)?;
            out_stripe += 1;
            out.clear();
        }
        if cursors[i].ensure(sys, src_base, refs)? {
            heap.push(Reverse((key(cursors[i].peek()), i)));
        }
    }
    debug_assert!(out.is_empty(), "runs are stripe-aligned");
    debug_assert!(cursors
        .iter()
        .all(|c| c.pending.is_none() && c.pos >= c.filled));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::{Geometry, ServiceMode};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        // N=2^10, B=2^2, D=2^2, M=2^6: M/BD = 4 stripes, fan-in 3.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    #[test]
    fn sorts_shuffled_records() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(101);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        let expect: Vec<u64> = (0..g.records() as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sorts_identically_threaded() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(103);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let run = |mode: ServiceMode| {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &records);
            let report = sort_by_key(&mut sys, |&r| r).unwrap();
            (report.total, sys.dump_records(report.final_portion))
        };
        let (serial_total, serial_out) = run(ServiceMode::Serial);
        let (threaded_total, threaded_out) = run(ServiceMode::Threaded);
        assert_eq!(serial_out, threaded_out);
        assert_eq!(serial_total, threaded_total);
    }

    #[test]
    fn pass_count_matches_formula() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let mut records: Vec<u64> = (0..g.records() as u64).rev().collect();
        records.rotate_left(7);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        // N/M = 16 runs, fan-in 3: 16 → 6 → 2 → 1 = 3 merge passes.
        assert_eq!(report.fan_in, 3);
        assert_eq!(report.passes, 4);
        // Every pass costs exactly 2N/BD striped I/Os.
        assert_eq!(
            report.total.parallel_ios() as usize,
            report.passes * g.ios_per_pass()
        );
        assert_eq!(report.total.striped_reads, report.total.parallel_reads);
        assert_eq!(report.total.striped_writes, report.total.parallel_writes);
    }

    #[test]
    fn already_sorted_input() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorts_with_duplicate_keys() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let records: Vec<u64> = (0..g.records() as u64).map(|i| i % 17).collect();
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        // Same multiset.
        let mut a = out.clone();
        let mut b = records.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_tiny_memory() {
        // M = BD: zero fan-in.
        let g = Geometry::new(1 << 8, 1 << 2, 1 << 2, 1 << 4).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..256u64).collect::<Vec<_>>());
        assert!(sort_by_key(&mut sys, |&r| r).is_err());
    }

    #[test]
    fn single_disk_sort() {
        let g = Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap();
        let mut rng = StdRng::seed_from_u64(102);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert_eq!(out, (0..g.records() as u64).collect::<Vec<u64>>());
    }

    /// Geometry with M/BD = 8 stripes in memory: single-buffered
    /// fan-in 7, double-buffered fan-in 3.
    fn db_geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 1, 1 << 1, 1 << 5).unwrap()
    }

    #[test]
    fn double_buffered_merge_sorts_identically() {
        let g = db_geom();
        let mut rng = StdRng::seed_from_u64(104);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let run = |cfg: SortConfig, mode: ServiceMode| {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &records);
            let report = sort_by_key_with(&mut sys, |&r| r, cfg).unwrap();
            assert_eq!(
                sys.buffer_pool_stats().outstanding,
                0,
                "merge stranded pooled buffers"
            );
            (report, sys.dump_records(report.final_portion))
        };
        let single = SortConfig::default();
        let double = SortConfig {
            double_buffered_merge: true,
        };
        let expect: Vec<u64> = (0..g.records() as u64).collect();
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let (sr, sout) = run(single, mode);
            let (dr, dout) = run(double, mode);
            assert_eq!(sout, expect, "single-buffered missorted in {mode:?}");
            assert_eq!(dout, expect, "double-buffered missorted in {mode:?}");
            // Halved fan-in: 7 → 3; more passes, every pass still
            // exactly 2N/BD striped parallel I/Os.
            assert_eq!(sr.fan_in, 7);
            assert_eq!(dr.fan_in, 3);
            assert!(dr.passes >= sr.passes);
            for r in [&sr, &dr] {
                assert_eq!(
                    r.total.parallel_ios() as usize,
                    r.passes * g.ios_per_pass(),
                    "pass-cost identity broken"
                );
                assert_eq!(r.total.striped_reads, r.total.parallel_reads);
                assert_eq!(r.total.striped_writes, r.total.parallel_writes);
            }
        }
    }

    #[test]
    fn double_buffered_pass_count_matches_halved_fan_in_formula() {
        let g = db_geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).rev().collect::<Vec<_>>());
        let report = sort_by_key_with(
            &mut sys,
            |&r| r,
            SortConfig {
                double_buffered_merge: true,
            },
        )
        .unwrap();
        // N/M = 32 runs at fan-in 3: 32 → 11 → 4 → 2 → 1, so 4 merge
        // passes + run formation.
        assert_eq!(report.passes, 5);
    }

    #[test]
    fn double_buffered_rejects_too_small_memory() {
        // M/BD = 4: single-buffered fan-in 3 works, double-buffered
        // fan-in 1 must be rejected.
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        assert!(sort_by_key_with(
            &mut sys,
            |&r| r,
            SortConfig {
                double_buffered_merge: true
            }
        )
        .is_err());
        assert!(sort_by_key(&mut sys, |&r| r).is_ok());
    }

    #[test]
    fn descending_key_sort() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let max = g.records() as u64 - 1;
        let report = sort_by_key(&mut sys, move |&r| max - r).unwrap();
        let out = sys.dump_records(report.final_portion);
        let expect: Vec<u64> = (0..g.records() as u64).rev().collect();
        assert_eq!(out, expect);
    }
}
