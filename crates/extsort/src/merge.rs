//! Stripe-granular external merge sort.
//!
//! 1. **Run formation**: each memoryload streams through the shared
//!    [`PassEngine`](pdm::PassEngine) — striped reads, in-memory sort,
//!    striped writes back as a sorted run of `M` records — one pass,
//!    `2N/BD` parallel I/Os. In [`pdm::ServiceMode::Threaded`] the
//!    engine overlaps the reads of memoryload *k+1* with the sort of
//!    memoryload *k*.
//! 2. **Merge passes**: groups of up to `F = M/BD − 1` consecutive
//!    runs are merged; each active run buffers one stripe and the
//!    output buffers one stripe, so memory holds at most
//!    `(F+1)·BD = M` records. Every transfer is a striped parallel
//!    I/O through a reusable stripe buffer
//!    ([`pdm::DiskSystem::read_stripe_into`] — no per-refill
//!    allocation); each pass costs exactly `2N/BD`.
//!
//!    (The merge keeps single-buffered cursors on purpose: prefetching
//!    each run's next stripe would double the resident buffers to
//!    `2F·BD > M` records and violate the memory model, so the
//!    engine's overlap applies to run formation only.)
//!
//! Total: `(2N/BD)·(1 + ⌈log_F(N/M)⌉)` parallel I/Os.

use pdm::engine::{ReadPlan, WritePlan};
use pdm::{DiskSystem, IoStats, PassEngine, PdmError, Record};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of an external sort.
#[derive(Clone, Copy, Debug)]
pub struct SortReport {
    /// Number of passes over the data (run formation + merge passes).
    pub passes: usize,
    /// Merge fan-in used (`M/BD − 1`).
    pub fan_in: usize,
    /// Total I/O.
    pub total: IoStats,
    /// Portion holding the sorted data.
    pub final_portion: usize,
}

/// A run: a contiguous range of stripes within a portion, sorted by
/// key.
#[derive(Clone, Copy, Debug)]
struct Run {
    start: usize,
    end: usize, // exclusive, in stripes
}

/// One run being consumed during a merge: a reusable one-stripe buffer
/// plus the read cursor.
struct Cursor<R> {
    run: Run,
    next_stripe: usize,
    buf: Vec<R>,
    /// Valid records in `buf` (0 until the first refill).
    filled: usize,
    pos: usize,
}

impl<R: Record> Cursor<R> {
    fn new(run: Run, stripe_len: usize) -> Self {
        Cursor {
            run,
            next_stripe: run.start,
            buf: vec![R::default(); stripe_len],
            filled: 0,
            pos: 0,
        }
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.filled && self.next_stripe >= self.run.end
    }

    /// Refills the buffer (in place, no allocation) if empty; returns
    /// false when the run is done.
    fn ensure(&mut self, sys: &mut DiskSystem<R>, base: usize) -> Result<bool, PdmError> {
        if self.pos < self.filled {
            return Ok(true);
        }
        if self.next_stripe >= self.run.end {
            return Ok(false);
        }
        sys.read_stripe_into(base + self.next_stripe, &mut self.buf)?;
        self.filled = self.buf.len();
        self.pos = 0;
        self.next_stripe += 1;
        Ok(true)
    }

    fn peek(&self) -> &R {
        &self.buf[self.pos]
    }

    fn pop(&mut self) -> R {
        let r = self.buf[self.pos];
        self.pos += 1;
        r
    }
}

/// Sorts the `N` records in portion 0 by `key`, ascending. Requires a
/// disk system with at least two portions, and `M ≥ 3·BD` (fan-in of
/// at least two runs plus the output buffer).
pub fn sort_by_key<R: Record>(
    sys: &mut DiskSystem<R>,
    key: impl Fn(&R) -> u64 + Copy,
) -> Result<SortReport, PdmError> {
    let geom = sys.geometry();
    assert!(sys.portions() >= 2, "sort needs two portions");
    let stripes_in_memory = geom.memory() / (geom.block() * geom.disks());
    let fan_in = stripes_in_memory.saturating_sub(1);
    if fan_in < 2 {
        return Err(PdmError::Config(format!(
            "merge sort needs M ≥ 3·BD (fan-in {fan_in} < 2)"
        )));
    }
    let before = sys.stats();

    // --- Run formation: memoryload-sized sorted runs into portion 1,
    // streamed through the engine.
    let mut engine: PassEngine<R> = PassEngine::new(geom);
    engine.run_pass(
        sys,
        |ml| ReadPlan::Memoryload { portion: 0, ml },
        |ml, records, _scratch| {
            records.sort_unstable_by_key(|r| key(r));
            WritePlan::Memoryload { portion: 1, ml }
        },
    )?;
    let spm = geom.stripes_per_memoryload();
    let mut runs: Vec<Run> = (0..geom.memoryloads())
        .map(|ml| Run {
            start: ml * spm,
            end: (ml + 1) * spm,
        })
        .collect();
    let mut src = 1usize;
    let mut passes = 1usize;

    // --- Merge passes.
    let stripe_len = geom.block() * geom.disks();
    let mut out: Vec<R> = Vec::with_capacity(stripe_len);
    while runs.len() > 1 {
        let dst = 1 - src;
        let mut next_runs: Vec<Run> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            let start = group[0].start;
            let end = group.last().unwrap().end;
            merge_group(sys, src, dst, group, key, &mut out)?;
            next_runs.push(Run { start, end });
        }
        runs = next_runs;
        src = dst;
        passes += 1;
    }

    Ok(SortReport {
        passes,
        fan_in,
        total: sys.stats().since(&before),
        final_portion: src,
    })
}

/// Merges a group of consecutive runs from `src` into the same stripe
/// range of `dst`. `out` is the reusable one-stripe output buffer.
fn merge_group<R: Record>(
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    group: &[Run],
    key: impl Fn(&R) -> u64 + Copy,
    out: &mut Vec<R>,
) -> Result<(), PdmError> {
    let geom = sys.geometry();
    let src_base = sys.portion_base(src);
    let dst_base = sys.portion_base(dst);
    let stripe_len = geom.block() * geom.disks();

    let mut cursors: Vec<Cursor<R>> = group
        .iter()
        .map(|&run| Cursor::new(run, stripe_len))
        .collect();
    // Heap of (key, cursor index); pull the global minimum, refilling
    // that cursor's stripe buffer on demand.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        if c.ensure(sys, src_base)? {
            heap.push(Reverse((key(c.peek()), i)));
        }
    }
    out.clear();
    let mut out_stripe = group[0].start;
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = cursors[i].pop();
        out.push(rec);
        if out.len() == stripe_len {
            sys.write_stripe(dst_base + out_stripe, out)?;
            out_stripe += 1;
            out.clear();
        }
        if cursors[i].ensure(sys, src_base)? {
            heap.push(Reverse((key(cursors[i].peek()), i)));
        }
    }
    debug_assert!(out.is_empty(), "runs are stripe-aligned");
    debug_assert!(cursors.iter().all(Cursor::exhausted));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::{Geometry, ServiceMode};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        // N=2^10, B=2^2, D=2^2, M=2^6: M/BD = 4 stripes, fan-in 3.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    #[test]
    fn sorts_shuffled_records() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(101);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        let expect: Vec<u64> = (0..g.records() as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sorts_identically_threaded() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(103);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let run = |mode: ServiceMode| {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &records);
            let report = sort_by_key(&mut sys, |&r| r).unwrap();
            (report.total, sys.dump_records(report.final_portion))
        };
        let (serial_total, serial_out) = run(ServiceMode::Serial);
        let (threaded_total, threaded_out) = run(ServiceMode::Threaded);
        assert_eq!(serial_out, threaded_out);
        assert_eq!(serial_total, threaded_total);
    }

    #[test]
    fn pass_count_matches_formula() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let mut records: Vec<u64> = (0..g.records() as u64).rev().collect();
        records.rotate_left(7);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        // N/M = 16 runs, fan-in 3: 16 → 6 → 2 → 1 = 3 merge passes.
        assert_eq!(report.fan_in, 3);
        assert_eq!(report.passes, 4);
        // Every pass costs exactly 2N/BD striped I/Os.
        assert_eq!(
            report.total.parallel_ios() as usize,
            report.passes * g.ios_per_pass()
        );
        assert_eq!(report.total.striped_reads, report.total.parallel_reads);
        assert_eq!(report.total.striped_writes, report.total.parallel_writes);
    }

    #[test]
    fn already_sorted_input() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorts_with_duplicate_keys() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let records: Vec<u64> = (0..g.records() as u64).map(|i| i % 17).collect();
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        // Same multiset.
        let mut a = out.clone();
        let mut b = records.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_tiny_memory() {
        // M = BD: zero fan-in.
        let g = Geometry::new(1 << 8, 1 << 2, 1 << 2, 1 << 4).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..256u64).collect::<Vec<_>>());
        assert!(sort_by_key(&mut sys, |&r| r).is_err());
    }

    #[test]
    fn single_disk_sort() {
        let g = Geometry::new(1 << 9, 1 << 2, 1, 1 << 5).unwrap();
        let mut rng = StdRng::seed_from_u64(102);
        let mut records: Vec<u64> = (0..g.records() as u64).collect();
        records.shuffle(&mut rng);
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &records);
        let report = sort_by_key(&mut sys, |&r| r).unwrap();
        let out = sys.dump_records(report.final_portion);
        assert_eq!(out, (0..g.records() as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn descending_key_sort() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let max = g.records() as u64 - 1;
        let report = sort_by_key(&mut sys, move |&r| max - r).unwrap();
        let out = sys.dump_records(report.final_portion);
        let expect: Vec<u64> = (0..g.records() as u64).rev().collect();
        assert_eq!(out, expect);
    }
}
