//! External merge sort on the parallel disk model, and the
//! general-permutation baseline built on it.
//!
//! Vitter & Shriver's general-permutation bound —
//! `Θ(min(N/D, (N/BD)·lg(N/B)/lg(M/B)))` parallel I/Os — is the
//! comparator the BMMC paper improves on for its permutation class.
//! This crate provides the executable baseline: sort the records by
//! target address with an external merge sort, which *is* the
//! permutation once the keys are `0..N`.
//!
//! The merge is stripe-granular: every buffer holds one stripe
//! (`B·D` records), so every read and write is a striped parallel I/O
//! and each pass costs exactly `2N/BD` operations. The fan-in is
//! therefore `M/BD − 1` (one stripe buffered per run plus one output
//! stripe). Vitter–Shriver reach fan-in `Θ(M/B)` with forecasting and
//! randomized striping; the substitution preserves the bound's shape
//! (passes = `Θ(log_{M/BD}(N/M))`) and is exact in our cost tables —
//! see DESIGN.md.

pub mod merge;
pub mod permute;

pub use merge::{sort_by_key, SortReport};
pub use permute::general_permute;
