//! External merge sort on the parallel disk model, and the
//! general-permutation baseline built on it.
//!
//! Vitter & Shriver's general-permutation bound —
//! `Θ(min(N/D, (N/BD)·lg(N/B)/lg(M/B)))` parallel I/Os — is the
//! comparator the BMMC paper improves on for its permutation class.
//! This crate provides the executable baseline: sort the records by
//! target address with an external merge sort, which *is* the
//! permutation once the keys are `0..N`.
//!
//! The merge comes in three strategies (see [`MergeStrategy`] and
//! DESIGN.md for the cost table). The default is stripe-granular:
//! every buffer holds one stripe (`B·D` records), so every read and
//! write is a striped parallel I/O and each full pass costs exactly
//! `2N/BD` operations, at fan-in `M/BD − 1`. The
//! [`MergeStrategy::Forecast`] variant closes the fan-in gap to
//! Vitter–Shriver: per-run buffers shrink to one *block* and a
//! forecasting key per run (the last key of its current block) drives
//! a split-phase prefetch of exactly the run that empties next,
//! reaching fan-in `M/B − D − 1 = Θ(M/B)` — the bound's own fan-in —
//! and strictly fewer merge passes whenever the default needs more
//! than one, at the price of independent single-block refill reads.
//!
//! ```
//! use extsort::general_permute;
//! use pdm::{DiskSystem, Geometry};
//!
//! // Bit-reversal of 2^10 records via the sort-based baseline.
//! let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
//! let n = g.records() as u64;
//! let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
//! sys.load_records(0, &(0..n).collect::<Vec<_>>());
//! let rev = |x: u64| x.reverse_bits() >> (64 - 10);
//! let report = general_permute(&mut sys, |&r| r, rev).unwrap();
//! let out = sys.dump_records(report.final_portion);
//! for x in 0..n {
//!     assert_eq!(out[rev(x) as usize], x);
//! }
//! ```

pub mod keys;
pub mod merge;
pub mod permute;

pub use merge::{sort_by_key, sort_by_key_with, MergeStrategy, SortConfig, SortReport};
pub use permute::{general_permute, general_permute_with};
