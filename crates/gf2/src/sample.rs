//! Random samplers for GF(2) matrices.
//!
//! The rank-sweep experiments (DESIGN.md exp. `LB`/`UB`) need nonsingular
//! characteristic matrices whose lower-left `(n-b) x b` submatrix `γ` has a
//! *prescribed* rank, because both the lower bound (Theorem 3) and the
//! upper bound (Theorem 21) are functions of `rank γ`.
//! [`random_with_submatrix_rank`] constructs such matrices: it builds a
//! rank-`r` lower-left block as a product of full-rank factors, completes
//! it to a nonsingular matrix, and then randomizes by block-triangular
//! congruence, which preserves both nonsingularity and `rank γ`.

use crate::bitvec::BitVec;
use crate::elim::{complete_basis, is_nonsingular, rank};
use crate::matrix::BitMatrix;
use rand::Rng;

/// A uniformly random `rows x cols` matrix over GF(2).
pub fn random_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> BitMatrix {
    BitMatrix::from_fn(rows, cols, |_, _| rng.gen::<bool>())
}

/// A uniformly random *nonsingular* `n x n` matrix over GF(2), by
/// rejection sampling. The acceptance probability converges to
/// `∏ (1 - 2^-i) ≈ 0.289`, so a handful of attempts suffice.
pub fn random_nonsingular<R: Rng + ?Sized>(rng: &mut R, n: usize) -> BitMatrix {
    if n == 0 {
        return BitMatrix::zeros(0, 0);
    }
    loop {
        let a = random_matrix(rng, n, n);
        if is_nonsingular(&a) {
            return a;
        }
    }
}

/// A random `rows x cols` matrix of rank exactly `r`, as a product
/// `X (rows x r) * Y (r x cols)` of full-rank factors.
///
/// # Panics
/// Panics if `r > min(rows, cols)`.
pub fn random_with_rank<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    r: usize,
) -> BitMatrix {
    assert!(
        r <= rows.min(cols),
        "rank {r} impossible for a {rows}x{cols} matrix"
    );
    if r == 0 {
        return BitMatrix::zeros(rows, cols);
    }
    let x = loop {
        let cand = random_matrix(rng, rows, r);
        if rank(&cand) == r {
            break cand;
        }
    };
    let y = loop {
        let cand = random_matrix(rng, r, cols);
        if rank(&cand) == r {
            break cand;
        }
    };
    let out = x.mul(&y);
    debug_assert_eq!(rank(&out), r);
    out
}

/// A random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut pi: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        pi.swap(i, j);
    }
    pi
}

/// A random nonsingular `n x n` matrix whose lower-left `(n-b) x b`
/// submatrix `A[b..n, 0..b]` (the paper's `γ`) has rank exactly `r`.
///
/// Construction:
/// 1. Draw `γ` of rank exactly `r` via [`random_with_rank`].
/// 2. Complete to a nonsingular `A₀`: put `I_b` above `γ` (making the
///    first `b` columns independent regardless of `γ`) and extend with
///    unit vectors to a basis.
/// 3. Randomize: `A = L · A₀ · R` with `L`, `R` *block upper-triangular*
///    at the split `b` (nonsingular diagonal blocks, random upper-right
///    block). Then `A[b..n, 0..b] = L₂₂ · γ · R₁₁` which keeps rank `r`,
///    and `A` stays nonsingular.
///
/// # Panics
/// Panics if `b > n` or `r > min(b, n-b)`.
pub fn random_with_submatrix_rank<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    b: usize,
    r: usize,
) -> BitMatrix {
    assert!(b <= n, "split {b} out of range for n = {n}");
    assert!(
        r <= b.min(n - b),
        "rank {r} impossible for a {}x{b} submatrix",
        n - b
    );
    if b == 0 || b == n {
        // γ is empty; any nonsingular matrix has rank γ = 0 = r.
        return random_nonsingular(rng, n);
    }

    let gamma = random_with_rank(rng, n - b, b, r);

    // Step 2: constructive nonsingular completion.
    let mut cols: Vec<BitVec> = Vec::with_capacity(n);
    for j in 0..b {
        // Column j: upper part e_j, lower part γ column j.
        let mut c = BitVec::zeros(n);
        c.set(j, true);
        for i in 0..(n - b) {
            if gamma.get(i, j) {
                c.set(b + i, true);
            }
        }
        cols.push(c);
    }
    let ext = complete_basis(&cols, n);
    cols.extend(ext);
    let mut a0 = BitMatrix::zeros(n, n);
    for (j, c) in cols.iter().enumerate() {
        a0.set_column(j, c);
    }
    debug_assert!(is_nonsingular(&a0));
    debug_assert_eq!(rank(&a0.submatrix(b..n, 0..b)), r);

    // Step 3: randomize with block-upper-triangular L and R.
    let l = random_block_upper(rng, n, b);
    let rr = random_block_upper(rng, n, b);
    let a = l.mul(&a0).mul(&rr);
    debug_assert!(is_nonsingular(&a));
    debug_assert_eq!(rank(&a.submatrix(b..n, 0..b)), r);
    a
}

/// A random nonsingular block-upper-triangular matrix at split `k`:
/// `[[T₁₁, T₁₂], [0, T₂₂]]` with `T₁₁ (k x k)` and `T₂₂` nonsingular and
/// `T₁₂` uniform.
pub fn random_block_upper<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> BitMatrix {
    assert!(k <= n, "split {k} out of range");
    let mut t = BitMatrix::zeros(n, n);
    t.set_block(0, 0, &random_nonsingular(rng, k));
    t.set_block(k, k, &random_nonsingular(rng, n - k));
    t.set_block(0, k, &random_matrix(rng, k, n - k));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_nonsingular_is_nonsingular() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1, 2, 5, 13, 20] {
            let a = random_nonsingular(&mut rng, n);
            assert!(is_nonsingular(&a), "n = {n}");
        }
    }

    #[test]
    fn random_with_rank_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        for (rows, cols) in [(5, 3), (3, 5), (8, 8)] {
            for r in 0..=rows.min(cols) {
                let a = random_with_rank(&mut rng, rows, cols, r);
                assert_eq!(rank(&a), r, "{rows}x{cols} rank {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn random_with_rank_rejects_too_large() {
        let mut rng = StdRng::seed_from_u64(3);
        random_with_rank(&mut rng, 3, 5, 4);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let pi = random_permutation(&mut rng, 50);
        let mut seen = [false; 50];
        for &v in &pi {
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn prescribed_submatrix_rank_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let (n, b) = (13, 3); // paper's Figure 2 geometry
        for r in 0..=b.min(n - b) {
            let a = random_with_submatrix_rank(&mut rng, n, b, r);
            assert!(is_nonsingular(&a), "r = {r}: singular");
            assert_eq!(rank(&a.submatrix(b..n, 0..b)), r, "r = {r}: wrong γ rank");
        }
    }

    #[test]
    fn prescribed_rank_edge_splits() {
        let mut rng = StdRng::seed_from_u64(6);
        // b = 0 (no low bits) and b = n degenerate to plain nonsingular.
        let a = random_with_submatrix_rank(&mut rng, 6, 0, 0);
        assert!(is_nonsingular(&a));
        let a = random_with_submatrix_rank(&mut rng, 6, 6, 0);
        assert!(is_nonsingular(&a));
    }

    #[test]
    fn block_upper_is_nonsingular_and_triangular() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_block_upper(&mut rng, 10, 4);
        assert!(is_nonsingular(&t));
        assert!(t.submatrix(4..10, 0..4).is_zero());
    }

    #[test]
    fn samples_vary() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = random_nonsingular(&mut rng, 12);
        let b = random_nonsingular(&mut rng, 12);
        assert_ne!(a, b, "two independent samples should differ");
    }
}
