//! Bit-packed linear algebra over GF(2).
//!
//! This crate is the algebraic substrate for the BMMC-permutation
//! reproduction: every permutation class in the paper is defined by an
//! `n x n` 0-1 matrix that is nonsingular over GF(2), and the factoring
//! algorithm of Section 5 is a sequence of rank computations, kernel-basis
//! extractions, and column operations on such matrices.
//!
//! Representation: a [`BitMatrix`] stores each row as a bit-packed
//! [`BitVec`] (64 bits per machine word), so a row operation is a handful
//! of word XORs and a matrix-vector product over GF(2) is a masked parity
//! per row. All routines are deterministic and allocation-conscious; the
//! heavy loops (elimination, products) run over whole words.
//!
//! Conventions follow the paper:
//! * rows and columns are indexed from 0,
//! * vectors are column vectors; `x.bit(0)` is the *least significant*
//!   address bit,
//! * `A.submatrix(r0..r1, c0..c1)` is the paper's `A_{r0..r1-1, c0..c1-1}`
//!   "`..`" notation,
//! * arithmetic is mod 2: `+` is XOR, `*` is AND.

pub mod bitvec;
pub mod elim;
pub mod kernel;
pub mod matrix;
pub mod perm;
pub mod sample;

pub use bitvec::BitVec;
pub use elim::{solve, Elimination};
pub use kernel::{kernel_basis, kernel_contained_in, row_space_basis};
pub use matrix::BitMatrix;
pub use perm::{cross_rank, is_permutation_matrix, permutation_matrix};
pub use sample::{random_matrix, random_nonsingular, random_with_submatrix_rank};
