//! Bit-packed matrices over GF(2).

use crate::bitvec::BitVec;
use std::fmt;
use std::str::FromStr;

const WORD_BITS: usize = 64;

/// A dense 0-1 matrix over GF(2), stored row-major with each row packed
/// into 64-bit words.
///
/// Entry `(i, j)` is row `i`, column `j`, both indexed from 0 from the
/// upper left, matching the paper's conventions. A matrix-vector product
/// `A.mul_vec(&x)` computes `y_i = ⊕_j a_{ij} x_j`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    stride: usize, // words per row
    data: Vec<u64>,
}

impl BitMatrix {
    /// The all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let stride = cols.div_ceil(WORD_BITS).max(1);
        BitMatrix {
            rows,
            cols,
            stride,
            data: vec![0; rows * stride],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Builds a matrix whose rows are the given equal-length vectors.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[BitVec]) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        let mut m = Self::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            m.set_row(i, r);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    #[inline]
    fn row_words(&self, i: usize) -> &[u64] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    #[inline]
    fn row_words_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        (self.row_words(i)[j / WORD_BITS] >> (j % WORD_BITS)) & 1 == 1
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        let w = j / WORD_BITS;
        let mask = 1u64 << (j % WORD_BITS);
        let words = self.row_words_mut(i);
        if value {
            words[w] |= mask;
        } else {
            words[w] &= !mask;
        }
    }

    /// Copies row `i` out as a vector.
    pub fn row(&self, i: usize) -> BitVec {
        assert!(i < self.rows, "row {i} out of range");
        let mut v = BitVec::zeros(self.cols);
        for j in 0..self.cols {
            if self.get(i, j) {
                v.set(j, true);
            }
        }
        v
    }

    /// Copies column `j` out as a vector.
    pub fn column(&self, j: usize) -> BitVec {
        assert!(j < self.cols, "column {j} out of range");
        let mut v = BitVec::zeros(self.rows);
        for i in 0..self.rows {
            if self.get(i, j) {
                v.set(i, true);
            }
        }
        v
    }

    /// Overwrites row `i` with the given vector.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_row(&mut self, i: usize, v: &BitVec) {
        assert_eq!(v.len(), self.cols, "set_row length mismatch");
        let stride = self.stride;
        let words = self.row_words_mut(i);
        words[..v.words().len()].copy_from_slice(v.words());
        for w in words[v.words().len()..stride].iter_mut() {
            *w = 0;
        }
    }

    /// Overwrites column `j` with the given vector.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_column(&mut self, j: usize, v: &BitVec) {
        assert_eq!(v.len(), self.rows, "set_column length mismatch");
        for i in 0..self.rows {
            self.set(i, j, v.bit(i));
        }
    }

    /// XORs row `src` into row `dst` (`row_dst += row_src` over GF(2)).
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.rows && dst < self.rows, "row index out of range");
        assert_ne!(src, dst, "xor_row_into with src == dst would zero the row");
        let (s, d) = (src * self.stride, dst * self.stride);
        for k in 0..self.stride {
            let w = self.data[s + k];
            self.data[d + k] ^= w;
        }
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of range");
        if a == b {
            return;
        }
        for k in 0..self.stride {
            self.data.swap(a * self.stride + k, b * self.stride + k);
        }
    }

    /// XORs column `src` into column `dst` (the paper's "adding column
    /// `A_src` into column `A_dst`").
    pub fn xor_col_into(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.cols && dst < self.cols,
            "column index out of range"
        );
        assert_ne!(
            src, dst,
            "xor_col_into with src == dst would zero the column"
        );
        for i in 0..self.rows {
            if self.get(i, src) {
                let v = self.get(i, dst);
                self.set(i, dst, !v);
            }
        }
    }

    /// Swaps two columns.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols, "column index out of range");
        if a == b {
            return;
        }
        for i in 0..self.rows {
            let (va, vb) = (self.get(i, a), self.get(i, b));
            self.set(i, a, vb);
            self.set(i, b, va);
        }
    }

    /// Matrix-vector product `y = Ax` over GF(2).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        let mut y = BitVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = 0u64;
            for (a, b) in self.row_words(i).iter().zip(x.words()) {
                acc ^= a & b;
            }
            if acc.count_ones() % 2 == 1 {
                y.set(i, true);
            }
        }
        y
    }

    /// Matrix product `self * other` over GF(2).
    ///
    /// Implemented as: for each set entry `(i, k)` of `self`, XOR row `k`
    /// of `other` into row `i` of the result — O(rows·cols) word-level row
    /// XORs, which is fast for the small (≤ 64-column) matrices used here.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.cols, other.rows,
            "mul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = BitMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                if self.get(i, k) {
                    let (o, s) = (i * out.stride, k * other.stride);
                    for w in 0..out.stride.min(other.stride) {
                        out.data[o + w] ^= other.data[s + w];
                    }
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                if self.get(i, j) {
                    t.set(j, i, true);
                }
            }
        }
        t
    }

    /// The contiguous submatrix with the given row and column ranges —
    /// the paper's `A_{r0..r1-1, c0..c1-1}` notation.
    ///
    /// # Panics
    /// Panics if a range exceeds the matrix shape.
    pub fn submatrix(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> BitMatrix {
        assert!(
            rows.end <= self.rows && cols.end <= self.cols,
            "submatrix out of range"
        );
        let mut s = BitMatrix::zeros(rows.len(), cols.len());
        for (si, i) in rows.clone().enumerate() {
            for (sj, j) in cols.clone().enumerate() {
                if self.get(i, j) {
                    s.set(si, sj, true);
                }
            }
        }
        s
    }

    /// The submatrix consisting of whole columns indexed by `cols` (the
    /// paper's single-set indexing `A_S`).
    pub fn columns(&self, cols: &[usize]) -> BitMatrix {
        let mut s = BitMatrix::zeros(self.rows, cols.len());
        for (sj, &j) in cols.iter().enumerate() {
            assert!(j < self.cols, "column {j} out of range");
            for i in 0..self.rows {
                if self.get(i, j) {
                    s.set(i, sj, true);
                }
            }
        }
        s
    }

    /// Copies `block` into `self` with its upper-left corner at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &BitMatrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block does not fit at ({r0},{c0})"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self.set(r0 + i, c0 + j, block.get(i, j));
            }
        }
    }

    /// True if this is an identity matrix.
    pub fn is_identity(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                if self.get(i, j) != (i == j) {
                    return false;
                }
            }
        }
        true
    }

    /// True if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&w| w == 0)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{}", u8::from(self.get(i, j)))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Parses a matrix from rows of `0`/`1` characters separated by newlines
/// or `;`. Spaces are ignored. Intended for tests and doc examples.
///
/// ```
/// use gf2::BitMatrix;
/// let a: BitMatrix = "10; 01".parse().unwrap();
/// assert!(a.is_identity());
/// ```
impl FromStr for BitMatrix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rows: Vec<&str> = s
            .split(['\n', ';'])
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .collect();
        if rows.is_empty() {
            return Ok(BitMatrix::zeros(0, 0));
        }
        let parse_row = |r: &str| -> Result<Vec<bool>, String> {
            r.chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(format!("invalid matrix character {other:?}")),
                })
                .collect()
        };
        let first = parse_row(rows[0])?;
        let cols = first.len();
        let mut m = BitMatrix::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            let bits = parse_row(r)?;
            if bits.len() != cols {
                return Err(format!(
                    "row {i} has {} columns, expected {cols}",
                    bits.len()
                ));
            }
            for (j, b) in bits.into_iter().enumerate() {
                m.set(i, j, b);
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let i = BitMatrix::identity(8);
        assert!(i.is_identity());
        assert!(i.is_square());
        assert!(!i.is_zero());
        let x = BitVec::from_u64(8, 0b10110101);
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn parse_and_display_round_trip() {
        let a: BitMatrix = "101; 010; 111".parse().unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 3);
        assert!(a.get(0, 0) && !a.get(0, 1) && a.get(0, 2));
        assert!(a.get(2, 0) && a.get(2, 1) && a.get(2, 2));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("10; 1".parse::<BitMatrix>().is_err());
        assert!("1x".parse::<BitMatrix>().is_err());
    }

    #[test]
    fn mul_matches_paper_example() {
        // The column-addition example from Section 4 of the paper:
        // A * Q = A' where Q adds column 0 into columns 1 and 2, and
        // column 3 into column 1.
        let a: BitMatrix = "1011; 0110; 1100; 0101".parse().unwrap();
        let q: BitMatrix = "1110; 0100; 0010; 0101".parse().unwrap();
        let expect: BitMatrix = "1001; 0110; 1010; 0001".parse().unwrap();
        assert_eq!(a.mul(&q), expect);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a: BitMatrix = "110; 011; 101".parse().unwrap();
        let x = BitVec::from_u64(3, 0b011); // x0=1, x1=1, x2=0
                                            // y0 = x0^x1 = 0, y1 = x1^x2 = 1, y2 = x0^x2 = 1.
        let y = a.mul_vec(&x);
        assert_eq!(y.as_u64(), 0b110);
    }

    #[test]
    fn mul_associative_with_vec() {
        let a: BitMatrix = "1011; 0110; 1100; 0101".parse().unwrap();
        let b: BitMatrix = "1110; 0100; 0010; 0101".parse().unwrap();
        for v in 0..16u64 {
            let x = BitVec::from_u64(4, v);
            let lhs = a.mul(&b).mul_vec(&x);
            let rhs = a.mul_vec(&b.mul_vec(&x));
            assert_eq!(lhs, rhs, "associativity failed for x={v:04b}");
        }
    }

    #[test]
    fn transpose_involution() {
        let a: BitMatrix = "10110; 01101; 11000".parse().unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 5);
        assert_eq!(a.transpose().cols(), 3);
    }

    #[test]
    fn submatrix_extraction() {
        let a: BitMatrix = "1011; 0110; 1100; 0101".parse().unwrap();
        let s = a.submatrix(1..3, 0..2);
        let expect: BitMatrix = "01; 11".parse().unwrap();
        assert_eq!(s, expect);
    }

    #[test]
    fn columns_selection() {
        let a: BitMatrix = "1011; 0110; 1100; 0101".parse().unwrap();
        let s = a.columns(&[3, 0]);
        assert_eq!(s.column(0), a.column(3));
        assert_eq!(s.column(1), a.column(0));
    }

    #[test]
    fn row_and_col_ops() {
        let mut a: BitMatrix = "10; 01".parse().unwrap();
        a.xor_row_into(0, 1);
        assert_eq!(a, "10; 11".parse().unwrap());
        a.xor_col_into(1, 0);
        assert_eq!(a, "10; 01".parse().unwrap());
        a.swap_rows(0, 1);
        assert_eq!(a, "01; 10".parse().unwrap());
        a.swap_cols(0, 1);
        assert!(a.is_identity());
    }

    #[test]
    fn set_block_and_set_column() {
        let mut a = BitMatrix::zeros(4, 4);
        a.set_block(1, 1, &BitMatrix::identity(2));
        assert!(a.get(1, 1) && a.get(2, 2));
        assert!(!a.get(0, 0) && !a.get(3, 3));
        a.set_column(0, &BitVec::from_u64(4, 0b1111));
        assert_eq!(a.column(0).count_ones(), 4);
    }

    #[test]
    fn wide_matrix_over_word_boundary() {
        let n = 80;
        let mut a = BitMatrix::zeros(2, n);
        a.set(0, 79, true);
        a.set(1, 63, true);
        a.set(1, 64, true);
        let x = BitVec::ones(n);
        let y = a.mul_vec(&x);
        assert!(y.bit(0)); // one term
        assert!(!y.bit(1)); // two terms cancel
    }

    #[test]
    fn set_row_clears_old_bits() {
        let mut a = BitMatrix::from_fn(2, 70, |_, _| true);
        a.set_row(0, &BitVec::zeros(70));
        assert!(a.row(0).is_zero());
        assert_eq!(a.row(1).count_ones(), 70);
    }
}
