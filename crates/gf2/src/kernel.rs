//! Kernels, row spaces, and the MLD kernel-condition test.
//!
//! The paper's MLD class is defined by the *kernel condition* (eq. 4):
//! `ker α ⊆ ker δ`. Section 6 gives the practical test implemented by
//! [`kernel_contained_in`]: compute a basis of `ker K` and check that
//! every basis vector is annihilated by `L`.

use crate::bitvec::BitVec;
use crate::elim::Elimination;
use crate::matrix::BitMatrix;

/// A basis for the kernel (null space) of `a`: all `x` with `A x = 0`.
///
/// Derived from the RREF: one basis vector per free column `f`, with a 1
/// in position `f` and, for each pivot `(row r, col p)`, bit `p` set to
/// `RREF[r][f]`.
pub fn kernel_basis(a: &BitMatrix) -> Vec<BitVec> {
    let elim = Elimination::new(a);
    let q = a.cols();
    elim.free_columns()
        .into_iter()
        .map(|f| {
            let mut v = BitVec::zeros(q);
            v.set(f, true);
            for &(r, p) in elim.pivots() {
                if elim.rref().get(r, f) {
                    v.set(p, true);
                }
            }
            v
        })
        .collect()
}

/// A basis for the row space of `a` (the nonzero rows of its RREF).
pub fn row_space_basis(a: &BitMatrix) -> Vec<BitVec> {
    let elim = Elimination::new(a);
    (0..elim.rank()).map(|r| elim.rref().row(r)).collect()
}

/// Tests `ker K ⊆ ker L` for matrices with the same number of columns.
///
/// This is the Section 6 procedure: find a basis `{x^(i)}` of `ker K` and
/// verify `L x^(i) = 0` for each. By linearity that covers all of
/// `ker K`.
///
/// # Panics
/// Panics if `K` and `L` have different column counts.
pub fn kernel_contained_in(k: &BitMatrix, l: &BitMatrix) -> bool {
    assert_eq!(
        k.cols(),
        l.cols(),
        "kernel_contained_in requires equal column counts"
    );
    kernel_basis(k).iter().all(|x| l.mul_vec(x).is_zero())
}

/// Tests whether `v` lies in the row space of `a`.
pub fn in_row_space(a: &BitMatrix, v: &BitVec) -> bool {
    assert_eq!(v.len(), a.cols(), "in_row_space length mismatch");
    let base = Elimination::new(a).rank();
    let mut ext = BitMatrix::zeros(a.rows() + 1, a.cols());
    ext.set_block(0, 0, a);
    ext.set_row(a.rows(), v);
    Elimination::new(&ext).rank() == base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::rank;

    fn m(s: &str) -> BitMatrix {
        s.parse().unwrap()
    }

    #[test]
    fn kernel_of_nonsingular_is_trivial() {
        let a = m("110; 011; 111");
        assert!(kernel_basis(&a).is_empty());
    }

    #[test]
    fn kernel_basis_annihilates() {
        let a = m("10101; 01100; 00001");
        let basis = kernel_basis(&a);
        assert_eq!(basis.len(), 2); // 5 columns - rank 3
        for v in &basis {
            assert!(a.mul_vec(v).is_zero(), "basis vector {v} not in kernel");
            assert!(!v.is_zero());
        }
        // Basis vectors are independent.
        let b = BitMatrix::from_rows(&basis);
        assert_eq!(rank(&b), basis.len());
    }

    #[test]
    fn kernel_dimension_matches_rank_nullity() {
        let a = m("1111; 0000; 1111");
        assert_eq!(kernel_basis(&a).len(), 4 - rank(&a));
    }

    #[test]
    fn row_space_basis_spans_rows() {
        let a = m("101; 011; 110");
        let basis = row_space_basis(&a);
        assert_eq!(basis.len(), 2);
        for i in 0..a.rows() {
            assert!(in_row_space(&BitMatrix::from_rows(&basis), &a.row(i)));
        }
    }

    #[test]
    fn kernel_containment_basic() {
        // ker of [1 1] = span{(1,1)}; L = [1 1] also kills it.
        let k = m("11");
        let l = m("11");
        assert!(kernel_contained_in(&k, &l));
        // L = [1 0] does not.
        let l2 = m("10");
        assert!(!kernel_contained_in(&k, &l2));
    }

    #[test]
    fn kernel_containment_zero_l() {
        // ker of anything is contained in ker 0 = everything.
        let k = m("10; 01");
        let l = BitMatrix::zeros(3, 2);
        assert!(kernel_contained_in(&k, &l));
    }

    #[test]
    fn kernel_containment_trivial_kernel() {
        // K nonsingular => ker K = {0} ⊆ anything.
        let k = m("10; 01");
        let l = m("11; 10");
        assert!(kernel_contained_in(&k, &l));
    }

    #[test]
    fn paper_section3_counterexample() {
        // Section 3's example of an MRC·MLD product that is NOT MLD,
        // with b = m-b = n-m = 1 (so m = 2, n = 3):
        //   product = [0 1 0; 1 0 0; 0 1 1]
        // alpha = rows b..m-1 (row 1) of first m columns = [1 0],
        // delta = rows m..n-1 (row 2) of first m columns = [0 1].
        // ker alpha = span{(0,1)}, and delta*(0,1) = 1 != 0.
        let product = m("010; 100; 011");
        let alpha = product.submatrix(1..2, 0..2);
        let delta = product.submatrix(2..3, 0..2);
        assert!(!kernel_contained_in(&alpha, &delta));
    }

    #[test]
    fn row_space_orthogonal_to_kernel() {
        // Lemma 11 background: row space ⟂ kernel.
        let a = m("10110; 01011; 11101");
        let kb = kernel_basis(&a);
        let rb = row_space_basis(&a);
        for x in &kb {
            for r in &rb {
                assert!(!x.dot(r), "kernel and row space not orthogonal");
            }
        }
    }
}
