//! Bit-packed vectors over GF(2).

use std::fmt;

const WORD_BITS: usize = 64;

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// A fixed-length vector over GF(2), packed 64 bits per word.
///
/// Bit `i` of the vector lives in word `i / 64` at position `i % 64`.
/// The trailing bits of the last word beyond `len` are always zero; every
/// mutating operation re-establishes this invariant so that equality and
/// hashing can compare words directly.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// The all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// The all-ones vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![!0u64; words_for(len)],
        };
        v.mask_tail();
        v
    }

    /// The unit vector `e_i` of length `len` (a single 1 in position `i`).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn unit(len: usize, i: usize) -> Self {
        let mut v = Self::zeros(len);
        v.set(i, true);
        v
    }

    /// Builds a vector of length `len` from the low bits of `value`
    /// (bit 0 of `value` becomes element 0).
    ///
    /// # Panics
    /// Panics if `value` has a set bit at or above position `len`.
    pub fn from_u64(len: usize, value: u64) -> Self {
        if len < 64 {
            assert!(
                value < (1u64 << len),
                "value {value:#x} does not fit in {len} bits"
            );
        }
        let mut v = Self::zeros(len);
        if !v.words.is_empty() {
            v.words[0] = value;
        }
        v
    }

    /// Builds a vector from an iterator of bools; the first item is bit 0.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        let w = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[w] |= mask;
        } else {
            self.words[w] &= !mask;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor_assign length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// GF(2) inner product: the parity of the AND of the two vectors.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// The sub-vector of bits `range.start .. range.end` (paper's
    /// `x_{s..e-1}` notation).
    ///
    /// # Panics
    /// Panics if the range exceeds the length.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.end <= self.len, "slice out of range");
        let mut out = BitVec::zeros(range.len());
        for (k, i) in range.enumerate() {
            if self.bit(i) {
                out.set(k, true);
            }
        }
        out
    }

    /// Concatenates `self` (low bits) with `hi` (high bits).
    pub fn concat(&self, hi: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + hi.len);
        for i in 0..self.len {
            if self.bit(i) {
                out.set(i, true);
            }
        }
        for i in 0..hi.len {
            if hi.bit(i) {
                out.set(self.len + i, true);
            }
        }
        out
    }

    /// Interprets the vector as an integer (bit 0 = LSB).
    ///
    /// # Panics
    /// Panics if the length exceeds 64 and any high bit is set.
    pub fn as_u64(&self) -> u64 {
        for (k, &w) in self.words.iter().enumerate() {
            if k > 0 && w != 0 {
                panic!("BitVec does not fit in u64");
            }
        }
        self.words.first().copied().unwrap_or(0)
    }

    /// Iterator over the positions of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }

    /// Raw words backing the vector (low word first).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Zeroes any bits at positions `>= len` in the last word.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    /// Renders as bit 0 first, matching the paper's `(x_0, x_1, ..)` order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(100);
        assert_eq!(z.len(), 100);
        assert!(z.is_zero());
        assert_eq!(z.count_ones(), 0);

        let o = BitVec::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(!o.is_zero());
    }

    #[test]
    fn ones_masks_tail_word() {
        let o = BitVec::ones(65);
        assert_eq!(o.words()[1], 1);
        assert_eq!(o.count_ones(), 65);
    }

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(70);
        v.set(0, true);
        v.set(69, true);
        assert!(v.bit(0));
        assert!(v.bit(69));
        assert!(!v.bit(35));
        v.flip(69);
        assert!(!v.bit(69));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(8);
        let _ = v.bit(8);
    }

    #[test]
    fn from_u64_round_trip() {
        let v = BitVec::from_u64(13, 0b1010011001011);
        assert_eq!(v.as_u64(), 0b1010011001011);
        assert!(v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(12));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_overflow_panics() {
        let _ = BitVec::from_u64(3, 8);
    }

    #[test]
    fn unit_vectors() {
        for i in 0..20 {
            let e = BitVec::unit(20, i);
            assert_eq!(e.count_ones(), 1);
            assert!(e.bit(i));
            assert_eq!(e.as_u64(), 1 << i);
        }
    }

    #[test]
    fn xor_assign_is_involutive() {
        let a = BitVec::from_u64(10, 0b1100110011);
        let b = BitVec::from_u64(10, 0b0101010101);
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c.as_u64(), 0b1100110011 ^ 0b0101010101);
        c.xor_assign(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn dot_product_parity() {
        let a = BitVec::from_u64(4, 0b1011);
        let b = BitVec::from_u64(4, 0b1110);
        // AND = 0b1010, two ones => parity 0.
        assert!(!a.dot(&b));
        let c = BitVec::from_u64(4, 0b0010);
        assert!(a.dot(&c));
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let v = BitVec::from_u64(13, 0b1010011001011);
        let lo = v.slice(0..5);
        let hi = v.slice(5..13);
        assert_eq!(lo.as_u64(), 0b01011);
        assert_eq!(hi.as_u64(), 0b10100110);
        assert_eq!(lo.concat(&hi), v);
    }

    #[test]
    fn iter_ones_matches_bits() {
        let v = BitVec::from_bits((0..130).map(|i| i % 7 == 0));
        let ones: Vec<usize> = v.iter_ones().collect();
        let expect: Vec<usize> = (0..130).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expect);
    }

    #[test]
    fn display_lsb_first() {
        let v = BitVec::from_u64(4, 0b0011);
        assert_eq!(v.to_string(), "1100");
    }
}
