//! Permutation matrices and cross-ranks (the BPC machinery of Cormen \[4\]).

use crate::elim::rank;
use crate::matrix::BitMatrix;

/// Builds the `n x n` permutation matrix `A` with `A[pi[j], j] = 1`, so
/// that `y = A x` satisfies `y_{pi[j]} = x_j`: bit `j` of the source
/// address moves to bit `pi[j]` of the target address.
///
/// # Panics
/// Panics if `pi` is not a permutation of `0..n`.
pub fn permutation_matrix(pi: &[usize]) -> BitMatrix {
    let n = pi.len();
    let mut seen = vec![false; n];
    let mut a = BitMatrix::zeros(n, n);
    for (j, &i) in pi.iter().enumerate() {
        assert!(i < n, "permutation value {i} out of range");
        assert!(!seen[i], "duplicate permutation value {i}");
        seen[i] = true;
        a.set(i, j, true);
    }
    a
}

/// True if `a` is a permutation matrix: square with exactly one 1 in
/// each row and each column.
pub fn is_permutation_matrix(a: &BitMatrix) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    for i in 0..n {
        if a.row(i).count_ones() != 1 {
            return false;
        }
    }
    for j in 0..n {
        if a.column(j).count_ones() != 1 {
            return false;
        }
    }
    true
}

/// Extracts the permutation `pi` from a permutation matrix
/// (`pi[j] = i` where `A[i, j] = 1`).
///
/// # Panics
/// Panics if `a` is not a permutation matrix.
pub fn permutation_of_matrix(a: &BitMatrix) -> Vec<usize> {
    assert!(is_permutation_matrix(a), "not a permutation matrix");
    (0..a.cols())
        .map(|j| (0..a.rows()).find(|&i| a.get(i, j)).unwrap())
        .collect()
}

/// The `k`-cross-rank of `a` (paper eq. (2)):
/// `rho_k(A) = rank A_{k..n-1, 0..k-1}`.
///
/// For permutation matrices this equals `rank A_{0..k-1, k..n-1}`; we
/// compute the lower-left form directly, which is well-defined for any
/// matrix.
pub fn cross_rank(a: &BitMatrix, k: usize) -> usize {
    assert!(a.is_square(), "cross_rank requires a square matrix");
    let n = a.rows();
    assert!(k <= n, "cross point {k} out of range");
    if k == 0 || k == n {
        return 0;
    }
    rank(&a.submatrix(k..n, 0..k))
}

/// The cross-rank of a BPC characteristic matrix (paper eq. (3)):
/// `rho(A) = max(rho_b(A), rho_m(A))`.
pub fn bpc_cross_rank(a: &BitMatrix, b: usize, m: usize) -> usize {
    cross_rank(a, b).max(cross_rank(a, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;

    #[test]
    fn permutation_matrix_moves_bits() {
        // pi = reversal on 4 bits.
        let pi = vec![3, 2, 1, 0];
        let a = permutation_matrix(&pi);
        let x = BitVec::from_u64(4, 0b0011);
        let y = a.mul_vec(&x);
        assert_eq!(y.as_u64(), 0b1100);
        assert!(is_permutation_matrix(&a));
    }

    #[test]
    fn identity_is_permutation() {
        let i = BitMatrix::identity(6);
        assert!(is_permutation_matrix(&i));
        assert_eq!(permutation_of_matrix(&i), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn round_trip_permutation() {
        let pi = vec![2, 0, 3, 1, 4];
        let a = permutation_matrix(&pi);
        assert_eq!(permutation_of_matrix(&a), pi);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_non_permutation() {
        permutation_matrix(&[0, 0, 1]);
    }

    #[test]
    fn non_permutation_matrices_detected() {
        let a: BitMatrix = "11; 01".parse().unwrap();
        assert!(!is_permutation_matrix(&a));
        let z = BitMatrix::zeros(2, 2);
        assert!(!is_permutation_matrix(&z));
    }

    #[test]
    fn cross_rank_of_identity_is_zero() {
        let i = BitMatrix::identity(8);
        for k in 0..=8 {
            assert_eq!(cross_rank(&i, k), 0);
        }
    }

    #[test]
    fn cross_rank_of_full_reversal() {
        // Bit reversal on n=6: pi[j] = 5-j. Lower-left block of size
        // (6-k) x k has min(k, 6-k) ones on the anti-diagonal.
        let a = permutation_matrix(&[5, 4, 3, 2, 1, 0]);
        for k in 0..=6 {
            assert_eq!(cross_rank(&a, k), k.min(6 - k), "k = {k}");
        }
    }

    #[test]
    fn cross_rank_symmetric_for_permutation() {
        // For permutation matrices, rank of lower-left equals rank of
        // upper-right (paper eq. (2)).
        let pi = vec![4, 2, 0, 5, 3, 1];
        let a = permutation_matrix(&pi);
        let n = 6;
        for k in 1..n {
            let lower = rank(&a.submatrix(k..n, 0..k));
            let upper = rank(&a.submatrix(0..k, k..n));
            assert_eq!(lower, upper, "k = {k}");
        }
    }

    #[test]
    fn bpc_cross_rank_max() {
        let a = permutation_matrix(&[5, 4, 3, 2, 1, 0]);
        // b = 1, m = 3: rho_1 = 1, rho_3 = 3.
        assert_eq!(bpc_cross_rank(&a, 1, 3), 3);
    }
}
