//! Gaussian elimination over GF(2): rank, inverse, solving, and
//! column-dependency analysis.
//!
//! The factoring algorithm of Section 5 of the paper repeatedly needs
//! * a maximal set of linearly independent columns of a submatrix
//!   (the sets `V`, `W`, and `U` in the trailer/reducer constructions), and
//! * for each dependent column, the subset of basis columns whose sum
//!   equals it (the sets `U_j`).
//!
//! Both fall out of the reduced row-echelon form computed here: the pivot
//! columns are a maximal independent set, and for a non-pivot column `j`
//! the entries of RREF column `j` in the pivot rows name exactly the pivot
//! columns that sum to column `j`.

use crate::bitvec::BitVec;
use crate::matrix::BitMatrix;

/// The result of running Gauss–Jordan elimination on a matrix.
///
/// Holds the reduced row-echelon form (RREF) and the pivot positions.
/// All queries (`rank`, `pivot_columns`, `combination_of_pivots`, …) are
/// O(1) or single-pass over the stored form.
#[derive(Clone, Debug)]
pub struct Elimination {
    rref: BitMatrix,
    /// `(row, col)` of each pivot, in increasing row (and column) order.
    pivots: Vec<(usize, usize)>,
}

impl Elimination {
    /// Runs Gauss–Jordan elimination (to full RREF) on a copy of `a`.
    pub fn new(a: &BitMatrix) -> Self {
        let mut m = a.clone();
        let (rows, cols) = (m.rows(), m.cols());
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..cols {
            if pivot_row >= rows {
                break;
            }
            // Find a row at or below pivot_row with a 1 in this column.
            let found = (pivot_row..rows).find(|&r| m.get(r, col));
            let Some(r) = found else { continue };
            m.swap_rows(pivot_row, r);
            // Clear the column everywhere else (full reduction).
            for r2 in 0..rows {
                if r2 != pivot_row && m.get(r2, col) {
                    m.xor_row_into(pivot_row, r2);
                }
            }
            pivots.push((pivot_row, col));
            pivot_row += 1;
        }
        Elimination { rref: m, pivots }
    }

    /// The rank of the matrix.
    #[inline]
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// The reduced row-echelon form.
    #[inline]
    pub fn rref(&self) -> &BitMatrix {
        &self.rref
    }

    /// The pivot `(row, col)` pairs in increasing order.
    #[inline]
    pub fn pivots(&self) -> &[(usize, usize)] {
        &self.pivots
    }

    /// Indices of a maximal set of linearly independent columns
    /// (the pivot columns), ascending. This is the paper's "maximal set
    /// of linearly independent columns determined by Gaussian
    /// elimination".
    pub fn pivot_columns(&self) -> Vec<usize> {
        self.pivots.iter().map(|&(_, c)| c).collect()
    }

    /// Indices of the non-pivot (linearly dependent) columns, ascending.
    pub fn free_columns(&self) -> Vec<usize> {
        let piv: Vec<usize> = self.pivot_columns();
        (0..self.rref.cols()).filter(|c| !piv.contains(c)).collect()
    }

    /// For column `j`, the set `U_j` of pivot columns whose GF(2) sum
    /// equals column `j` of the original matrix. For a pivot column this
    /// is just `[j]`.
    pub fn combination_of_pivots(&self, j: usize) -> Vec<usize> {
        assert!(j < self.rref.cols(), "column {j} out of range");
        if let Some(&(_, c)) = self.pivots.iter().find(|&&(_, c)| c == j) {
            return vec![c];
        }
        self.pivots
            .iter()
            .filter(|&&(r, _)| self.rref.get(r, j))
            .map(|&(_, c)| c)
            .collect()
    }
}

/// The rank of a matrix over GF(2).
///
/// ```
/// use gf2::{elim::rank, BitMatrix};
/// let a: BitMatrix = "101; 011; 110".parse().unwrap(); // row2 = row0 ⊕ row1
/// assert_eq!(rank(&a), 2);
/// ```
pub fn rank(a: &BitMatrix) -> usize {
    Elimination::new(a).rank()
}

/// True if the matrix is square and invertible over GF(2).
pub fn is_nonsingular(a: &BitMatrix) -> bool {
    a.is_square() && rank(a) == a.rows()
}

/// The inverse of a nonsingular square matrix, or `None` if singular.
///
/// Gauss–Jordan on the augmented matrix `[A | I]`.
pub fn inverse(a: &BitMatrix) -> Option<BitMatrix> {
    if !a.is_square() {
        return None;
    }
    let n = a.rows();
    let mut aug = BitMatrix::zeros(n, 2 * n);
    aug.set_block(0, 0, a);
    aug.set_block(0, n, &BitMatrix::identity(n));
    // Every column must yield a pivot (else A is singular), so column
    // `col` always pivots on row `col`.
    for col in 0..n {
        let r = (col..n).find(|&r| aug.get(r, col))?;
        aug.swap_rows(col, r);
        for r2 in 0..n {
            if r2 != col && aug.get(r2, col) {
                aug.xor_row_into(col, r2);
            }
        }
    }
    Some(aug.submatrix(0..n, n..2 * n))
}

/// Solves `A x = y` over GF(2). Returns one solution (free variables set
/// to zero) or `None` if the system is inconsistent.
pub fn solve(a: &BitMatrix, y: &BitVec) -> Option<BitVec> {
    assert_eq!(y.len(), a.rows(), "solve dimension mismatch");
    let n = a.cols();
    let mut aug = BitMatrix::zeros(a.rows(), n + 1);
    aug.set_block(0, 0, a);
    aug.set_column(n, y);
    let elim = Elimination::new(&aug);
    // Inconsistent iff some pivot lands in the augmented column.
    if elim.pivots().iter().any(|&(_, c)| c == n) {
        return None;
    }
    let mut x = BitVec::zeros(n);
    for &(r, c) in elim.pivots() {
        if elim.rref().get(r, n) {
            x.set(c, true);
        }
    }
    Some(x)
}

/// An incrementally-built maximal independent set of GF(2) vectors.
///
/// Vectors are stored in echelon form (each with a distinct pivot
/// position), so insertion and membership-in-span tests are O(rank)
/// row XORs. Used by the samplers (basis completion) and by the
/// run-time detection code.
#[derive(Clone, Debug, Default)]
pub struct IndependentSet {
    /// Echelonized representatives, each paired with its pivot position.
    echelon: Vec<(usize, BitVec)>,
    /// The original vectors, in insertion order, that were accepted.
    members: Vec<BitVec>,
}

impl IndependentSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reduces `v` against the current echelon and returns the residue.
    fn reduce(&self, v: &BitVec) -> BitVec {
        let mut r = v.clone();
        for (p, e) in &self.echelon {
            if r.bit(*p) {
                r.xor_assign(e);
            }
        }
        r
    }

    /// True if `v` lies in the span of the accepted vectors.
    pub fn contains_in_span(&self, v: &BitVec) -> bool {
        self.reduce(v).is_zero()
    }

    /// Tries to add `v`; returns `true` if it was independent of the
    /// current set (and is now a member).
    pub fn insert(&mut self, v: &BitVec) -> bool {
        let r = self.reduce(v);
        let pivot = r.iter_ones().next();
        match pivot {
            None => false,
            Some(p) => {
                self.echelon.push((p, r));
                self.members.push(v.clone());
                true
            }
        }
    }

    /// Number of accepted (independent) vectors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if no vectors have been accepted.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The accepted vectors in insertion order.
    pub fn members(&self) -> &[BitVec] {
        &self.members
    }
}

/// Extends the independent columns of `start` to a full basis of
/// GF(2)^n by greedily appending unit vectors, returning the appended
/// vectors only.
///
/// # Panics
/// Panics if the starting vectors are dependent or have length != `n`.
pub fn complete_basis(start: &[BitVec], n: usize) -> Vec<BitVec> {
    let mut set = IndependentSet::new();
    for v in start {
        assert_eq!(v.len(), n, "basis vector length mismatch");
        assert!(set.insert(v), "starting vectors are linearly dependent");
    }
    let mut extension = Vec::with_capacity(n - start.len());
    for i in 0..n {
        if set.len() == n {
            break;
        }
        let e = BitVec::unit(n, i);
        if set.insert(&e) {
            extension.push(e);
        }
    }
    assert_eq!(set.len(), n, "failed to complete basis");
    extension
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> BitMatrix {
        s.parse().unwrap()
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(rank(&BitMatrix::identity(7)), 7);
        assert_eq!(rank(&BitMatrix::zeros(4, 6)), 0);
    }

    #[test]
    fn rank_of_dependent_rows() {
        // Row 2 = row 0 + row 1.
        let a = m("101; 011; 110");
        assert_eq!(rank(&a), 2);
        assert!(!is_nonsingular(&a));
    }

    #[test]
    fn rank_of_rectangular() {
        let a = m("10110; 01011; 11101");
        // row2 = row0 + row1.
        assert_eq!(rank(&a), 2);
        assert_eq!(rank(&a.transpose()), 2);
    }

    #[test]
    fn inverse_round_trip() {
        let a = m("110; 011; 111");
        let inv = inverse(&a).expect("nonsingular");
        assert!(a.mul(&inv).is_identity());
        assert!(inv.mul(&a).is_identity());
    }

    #[test]
    fn inverse_of_singular_is_none() {
        assert!(inverse(&m("11; 11")).is_none());
        assert!(inverse(&m("10; 01; 11")).is_none()); // not square
    }

    #[test]
    fn inverse_of_identity() {
        let i = BitMatrix::identity(9);
        assert_eq!(inverse(&i).unwrap(), i);
    }

    #[test]
    fn solve_consistent_system() {
        let a = m("110; 011; 111");
        for target in 0..8u64 {
            let y = BitVec::from_u64(3, target);
            let x = solve(&a, &y).expect("nonsingular system always solvable");
            assert_eq!(a.mul_vec(&x), y);
        }
    }

    #[test]
    fn solve_inconsistent_system() {
        // Rows 0 and 1 identical: y must agree on those coordinates.
        let a = m("101; 101");
        let y = BitVec::from_u64(2, 0b01);
        assert!(solve(&a, &y).is_none());
        let y2 = BitVec::from_u64(2, 0b11);
        let x = solve(&a, &y2).expect("consistent");
        assert_eq!(a.mul_vec(&x), y2);
    }

    #[test]
    fn solve_underdetermined() {
        let a = m("1100");
        let y = BitVec::from_u64(1, 1);
        let x = solve(&a, &y).unwrap();
        assert_eq!(a.mul_vec(&x), y);
    }

    #[test]
    fn pivot_columns_are_independent_and_maximal() {
        // col2 = col0 + col1, col3 = 0, col4 independent (only 1 in row 2).
        let a = m("10101; 01100; 00001");
        let e = Elimination::new(&a);
        assert_eq!(e.rank(), 3);
        let piv = e.pivot_columns();
        assert_eq!(piv, vec![0, 1, 4]);
        assert_eq!(e.free_columns(), vec![2, 3]);
    }

    #[test]
    fn combination_of_pivots_reconstructs_column() {
        let a = m("10101; 01100; 00001");
        let e = Elimination::new(&a);
        for j in 0..a.cols() {
            let combo = e.combination_of_pivots(j);
            let mut sum = BitVec::zeros(a.rows());
            for &k in &combo {
                sum.xor_assign(&a.column(k));
            }
            assert_eq!(sum, a.column(j), "column {j} not reconstructed");
        }
    }

    #[test]
    fn independent_set_rejects_dependent() {
        let mut s = IndependentSet::new();
        let v1 = BitVec::from_u64(4, 0b0011);
        let v2 = BitVec::from_u64(4, 0b0101);
        let v3 = BitVec::from_u64(4, 0b0110); // v1 ^ v2
        assert!(s.insert(&v1));
        assert!(s.insert(&v2));
        assert!(!s.insert(&v3));
        assert_eq!(s.len(), 2);
        assert!(s.contains_in_span(&v3));
        assert!(!s.contains_in_span(&BitVec::from_u64(4, 0b1000)));
    }

    #[test]
    fn independent_set_rejects_zero() {
        let mut s = IndependentSet::new();
        assert!(!s.insert(&BitVec::zeros(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn complete_basis_spans() {
        let start = vec![BitVec::from_u64(4, 0b0110), BitVec::from_u64(4, 0b1100)];
        let ext = complete_basis(&start, 4);
        assert_eq!(ext.len(), 2);
        let mut all = start.clone();
        all.extend(ext);
        let b = BitMatrix::from_rows(&all);
        assert_eq!(rank(&b), 4);
    }

    #[test]
    #[should_panic(expected = "dependent")]
    fn complete_basis_panics_on_dependent_start() {
        let start = vec![BitVec::from_u64(3, 0b011), BitVec::from_u64(3, 0b011)];
        complete_basis(&start, 3);
    }
}
