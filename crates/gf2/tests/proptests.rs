//! Property-based tests for the GF(2) substrate: algebraic laws that
//! the rest of the workspace silently relies on.

use gf2::elim::{complete_basis, inverse, is_nonsingular, rank, solve, Elimination};
use gf2::kernel::{in_row_space, kernel_basis, row_space_basis};
use gf2::sample::{random_matrix, random_nonsingular, random_with_rank};
use gf2::{BitMatrix, BitVec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seeded(s: u64) -> StdRng {
    StdRng::seed_from_u64(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn transpose_preserves_rank(s in any::<u64>(), r in 1usize..8, c in 1usize..8) {
        let a = random_matrix(&mut seeded(s), r, c);
        prop_assert_eq!(rank(&a), rank(&a.transpose()));
    }

    #[test]
    fn mul_vec_distributes_over_xor(s in any::<u64>(), r in 1usize..8, c in 1usize..8) {
        let mut rng = seeded(s);
        let a = random_matrix(&mut rng, r, c);
        let x = random_matrix(&mut rng, c, 1).column(0);
        let y = random_matrix(&mut rng, c, 1).column(0);
        let mut xy = x.clone();
        xy.xor_assign(&y);
        let mut lhs = a.mul_vec(&x);
        lhs.xor_assign(&a.mul_vec(&y));
        prop_assert_eq!(a.mul_vec(&xy), lhs);
    }

    #[test]
    fn mul_transpose_antihomomorphism(s in any::<u64>(), n in 1usize..8) {
        let mut rng = seeded(s);
        let a = random_matrix(&mut rng, n, n);
        let b = random_matrix(&mut rng, n, n);
        prop_assert_eq!(a.mul(&b).transpose(), b.transpose().mul(&a.transpose()));
    }

    #[test]
    fn inverse_unique_and_involutive(s in any::<u64>(), n in 1usize..12) {
        let a = random_nonsingular(&mut seeded(s), n);
        let inv = inverse(&a).unwrap();
        prop_assert_eq!(inverse(&inv).unwrap(), a);
    }

    #[test]
    fn rank_bounds(s in any::<u64>(), r in 1usize..10, c in 1usize..10) {
        let a = random_matrix(&mut seeded(s), r, c);
        prop_assert!(rank(&a) <= r.min(c));
    }

    #[test]
    fn rank_subadditive_under_sum(s in any::<u64>(), r in 1usize..8, c in 1usize..8) {
        let mut rng = seeded(s);
        let a = random_matrix(&mut rng, r, c);
        let b = random_matrix(&mut rng, r, c);
        // rank(A ⊕ B) ≤ rank A + rank B.
        let mut sum = BitMatrix::zeros(r, c);
        for i in 0..r {
            for j in 0..c {
                sum.set(i, j, a.get(i, j) != b.get(i, j));
            }
        }
        prop_assert!(rank(&sum) <= rank(&a) + rank(&b));
    }

    #[test]
    fn solve_agrees_with_mul(s in any::<u64>(), n in 1usize..10) {
        let mut rng = seeded(s);
        let a = random_nonsingular(&mut rng, n);
        let x = random_matrix(&mut rng, n, 1).column(0);
        let y = a.mul_vec(&x);
        let x2 = solve(&a, &y).unwrap();
        prop_assert_eq!(x2, x, "nonsingular system has a unique solution");
    }

    #[test]
    fn rank_nullity(s in any::<u64>(), r in 1usize..8, c in 1usize..8) {
        let a = random_matrix(&mut seeded(s), r, c);
        prop_assert_eq!(rank(&a) + kernel_basis(&a).len(), c);
    }

    #[test]
    fn row_space_contains_all_rows(s in any::<u64>(), r in 1usize..8, c in 1usize..8) {
        let a = random_matrix(&mut seeded(s), r, c);
        let rows = row_space_basis(&a);
        if rows.is_empty() {
            // Zero matrix: the row space is trivial.
            for i in 0..r {
                prop_assert!(a.row(i).is_zero());
            }
        } else {
            let basis = BitMatrix::from_rows(&rows);
            for i in 0..r {
                prop_assert!(in_row_space(&basis, &a.row(i)));
            }
        }
    }

    #[test]
    fn pivot_columns_reconstruct_all_columns(s in any::<u64>(), r in 1usize..8, c in 1usize..8) {
        let a = random_matrix(&mut seeded(s), r, c);
        let e = Elimination::new(&a);
        for j in 0..c {
            let mut sum = BitVec::zeros(r);
            for k in e.combination_of_pivots(j) {
                sum.xor_assign(&a.column(k));
            }
            prop_assert_eq!(sum, a.column(j));
        }
    }

    #[test]
    fn prescribed_rank_sampler_is_exact(s in any::<u64>(), r in 1usize..6, c in 1usize..6) {
        let mut rng = seeded(s);
        for target in 0..=r.min(c) {
            let a = random_with_rank(&mut rng, r, c, target);
            prop_assert_eq!(rank(&a), target);
        }
    }

    #[test]
    fn complete_basis_always_spans(s in any::<u64>(), n in 1usize..10, k in 0usize..6) {
        let mut rng = seeded(s);
        let k = k.min(n);
        // Start from the column space of a random full-column-rank matrix.
        let start_m = random_with_rank(&mut rng, n, k.max(1), k.max(1).min(n));
        let start: Vec<BitVec> = if k == 0 {
            vec![]
        } else {
            (0..rank(&start_m).min(k)).map(|j| start_m.column(j)).collect()
        };
        // Only proceed if start is independent (columns of a full-rank
        // matrix are, but guard for k > rank).
        let check = BitMatrix::from_rows(&start);
        prop_assume!(start.is_empty() || rank(&check) == start.len());
        let ext = complete_basis(&start, n);
        let mut all = start.clone();
        all.extend(ext);
        prop_assert_eq!(all.len(), n);
        prop_assert!(is_nonsingular(&BitMatrix::from_rows(&all)));
    }

    #[test]
    fn bitvec_slice_concat_identity(bits in proptest::collection::vec(any::<bool>(), 1..120), cut in 0usize..120) {
        let v = BitVec::from_bits(bits.iter().copied());
        let cut = cut.min(v.len());
        let lo = v.slice(0..cut);
        let hi = v.slice(cut..v.len());
        prop_assert_eq!(lo.concat(&hi), v);
    }

    #[test]
    fn bitvec_dot_symmetric(a in any::<u64>(), b in any::<u64>(), n in 1usize..64) {
        let mask = if n == 64 { !0 } else { (1u64 << n) - 1 };
        let x = BitVec::from_u64(n, a & mask);
        let y = BitVec::from_u64(n, b & mask);
        prop_assert_eq!(x.dot(&y), y.dot(&x));
        prop_assert_eq!(x.dot(&y), ((a & b & mask).count_ones() % 2) == 1);
    }
}
