//! The BMMC permutation type: `y = A x ⊕ c` over GF(2).

use crate::error::{BmmcError, Result};
use gf2::elim::{inverse, is_nonsingular};
use gf2::{BitMatrix, BitVec};

/// A bit-matrix-multiply/complement permutation on `2^n` records.
///
/// The permutation maps an `n`-bit source address `x` to the target
/// address `y = A x ⊕ c`, where the characteristic matrix `A` is
/// `n x n` and nonsingular over GF(2) and `c` is the complement
/// vector. (Paper, Section 1; Edelman–Heller–Johnsson call these
/// *affine transformations*.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bmmc {
    a: BitMatrix,
    c: BitVec,
}

impl Bmmc {
    /// Builds a BMMC permutation, validating that `A` is square,
    /// nonsingular, and dimensioned consistently with `c`.
    pub fn new(a: BitMatrix, c: BitVec) -> Result<Self> {
        if !a.is_square() {
            return Err(BmmcError::Dimension(format!(
                "characteristic matrix is {}x{}, not square",
                a.rows(),
                a.cols()
            )));
        }
        if c.len() != a.rows() {
            return Err(BmmcError::Dimension(format!(
                "complement vector has {} bits for a {}x{} matrix",
                c.len(),
                a.rows(),
                a.cols()
            )));
        }
        if !is_nonsingular(&a) {
            return Err(BmmcError::Singular);
        }
        Ok(Bmmc { a, c })
    }

    /// A BMMC permutation with zero complement vector (the paper's
    /// "linear" case).
    pub fn linear(a: BitMatrix) -> Result<Self> {
        let n = a.rows();
        Self::new(a, BitVec::zeros(n))
    }

    /// The identity permutation on `n`-bit addresses.
    pub fn identity(n: usize) -> Self {
        Bmmc {
            a: BitMatrix::identity(n),
            c: BitVec::zeros(n),
        }
    }

    /// Address width `n = lg N`.
    #[inline]
    pub fn bits(&self) -> usize {
        self.a.rows()
    }

    /// The characteristic matrix `A`.
    #[inline]
    pub fn matrix(&self) -> &BitMatrix {
        &self.a
    }

    /// The complement vector `c`.
    #[inline]
    pub fn complement(&self) -> &BitVec {
        &self.c
    }

    /// True if this is the identity permutation (`A = I`, `c = 0`),
    /// the one input excluded by the universal lower bound.
    pub fn is_identity(&self) -> bool {
        self.a.is_identity() && self.c.is_zero()
    }

    /// Applies the permutation to one address (as a bit vector).
    pub fn apply(&self, x: &BitVec) -> BitVec {
        let mut y = self.a.mul_vec(x);
        y.xor_assign(&self.c);
        y
    }

    /// Applies the permutation to one address (as an integer).
    ///
    /// # Panics
    /// Panics if `x` has bits at or above position `n`.
    pub fn target(&self, x: u64) -> u64 {
        self.apply(&BitVec::from_u64(self.bits(), x)).as_u64()
    }

    /// The composition `self ∘ other` (apply `other` first):
    /// by Lemma 1, `x ↦ A_self (A_other x ⊕ c_other) ⊕ c_self
    /// = (A_self A_other) x ⊕ (A_self c_other ⊕ c_self)`.
    pub fn compose(&self, other: &Bmmc) -> Bmmc {
        assert_eq!(self.bits(), other.bits(), "compose width mismatch");
        let a = self.a.mul(&other.a);
        let mut c = self.a.mul_vec(&other.c);
        c.xor_assign(&self.c);
        Bmmc { a, c }
    }

    /// The inverse permutation: `x = A⁻¹ y ⊕ A⁻¹ c`.
    pub fn inverse(&self) -> Bmmc {
        let ainv = inverse(&self.a).expect("matrix validated nonsingular at construction");
        let c = ainv.mul_vec(&self.c);
        Bmmc { a: ainv, c }
    }

    /// Enumerates the full target vector: element `x` is `target(x)`.
    /// Only sensible for small `n`; experiments use the fast
    /// [`crate::eval::AffineEvaluator`] instead.
    pub fn target_vector(&self) -> Vec<u64> {
        let n = self.bits();
        assert!(n <= 30, "target_vector would allocate 2^{n} entries");
        (0..(1u64 << n)).map(|x| self.target(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> BitMatrix {
        s.parse().unwrap()
    }

    #[test]
    fn rejects_singular() {
        let a = m("11; 11");
        assert_eq!(Bmmc::linear(a).unwrap_err(), BmmcError::Singular);
    }

    #[test]
    fn rejects_bad_dimensions() {
        let a = m("10; 01; 11");
        assert!(matches!(Bmmc::linear(a), Err(BmmcError::Dimension(_))));
        let a = BitMatrix::identity(3);
        assert!(matches!(
            Bmmc::new(a, BitVec::zeros(2)),
            Err(BmmcError::Dimension(_))
        ));
    }

    #[test]
    fn identity_fixes_everything() {
        let id = Bmmc::identity(5);
        assert!(id.is_identity());
        for x in 0..32 {
            assert_eq!(id.target(x), x);
        }
    }

    #[test]
    fn complement_only_is_xor() {
        let n = 4;
        let c = BitVec::from_u64(n, 0b1010);
        let p = Bmmc::new(BitMatrix::identity(n), c).unwrap();
        for x in 0..16u64 {
            assert_eq!(p.target(x), x ^ 0b1010);
        }
        assert!(!p.is_identity());
    }

    #[test]
    fn target_is_bijection() {
        let a = m("110; 011; 111");
        let p = Bmmc::new(a, BitVec::from_u64(3, 0b101)).unwrap();
        let mut seen = [false; 8];
        for x in 0..8u64 {
            let y = p.target(x) as usize;
            assert!(!seen[y], "collision at {y}");
            seen[y] = true;
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let p1 = Bmmc::new(m("110; 011; 111"), BitVec::from_u64(3, 0b001)).unwrap();
        let p2 = Bmmc::new(m("101; 010; 011"), BitVec::from_u64(3, 0b100)).unwrap();
        let comp = p2.compose(&p1);
        for x in 0..8u64 {
            assert_eq!(comp.target(x), p2.target(p1.target(x)));
        }
    }

    #[test]
    fn inverse_round_trip() {
        let p = Bmmc::new(m("110; 011; 111"), BitVec::from_u64(3, 0b011)).unwrap();
        let inv = p.inverse();
        for x in 0..8u64 {
            assert_eq!(inv.target(p.target(x)), x);
            assert_eq!(p.target(inv.target(x)), x);
        }
        assert!(p.compose(&inv).is_identity());
        assert!(inv.compose(&p).is_identity());
    }

    #[test]
    fn target_vector_enumerates() {
        let p = Bmmc::new(BitMatrix::identity(3), BitVec::from_u64(3, 0b111)).unwrap();
        assert_eq!(p.target_vector(), vec![7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn lemma1_composition_is_matrix_product() {
        // With zero complements, compose(Z, Y) has matrix Z·Y.
        let z = Bmmc::linear(m("110; 011; 111")).unwrap();
        let y = Bmmc::linear(m("101; 010; 011")).unwrap();
        let comp = z.compose(&y);
        assert_eq!(*comp.matrix(), z.matrix().mul(y.matrix()));
        assert!(comp.complement().is_zero());
    }
}
