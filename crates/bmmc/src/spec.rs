//! A plain-text interchange format for BMMC permutations.
//!
//! The format a storage system (or the CLI tool) can read and write:
//!
//! ```text
//! # any line starting with '#' is a comment
//! bmmc 4                 # header: address width n
//! 1000                   # n rows of the characteristic matrix A,
//! 0100                   # row i on line i, column j = j-th char
//! 0010
//! 0001
//! complement 1010        # optional complement vector c, bit 0 first
//! ```
//!
//! Row/column conventions match the paper (indexed from 0 from the
//! upper left); the complement line lists `c_0 c_1 … c_{n−1}`.

use crate::bmmc::Bmmc;
use crate::error::{BmmcError, Result};
use gf2::{BitMatrix, BitVec};

/// Serializes a permutation in the spec format.
pub fn to_spec(perm: &Bmmc) -> String {
    let n = perm.bits();
    let mut out = String::with_capacity((n + 2) * (n + 1));
    out.push_str(&format!("bmmc {n}\n"));
    for i in 0..n {
        for j in 0..n {
            out.push(if perm.matrix().get(i, j) { '1' } else { '0' });
        }
        out.push('\n');
    }
    if !perm.complement().is_zero() {
        out.push_str("complement ");
        for i in 0..n {
            out.push(if perm.complement().bit(i) { '1' } else { '0' });
        }
        out.push('\n');
    }
    out
}

/// Parses a permutation from the spec format.
///
/// Returns [`BmmcError::Dimension`] on malformed input and
/// [`BmmcError::Singular`] if the matrix is not invertible.
pub fn parse_spec(text: &str) -> Result<Bmmc> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines
        .next()
        .ok_or_else(|| BmmcError::Dimension("empty spec".to_string()))?;
    let n: usize = header
        .strip_prefix("bmmc")
        .map(str::trim)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            BmmcError::Dimension(format!("expected `bmmc <n>` header, got {header:?}"))
        })?;
    if n == 0 || n > 64 {
        return Err(BmmcError::Dimension(format!(
            "address width {n} out of range 1..=64"
        )));
    }
    let mut a = BitMatrix::zeros(n, n);
    for i in 0..n {
        let row = lines.next().ok_or_else(|| {
            BmmcError::Dimension(format!("matrix row {i} missing (expected {n} rows)"))
        })?;
        let bits: Vec<char> = row.chars().filter(|c| !c.is_whitespace()).collect();
        if bits.len() != n {
            return Err(BmmcError::Dimension(format!(
                "matrix row {i} has {} columns, expected {n}",
                bits.len()
            )));
        }
        for (j, ch) in bits.into_iter().enumerate() {
            match ch {
                '0' => {}
                '1' => a.set(i, j, true),
                other => {
                    return Err(BmmcError::Dimension(format!(
                        "invalid character {other:?} in matrix row {i}"
                    )))
                }
            }
        }
    }
    let mut c = BitVec::zeros(n);
    if let Some(line) = lines.next() {
        let body = line
            .strip_prefix("complement")
            .map(str::trim)
            .ok_or_else(|| BmmcError::Dimension(format!("unexpected trailing line {line:?}")))?;
        let bits: Vec<char> = body.chars().filter(|ch| !ch.is_whitespace()).collect();
        if bits.len() != n {
            return Err(BmmcError::Dimension(format!(
                "complement has {} bits, expected {n}",
                bits.len()
            )));
        }
        for (i, ch) in bits.into_iter().enumerate() {
            match ch {
                '0' => {}
                '1' => c.set(i, true),
                other => {
                    return Err(BmmcError::Dimension(format!(
                        "invalid character {other:?} in complement"
                    )))
                }
            }
        }
    }
    if let Some(extra) = lines.next() {
        return Err(BmmcError::Dimension(format!(
            "unexpected trailing line {extra:?}"
        )));
    }
    Bmmc::new(a, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_random() {
        let mut rng = StdRng::seed_from_u64(131);
        for n in [1usize, 4, 13, 24] {
            let p = catalog::random_bmmc(&mut rng, n);
            let text = to_spec(&p);
            let q = parse_spec(&text).unwrap();
            assert_eq!(p, q, "round trip failed for n={n}");
        }
    }

    #[test]
    fn round_trip_zero_complement_omits_line() {
        let p = catalog::gray_code(5);
        let text = to_spec(&p);
        assert!(!text.contains("complement"));
        assert_eq!(parse_spec(&text).unwrap(), p);
    }

    #[test]
    fn parses_paper_style_example() {
        let text = "
            # identity with full complement = vector reversal
            bmmc 3
            100
            010
            001
            complement 111
        ";
        let p = parse_spec(text).unwrap();
        assert_eq!(p, catalog::vector_reversal(3));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("bmmc x").is_err());
        assert!(parse_spec("bmmc 2\n10").is_err()); // missing row
        assert!(parse_spec("bmmc 2\n10\n012").is_err()); // bad char + width
        assert!(parse_spec("bmmc 2\n10\n01\ncomplement 1").is_err()); // short c
        assert!(parse_spec("bmmc 2\n10\n01\njunk").is_err());
        assert!(parse_spec("bmmc 2\n11\n11").is_err()); // singular
    }

    #[test]
    fn rejects_width_out_of_range() {
        assert!(parse_spec("bmmc 0").is_err());
        assert!(parse_spec("bmmc 65").is_err());
    }
}
