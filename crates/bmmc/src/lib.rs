//! BMMC permutations on parallel disk systems.
//!
//! A Rust reproduction of Cormen, Sundquist & Wisniewski,
//! *Asymptotically Tight Bounds for Performing BMMC Permutations on
//! Parallel Disk Systems* (SPAA '93 / Dartmouth PCS-TR94-223).
//!
//! A **BMMC permutation** maps each `n`-bit source address `x` to the
//! target address `y = A x ⊕ c` over GF(2), with `A` nonsingular. This
//! crate implements, on top of the [`pdm`] disk-model simulator:
//!
//! * the permutation algebra ([`Bmmc`]: compose, invert, apply);
//! * the subclass predicates BPC / MRC / MLD ([`classes`]), including
//!   the Section 6 kernel-condition test;
//! * the Section 5 **factoring engine** ([`factoring`]) producing a
//!   plan of one-pass permutations, `⌈rank γ̂/lg(M/B)⌉ + 1` of them;
//! * the **one-pass executors** ([`passes`]) for MRC (striped reads
//!   and writes) and MLD (striped reads, independent writes);
//! * the **asymptotically optimal algorithm**
//!   ([`algorithm::perform_bmmc`]), Theorem 21: at most
//!   `(2N/BD)(⌈rank γ/lg(M/B)⌉ + 2)` parallel I/Os;
//! * **run-time detection** ([`detect`]) of BMMC structure from a
//!   target-address vector in `N/BD + ⌈(lg(N/B)+1)/D⌉` parallel reads
//!   (Section 6);
//! * the **lower-bound machinery** ([`bounds`], [`potential`]):
//!   Theorem 3, the Section 7 sharpened constants, and the
//!   Aggarwal–Vitter potential function;
//! * a catalog of named permutations ([`catalog`]): transpose,
//!   bit-reversal, vector-reversal, hypercube, Gray code, reblocking;
//! * a multi-pass **BPC baseline** ([`bpc_baseline`]) realizing the
//!   pass structure of the earlier algorithm of Cormen \[4\], for the
//!   old-vs-new comparisons;
//! * the **unified plan IR** ([`plan`]): typed [`plan::Plan`] values
//!   every planner produces and every executor consumes, fused by
//!   whole-plan dynamic programming ([`plan::fuse_passes_dp`]) and
//!   costed both in exact parallel I/Os and seek-aware modeled
//!   wall-clock — the machinery behind the CLI's `--algorithm auto`.
//!
//! ```
//! use bmmc::{catalog, algorithm::perform_bmmc};
//! use pdm::{DiskSystem, Geometry};
//!
//! // N=1024 records, blocks of 4, 4 disks, memory for 64 records.
//! let geom = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
//! let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
//! sys.load_records(0, &(0..1024).collect::<Vec<_>>());
//!
//! let perm = bmmc::catalog::bit_reversal(geom.n());
//! let report = perform_bmmc(&mut sys, &perm).unwrap();
//! assert!(report.num_passes() <= 3);
//! let out = sys.dump_records(report.final_portion);
//! assert_eq!(out[perm.target(7) as usize], 7);
//! # let _ = catalog::gray_code(10);
//! ```

#![deny(missing_docs)]

pub mod algorithm;
#[allow(clippy::module_inception)]
pub mod bmmc;
pub mod bounds;
pub mod bpc_baseline;
pub mod catalog;
pub mod classes;
pub mod detect;
pub mod error;
pub mod eval;
pub mod extensions;
pub mod factoring;
pub mod factors;
pub mod fusion;
pub mod passes;
pub mod plan;
pub mod potential;
pub mod spec;
pub mod verify;

pub use crate::bmmc::Bmmc;
pub use algorithm::{
    execute_fused_plan, execute_fused_plan_strategy, execute_passes, execute_passes_strategy,
    execute_passes_unfused, execute_plan_ir, perform_bmmc, plan_passes, BmmcReport, StepStats,
};
pub use classes::{classify, is_bmmc, is_bpc, is_mld, is_mld_inverse, is_mrc, ClassFlags};
pub use detect::{detect_bmmc, Detection};
pub use error::{BmmcError, Result};
pub use eval::{AffineEvaluator, BlockEvaluator, PassEval, TargetRun};
pub use extensions::perform_mld_pair;
pub use factoring::{factor, factor_chunked, Factorization, Pass, PassKind};
pub use fusion::{fuse_passes, fuse_passes_greedy, FusedPass, FusedPlan};
pub use passes::EvalStrategy;
pub use plan::{candidates, choose, fuse_passes_dp, CandidateKind, Plan, PlanStep};
