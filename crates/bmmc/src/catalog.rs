//! A catalog of named BMMC permutations and random samplers for each
//! subclass.
//!
//! The BPC examples are the ones the paper lists (Section 1): matrix
//! transposition, bit-reversal (FFT), vector-reversal, hypercube
//! permutations, and matrix reblocking. The Gray-code permutations are
//! the paper's examples of MRC permutations characterized by unit
//! upper-triangular matrices.

use crate::bmmc::Bmmc;
use crate::classes;
use gf2::elim::{inverse, is_nonsingular};
use gf2::perm::permutation_matrix;
use gf2::sample::{random_matrix, random_nonsingular, random_permutation, random_with_rank};
use gf2::{BitMatrix, BitVec};
use rand::Rng;

/// Transposition of an `R x S` matrix stored in row-major order,
/// `N = R·S`, `R = 2^lg_r`. Source address `x = col + S·row` maps to
/// `y = row + R·col`: a rotation of the address bits left by `lg_r`
/// positions — a BPC permutation.
pub fn transpose(n: usize, lg_r: usize) -> Bmmc {
    assert!(lg_r <= n, "lg R = {lg_r} exceeds n = {n}");
    rotation(n, lg_r)
}

/// Rotation of the address bits: bit `j` of the source moves to bit
/// `(j + k) mod n` of the target.
pub fn rotation(n: usize, k: usize) -> Bmmc {
    let pi: Vec<usize> = (0..n).map(|j| (j + k) % n).collect();
    Bmmc::linear(permutation_matrix(&pi)).expect("permutation matrices are nonsingular")
}

/// Bit-reversal permutation (FFT reordering): bit `j` moves to bit
/// `n−1−j`.
pub fn bit_reversal(n: usize) -> Bmmc {
    let pi: Vec<usize> = (0..n).map(|j| n - 1 - j).collect();
    Bmmc::linear(permutation_matrix(&pi)).expect("permutation matrices are nonsingular")
}

/// Vector reversal: `y = x ⊕ (2^n − 1)`, i.e. identity matrix with an
/// all-ones complement vector.
pub fn vector_reversal(n: usize) -> Bmmc {
    Bmmc::new(BitMatrix::identity(n), BitVec::ones(n)).expect("identity is nonsingular")
}

/// Hypercube permutation: exchange across the dimensions set in
/// `mask` — `y = x ⊕ mask`.
pub fn hypercube(n: usize, mask: u64) -> Bmmc {
    Bmmc::new(BitMatrix::identity(n), BitVec::from_u64(n, mask)).expect("identity is nonsingular")
}

/// The standard binary-reflected Gray code `g(x) = x ⊕ (x >> 1)`:
/// `y_i = x_i ⊕ x_{i+1}`, a unit upper-triangular (hence MRC)
/// characteristic matrix.
pub fn gray_code(n: usize) -> Bmmc {
    let a = BitMatrix::from_fn(n, n, |i, j| j == i || j == i + 1);
    Bmmc::linear(a).expect("unit upper-triangular is nonsingular")
}

/// The inverse Gray code: `y_i = x_i ⊕ x_{i+1} ⊕ … ⊕ x_{n−1}`, the
/// full unit upper-triangular matrix of ones.
pub fn gray_code_inverse(n: usize) -> Bmmc {
    let a = BitMatrix::from_fn(n, n, |i, j| j >= i);
    Bmmc::linear(a).expect("unit upper-triangular is nonsingular")
}

/// Matrix reblocking: swap the field of bits `[0, k)` with the field
/// `[k, 2k)` (e.g. switching between row-major tiles of two sizes) — a
/// BPC permutation.
pub fn swap_fields(n: usize, k: usize) -> Bmmc {
    assert!(2 * k <= n, "fields of width {k} do not fit in {n} bits");
    let pi: Vec<usize> = (0..n)
        .map(|j| {
            if j < k {
                j + k
            } else if j < 2 * k {
                j - k
            } else {
                j
            }
        })
        .collect();
    Bmmc::linear(permutation_matrix(&pi)).expect("permutation matrices are nonsingular")
}

/// The perfect shuffle: rotate the address bits up by one (the card
/// shuffle `x ↦ 2x mod (N−1)` on indices; Johnsson–Ho's generalized
/// shuffle with k = 1) — a BPC permutation.
pub fn perfect_shuffle(n: usize) -> Bmmc {
    rotation(n, 1)
}

/// The inverse perfect shuffle (rotate down by one).
pub fn perfect_unshuffle(n: usize) -> Bmmc {
    rotation(n, n - 1)
}

/// The butterfly exchange of FFT stage `k`: swap bit `k` with bit 0 —
/// the data exchange of a decimation-in-time butterfly acting on
/// block-distributed data.
pub fn butterfly(n: usize, k: usize) -> Bmmc {
    assert!(k < n, "stage {k} out of range for n = {n}");
    let mut pi: Vec<usize> = (0..n).collect();
    pi.swap(0, k);
    Bmmc::linear(permutation_matrix(&pi)).expect("permutation matrices are nonsingular")
}

/// Morton (Z-order) interleave for a square 2^k x 2^k grid, `n = 2k`:
/// row bits and column bits interleave, `(r, c) ↦ … c₁ r₁ c₀ r₀`.
/// Source address = `c + 2^k · r`.
pub fn morton(n: usize) -> Bmmc {
    assert!(
        n.is_multiple_of(2),
        "Morton order needs an even address width, got {n}"
    );
    let k = n / 2;
    // Source bit j < k is column bit c_j → target position 2j+1;
    // source bit k+i is row bit r_i → target position 2i.
    let pi: Vec<usize> = (0..n)
        .map(|j| if j < k { 2 * j + 1 } else { 2 * (j - k) })
        .collect();
    Bmmc::linear(permutation_matrix(&pi)).expect("permutation matrices are nonsingular")
}

/// A uniformly random BMMC permutation (random nonsingular matrix and
/// random complement vector).
pub fn random_bmmc<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Bmmc {
    let a = random_nonsingular(rng, n);
    let c = BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()));
    Bmmc::new(a, c).expect("sampled nonsingular")
}

/// A random BPC permutation (random permutation matrix, random
/// complement).
pub fn random_bpc<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Bmmc {
    let a = permutation_matrix(&random_permutation(rng, n));
    let c = BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()));
    Bmmc::new(a, c).expect("permutation matrices are nonsingular")
}

/// A random MRC permutation at memory boundary `m`: nonsingular
/// leading and trailing blocks, arbitrary upper-right, zero
/// lower-left.
pub fn random_mrc<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> Bmmc {
    assert!(m <= n);
    let mut a = BitMatrix::zeros(n, n);
    a.set_block(0, 0, &random_nonsingular(rng, m));
    a.set_block(m, m, &random_nonsingular(rng, n - m));
    a.set_block(0, m, &random_matrix(rng, m, n - m));
    let c = BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()));
    debug_assert!(classes::is_mrc(&a, m));
    Bmmc::new(a, c).expect("block-triangular with nonsingular blocks")
}

/// A random MLD permutation at boundaries `(b, m)`.
///
/// Construction (using `ker α ⊆ ker δ ⟺ row δ ⊆ row α`, Lemma 11 and
/// its converse over GF(2)):
/// 1. Draw `α` of full row rank `m−b` (Lemma 12 forces this).
/// 2. Set `δ = X·α` for random `X`, so `row δ ⊆ row α`.
/// 3. Complete the top `b` rows of the leading `m` columns so the
///    leading `m x m` block `Λ` is nonsingular.
/// 4. Draw the upper-right block `Bʹ` freely and set the lower-right
///    block `Δ = δ·Λ⁻¹·Bʹ ⊕ (random nonsingular)`, which makes the
///    Schur complement — hence `A` — nonsingular.
pub fn random_mld<R: Rng + ?Sized>(rng: &mut R, n: usize, b: usize, m: usize) -> Bmmc {
    assert!(b <= m && m < n, "need b ≤ m < n");
    // Step 1: full-row-rank α ((m−b) x m).
    let alpha = random_with_rank(rng, m - b, m, m - b);
    // Step 3: top rows completing α to a nonsingular leading block.
    let lambda = loop {
        let mut l = BitMatrix::zeros(m, m);
        l.set_block(0, 0, &random_matrix(rng, b, m));
        l.set_block(b, 0, &alpha);
        if is_nonsingular(&l) {
            break l;
        }
    };
    // Step 2: δ = X·α.
    let x = random_matrix(rng, n - m, m - b);
    let delta = x.mul(&alpha);
    // Step 4: right section.
    let bprime = random_matrix(rng, m, n - m);
    let lambda_inv = inverse(&lambda).expect("constructed nonsingular");
    let schur = random_nonsingular(rng, n - m);
    let mut big_delta = delta.mul(&lambda_inv).mul(&bprime);
    // big_delta ⊕ schur over GF(2), entrywise.
    for i in 0..n - m {
        for j in 0..n - m {
            if schur.get(i, j) {
                let v = big_delta.get(i, j);
                big_delta.set(i, j, !v);
            }
        }
    }
    let mut a = BitMatrix::zeros(n, n);
    a.set_block(0, 0, &lambda);
    a.set_block(0, m, &bprime);
    a.set_block(m, 0, &delta);
    a.set_block(m, m, &big_delta);
    let c = BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()));
    debug_assert!(classes::is_mld(&a, b, m), "sampler produced non-MLD matrix");
    Bmmc::new(a, c).expect("Schur-complement construction is nonsingular")
}

/// An adversarial BMMC draw for the planner benches: the cross block
/// `A[split.., 0..split]` has the maximum possible rank
/// `min(split, n − split)`. At `split = b` this maximises the
/// Aggarwal–Vitter potential drop Theorem 3 charges for (the hardest
/// permutations the lower bound knows); at `split = m` it maximises
/// `rank γ̂`, hence the factoring pass count `⌈rank γ̂ / lg(M/B)⌉ + 1`
/// — the workloads where route choice is least forgiving.
pub fn random_worst_rank<R: Rng + ?Sized>(rng: &mut R, n: usize, split: usize) -> Bmmc {
    assert!(split <= n, "split {split} out of range for n = {n}");
    let r = split.min(n - split);
    let a = gf2::sample::random_with_submatrix_rank(rng, n, split, r);
    let c = BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()));
    Bmmc::new(a, c).expect("sampled nonsingular")
}

/// The committed `MLD;MRC;MLD` re-association chain, re-exported here
/// so workload catalogs (benches, `tests/planner.rs`) can name it
/// beside the samplers. See [`crate::plan::reassociation_case`].
pub fn reassociation_chain(n: usize, b: usize, m: usize) -> Vec<crate::factoring::Pass> {
    crate::plan::reassociation_case(n, b, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{is_bpc, is_mld, is_mrc};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transpose_is_rotation() {
        // 8x4 matrix (n=5, lg_r=3): x = col + 4*row ↦ y = row + 8*col.
        let t = transpose(5, 3);
        assert!(is_bpc(t.matrix()));
        for row in 0..8u64 {
            for col in 0..4u64 {
                let x = col + 4 * row;
                let y = row + 8 * col;
                assert_eq!(t.target(x), y, "row={row}, col={col}");
            }
        }
    }

    #[test]
    fn bit_reversal_reverses() {
        let p = bit_reversal(4);
        assert_eq!(p.target(0b0001), 0b1000);
        assert_eq!(p.target(0b0110), 0b0110);
        assert_eq!(p.target(0b1011), 0b1101);
        assert!(is_bpc(p.matrix()));
    }

    #[test]
    fn vector_reversal_reverses_order() {
        let p = vector_reversal(4);
        for x in 0..16u64 {
            assert_eq!(p.target(x), 15 - x);
        }
    }

    #[test]
    fn hypercube_is_xor() {
        let p = hypercube(5, 0b10010);
        for x in 0..32u64 {
            assert_eq!(p.target(x), x ^ 0b10010);
        }
    }

    #[test]
    fn gray_code_matches_formula() {
        let g = gray_code(6);
        for x in 0..64u64 {
            assert_eq!(g.target(x), x ^ (x >> 1));
        }
    }

    #[test]
    fn gray_code_inverse_is_inverse() {
        let g = gray_code(6);
        let gi = gray_code_inverse(6);
        for x in 0..64u64 {
            assert_eq!(gi.target(g.target(x)), x);
        }
        assert!(g.compose(&gi).is_identity());
    }

    #[test]
    fn gray_codes_are_mrc_for_any_m() {
        // Unit upper-triangular matrices are MRC for every memory
        // boundary (paper, Section 1 MRC discussion).
        let g = gray_code(8);
        let gi = gray_code_inverse(8);
        for m in 1..8 {
            assert!(is_mrc(g.matrix(), m), "gray code not MRC at m={m}");
            assert!(is_mrc(gi.matrix(), m), "inverse gray code not MRC at m={m}");
        }
    }

    #[test]
    fn swap_fields_swaps() {
        let p = swap_fields(6, 2);
        // low 2 bits and next 2 bits exchange.
        assert_eq!(p.target(0b00_01_10), 0b00_10_01);
        assert_eq!(p.target(0b11_00_11), 0b11_11_00);
    }

    #[test]
    fn perfect_shuffle_doubles_index() {
        let n = 6;
        let p = perfect_shuffle(n);
        for x in 0..(1u64 << n) {
            // x ↦ 2x mod (2^n − 1) for x < 2^n − 1 (the classic riffle).
            let expect = if x == (1 << n) - 1 {
                x
            } else {
                (2 * x) % ((1 << n) - 1)
            };
            assert_eq!(p.target(x), expect, "x = {x}");
        }
        assert!(perfect_shuffle(n)
            .compose(&perfect_unshuffle(n))
            .is_identity());
    }

    #[test]
    fn butterfly_swaps_stage_bit() {
        let p = butterfly(8, 5);
        assert_eq!(p.target(0b0000_0001), 0b0010_0000);
        assert_eq!(p.target(0b0010_0000), 0b0000_0001);
        assert_eq!(p.target(0b0100_0010), 0b0100_0010);
        assert!(p.compose(&p).is_identity(), "butterflies are involutions");
    }

    #[test]
    fn morton_interleaves_row_and_column_bits() {
        // 4x4 grid (k=2, n=4): (r, c) = (0b10, 0b01) → z = 0b0110.
        let p = morton(4);
        let addr = 0b01 + (0b10 << 2); // c=1, r=2
        assert_eq!(p.target(addr), 0b0110);
        // The Z-curve visits (0,0),(1,0),(0,1),(1,1),... in (r,c) pairs.
        assert_eq!(p.target(0b0000), 0);
        assert_eq!(p.target(0b0100), 1); // r=1,c=0
        assert_eq!(p.target(0b0001), 2); // r=0,c=1
        assert_eq!(p.target(0b0101), 3);
    }

    #[test]
    fn random_samplers_hit_their_classes() {
        let mut rng = StdRng::seed_from_u64(33);
        let (n, b, m) = (10, 2, 6);
        for _ in 0..20 {
            let p = random_bpc(&mut rng, n);
            assert!(is_bpc(p.matrix()));
            let p = random_mrc(&mut rng, n, m);
            assert!(is_mrc(p.matrix(), m));
            let p = random_mld(&mut rng, n, b, m);
            assert!(is_mld(p.matrix(), b, m));
            let p = random_bmmc(&mut rng, n);
            assert!(classes::is_bmmc(p.matrix()));
        }
    }

    #[test]
    fn random_mld_not_always_mrc() {
        // MLD is a strictly larger class; over a few samples we should
        // see at least one non-MRC member.
        let mut rng = StdRng::seed_from_u64(34);
        let (n, b, m) = (10, 2, 6);
        let any_non_mrc = (0..30)
            .map(|_| random_mld(&mut rng, n, b, m))
            .any(|p| !is_mrc(p.matrix(), m));
        assert!(any_non_mrc, "all sampled MLD matrices were MRC");
    }

    #[test]
    fn worst_rank_sampler_saturates_the_cross_rank() {
        let mut rng = StdRng::seed_from_u64(31);
        for (n, split) in [(10usize, 2usize), (10, 6), (13, 4), (16, 8)] {
            let p = random_worst_rank(&mut rng, n, split);
            assert_eq!(
                gf2::elim::rank(&p.matrix().submatrix(split..n, 0..split)),
                split.min(n - split),
                "n={n} split={split}"
            );
        }
    }

    #[test]
    fn reassociation_chain_kinds_and_recomposition() {
        let (n, b, m) = (10, 2, 6);
        let passes = reassociation_chain(n, b, m);
        assert_eq!(passes.len(), 3);
        let mut composed = Bmmc::identity(n);
        for p in &passes {
            composed = p.as_bmmc().compose(&composed);
        }
        assert!(classes::is_mld_inverse(composed.matrix(), b, m));
    }

    #[test]
    fn permuted_gray_code_is_bmmc_not_mrc() {
        // Section 6's motivating example: Π·G with Π a bit permutation
        // is BMMC but not necessarily MRC.
        let g = gray_code(6);
        let pi = rotation(6, 3);
        let pg = pi.compose(&g);
        assert!(classes::is_bmmc(pg.matrix()));
        assert!(!is_mrc(pg.matrix(), 3));
    }
}
