//! Counted post-hoc verification: check that a disk portion holds the
//! image of a permutation, charging the parallel reads it costs.
//!
//! After a production run one often wants positive confirmation that
//! every record landed where the permutation says. For records that
//! carry their source address, a full check is a single scan — `N/BD`
//! striped parallel reads, the same cost as the verification phase of
//! Section 6 detection. The keys found on disk are data-dependent (no
//! block structure to hoist), so the in-memory check runs through
//! [`AffineEvaluator::eval_batch`]: one table-at-a-time sweep per
//! stripe instead of a full evaluator walk per record.

use crate::bmmc::Bmmc;
use crate::error::{BmmcError, Result};
use crate::eval::AffineEvaluator;
use pdm::{DiskSystem, Record};

/// Outcome of a verification scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Every record sits at its target address.
    Correct {
        /// Parallel reads spent (= `N/BD` for a full scan).
        reads: u64,
    },
    /// The record at this address does not belong there.
    Misplaced {
        /// The address holding the wrong record.
        address: u64,
        /// The source key found there.
        found_key: u64,
        /// Parallel reads spent before stopping.
        reads: u64,
    },
}

/// Scans `portion` and checks that the record with source key `k`
/// (extracted by `key_of`) sits at `perm.target(k)` for every record.
/// Stops at the first misplacement.
pub fn verify_permutation<R: Record>(
    sys: &mut DiskSystem<R>,
    portion: usize,
    perm: &Bmmc,
    key_of: impl Fn(&R) -> u64,
) -> Result<VerifyOutcome> {
    let geom = sys.geometry();
    if perm.bits() != geom.n() {
        return Err(BmmcError::GeometryMismatch {
            perm_bits: perm.bits(),
            system_bits: geom.n(),
        });
    }
    let ev = AffineEvaluator::new(perm);
    let base = sys.portion_base(portion);
    let stripe_len = geom.block() * geom.disks();
    let mut keys = vec![0u64; stripe_len];
    let mut targets = vec![0u64; stripe_len];
    let before = sys.stats();
    for slot in 0..geom.stripes() {
        let stripe = sys.read_stripe(base + slot)?;
        let start = (slot * stripe_len) as u64;
        for (k, rec) in keys.iter_mut().zip(&stripe) {
            *k = key_of(rec);
        }
        ev.eval_batch(&keys, &mut targets);
        for (i, (&key, &target)) in keys.iter().zip(&targets).enumerate() {
            let address = start + i as u64;
            if target != address {
                return Ok(VerifyOutcome::Misplaced {
                    address,
                    found_key: key,
                    reads: sys.stats().since(&before).parallel_reads,
                });
            }
        }
    }
    Ok(VerifyOutcome::Correct {
        reads: sys.stats().since(&before).parallel_reads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::perform_bmmc;
    use crate::catalog;
    use pdm::{Geometry, TaggedRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    #[test]
    fn confirms_correct_run() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(141);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
        sys.load_records(
            0,
            &(0..g.records() as u64)
                .map(TaggedRecord::new)
                .collect::<Vec<_>>(),
        );
        let report = perform_bmmc(&mut sys, &perm).unwrap();
        let out = verify_permutation(&mut sys, report.final_portion, &perm, |r| r.key).unwrap();
        assert_eq!(
            out,
            VerifyOutcome::Correct {
                reads: g.stripes() as u64
            }
        );
    }

    #[test]
    fn catches_misplacement() {
        let g = geom();
        let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 1);
        let mut records: Vec<TaggedRecord> =
            (0..g.records() as u64).map(TaggedRecord::new).collect();
        records.swap(3, 200);
        sys.load_records(0, &records);
        let id = Bmmc::identity(g.n());
        match verify_permutation(&mut sys, 0, &id, |r| r.key).unwrap() {
            VerifyOutcome::Misplaced {
                address, found_key, ..
            } => {
                assert_eq!(address, 3);
                assert_eq!(found_key, 200);
            }
            VerifyOutcome::Correct { .. } => panic!("swap not detected"),
        }
    }

    #[test]
    fn early_exit_costs_less() {
        let g = geom();
        let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 1);
        let mut records: Vec<TaggedRecord> =
            (0..g.records() as u64).map(TaggedRecord::new).collect();
        records.swap(0, 1); // corrupt in the very first stripe
        sys.load_records(0, &records);
        let id = Bmmc::identity(g.n());
        match verify_permutation(&mut sys, 0, &id, |r| r.key).unwrap() {
            VerifyOutcome::Misplaced { reads, .. } => assert_eq!(reads, 1),
            VerifyOutcome::Correct { .. } => panic!("swap not detected"),
        }
    }
}
