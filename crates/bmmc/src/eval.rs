//! Fast evaluation of `y = A x ⊕ c` for `n ≤ 64`.
//!
//! The executors apply the affine map to up to `2^n` addresses per
//! pass, so this module is the hot kernel of the whole simulator. It
//! offers two precomputed forms:
//!
//! * [`AffineEvaluator`] — generic byte slicing: for each byte
//!   position of the input, a 256-entry table of the XOR of the matrix
//!   columns selected by that byte. Evaluating an address is `⌈n/8⌉`
//!   table lookups and XORs — no per-bit branching.
//!   [`AffineEvaluator::eval_batch`] amortises the table walk over a
//!   whole slice of addresses, one table at a time, for full-scan
//!   consumers ([`crate::verify`]) whose inputs are data-dependent.
//!
//! * [`BlockEvaluator`] — block hoisting. In the parallel disk model
//!   (paper Section 2) the low `b = lg B` address bits only select a
//!   record *within* its block, so writing `x = blk·2^b ⊕ off` splits
//!   the affine map as
//!
//!   ```text
//!   A x ⊕ c = (A·(blk << b) ⊕ c) ⊕ A·off = block_base(blk) ⊕ residual(off)
//!   ```
//!
//!   `block_base` touches only the high `n − b` matrix columns and is
//!   evaluated **once per source block**; `residual` touches only the
//!   low `b` columns and is precomputed **once per matrix** as a
//!   `2^min(b, 16)`-entry table ([`RESIDUAL_TABLE_MAX_BITS`]). Kernel
//!   work per pass drops from `O(N)` full evaluations to `O(N/B)`
//!   high-bit evaluations plus one XOR and one table load per record.
//!
//!   Because XOR acts bitwise, the *block* part of the target obeys
//!   the same split: `block(y) = (block_base(blk) ⊕ residual(off)) >> b`,
//!   so each source block fans out to exactly
//!   [`BlockEvaluator::fanout`] distinct target blocks — one per
//!   distinct block-level residual — each receiving `B / fanout` of
//!   its records. This is the block-level structure behind the
//!   one-pass classes of paper Sections 3–4 (MRC keeps
//!   `block_base >> m` constant per memoryload; MLD's independent
//!   writes spread the fanned-out blocks one per disk). When the
//!   fanout is 1 the permutation is block-preserving and
//!   [`BlockEvaluator::target_runs`] coalesces consecutive source
//!   blocks whose targets are also consecutive into whole-block
//!   **target runs** — the span shape `pdm`'s run-length
//!   gather/scatter batches carry without allocating.
//!
//! [`PassEval`] bundles both forms for one permutation; the pass
//! planners ([`crate::passes`], [`crate::fusion`]) take the bundle and
//! pick the block-hoisted path whenever the residual table exists.

use crate::bmmc::Bmmc;

/// Residual tables are enumerated exhaustively over the `2^b` block
/// offsets, so cap the width at which [`BlockEvaluator`] materialises
/// them. Tuned by the bench `addr_eval` cap sweep
/// ([`BlockEvaluator::with_table_cap`]): the flat table wins at every
/// width it is allowed to exist at — at `b = 16` it is 512 KiB
/// (cache-resident, one load per record versus two byte-sliced
/// lookups) and its `2^b` setup scan is amortised by the `N ≫ 2^b`
/// records of any realistic pass. `b ≤ 16` covers every realistic
/// block size (64 KiB blocks of 1-byte records); beyond it setup cost
/// and cache footprint grow 2× per bit while the per-record win
/// stays flat, so wider evaluators fall back to byte-sliced
/// residuals and per-address planning.
pub const RESIDUAL_TABLE_MAX_BITS: u32 = 16;

/// Ceiling on [`BlockEvaluator::with_table_cap`]'s sweep knob: a flat
/// table above `2^24` entries (128 MiB) would dwarf any plausible win,
/// so caps beyond this are clamped rather than allocated.
const RESIDUAL_TABLE_HARD_CAP: u32 = 24;

/// Precomputed byte-sliced evaluator for a BMMC permutation.
#[derive(Clone)]
pub struct AffineEvaluator {
    n: u32,
    c: u64,
    /// `tables[k][byte]` = XOR of columns `8k .. 8k+8` of `A` selected
    /// by the bits of `byte`, each column packed as a `u64` target mask.
    tables: Vec<[u64; 256]>,
}

/// Packs each matrix column `j` of `perm` as a `u64`: bit `i` = `A[i][j]`.
fn packed_columns(perm: &Bmmc) -> Vec<u64> {
    let n = perm.bits();
    let mut cols = vec![0u64; n];
    for (j, col) in cols.iter_mut().enumerate() {
        let column = perm.matrix().column(j);
        for i in column.iter_ones() {
            *col |= 1 << i;
        }
    }
    cols
}

/// Builds byte-sliced lookup tables over `cols[lo..hi]`: `k`-th table
/// maps a byte of the (shifted) input to the XOR of the columns
/// `lo + 8k ..` selected by its bits.
fn byte_tables(cols: &[u64], lo: usize, hi: usize) -> Vec<[u64; 256]> {
    let width_total = hi - lo;
    let num_tables = width_total.div_ceil(8);
    let mut tables = vec![[0u64; 256]; num_tables];
    for (k, table) in tables.iter_mut().enumerate() {
        let base = lo + k * 8;
        let width = 8.min(hi - base);
        for byte in 0usize..256 {
            if byte >> width != 0 {
                continue; // bits beyond the width never occur in valid input
            }
            let mut acc = 0u64;
            for bit in 0..width {
                if byte >> bit & 1 == 1 {
                    acc ^= cols[base + bit];
                }
            }
            table[byte] = acc;
        }
    }
    tables
}

impl AffineEvaluator {
    /// Builds the evaluator. The permutation must act on at most 64
    /// address bits (always true in the disk model, where `n = lg N`).
    pub fn new(perm: &Bmmc) -> Self {
        let n = perm.bits();
        assert!(n <= 64, "AffineEvaluator supports n ≤ 64, got {n}");
        let cols = packed_columns(perm);
        AffineEvaluator {
            n: n as u32,
            c: perm.complement().as_u64(),
            tables: byte_tables(&cols, 0, n),
        }
    }

    /// Address width `n`.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.n
    }

    /// Computes `A x ⊕ c`.
    ///
    /// Debug-asserts that `x < 2^n`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        debug_assert!(self.n == 64 || x < (1u64 << self.n), "address out of range");
        let mut acc = self.c;
        for (k, table) in self.tables.iter().enumerate() {
            acc ^= table[(x >> (8 * k)) as usize & 0xff];
        }
        acc
    }

    /// Computes `A x ⊕ c` for every `x` in `xs`, writing the targets
    /// into `out` (same length).
    ///
    /// Walks one byte table at a time across the whole slice instead
    /// of all tables per address, so each 2 KiB table stays hot in L1
    /// for the length of the batch — the entry point for full-scan
    /// checks over data-dependent inputs where block hoisting does not
    /// apply.
    pub fn eval_batch(&self, xs: &[u64], out: &mut [u64]) {
        assert_eq!(xs.len(), out.len(), "eval_batch length mismatch");
        out.fill(self.c);
        for (k, table) in self.tables.iter().enumerate() {
            let shift = 8 * k as u32;
            for (y, &x) in out.iter_mut().zip(xs.iter()) {
                debug_assert!(self.n == 64 || x < (1u64 << self.n), "address out of range");
                *y ^= table[(x >> shift) as usize & 0xff];
            }
        }
    }
}

/// A maximal span of consecutive source blocks whose whole-block
/// targets are also consecutive, emitted by
/// [`BlockEvaluator::target_runs`] for block-preserving permutations.
///
/// Every record of source block `src_block + k` (for `k < len`) lands
/// in target block `target_block + k`; within each block the records
/// are rearranged by the shared intra-block permutation
/// `off ↦ residual(off)` (low `b` bits — see
/// [`BlockEvaluator::residual`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetRun {
    /// First source block of the run.
    pub src_block: u64,
    /// Target block of `src_block`; block `src_block + k` lands in
    /// `target_block + k`.
    pub target_block: u64,
    /// Number of consecutive blocks in the run.
    pub len: u64,
}

/// Block-hoisted evaluator: per-source-block high-bit bases plus a
/// per-matrix residual table for the low `b` offset bits.
///
/// See the [module docs](self) for the hoisting identity. All methods
/// are exact for any nonsingular `A`; the planners additionally use
/// [`Self::block_residuals`] (present when `b ≤`
/// [`RESIDUAL_TABLE_MAX_BITS`]) to enumerate each block's fanned-out
/// target blocks without touching its `B` addresses.
#[derive(Clone)]
pub struct BlockEvaluator {
    n: u32,
    b: u32,
    c: u64,
    /// Byte-sliced tables over the high columns `b..n`, indexed by the
    /// bytes of the *block number* `blk = x >> b`.
    hi_tables: Vec<[u64; 256]>,
    /// Byte-sliced tables over the low columns `0..b`, indexed by the
    /// bytes of the offset — the fallback when `b` is too wide for the
    /// flat table.
    lo_tables: Vec<[u64; 256]>,
    /// Flat `residual(off)` table for all `2^b` offsets, when
    /// `b ≤ RESIDUAL_TABLE_MAX_BITS`.
    residual_table: Option<Vec<u64>>,
    /// The distinct block-level residuals `residual(off) >> b`, in
    /// first-occurrence order over ascending offset. Each source block
    /// `blk` fans out to exactly the target blocks
    /// `(block_base(blk) >> b) ⊕ r` for `r` in this list, and the
    /// order matches the order a per-address ascending scan would
    /// first touch them in — the pass planners rely on that to keep
    /// batch discovery order byte-identical.
    block_residuals: Option<Vec<u64>>,
}

impl BlockEvaluator {
    /// Builds the evaluator for a permutation on `n`-bit addresses
    /// whose low `block_bits = lg B` bits are intra-block offsets.
    pub fn new(perm: &Bmmc, block_bits: u32) -> Self {
        Self::with_table_cap(perm, block_bits, RESIDUAL_TABLE_MAX_BITS)
    }

    /// Like [`Self::new`] but with an explicit residual-table width
    /// cap — the knob behind [`RESIDUAL_TABLE_MAX_BITS`], exposed so
    /// the bench `addr_eval` kernel rows can sweep it. When
    /// `block_bits > cap` the flat table and the block-residual
    /// enumeration are skipped: [`Self::residual`] falls back to
    /// byte-sliced lookups and the planners to per-address scans.
    /// Placement is identical either way; only the constant factor
    /// moves.
    pub fn with_table_cap(perm: &Bmmc, block_bits: u32, cap: u32) -> Self {
        let n = perm.bits();
        assert!(n <= 64, "BlockEvaluator supports n ≤ 64, got {n}");
        assert!(
            block_bits as usize <= n,
            "block bits {block_bits} exceed address width {n}"
        );
        let b = block_bits as usize;
        let cols = packed_columns(perm);
        let hi_tables = byte_tables(&cols, b, n);
        let lo_tables = byte_tables(&cols, 0, b);
        let (residual_table, block_residuals) = if block_bits <= cap.min(RESIDUAL_TABLE_HARD_CAP) {
            let mut table = vec![0u64; 1usize << b];
            let mut residuals = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (off, slot) in table.iter_mut().enumerate() {
                let mut acc = 0u64;
                for (k, t) in lo_tables.iter().enumerate() {
                    acc ^= t[(off >> (8 * k)) & 0xff];
                }
                *slot = acc;
                if seen.insert(acc >> b) {
                    residuals.push(acc >> b);
                }
            }
            (Some(table), Some(residuals))
        } else {
            (None, None)
        };
        BlockEvaluator {
            n: n as u32,
            b: block_bits,
            c: perm.complement().as_u64(),
            hi_tables,
            lo_tables,
            residual_table,
            block_residuals,
        }
    }

    /// Address width `n`.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.n
    }

    /// Intra-block offset width `b = lg B`.
    #[inline]
    pub fn block_bits(&self) -> u32 {
        self.b
    }

    /// Evaluates the invariant high bits once for a whole source
    /// block: `A·(blk << b) ⊕ c`. The full target of address
    /// `blk·2^b ⊕ off` is `block_base(blk) ⊕ residual(off)`; in
    /// particular `block_base(blk)` *is* the target of the block's
    /// offset-0 record.
    #[inline]
    pub fn block_base(&self, blk: u64) -> u64 {
        debug_assert!(
            self.n - self.b == 64 || blk < (1u64 << (self.n - self.b)),
            "block number out of range"
        );
        let mut acc = self.c;
        for (k, table) in self.hi_tables.iter().enumerate() {
            acc ^= table[(blk >> (8 * k)) as usize & 0xff];
        }
        acc
    }

    /// Evaluates the low columns only: `A·off` for `off < 2^b`.
    #[inline]
    pub fn residual(&self, off: u64) -> u64 {
        debug_assert!(
            self.b == 64 || off < (1u64 << self.b),
            "offset out of range"
        );
        if let Some(table) = &self.residual_table {
            return table[off as usize];
        }
        let mut acc = 0u64;
        for (k, table) in self.lo_tables.iter().enumerate() {
            acc ^= table[(off >> (8 * k)) as usize & 0xff];
        }
        acc
    }

    /// The flat `2^b` residual table, when `b ≤`
    /// [`RESIDUAL_TABLE_MAX_BITS`] — hot loops index it directly
    /// instead of calling [`Self::residual`] per record.
    #[inline]
    pub fn residual_table(&self) -> Option<&[u64]> {
        self.residual_table.as_deref()
    }

    /// The distinct block-level residuals in first-occurrence order
    /// over ascending offset (see the field docs), or `None` when `b`
    /// exceeds [`RESIDUAL_TABLE_MAX_BITS`].
    #[inline]
    pub fn block_residuals(&self) -> Option<&[u64]> {
        self.block_residuals.as_deref()
    }

    /// Number of distinct target blocks each source block fans out to,
    /// or `None` when the residuals were not enumerated.
    #[inline]
    pub fn fanout(&self) -> Option<usize> {
        self.block_residuals.as_ref().map(Vec::len)
    }

    /// Whether every source block maps wholesale onto one target block
    /// (fanout 1, i.e. the only block-level residual is 0). Requires
    /// the residuals to have been enumerated.
    #[inline]
    pub fn preserves_blocks(&self) -> bool {
        self.fanout() == Some(1)
    }

    /// Iterates the maximal [`TargetRun`]s covering `num_blocks`
    /// consecutive source blocks starting at `first_block`,
    /// coalescing consecutive source blocks whose target blocks are
    /// also consecutive.
    ///
    /// Panics unless [`Self::preserves_blocks`]: with fanout > 1 no
    /// whole-block runs exist.
    pub fn target_runs(
        &self,
        first_block: u64,
        num_blocks: u64,
    ) -> impl Iterator<Item = TargetRun> + '_ {
        assert!(
            self.preserves_blocks(),
            "target_runs requires a block-preserving permutation (fanout 1)"
        );
        let b = self.b;
        let mut next = first_block;
        let end = first_block + num_blocks;
        std::iter::from_fn(move || {
            if next >= end {
                return None;
            }
            let src = next;
            let target = self.block_base(src) >> b;
            let mut len = 1u64;
            while src + len < end && self.block_base(src + len) >> b == target + len {
                len += 1;
            }
            next = src + len;
            Some(TargetRun {
                src_block: src,
                target_block: target,
                len,
            })
        })
    }
}

/// The evaluator bundle the pass executors take: the generic
/// per-address form plus the block-hoisted form for the same
/// permutation. Planners use the block form whenever its residual
/// table exists and fall back to [`PassEval::affine`] otherwise
/// (`b >` [`RESIDUAL_TABLE_MAX_BITS`], or when forced for
/// benchmarking via [`crate::passes::EvalStrategy::PerAddress`]).
#[derive(Clone)]
pub struct PassEval {
    affine: AffineEvaluator,
    block: BlockEvaluator,
}

impl PassEval {
    /// Builds both evaluator forms for `perm` with `block_bits = lg B`.
    pub fn new(perm: &Bmmc, block_bits: u32) -> Self {
        PassEval {
            affine: AffineEvaluator::new(perm),
            block: BlockEvaluator::new(perm, block_bits),
        }
    }

    /// The generic per-address evaluator.
    #[inline]
    pub fn affine(&self) -> &AffineEvaluator {
        &self.affine
    }

    /// The block-hoisted evaluator.
    #[inline]
    pub fn block(&self) -> &BlockEvaluator {
        &self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::sample::random_nonsingular;
    use gf2::BitVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_slow_path_exhaustively() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 3, 8, 9, 13] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let ev = AffineEvaluator::new(&p);
            for x in 0..(1u64 << n) {
                assert_eq!(ev.eval(x), p.target(x), "n={n}, x={x}");
            }
        }
    }

    /// The cap only moves the constant factor: a capped evaluator
    /// (no flat table, no block residuals) must agree address-for-
    /// address with the tuned one — the regression gate behind
    /// closing the ROADMAP residual-width item.
    #[test]
    fn capped_table_is_exact_and_only_drops_the_fast_path() {
        let mut rng = StdRng::seed_from_u64(23);
        for (n, b) in [(10usize, 3u32), (13, 4), (16, 6)] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let tuned = BlockEvaluator::new(&p, b);
            let capped = BlockEvaluator::with_table_cap(&p, b, 0);
            assert!(tuned.residual_table().is_some());
            assert!(capped.residual_table().is_none(), "cap 0 must disable it");
            assert!(capped.block_residuals().is_none());
            assert!(capped.fanout().is_none());
            for x in 0..(1u64 << n) {
                let (blk, off) = (x >> b, x & ((1 << b) - 1));
                assert_eq!(
                    tuned.block_base(blk) ^ tuned.residual(off),
                    capped.block_base(blk) ^ capped.residual(off),
                    "n={n} b={b} x={x}"
                );
                assert_eq!(capped.block_base(blk) ^ capped.residual(off), p.target(x));
            }
        }
    }

    #[test]
    fn matches_slow_path_sampled_wide() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [17usize, 24, 31] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1u64 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let ev = AffineEvaluator::new(&p);
            for _ in 0..200 {
                let x = rng.gen::<u64>() & ((1u64 << n) - 1);
                assert_eq!(ev.eval(x), p.target(x), "n={n}, x={x}");
            }
        }
    }

    #[test]
    fn identity_evaluator() {
        let ev = AffineEvaluator::new(&Bmmc::identity(20));
        for x in [0u64, 1, 12345, (1 << 20) - 1] {
            assert_eq!(ev.eval(x), x);
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [1usize, 7, 13, 24] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1u64 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let ev = AffineEvaluator::new(&p);
            let xs: Vec<u64> = (0..257)
                .map(|_| rng.gen::<u64>() & ((1u64 << n) - 1))
                .collect();
            let mut out = vec![0u64; xs.len()];
            ev.eval_batch(&xs, &mut out);
            for (&x, &y) in xs.iter().zip(out.iter()) {
                assert_eq!(y, ev.eval(x), "n={n}, x={x}");
            }
        }
    }

    #[test]
    fn block_split_matches_full_eval() {
        let mut rng = StdRng::seed_from_u64(14);
        for (n, b) in [(6usize, 0u32), (6, 2), (10, 4), (13, 13), (18, 6)] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1u64 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let ev = AffineEvaluator::new(&p);
            let bev = BlockEvaluator::new(&p, b);
            for _ in 0..300 {
                let x = rng.gen::<u64>() & ((1u64 << n) - 1);
                let (blk, off) = (x >> b, x & ((1u64 << b) - 1));
                assert_eq!(
                    bev.block_base(blk) ^ bev.residual(off),
                    ev.eval(x),
                    "n={n}, b={b}, x={x}"
                );
            }
        }
    }

    #[test]
    fn block_residuals_first_occurrence_order() {
        let mut rng = StdRng::seed_from_u64(15);
        for (n, b) in [(10usize, 3u32), (12, 5), (9, 0)] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1u64 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let bev = BlockEvaluator::new(&p, b);
            // Reference: scan offsets ascending, collect first-seen
            // block-level residuals.
            let mut expect = Vec::new();
            for off in 0..(1u64 << b) {
                let r = bev.residual(off) >> b;
                if !expect.contains(&r) {
                    expect.push(r);
                }
            }
            assert_eq!(bev.block_residuals().unwrap(), &expect[..], "n={n}, b={b}");
            assert_eq!(bev.fanout().unwrap(), expect.len());
            assert_eq!(bev.block_residuals().unwrap()[0], 0, "residual(0) is 0");
        }
    }

    #[test]
    fn identity_runs_coalesce_fully() {
        let bev = BlockEvaluator::new(&Bmmc::identity(12), 4);
        assert!(bev.preserves_blocks());
        let runs: Vec<TargetRun> = bev.target_runs(0, 1 << 8).collect();
        assert_eq!(
            runs,
            vec![TargetRun {
                src_block: 0,
                target_block: 0,
                len: 1 << 8
            }]
        );
    }

    #[test]
    fn runs_cover_blocks_exactly_once() {
        // A block-preserving but non-identity map: swap two high bits
        // (a BPC permuting only block-number bits).
        use gf2::BitMatrix;
        let n = 10;
        let b = 3u32;
        let mut m = BitMatrix::identity(n);
        // Swap rows/cols to exchange address bits 8 and 9.
        m.set(8, 8, false);
        m.set(9, 9, false);
        m.set(8, 9, true);
        m.set(9, 8, true);
        let p = Bmmc::new(m, BitVec::zeros(n)).unwrap();
        let bev = BlockEvaluator::new(&p, b);
        assert!(bev.preserves_blocks());
        let ev = AffineEvaluator::new(&p);
        let mut covered = vec![false; 1 << (n - b as usize)];
        for run in bev.target_runs(0, 1 << (n - b as usize)) {
            for k in 0..run.len {
                let src = run.src_block + k;
                assert!(!covered[src as usize], "block covered twice");
                covered[src as usize] = true;
                // Whole-block target agrees with the per-address path.
                for off in 0..(1u64 << b) {
                    assert_eq!(
                        ev.eval((src << b) | off) >> b,
                        run.target_block + k,
                        "src={src}, off={off}"
                    );
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "runs missed a block");
    }
}
