//! Fast evaluation of `y = A x ⊕ c` for `n ≤ 64`.
//!
//! The executors apply the affine map to every one of up to `2^n`
//! addresses, so the generic bit-matrix product is the hot path of the
//! whole simulator. [`AffineEvaluator`] precomputes, for each byte
//! position of the input, a 256-entry table of the XOR of the matrix
//! columns selected by that byte. Evaluating an address is then
//! `⌈n/8⌉` table lookups and XORs — no per-bit branching.

use crate::bmmc::Bmmc;

/// Precomputed byte-sliced evaluator for a BMMC permutation.
#[derive(Clone)]
pub struct AffineEvaluator {
    n: u32,
    c: u64,
    /// `tables[k][byte]` = XOR of columns `8k .. 8k+8` of `A` selected
    /// by the bits of `byte`, each column packed as a `u64` target mask.
    tables: Vec<[u64; 256]>,
}

impl AffineEvaluator {
    /// Builds the evaluator. The permutation must act on at most 64
    /// address bits (always true in the disk model, where `n = lg N`).
    pub fn new(perm: &Bmmc) -> Self {
        let n = perm.bits();
        assert!(n <= 64, "AffineEvaluator supports n ≤ 64, got {n}");
        // Pack each matrix column j as a u64: bit i = A[i][j].
        let mut cols = vec![0u64; n];
        for (j, col) in cols.iter_mut().enumerate() {
            let column = perm.matrix().column(j);
            for i in column.iter_ones() {
                *col |= 1 << i;
            }
        }
        let num_tables = n.div_ceil(8);
        let mut tables = vec![[0u64; 256]; num_tables];
        for (k, table) in tables.iter_mut().enumerate() {
            let base = k * 8;
            let width = 8.min(n - base);
            for byte in 0usize..256 {
                if byte >> width != 0 {
                    continue; // bits beyond n never occur in valid input
                }
                let mut acc = 0u64;
                for bit in 0..width {
                    if byte >> bit & 1 == 1 {
                        acc ^= cols[base + bit];
                    }
                }
                table[byte] = acc;
            }
        }
        AffineEvaluator {
            n: n as u32,
            c: perm.complement().as_u64(),
            tables,
        }
    }

    /// Address width `n`.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.n
    }

    /// Computes `A x ⊕ c`.
    ///
    /// Debug-asserts that `x < 2^n`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        debug_assert!(self.n == 64 || x < (1u64 << self.n), "address out of range");
        let mut acc = self.c;
        for (k, table) in self.tables.iter().enumerate() {
            acc ^= table[(x >> (8 * k)) as usize & 0xff];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::sample::random_nonsingular;
    use gf2::BitVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_slow_path_exhaustively() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 3, 8, 9, 13] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let ev = AffineEvaluator::new(&p);
            for x in 0..(1u64 << n) {
                assert_eq!(ev.eval(x), p.target(x), "n={n}, x={x}");
            }
        }
    }

    #[test]
    fn matches_slow_path_sampled_wide() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [17usize, 24, 31] {
            let a = random_nonsingular(&mut rng, n);
            let c = BitVec::from_u64(n, rng.gen::<u64>() & ((1u64 << n) - 1));
            let p = Bmmc::new(a, c).unwrap();
            let ev = AffineEvaluator::new(&p);
            for _ in 0..200 {
                let x = rng.gen::<u64>() & ((1u64 << n) - 1);
                assert_eq!(ev.eval(x), p.target(x), "n={n}, x={x}");
            }
        }
    }

    #[test]
    fn identity_evaluator() {
        let ev = AffineEvaluator::new(&Bmmc::identity(20));
        for x in [0u64, 1, 12345, (1 << 20) - 1] {
            assert_eq!(ev.eval(x), x);
        }
    }
}
