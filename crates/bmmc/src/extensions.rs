//! Extensions from the paper's conclusion (Section 7): additional
//! O(1)-pass permutation classes beyond MRC/MLD.
//!
//! The paper remarks that "the inverse of any one-pass permutation is
//! a one-pass permutation" — implemented as
//! [`crate::factoring::PassKind::MldInverse`] — and that "the
//! composition of an MLD permutation with the inverse of an MLD
//! permutation is a one-pass permutation". This module implements the
//! latter: [`perform_mld_pair`] executes `π_Y ∘ π_Z⁻¹` for MLD
//! permutations `Y` and `Z` in exactly one pass, with independent
//! reads *and* independent writes:
//!
//! * For each *intermediate* memoryload `w`, the source addresses
//!   `x = Z(w·M + i)` form `M/B` full source blocks evenly spread over
//!   the disks (Lemma 13 applied to `Z`), so they are gathered with
//!   `M/BD` independent reads.
//! * The same `M` records, viewed through `Y` on the intermediate
//!   addresses, fill `M/B` full target blocks evenly spread over the
//!   disks (Lemma 13 applied to `Y`), emitted with `M/BD` independent
//!   writes.

use crate::bmmc::Bmmc;
use crate::classes::is_mld;
use crate::error::{BmmcError, Result};
use crate::factoring::PassKind;
use crate::fusion::{execute_fused_with, FusedPass, WriteDiscipline};
use crate::passes::PassStats;
use pdm::{DiskSystem, PassEngine, Record};

/// Performs the composition `π_Y ∘ π_Z⁻¹` (first `Z⁻¹`, then `Y`) of
/// two MLD permutations in ONE pass, moving records from portion `src`
/// to portion `dst`.
///
/// Since PR 3 this is a thin wrapper over the pass-fusion executor
/// ([`crate::fusion`]): the pair `(Z⁻¹ as MLD⁻¹, Y as MLD)` fuses by
/// the discipline rule into a single gathered-read/scattered-write
/// step with the composed evaluator `Y·Z⁻¹` — the general mechanism
/// of which this Section 7 composition is one instance.
///
/// Returns an error if `Y` or `Z` is not MLD for the system's
/// geometry, or if the widths do not match.
pub fn perform_mld_pair<R: Record>(
    sys: &mut DiskSystem<R>,
    y: &Bmmc,
    z: &Bmmc,
    src: usize,
    dst: usize,
) -> Result<PassStats> {
    let geom = sys.geometry();
    let n = geom.n();
    if y.bits() != n || z.bits() != n {
        return Err(BmmcError::GeometryMismatch {
            perm_bits: y.bits(),
            system_bits: n,
        });
    }
    let (b, m) = (geom.b(), geom.m());
    if !is_mld(y.matrix(), b, m) || !is_mld(z.matrix(), b, m) {
        return Err(BmmcError::Dimension(
            "perform_mld_pair requires both permutations to be MLD".to_string(),
        ));
    }
    let before = sys.stats();
    let z_inv = z.inverse();
    let composed = y.compose(&z_inv);
    let step = FusedPass {
        matrix: composed.matrix().clone(),
        complement: composed.complement().clone(),
        gather: Some(z_inv),
        write: WriteDiscipline::Scatter,
        replaced: vec![PassKind::MldInverse, PassKind::Mld],
    };
    let mut engine = PassEngine::new(geom);
    execute_fused_with(&mut engine, sys, src, dst, &step)?;
    Ok(PassStats {
        kind: PassKind::Mld,
        ios: sys.stats().since(&before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::passes::reference_permute;
    use pdm::Geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    #[test]
    fn mld_pair_is_one_pass_and_correct() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(121);
        for _ in 0..5 {
            let y = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            let z = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            let input: Vec<u64> = (0..g.records() as u64).collect();
            sys.load_records(0, &input);
            let stats = perform_mld_pair(&mut sys, &y, &z, 0, 1).unwrap();
            // One pass: 2N/BD I/Os exactly.
            assert_eq!(stats.ios.parallel_ios() as usize, g.ios_per_pass());
            let composed = y.compose(&z.inverse());
            let expect = reference_permute(&input, |x| composed.target(x));
            assert_eq!(sys.dump_records(1), expect);
        }
    }

    #[test]
    fn mld_pair_may_need_two_passes_via_factoring() {
        // The point of the extension: Y·Z⁻¹ is generally NOT MLD (nor
        // MLD⁻¹ / MRC), so the generic planner needs ≥ 2 passes where
        // perform_mld_pair needs 1.
        let g = geom();
        let mut rng = StdRng::seed_from_u64(122);
        let mut demonstrated = false;
        for _ in 0..100 {
            let y = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            let z = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            let composed = y.compose(&z.inverse());
            let passes = crate::algorithm::plan_passes(&composed, g.b(), g.m()).unwrap();
            if passes.len() >= 2 {
                demonstrated = true;
                break;
            }
        }
        assert!(
            demonstrated,
            "every sampled MLD·MLD⁻¹ composition was one-pass-classifiable"
        );
    }

    #[test]
    fn rejects_non_mld_inputs() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(123);
        let y = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
        // A permutation crossing the memory boundary is not MLD.
        let not_mld = catalog::bit_reversal(g.n());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        assert!(perform_mld_pair(&mut sys, &y, &not_mld, 0, 1).is_err());
        assert!(perform_mld_pair(&mut sys, &not_mld, &y, 0, 1).is_err());
    }

    #[test]
    fn identity_pair_is_identity() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(124);
        let y = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
        // Y ∘ Y⁻¹ = identity: records end up where they started.
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..g.records() as u64).collect();
        sys.load_records(0, &input);
        perform_mld_pair(&mut sys, &y, &y, 0, 1).unwrap();
        assert_eq!(sys.dump_records(1), input);
    }
}
