//! One-pass executors: MRC and MLD permutations on a
//! [`pdm::DiskSystem`], built on the shared streaming
//! [`PassEngine`].
//!
//! All pass types process memoryloads in order (Section 3): read a
//! memoryload (`M/BD` parallel reads), permute the `M` records in
//! memory, and write them out (`M/BD` parallel writes) —
//!
//! * **MRC**: striped reads of each source memoryload; all `M` records
//!   go to a single target memoryload, written with striped writes;
//! * **MLD**: striped reads; the records form `M/B` *full* target
//!   blocks (Lemma 13), one per relative block number, spread evenly
//!   over the disks (property 3), written with independent writes of
//!   `D` blocks each;
//! * **MLD⁻¹**: the mirror image — each *target* memoryload's records
//!   are gathered with independent reads of `D` full source blocks
//!   each (Lemma 13 applied to `A⁻¹`), arranged in memory, and emitted
//!   with striped writes.
//!
//! Either way a pass costs exactly `2N/BD` parallel I/Os. The executors
//! only build the engine's read/write *plans* and the in-memory
//! rearrangement; buffering, I/O issue, and (in
//! [`ServiceMode::Threaded`](pdm::ServiceMode)) the overlap of the
//! next memoryload's reads with the current permute all live in
//! `pdm::engine`.
//!
//! The in-memory rearrangement is the same for MRC and MLD: the record
//! headed for target address `y` is placed at buffer position `y mod M`
//! (its target relative-block number and offset). This is a bijection
//! on the memoryload because the leading `m x m` submatrix of a
//! one-pass characteristic matrix is nonsingular (Lemma 12; trivially
//! for MRC), and it is performed in place by cycle-following.
//!
//! # Block-run evaluation
//!
//! By default ([`EvalStrategy::BlockRun`]) the executors evaluate
//! target addresses with the block-hoisted [`BlockEvaluator`] form
//! (see [`crate::eval`]): the high `n − b` bits of the affine map are
//! evaluated once per source block and the low `b` bits come from the
//! per-matrix residual table, so a memoryload's planning and permute
//! closures perform `M/B` high-bit evaluations instead of `M` full
//! ones. Batch discovery (the gather planner's first-seen order, the
//! scatter push order) is arranged to be *byte-identical* to the
//! per-address scan it replaces — [`EvalStrategy::PerAddress`] keeps
//! that scan alive for differential testing and as the `addr_eval`
//! benchmark baseline.
//!
//! The superseded hand-written loops survive in [`mod@reference`] — they
//! are the differential-testing oracle for the engine and the "old
//! loop" baseline of the `engine_sweep` benchmark.

use crate::error::{BmmcError, Result};
use crate::eval::{AffineEvaluator, BlockEvaluator, PassEval};
use crate::factoring::{Pass, PassKind};
use pdm::engine::{ReadPlan, WritePlan};
use pdm::memory::permute_in_place;
use pdm::{BlockRef, DiskSystem, IoStats, PassEngine, Record};
use std::cell::RefCell;

/// Per-pass execution statistics.
#[derive(Clone, Copy, Debug)]
pub struct PassStats {
    /// Which executor ran.
    pub kind: PassKind,
    /// I/O performed by this pass alone.
    pub ios: IoStats,
}

/// How the pass executors evaluate target addresses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Hoist the invariant high bits once per source block and look
    /// the low bits up in the per-matrix residual table (see
    /// [`crate::eval::BlockEvaluator`]). The production default; the
    /// executors silently fall back to per-address evaluation when the
    /// block is too wide for the residual table
    /// (`b > `[`crate::eval::RESIDUAL_TABLE_MAX_BITS`]).
    #[default]
    BlockRun,
    /// Evaluate `y = Ax ⊕ c` independently for every address — the
    /// pre-block-run behaviour, kept selectable for differential
    /// testing and as the `addr_eval` benchmark baseline.
    PerAddress,
}

impl EvalStrategy {
    /// Whether this strategy uses `bev`'s block-hoisted path (requires
    /// the residual table to have been materialised).
    fn uses_block(self, bev: &BlockEvaluator) -> bool {
        self == EvalStrategy::BlockRun && bev.residual_table().is_some()
    }
}

/// Executes one pass, moving all `N` records from portion `src` to
/// portion `dst` of the disk system. Convenience wrapper over
/// [`execute_pass_with`] that builds a fresh engine; multi-pass
/// algorithms should build one [`PassEngine`] and reuse it.
pub fn execute_pass<R: Record>(
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    pass: &Pass,
) -> Result<PassStats> {
    let mut engine = PassEngine::new(sys.geometry());
    execute_pass_with(&mut engine, sys, src, dst, pass)
}

/// Executes one pass on a caller-provided engine (reusing its
/// memoryload buffers across passes), with the default
/// [`EvalStrategy::BlockRun`] address evaluation.
pub fn execute_pass_with<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    pass: &Pass,
) -> Result<PassStats> {
    execute_pass_with_strategy(engine, sys, src, dst, pass, EvalStrategy::default())
}

/// Executes one pass on a caller-provided engine with an explicit
/// address-evaluation strategy. Placement and I/O accounting are
/// identical across strategies; only the kernel work differs.
pub fn execute_pass_with_strategy<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    pass: &Pass,
    strategy: EvalStrategy,
) -> Result<PassStats> {
    let geom = sys.geometry();
    let n = geom.n();
    if pass.matrix.rows() != n {
        return Err(BmmcError::GeometryMismatch {
            perm_bits: pass.matrix.rows(),
            system_bits: n,
        });
    }
    assert_ne!(src, dst, "source and target portions must differ");
    let before = sys.stats();
    let ev = PassEval::new(&pass.as_bmmc(), geom.b() as u32);
    match pass.kind {
        PassKind::Mrc => execute_mrc(engine, sys, src, dst, &ev, strategy)?,
        PassKind::Mld => execute_mld(engine, sys, src, dst, &ev, strategy)?,
        PassKind::MldInverse => {
            let inv_ev = PassEval::new(&pass.as_bmmc().inverse(), geom.b() as u32);
            execute_mld_inverse(engine, sys, src, dst, &ev, &inv_ev, strategy)?;
        }
    }
    Ok(PassStats {
        kind: pass.kind,
        ios: sys.stats().since(&before),
    })
}

/// The MRC discipline on an arbitrary affine evaluator: striped reads
/// of each source memoryload, in-place rearrangement, striped writes of
/// one whole target memoryload. Requires `ev` to map each source
/// memoryload onto a single target memoryload (debug-asserted) — true
/// for any MRC matrix, and for the composition of an MRC chain
/// ([`crate::fusion`] reuses this with a composed evaluator).
pub(crate) fn execute_mrc<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    ev: &PassEval,
    strategy: EvalStrategy,
) -> Result<()> {
    let geom = sys.geometry();
    let (mem, m, b) = (geom.memory(), geom.m(), geom.b());
    let mask = (mem - 1) as u64;
    let bmask = geom.block() - 1;
    let affine = ev.affine();
    let bev = ev.block();
    let use_block = strategy.uses_block(bev);
    // One target base per source block of the memoryload, refilled per
    // load (the block-hoisted `O(M/B)` part of the evaluation).
    let mut pos_base = vec![0u64; geom.blocks_per_memoryload()];
    engine
        .run_pass(
            sys,
            |ml, _gather| ReadPlan::Memoryload { portion: src, ml },
            |ml, records, _scratch, _scatter| {
                let base = (ml * mem) as u64;
                let target_ml = if use_block {
                    let first = base >> b;
                    for (j, pb) in pos_base.iter_mut().enumerate() {
                        *pb = bev.block_base(first + j as u64);
                    }
                    // residual(0) = 0, so pos_base[0] is eval(base).
                    (pos_base[0] >> m) as usize
                } else {
                    (affine.eval(base) >> m) as usize
                };
                debug_assert!(
                    (0..mem as u64).all(|i| (affine.eval(base + i) >> m) as usize == target_ml),
                    "MRC pass scattered a memoryload across target memoryloads"
                );
                if use_block {
                    let rtab = bev.residual_table().unwrap();
                    permute_in_place(records, |i| {
                        ((pos_base[i >> b] ^ rtab[i & bmask]) & mask) as usize
                    });
                } else {
                    permute_in_place(records, |i| (affine.eval(base + i as u64) & mask) as usize);
                }
                WritePlan::Memoryload {
                    portion: dst,
                    ml: target_ml,
                }
            },
        )
        .map_err(BmmcError::from)
}

/// The MLD discipline on an arbitrary affine evaluator: striped reads,
/// in-place rearrangement, independent writes of `M/B` whole target
/// blocks per memoryload. Requires `ev` to map each source memoryload
/// onto whole target blocks (Lemma 13) — true for any MLD matrix, and
/// for an MRC chain composed with a final MLD pass ([`crate::fusion`]).
pub(crate) fn execute_mld<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    ev: &PassEval,
    strategy: EvalStrategy,
) -> Result<()> {
    let geom = sys.geometry();
    let layout = sys.layout();
    let (mem, b) = (geom.memory(), geom.b());
    let disks = geom.disks();
    let mask = (mem - 1) as u64;
    let bmask = geom.block() - 1;
    let rel_blocks = geom.blocks_per_memoryload(); // M/B
    let rel_mask = (rel_blocks - 1) as u64;
    let dst_base = sys.portion_base(dst);
    let affine = ev.affine();
    let bev = ev.block();
    let use_block = strategy.uses_block(bev);
    let mut pos_base = vec![0u64; rel_blocks];
    let mut target_block = vec![0u64; rel_blocks];
    engine
        .run_pass(
            sys,
            |ml, _gather| ReadPlan::Memoryload { portion: src, ml },
            |ml, records, _scratch, scatter| {
                let base = (ml * mem) as u64;
                // Pre-compute the global target block for each relative
                // block number (well-defined: records sharing a relative
                // block share a target memoryload — Lemma 14 via the
                // kernel condition).
                if use_block {
                    let first = base >> b;
                    for (j, pb) in pos_base.iter_mut().enumerate() {
                        *pb = bev.block_base(first + j as u64);
                    }
                    if bev.preserves_blocks() {
                        // Fanout 1: whole-block target runs cover the
                        // memoryload; each run is a span of consecutive
                        // source blocks landing in consecutive target
                        // blocks.
                        for run in bev.target_runs(first, rel_blocks as u64) {
                            for k in 0..run.len {
                                let tb = run.target_block + k;
                                target_block[(tb & rel_mask) as usize] = tb;
                            }
                        }
                    } else {
                        // Fanout K: each source block scatters to the K
                        // target blocks given by the block-level
                        // residuals.
                        let brs = bev.block_residuals().unwrap();
                        for pb in &pos_base {
                            let tb_base = pb >> b;
                            for &r in brs {
                                let tb = tb_base ^ r;
                                target_block[(tb & rel_mask) as usize] = tb;
                            }
                        }
                    }
                    let rtab = bev.residual_table().unwrap();
                    permute_in_place(records, |i| {
                        ((pos_base[i >> b] ^ rtab[i & bmask]) & mask) as usize
                    });
                } else {
                    for i in 0..mem as u64 {
                        let y = affine.eval(base + i);
                        let rel = layout.relative_block(y) as usize;
                        target_block[rel] = layout.block(y);
                    }
                    permute_in_place(records, |i| (affine.eval(base + i as u64) & mask) as usize);
                }
                // Scatter M/BD batches of D blocks; batch t carries
                // relative blocks tD .. tD+D−1 (contiguous in the
                // permuted buffer), whose low d bits give their disks.
                scatter.reset(disks);
                for t in 0..rel_blocks / disks {
                    for delta in 0..disks {
                        let rel = t * disks + delta;
                        let blk = target_block[rel];
                        let disk = layout.disk_of_block(blk) as usize;
                        debug_assert_eq!(
                            disk, delta,
                            "relative block {rel} not on its home disk \
                             (property 3 violated)"
                        );
                        scatter.push(BlockRef {
                            disk,
                            slot: dst_base + layout.stripe_of_block(blk) as usize,
                        });
                    }
                }
                WritePlan::Scatter
            },
        )
        .map_err(BmmcError::from)
}

/// Per-memoryload gather bookkeeping for the gathered-read executors
/// (MLD⁻¹ and the fused gather→scatter discipline), shared between the
/// engine's `reads` and `transform` callbacks. The engine may call
/// `reads(t+1)` before `transform(t)` (prefetch), so the gathered
/// block lists are kept for two loads, indexed by `t % 2`.
struct GatherState {
    /// Source block numbers in gather order (batch-major), per parity.
    blocks: [Vec<u64>; 2],
    /// Scratch: per-disk source-block lists for the load being planned.
    per_disk: Vec<Vec<u64>>,
    /// Scratch: block-seen bitmap over all N/B source blocks.
    seen: Vec<bool>,
    layout: pdm::Layout,
    mem: usize,
    b: usize,
    disks: usize,
    rel_blocks: usize,
    src_base: usize,
}

impl GatherState {
    fn new<R: Record>(sys: &DiskSystem<R>, src: usize) -> Self {
        let geom = sys.geometry();
        let disks = geom.disks();
        let rel_blocks = geom.blocks_per_memoryload();
        GatherState {
            blocks: [Vec::new(), Vec::new()],
            per_disk: vec![Vec::with_capacity(rel_blocks / disks); disks],
            seen: vec![false; geom.total_blocks()],
            layout: sys.layout(),
            mem: geom.memory(),
            b: geom.b(),
            disks,
            rel_blocks,
            src_base: sys.portion_base(src),
        }
    }

    /// Discovers the `M/B` distinct source blocks feeding unit `t`
    /// (the preimage of target memoryload `t` under the gather map,
    /// planned via its inverse `inv`) and fills `gather` with
    /// `M/BD` independent reads of one block per disk.
    ///
    /// With block-run evaluation the discovery loop walks the unit's
    /// `M/B` blocks and the inverse map's block-level residuals instead
    /// of its `M` addresses. The per-address ascending scan visits,
    /// within source block `j`, the candidate blocks
    /// `(block_base(j) >> b) ⊕ r` exactly in the residuals'
    /// first-occurrence order — so the first-seen discovery order (and
    /// with it the per-disk lists, batch composition, and buffer
    /// layout) is byte-identical across strategies.
    fn plan_unit(
        &mut self,
        t: usize,
        inv: &PassEval,
        use_block: bool,
        gather: &mut pdm::engine::BlockBatches,
    ) -> ReadPlan {
        let base = (t * self.mem) as u64;
        // Reset only the M/B bits the previous load set — a full clear
        // of the N/B-entry bitmap per load would dominate the planner
        // at large N.
        for d in self.per_disk.iter_mut() {
            for blk in d.drain(..) {
                self.seen[blk as usize] = false;
            }
        }
        if use_block {
            let bev = inv.block();
            let brs = bev.block_residuals().unwrap();
            let first = base >> self.b;
            for j in 0..self.rel_blocks as u64 {
                let xb = bev.block_base(first + j) >> self.b;
                for &r in brs {
                    let blk = xb ^ r;
                    if !self.seen[blk as usize] {
                        self.seen[blk as usize] = true;
                        self.per_disk[self.layout.disk_of_block(blk) as usize].push(blk);
                    }
                }
            }
        } else {
            let inv_ev = inv.affine();
            for i in 0..self.mem as u64 {
                let x = inv_ev.eval(base + i);
                let blk = self.layout.block(x);
                if !self.seen[blk as usize] {
                    self.seen[blk as usize] = true;
                    self.per_disk[self.layout.disk_of_block(blk) as usize].push(blk);
                }
            }
        }
        debug_assert!(
            self.per_disk
                .iter()
                .all(|d| d.len() == self.rel_blocks / self.disks),
            "source blocks of a unit not evenly spread over the disks \
             (mirror of property 3)"
        );
        let order = &mut self.blocks[t % 2];
        order.clear();
        gather.reset(self.disks);
        for k in 0..self.rel_blocks / self.disks {
            for (disk, on_disk) in self.per_disk.iter().enumerate() {
                let blk = on_disk[k];
                order.push(blk);
                gather.push(BlockRef {
                    disk,
                    slot: self.src_base + self.layout.stripe_of_block(blk) as usize,
                });
            }
        }
        ReadPlan::Gather
    }
}

/// The MLD⁻¹ discipline generalized over a *gather* evaluator and a
/// *placement* evaluator: unit `u` gathers the source records
/// `{x : gather_map(x) ∈ memoryload u}` (planned via `inv_ev`, the
/// inverse of the gather map) with `M/BD` independent reads, places
/// each record at the low `m` bits of its final target `ev(x)`, and
/// emits the unit as one whole target memoryload with striped writes.
/// For a single MLD⁻¹ pass `ev` *is* the gather map, so the target
/// memoryload equals `u`; [`crate::fusion`] runs it with a composed
/// `ev` whose target memoryload is a permutation of `u`
/// (debug-asserted uniform per unit).
pub(crate) fn execute_mld_inverse<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    ev: &PassEval,
    inv_ev: &PassEval,
    strategy: EvalStrategy,
) -> Result<()> {
    let geom = sys.geometry();
    let layout = sys.layout();
    let mem = geom.memory();
    let block = geom.block();
    let mask = (mem - 1) as u64;
    let affine = ev.affine();
    let bev = ev.block();
    let use_block = strategy.uses_block(bev) && strategy.uses_block(inv_ev.block());
    let state = RefCell::new(GatherState::new(sys, src));
    engine
        .run_pass(
            sys,
            |t, gather| state.borrow_mut().plan_unit(t, inv_ev, use_block, gather),
            |t, records, scratch, _scatter| {
                // `records` holds the gathered blocks in batch-major
                // order; scatter each record to its target position (the
                // low m bits of its target address) via the scratch
                // buffer.
                let st = state.borrow();
                let mut target_ml = 0usize;
                if use_block {
                    let rtab = bev.residual_table().unwrap();
                    for (g, &blk) in st.blocks[t % 2].iter().enumerate() {
                        // One high-bit evaluation per gathered block;
                        // ybase is the target of its offset-0 record.
                        let ybase = bev.block_base(blk);
                        if g == 0 {
                            target_ml = layout.memoryload(ybase) as usize;
                        }
                        for (off, &r) in rtab.iter().enumerate() {
                            let y = ybase ^ r;
                            debug_assert_eq!(
                                layout.memoryload(y) as usize,
                                target_ml,
                                "unit scattered across target memoryloads"
                            );
                            scratch[(y & mask) as usize] = records[g * block + off];
                        }
                    }
                } else {
                    for (g, &blk) in st.blocks[t % 2].iter().enumerate() {
                        for off in 0..block {
                            let x = layout.compose_block(blk, off as u64);
                            let y = affine.eval(x);
                            if g == 0 && off == 0 {
                                target_ml = layout.memoryload(y) as usize;
                            }
                            debug_assert_eq!(
                                layout.memoryload(y) as usize,
                                target_ml,
                                "unit scattered across target memoryloads"
                            );
                            scratch[(y & mask) as usize] = records[g * block + off];
                        }
                    }
                }
                std::mem::swap(records, scratch);
                WritePlan::Memoryload {
                    portion: dst,
                    ml: target_ml,
                }
            },
        )
        .map_err(BmmcError::from)
}

/// The fused gather→scatter discipline ([`crate::fusion`]): unit `u`
/// gathers the source records `{x : gather_map(x) ∈ memoryload u}`
/// with `M/BD` independent reads (like MLD⁻¹), places each record at
/// the low `m` bits of its final target `ev(x)`, and emits the unit as
/// `M/B` whole target blocks with `M/BD` independent writes (like
/// MLD). This executes an (MLD⁻¹, …, MLD) fused group — including the
/// paper's Section 7 `π_Y ∘ π_Z⁻¹` composition
/// ([`crate::extensions::perform_mld_pair`]) — in one pass with
/// independent reads *and* independent writes.
pub(crate) fn execute_gather_scatter<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    ev: &PassEval,
    inv_ev: &PassEval,
    strategy: EvalStrategy,
) -> Result<()> {
    let geom = sys.geometry();
    let layout = sys.layout();
    let (mem, b) = (geom.memory(), geom.b());
    let block = geom.block();
    let disks = geom.disks();
    let mask = (mem - 1) as u64;
    let rel_blocks = geom.blocks_per_memoryload();
    let rel_mask = (rel_blocks - 1) as u64;
    let dst_base = sys.portion_base(dst);
    let affine = ev.affine();
    let bev = ev.block();
    let use_block = strategy.uses_block(bev) && strategy.uses_block(inv_ev.block());
    let state = RefCell::new(GatherState::new(sys, src));
    let mut target_block = vec![0u64; rel_blocks];
    engine
        .run_pass(
            sys,
            |t, gather| state.borrow_mut().plan_unit(t, inv_ev, use_block, gather),
            |t, records, scratch, scatter| {
                let st = state.borrow();
                if use_block {
                    let rtab = bev.residual_table().unwrap();
                    let brs = bev.block_residuals().unwrap();
                    for (g, &blk) in st.blocks[t % 2].iter().enumerate() {
                        let ybase = bev.block_base(blk);
                        for (off, &r) in rtab.iter().enumerate() {
                            scratch[((ybase ^ r) & mask) as usize] = records[g * block + off];
                        }
                        // Lemma 14 for the composed map: each gathered
                        // block scatters to the target blocks given by
                        // the block-level residuals.
                        let tb_base = ybase >> b;
                        for &r in brs {
                            let tb = tb_base ^ r;
                            target_block[(tb & rel_mask) as usize] = tb;
                        }
                    }
                } else {
                    for (g, &blk) in st.blocks[t % 2].iter().enumerate() {
                        for off in 0..block {
                            let x = layout.compose_block(blk, off as u64);
                            let y = affine.eval(x);
                            scratch[(y & mask) as usize] = records[g * block + off];
                            // Lemma 14 for the composed map: records sharing
                            // a relative target block share a target block.
                            target_block[layout.relative_block(y) as usize] = layout.block(y);
                        }
                    }
                }
                std::mem::swap(records, scratch);
                scatter.reset(disks);
                for tb in 0..rel_blocks / disks {
                    for delta in 0..disks {
                        let rel = tb * disks + delta;
                        let blk = target_block[rel];
                        debug_assert_eq!(
                            layout.disk_of_block(blk) as usize,
                            delta,
                            "relative block {rel} not on its home disk \
                             (property 3 violated)"
                        );
                        scatter.push(BlockRef {
                            disk: delta,
                            slot: dst_base + layout.stripe_of_block(blk) as usize,
                        });
                    }
                }
                WritePlan::Scatter
            },
        )
        .map_err(BmmcError::from)
}

/// The reference (zero-I/O) permutation: returns the record vector as
/// it must appear after performing `target` on `input` —
/// `output[target(x)] = input[x]`.
pub fn reference_permute<R: Record>(input: &[R], target: impl Fn(u64) -> u64) -> Vec<R> {
    let mut out = vec![R::default(); input.len()];
    for (x, rec) in input.iter().enumerate() {
        out[target(x as u64) as usize] = *rec;
    }
    out
}

/// The superseded per-call-site loops, kept verbatim as the
/// differential-testing oracle for the [`PassEngine`]-based executors
/// and as the "old loop" baseline of the `engine_sweep` benchmark.
/// They allocate fresh buffers per block and service every parallel
/// I/O synchronously; the cost *counts* are identical to the engine's.
pub mod reference {
    use super::*;

    /// Executes one pass with the classic hand-written loops (see
    /// [`super::execute_pass`] for the engine-based production path).
    pub fn execute_pass<R: Record>(
        sys: &mut DiskSystem<R>,
        src: usize,
        dst: usize,
        pass: &Pass,
    ) -> Result<PassStats> {
        let geom = sys.geometry();
        let n = geom.n();
        if pass.matrix.rows() != n {
            return Err(BmmcError::GeometryMismatch {
                perm_bits: pass.matrix.rows(),
                system_bits: n,
            });
        }
        assert_ne!(src, dst, "source and target portions must differ");
        let before = sys.stats();
        let ev = AffineEvaluator::new(&pass.as_bmmc());
        match pass.kind {
            PassKind::Mrc => execute_mrc(sys, src, dst, &ev)?,
            PassKind::Mld => execute_mld(sys, src, dst, &ev)?,
            PassKind::MldInverse => {
                let inv_ev = AffineEvaluator::new(&pass.as_bmmc().inverse());
                execute_mld_inverse(sys, src, dst, &ev, &inv_ev)?;
            }
        }
        Ok(PassStats {
            kind: pass.kind,
            ios: sys.stats().since(&before),
        })
    }

    fn execute_mrc<R: Record>(
        sys: &mut DiskSystem<R>,
        src: usize,
        dst: usize,
        ev: &AffineEvaluator,
    ) -> Result<()> {
        let geom = sys.geometry();
        let (mem, m) = (geom.memory(), geom.m());
        let mask = (mem - 1) as u64;
        for ml in 0..geom.memoryloads() {
            let mut records = sys.read_memoryload(src, ml)?;
            let base = (ml * mem) as u64;
            let target_ml = (ev.eval(base) >> m) as usize;
            permute_in_place(&mut records, |i| (ev.eval(base + i as u64) & mask) as usize);
            sys.write_memoryload(dst, target_ml, &records)?;
        }
        Ok(())
    }

    fn execute_mld<R: Record>(
        sys: &mut DiskSystem<R>,
        src: usize,
        dst: usize,
        ev: &AffineEvaluator,
    ) -> Result<()> {
        let geom = sys.geometry();
        let layout = sys.layout();
        let mem = geom.memory();
        let block = geom.block();
        let disks = geom.disks();
        let mask = (mem - 1) as u64;
        let rel_blocks = geom.blocks_per_memoryload();
        let mut target_block = vec![0u64; rel_blocks];
        for ml in 0..geom.memoryloads() {
            let mut records = sys.read_memoryload(src, ml)?;
            let base = (ml * mem) as u64;
            for i in 0..mem as u64 {
                let y = ev.eval(base + i);
                let rel = layout.relative_block(y) as usize;
                target_block[rel] = layout.block(y);
            }
            permute_in_place(&mut records, |i| (ev.eval(base + i as u64) & mask) as usize);
            let dst_base = sys.portion_base(dst);
            for t in 0..rel_blocks / disks {
                let mut writes: Vec<(BlockRef, &[R])> = Vec::with_capacity(disks);
                for delta in 0..disks {
                    let rel = t * disks + delta;
                    let blk = target_block[rel];
                    let disk = layout.disk_of_block(blk) as usize;
                    let slot = dst_base + layout.stripe_of_block(blk) as usize;
                    writes.push((
                        BlockRef { disk, slot },
                        &records[rel * block..(rel + 1) * block],
                    ));
                }
                sys.write_blocks(&writes)?;
            }
        }
        Ok(())
    }

    fn execute_mld_inverse<R: Record>(
        sys: &mut DiskSystem<R>,
        src: usize,
        dst: usize,
        ev: &AffineEvaluator,
        inv_ev: &AffineEvaluator,
    ) -> Result<()> {
        let geom = sys.geometry();
        let layout = sys.layout();
        let mem = geom.memory();
        let disks = geom.disks();
        let mask = (mem - 1) as u64;
        let rel_blocks = geom.blocks_per_memoryload();
        let src_base = sys.portion_base(src);
        let mut per_disk: Vec<Vec<u64>> = vec![Vec::with_capacity(rel_blocks / disks); disks];
        let mut seen: Vec<bool> = Vec::new();
        for t in 0..geom.memoryloads() {
            let base = (t * mem) as u64;
            for d in per_disk.iter_mut() {
                d.clear();
            }
            seen.clear();
            seen.resize(geom.total_blocks(), false);
            for i in 0..mem as u64 {
                let x = inv_ev.eval(base + i);
                let blk = layout.block(x);
                if !seen[blk as usize] {
                    seen[blk as usize] = true;
                    per_disk[layout.disk_of_block(blk) as usize].push(blk);
                }
            }
            let mut out = vec![R::default(); mem];
            for k in 0..rel_blocks / disks {
                let refs: Vec<BlockRef> = (0..disks)
                    .map(|disk| BlockRef {
                        disk,
                        slot: src_base + layout.stripe_of_block(per_disk[disk][k]) as usize,
                    })
                    .collect();
                let blocks = sys.read_blocks(&refs)?;
                for (disk, data) in blocks.iter().enumerate() {
                    let blk = per_disk[disk][k];
                    for (off, rec) in data.iter().enumerate() {
                        let x = layout.compose_block(blk, off as u64);
                        let y = ev.eval(x);
                        out[(y & mask) as usize] = *rec;
                    }
                }
            }
            sys.write_memoryload(dst, t, &out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmmc::Bmmc;
    use crate::catalog;
    use crate::factoring::{Pass, PassKind};
    use gf2::BitVec;
    use pdm::{Geometry, ServiceMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// N=2^10, B=2^2, D=2^2, M=2^6 → b=2, d=2, m=6, n=10.
    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    fn run_one_pass(perm: &Bmmc, kind: PassKind) {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..g.records() as u64).collect();
        sys.load_records(0, &input);
        let pass = Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind,
        };
        let stats = execute_pass(&mut sys, 0, 1, &pass).unwrap();
        // Exactly one pass: 2N/BD parallel I/Os, N/BD reads (striped
        // for the forward disciplines, independent gathers for MLD⁻¹).
        assert_eq!(stats.ios.parallel_ios() as usize, g.ios_per_pass());
        assert_eq!(stats.ios.parallel_reads as usize, g.stripes());
        if matches!(kind, PassKind::Mrc | PassKind::Mld) {
            assert_eq!(stats.ios.striped_reads as usize, g.stripes());
        }
        let expect = reference_permute(&input, |x| perm.target(x));
        assert_eq!(sys.dump_records(1), expect, "wrong final placement");
        match kind {
            PassKind::Mrc | PassKind::MldInverse => assert_eq!(
                stats.ios.striped_writes, stats.ios.parallel_writes,
                "MRC/MLD⁻¹ must write striped"
            ),
            PassKind::Mld => {}
        }
    }

    /// Runs `perm` through the engine executor and the reference loop
    /// on separate systems and insists on identical placements and
    /// identical I/O statistics.
    fn assert_matches_reference(perm: &Bmmc, kind: PassKind, mode: ServiceMode) {
        let g = geom();
        let input: Vec<u64> = (0..g.records() as u64).collect();
        let pass = Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind,
        };
        let mut engine_sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        engine_sys.set_service_mode(mode);
        engine_sys.load_records(0, &input);
        let engine_stats = execute_pass(&mut engine_sys, 0, 1, &pass).unwrap();
        let mut ref_sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        ref_sys.load_records(0, &input);
        let ref_stats = reference::execute_pass(&mut ref_sys, 0, 1, &pass).unwrap();
        assert_eq!(engine_stats.ios, ref_stats.ios, "I/O accounting diverged");
        assert_eq!(
            engine_sys.dump_records(1),
            ref_sys.dump_records(1),
            "placements diverged"
        );
    }

    #[test]
    fn mrc_pass_random() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = geom();
        for _ in 0..5 {
            let perm = catalog::random_mrc(&mut rng, g.n(), g.m());
            run_one_pass(&perm, PassKind::Mrc);
        }
    }

    #[test]
    fn mld_pass_random() {
        let mut rng = StdRng::seed_from_u64(52);
        let g = geom();
        for _ in 0..5 {
            let perm = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            run_one_pass(&perm, PassKind::Mld);
        }
    }

    #[test]
    fn mrc_runs_as_mld_too() {
        // Every MRC permutation is MLD (Section 3), so the MLD
        // executor must also handle it.
        let mut rng = StdRng::seed_from_u64(53);
        let g = geom();
        let perm = catalog::random_mrc(&mut rng, g.n(), g.m());
        run_one_pass(&perm, PassKind::Mld);
    }

    #[test]
    fn gray_code_one_pass() {
        let g = geom();
        run_one_pass(&catalog::gray_code(g.n()), PassKind::Mrc);
    }

    #[test]
    fn vector_reversal_one_pass() {
        let g = geom();
        // y = x ⊕ 1...1 is MRC (identity matrix) with full complement.
        run_one_pass(&catalog::vector_reversal(g.n()), PassKind::Mrc);
    }

    #[test]
    fn identity_pass_keeps_order() {
        let g = geom();
        run_one_pass(&Bmmc::identity(g.n()), PassKind::Mrc);
    }

    #[test]
    fn eraser_form_pass_is_mld() {
        // An eraser-form matrix exercises genuinely independent writes.
        let g = geom();
        let (b, m, n) = (g.b(), g.m(), g.n());
        let e = crate::factors::eraser(
            n,
            b,
            m,
            &[
                crate::factors::ColAdd { src: m, dst: b },
                crate::factors::ColAdd {
                    src: m + 1,
                    dst: b + 1,
                },
            ],
        );
        let perm = Bmmc::new(e, BitVec::zeros(n)).unwrap();
        assert!(crate::classes::is_mld(perm.matrix(), b, m));
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..g.records() as u64).collect();
        sys.load_records(0, &input);
        let pass = Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind: PassKind::Mld,
        };
        let stats = execute_pass(&mut sys, 0, 1, &pass).unwrap();
        let expect = reference_permute(&input, |x| perm.target(x));
        assert_eq!(sys.dump_records(1), expect);
        // This one genuinely disperses: writes are not all striped.
        assert!(stats.ios.independent_writes() > 0);
    }

    #[test]
    fn mld_inverse_pass_random() {
        // The inverse of an MLD permutation runs in one pass with the
        // mirrored discipline: independent reads, striped writes (the
        // helper asserts both).
        let mut rng = StdRng::seed_from_u64(54);
        let g = geom();
        for _ in 0..5 {
            let fwd = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            run_one_pass(&fwd.inverse(), PassKind::MldInverse);
        }
    }

    #[test]
    fn mrc_runs_as_mld_inverse_too() {
        // MRC inverses are MRC (Theorem 18) ⊆ MLD, so the MLD⁻¹
        // executor must handle an MRC matrix as well.
        let mut rng = StdRng::seed_from_u64(55);
        let g = geom();
        let perm = catalog::random_mrc(&mut rng, g.n(), g.m());
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..g.records() as u64).collect();
        sys.load_records(0, &input);
        let pass = Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind: PassKind::MldInverse,
        };
        execute_pass(&mut sys, 0, 1, &pass).unwrap();
        let expect = reference_permute(&input, |x| perm.target(x));
        assert_eq!(sys.dump_records(1), expect);
    }

    #[test]
    fn engine_matches_reference_all_kinds_and_modes() {
        let mut rng = StdRng::seed_from_u64(56);
        let g = geom();
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let mrc = catalog::random_mrc(&mut rng, g.n(), g.m());
            assert_matches_reference(&mrc, PassKind::Mrc, mode);
            let mld = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            assert_matches_reference(&mld, PassKind::Mld, mode);
            let inv = catalog::random_mld(&mut rng, g.n(), g.b(), g.m()).inverse();
            assert_matches_reference(&inv, PassKind::MldInverse, mode);
        }
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let perm = Bmmc::identity(5);
        let pass = Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind: PassKind::Mrc,
        };
        assert!(matches!(
            execute_pass(&mut sys, 0, 1, &pass),
            Err(BmmcError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn reference_permute_sanity() {
        let input = [10u64, 11, 12, 13];
        let out = reference_permute(&input, |x| x ^ 0b11);
        assert_eq!(out, vec![13, 12, 11, 10]);
    }
}
