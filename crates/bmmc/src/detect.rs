//! Run-time BMMC detection (Section 6).
//!
//! Given a vector of `N` target addresses stored on the disk system
//! (the record at source address `x` holds `π(x)`), decide whether `π`
//! is BMMC — and recover `(A, c)` if so — in at most
//! `N/BD + ⌈(lg(N/B)+1)/D⌉` parallel reads.
//!
//! The candidate is forced: `c` must be `π(0)`, and column `A_k` must
//! be `π(2^k) ⊕ c` (eq. 20 with `S_k = ∅`). Reading all unit-vector
//! targets naively would hammer disk `D₀` (every address `2^k` with
//! `k ≥ b + d` lives there), so the schedule instead reads, in the
//! *first* parallel I/O, block 0 of disk 0 (giving `c` and the offset
//! columns), stripe 0 of each power-of-two disk (giving the disk
//! columns), and stripe `2^t` of each non-power-of-two disk `q` —
//! decoding stripe columns through eq. (20) using the just-recovered
//! disk columns of `q`. Each subsequent parallel I/O recovers `D` more
//! stripe columns the same way. Verification then scans all `N`
//! addresses in `N/BD` striped reads, stopping at the first mismatch.

use crate::bmmc::Bmmc;
use crate::error::Result;
use crate::eval::BlockEvaluator;
use gf2::{BitMatrix, BitVec};
use pdm::{BlockRef, DiskSystem};

/// Read counts for the two detection phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Parallel reads spent recovering the candidate `(A, c)`.
    pub candidate_reads: u64,
    /// Parallel reads spent verifying (≤ `N/BD`; less on early exit).
    pub verify_reads: u64,
}

impl DetectStats {
    /// Total parallel reads.
    pub fn total(&self) -> u64 {
        self.candidate_reads + self.verify_reads
    }
}

/// Why a target vector was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NotBmmcReason {
    /// The forced candidate matrix is singular, so no BMMC permutation
    /// can produce this vector.
    SingularCandidate,
    /// Verification found a source address whose stored target
    /// disagrees with the candidate map.
    Mismatch {
        /// The offending source address.
        address: u64,
        /// The stored target.
        stored: u64,
        /// What the candidate predicts.
        predicted: u64,
    },
}

/// Detection outcome.
#[derive(Clone, Debug)]
pub enum Detection {
    /// The vector is exactly `x ↦ A x ⊕ c`.
    Bmmc {
        /// The recovered permutation.
        perm: Bmmc,
        /// Parallel-read counts.
        stats: DetectStats,
    },
    /// The vector is not a BMMC permutation.
    NotBmmc {
        /// Why it was rejected.
        reason: NotBmmcReason,
        /// Parallel-read counts.
        stats: DetectStats,
    },
}

impl Detection {
    /// The recovered permutation, if BMMC.
    pub fn bmmc(&self) -> Option<&Bmmc> {
        match self {
            Detection::Bmmc { perm, .. } => Some(perm),
            Detection::NotBmmc { .. } => None,
        }
    }

    /// Parallel-read counts for either outcome.
    pub fn stats(&self) -> DetectStats {
        match self {
            Detection::Bmmc { stats, .. } | Detection::NotBmmc { stats, .. } => *stats,
        }
    }
}

/// Runs Section 6 detection on the target vector stored in `portion`
/// of `sys` (record at address `x` = `π(x)` as a `u64`).
///
/// ```
/// use bmmc::catalog;
/// use bmmc::detect::{detect_bmmc, load_target_vector};
/// use pdm::Geometry;
///
/// let geom = Geometry::new(1 << 13, 1 << 3, 1 << 4, 1 << 8).unwrap();
/// let perm = catalog::gray_code(13);
/// let mut sys = load_target_vector(geom, &perm.target_vector());
/// let det = detect_bmmc(&mut sys, 0).unwrap();
/// assert_eq!(det.bmmc().unwrap(), &perm);
/// assert_eq!(det.stats().total(), 65); // N/BD + ⌈(lg(N/B)+1)/D⌉
/// ```
pub fn detect_bmmc(sys: &mut DiskSystem<u64>, portion: usize) -> Result<Detection> {
    let geom = sys.geometry();
    let (n, b, d) = (geom.n(), geom.b(), geom.d());
    let s = geom.s();
    let disks = geom.disks();
    let base = sys.portion_base(portion);
    let before = sys.stats();

    // ---- Phase 1: recover the candidate (A, c).
    let mut cols = vec![0u64; n]; // column j of A as a target-bit mask
    let mut c = 0u64;

    // First parallel read: assemble the request list and remember how
    // to decode each block.
    enum Decode {
        /// Block 0 of disk 0: c and the offset columns A_0..A_{b−1}.
        OffsetBlock,
        /// Stripe 0 of disk 2^j: the disk column A_{b+j}.
        DiskColumn(usize),
        /// Stripe 2^t of disk q: stripe column A_{b+d+t} via eq. (20).
        StripeColumn { t: usize, q: usize },
    }
    let mut refs = vec![BlockRef {
        disk: 0,
        slot: base,
    }];
    let mut decodes = vec![Decode::OffsetBlock];
    for j in 0..d {
        refs.push(BlockRef {
            disk: 1 << j,
            slot: base,
        });
        decodes.push(Decode::DiskColumn(j));
    }
    let mut t = 0usize; // next stripe bit to recover
    for q in 1..disks {
        if q.is_power_of_two() {
            continue;
        }
        if t >= s {
            break;
        }
        refs.push(BlockRef {
            disk: q,
            slot: base + (1 << t),
        });
        decodes.push(Decode::StripeColumn { t, q });
        t += 1;
    }
    let blocks = sys.read_blocks(&refs)?;
    for (decode, block) in decodes.iter().zip(&blocks) {
        match *decode {
            Decode::OffsetBlock => {
                c = block[0];
                for k in 0..b {
                    cols[k] = block[1 << k] ^ c;
                }
            }
            Decode::DiskColumn(j) => {
                cols[b + j] = block[0] ^ c;
            }
            Decode::StripeColumn { t, q } => {
                cols[b + d + t] = decode_stripe_column(block[0], q, b, &cols, c);
            }
        }
    }

    // Subsequent reads: D more stripe columns each, on arbitrary
    // distinct disks, decoded through the disk columns.
    while t < s {
        let mut refs = Vec::with_capacity(disks);
        let mut pend = Vec::with_capacity(disks);
        for q in 0..disks {
            if t >= s {
                break;
            }
            refs.push(BlockRef {
                disk: q,
                slot: base + (1 << t),
            });
            pend.push((t, q));
            t += 1;
        }
        let blocks = sys.read_blocks(&refs)?;
        for ((t, q), block) in pend.into_iter().zip(&blocks) {
            cols[b + d + t] = decode_stripe_column(block[0], q, b, &cols, c);
        }
    }
    let candidate_reads = sys.stats().since(&before).parallel_reads;

    // Assemble the candidate and check its form.
    let mut a = BitMatrix::zeros(n, n);
    for (j, &col) in cols.iter().enumerate() {
        a.set_column(j, &BitVec::from_u64(n, col));
    }
    let perm = match Bmmc::new(a, BitVec::from_u64(n, c)) {
        Ok(p) => p,
        Err(_) => {
            return Ok(Detection::NotBmmc {
                reason: NotBmmcReason::SingularCandidate,
                stats: DetectStats {
                    candidate_reads,
                    verify_reads: 0,
                },
            });
        }
    };

    // ---- Phase 2: verify all N addresses with striped reads. The
    // scanned addresses are consecutive, so the candidate is evaluated
    // block-hoisted: one high-bits evaluation per block of the stripe
    // plus a residual lookup per record (see [`BlockEvaluator`]).
    let bev = BlockEvaluator::new(&perm, b as u32);
    let block = geom.block();
    let stripe_len = (block * disks) as u64;
    let mid = sys.stats();
    for slot in 0..geom.stripes() {
        let stripe = sys.read_stripe(base + slot)?;
        let start = slot as u64 * stripe_len;
        let first_block = start >> b;
        for (blk, chunk) in stripe.chunks_exact(block).enumerate() {
            let ybase = bev.block_base(first_block + blk as u64);
            for (off, &stored) in chunk.iter().enumerate() {
                let predicted = ybase ^ bev.residual(off as u64);
                if stored != predicted {
                    let x = start + (blk * block + off) as u64;
                    return Ok(Detection::NotBmmc {
                        reason: NotBmmcReason::Mismatch {
                            address: x,
                            stored,
                            predicted,
                        },
                        stats: DetectStats {
                            candidate_reads,
                            verify_reads: sys.stats().since(&mid).parallel_reads,
                        },
                    });
                }
            }
        }
    }
    Ok(Detection::Bmmc {
        perm,
        stats: DetectStats {
            candidate_reads,
            verify_reads: sys.stats().since(&mid).parallel_reads,
        },
    })
}

/// Eq. (20): `A_{b+d+t} = y ⊕ (⊕_{j ∈ bits(q)} A_{b+j}) ⊕ c`, where `y`
/// is the stored target of the address with stripe field `2^t` and
/// disk field `q`.
fn decode_stripe_column(y: u64, q: usize, b: usize, cols: &[u64], c: u64) -> u64 {
    let mut acc = y ^ c;
    let mut q = q;
    let mut j = 0;
    while q != 0 {
        if q & 1 == 1 {
            acc ^= cols[b + j];
        }
        q >>= 1;
        j += 1;
    }
    acc
}

/// Loads a target vector into a fresh memory-backed disk system sized
/// by `geom` (a convenience for tests and experiments).
pub fn load_target_vector(geom: pdm::Geometry, targets: &[u64]) -> DiskSystem<u64> {
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 1);
    sys.load_records(0, targets);
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::detection_reads;
    use crate::catalog;
    use pdm::Geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Paper Figure 2 geometry: n=13, b=3, d=4, m=8.
    fn fig2() -> Geometry {
        Geometry::new(1 << 13, 1 << 3, 1 << 4, 1 << 8).unwrap()
    }

    fn detect_vector(geom: Geometry, targets: &[u64]) -> Detection {
        let mut sys = load_target_vector(geom, targets);
        detect_bmmc(&mut sys, 0).unwrap()
    }

    #[test]
    fn recovers_random_bmmc() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = fig2();
        for _ in 0..5 {
            let perm = catalog::random_bmmc(&mut rng, g.n());
            let det = detect_vector(g, &perm.target_vector());
            let found = det.bmmc().expect("should detect BMMC");
            assert_eq!(found, &perm, "recovered wrong (A, c)");
        }
    }

    #[test]
    fn read_count_matches_section6_bound() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = fig2();
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let det = detect_vector(g, &perm.target_vector());
        let stats = det.stats();
        // Candidate phase: ⌈(lg(N/B)+1)/D⌉ = ⌈11/16⌉ = 1 read.
        assert_eq!(stats.candidate_reads, 1);
        assert_eq!(stats.verify_reads as usize, g.stripes());
        assert_eq!(stats.total(), detection_reads(&g));
    }

    #[test]
    fn read_count_single_disk() {
        let mut rng = StdRng::seed_from_u64(73);
        // D = 1: candidate needs 1 + s reads = lg(N/B)+1.
        let g = Geometry::new(1 << 10, 1 << 2, 1, 1 << 6).unwrap();
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let det = detect_vector(g, &perm.target_vector());
        let stats = det.stats();
        assert_eq!(
            stats.candidate_reads as usize,
            g.lg_nb() + 1,
            "D=1 candidate phase"
        );
        assert_eq!(stats.total(), detection_reads(&g));
        assert_eq!(det.bmmc().unwrap(), &perm);
    }

    #[test]
    fn detects_named_permutations() {
        let g = fig2();
        for perm in [
            catalog::bit_reversal(g.n()),
            catalog::gray_code(g.n()),
            catalog::vector_reversal(g.n()),
            catalog::transpose(g.n(), 5),
        ] {
            let det = detect_vector(g, &perm.target_vector());
            assert_eq!(det.bmmc().expect("named perm is BMMC"), &perm);
        }
    }

    #[test]
    fn rejects_non_bmmc_permutation() {
        let g = fig2();
        // A permutation that is NOT affine: swap two records only.
        let mut targets: Vec<u64> = (0..g.records() as u64).collect();
        targets.swap(5, 9);
        let det = detect_vector(g, &targets);
        match det {
            Detection::NotBmmc { reason, stats } => {
                assert!(matches!(reason, NotBmmcReason::Mismatch { .. }));
                assert!(stats.total() <= detection_reads(&g));
            }
            Detection::Bmmc { .. } => panic!("swap of two records detected as BMMC"),
        }
    }

    #[test]
    fn rejects_singular_candidate_cheaply() {
        let g = fig2();
        // Constant-0 "targets": candidate c = 0 and every column 0 →
        // singular, rejected with zero verification reads.
        let targets = vec![0u64; g.records()];
        let det = detect_vector(g, &targets);
        match det {
            Detection::NotBmmc { reason, stats } => {
                assert_eq!(reason, NotBmmcReason::SingularCandidate);
                assert_eq!(stats.verify_reads, 0);
            }
            Detection::Bmmc { .. } => panic!("constant vector detected as BMMC"),
        }
    }

    #[test]
    fn early_exit_on_late_mismatch_counts_partial_reads() {
        let g = fig2();
        let perm = catalog::gray_code(g.n());
        let mut targets = perm.target_vector();
        // Corrupt one entry near the middle.
        let at = g.records() / 2 + 3;
        targets[at] ^= 1;
        let det = detect_vector(g, &targets);
        match det {
            Detection::NotBmmc { reason, stats } => {
                assert!(matches!(reason, NotBmmcReason::Mismatch { .. }));
                assert!(stats.verify_reads < g.stripes() as u64);
            }
            Detection::Bmmc { .. } => panic!("corrupted vector detected as BMMC"),
        }
    }

    #[test]
    fn identity_is_detected() {
        let g = fig2();
        let targets: Vec<u64> = (0..g.records() as u64).collect();
        let det = detect_vector(g, &targets);
        assert!(det.bmmc().unwrap().is_identity());
    }
}
