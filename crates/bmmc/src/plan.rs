//! The unified plan IR: one `Plan` value that every planner produces
//! and every executor consumes, plus the dynamic-programming whole-plan
//! fuser and the two-sided cost model behind `--algorithm auto`.
//!
//! The paper's Theorem 17 argument is a *planning* argument — choose
//! the factorization whose pass sequence minimizes I/O — but until this
//! module the repo planned in three disconnected layers:
//! [`crate::factoring`] emitted pass lists, [`crate::fusion`] fused
//! adjacent pairs greedily left-to-right, and the BMMC-vs-sort choice
//! was a hardcoded heuristic. A [`Plan`] is a sequence of typed
//! [`PlanStep`]s — classic or fused BMMC passes
//! ([`crate::fusion::FusedPass`]) and external-sort passes
//! ([`SortPass`], mirroring `extsort`'s schedule exactly via
//! [`crate::bounds::merge_sort_levels`]) — each of which knows its
//! exact parallel-I/O count and its access patterns, so a plan can be
//! costed two ways:
//!
//! * **exact parallel I/Os** ([`Plan::parallel_ios`]): the paper's cost
//!   metric, `2N/BD` per BMMC round-trip and the replayed merge
//!   schedule for sort passes — these counts are *exact*, matched
//!   operation-for-operation by the executors and gated in the bench;
//! * **modeled wall-clock** ([`Plan::modeled_ms`]): a seek-aware
//!   estimate under a [`pdm::TimingModel`], charging each pass side by
//!   its [`AccessPattern`] — striped sides run mostly sequential (one
//!   positioning seek, then track-rate continuation), gathered /
//!   scattered / forecast-refill sides pay a seek per operation. Two
//!   plans with equal parallel-I/O counts can differ several-fold here,
//!   which is exactly the distinction the paper's model abstracts away
//!   and [`pdm::TimingTracker`] makes visible.
//!
//! [`candidates`] enumerates every executable plan for a permutation —
//! the DP-fused BMMC plan plus the external-sort general-permutation
//! route under each merge strategy — and [`choose`] picks the cheapest
//! by modeled wall-clock (exact I/Os as tie-break). The CLI's
//! `--algorithm auto` and the `engine_sweep` `planner` crossover table
//! are both this pair of calls.
//!
//! # The DP fuser
//!
//! [`fuse_passes_dp`] replaces greedy left-to-right pair absorption
//! ([`crate::fusion::fuse_passes_greedy`]) with an interval dynamic
//! program over the whole pass sequence. Its legality rule generalizes
//! both greedy rules: a contiguous interval of passes with composed
//! map `C = A_j ⋯ A_i` is one-step executable iff some *gather split*
//! exists — a prefix `G = A_s ⋯ A_i` (possibly empty) with `G` in
//! MLD⁻¹ and the remaining suffix `W = C·G⁻¹` in MLD:
//!
//! * `G ∈ MLD⁻¹` means `G⁻¹` disperses memoryloads onto whole blocks
//!   spread evenly across the disks (Lemma 13), so the iteration units
//!   `{x : G(x) ∈ memoryload u}` = `G⁻¹(memoryload u)` are gatherable
//!   in `M/BD` parallel reads (striped reads when the prefix is empty);
//! * `W ∈ MLD` means each gathered unit lands on whole target blocks
//!   evenly spread — scatterable in `M/BD` parallel writes, striped
//!   when `W` is in fact MRC (Lemma 12).
//!
//! Every greedy group satisfies this rule (discipline-rule chains have
//! `W` a composition of striped readers, which stays in MLD because
//! MLD∘MRC ⊆ MLD and MRC∘MRC ⊆ MRC; rank-rule groups are the empty or
//! full split), so the DP **never produces more steps than greedy**;
//! when the step counts tie, [`fuse_passes_dp`] returns the greedy
//! plan verbatim, so behavior is bit-for-bit identical everywhere
//! greedy was already optimal. Where greedy was *not* optimal the DP
//! finds re-associations pair fusion cannot see. The closure lemmas
//! pin down exactly when: because MLD∘MRC ⊆ MLD and right-composition
//! with an MRC preserves the MLD kernel condition, any split whose
//! gather prefix is a *proper* prefix of a three-pass `MLD;MRC;MLD`
//! chain is visible to greedy's rank rule too — so the DP wins
//! precisely when the **full** composition classifies while the pair
//! seam does not. [`reassociation_case`] commits such a chain: greedy
//! is stuck at two steps — `[p₁]`, `[p₂+p₃]` — while the whole product
//! telescopes into MLD⁻¹ and the full-gather split executes all three
//! passes in one round-trip (`tests/planner.rs`, and the `reassoc` row
//! of the bench `planner` section).

use crate::algorithm::plan_passes;
use crate::bmmc::Bmmc;
use crate::bounds::{self, MergeStrategy};
use crate::classes::{is_mld, is_mld_inverse, is_mrc};
use crate::error::Result;
use crate::factoring::Pass;
use crate::fusion::{fuse_passes_greedy, FusedPass, FusedPlan, WriteDiscipline};
use pdm::{Geometry, TimingModel};

/// How one side (read or write) of a plan step touches the disks —
/// the distinction the wall-clock model charges for and the paper's
/// parallel-I/O metric deliberately ignores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// Consecutive slots per disk: one positioning seek, then
    /// track-rate continuation (striped memoryload sides, run
    /// formation, merge output).
    Sequential,
    /// Every operation repositions the head: gathered reads, scattered
    /// writes, interleaved merge-run reads, forecast block refills.
    Random,
}

/// The exact I/O shape of one plan step: operation counts and access
/// patterns per side. Parallel-I/O counts are exact (matched by the
/// executors); patterns feed the wall-clock model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepIo {
    /// Parallel read operations.
    pub reads: u64,
    /// How the reads touch the disks.
    pub read_pattern: AccessPattern,
    /// Parallel write operations.
    pub writes: u64,
    /// How the writes touch the disks.
    pub write_pattern: AccessPattern,
}

impl StepIo {
    /// Total parallel I/Os of the step (the paper's metric).
    pub fn parallel_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Modeled wall-clock of the step under `timing`: a sequential
    /// side of `k` operations costs one seek plus `k−1` track-rate
    /// continuations plus `k` transfers; a random side costs a seek
    /// and a transfer per operation (each operation moves one block
    /// per participating disk, so the barrier-synchronous makespan of
    /// one operation is a single access's cost — exactly what
    /// [`pdm::TimingTracker`] charges).
    pub fn modeled_ms(&self, timing: &TimingModel) -> f64 {
        side_ms(self.reads, self.read_pattern, timing)
            + side_ms(self.writes, self.write_pattern, timing)
    }
}

fn side_ms(ops: u64, pattern: AccessPattern, t: &TimingModel) -> f64 {
    if ops == 0 {
        return 0.0;
    }
    let ops_f = ops as f64;
    match pattern {
        AccessPattern::Sequential => {
            t.seek_ms + (ops_f - 1.0) * t.sequential_ms + ops_f * t.transfer_ms
        }
        AccessPattern::Random => ops_f * (t.seek_ms + t.transfer_ms),
    }
}

/// What a [`SortPass`] does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortPassKind {
    /// The run-formation pass: read each memoryload striped, sort in
    /// RAM, write it back striped as one sorted run.
    RunFormation,
    /// One merge level: every non-singleton group of runs is merged;
    /// leftover singleton groups stay in place and charge nothing.
    Merge {
        /// Groups actually merged on this level.
        merged_groups: usize,
        /// Leftover groups of one run, left in place.
        singleton_groups: usize,
    },
}

/// One external-sort pass placed on a plan — the `extsort` schedule
/// mirrored step-for-step (run sizes, `chunks(fan_in)` grouping, the
/// leftover-singleton rule) via [`crate::bounds::merge_sort_levels`],
/// so the planned counts replay the measured ones exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SortPass {
    /// What this pass does.
    pub kind: SortPassKind,
    /// Exact I/O shape of the pass.
    pub io: StepIo,
}

/// One step of a [`Plan`]: a single disk round-trip (BMMC) or one
/// external-sort pass.
#[derive(Clone, Debug)]
pub enum PlanStep {
    /// A classic or fused BMMC one-pass permutation: one read and one
    /// write of all `N` records, `2N/BD` parallel I/Os.
    Bmmc(FusedPass),
    /// One pass of an external merge sort (run formation or a merge
    /// level).
    Sort(SortPass),
}

impl PlanStep {
    /// The exact I/O shape of this step on `geom`.
    pub fn io(&self, geom: &Geometry) -> StepIo {
        match self {
            PlanStep::Bmmc(step) => {
                let stripes = geom.stripes() as u64;
                StepIo {
                    reads: stripes,
                    read_pattern: if step.gather.is_some() {
                        AccessPattern::Random
                    } else {
                        AccessPattern::Sequential
                    },
                    writes: stripes,
                    write_pattern: match step.write {
                        WriteDiscipline::Striped => AccessPattern::Sequential,
                        WriteDiscipline::Scatter => AccessPattern::Random,
                    },
                }
            }
            PlanStep::Sort(pass) => pass.io,
        }
    }

    /// Display label, e.g. `"Mrc+Mld"`, `"run-formation"`, or
    /// `"merge(16 groups)"`.
    pub fn label(&self) -> String {
        match self {
            PlanStep::Bmmc(step) => step.label(),
            PlanStep::Sort(pass) => match pass.kind {
                SortPassKind::RunFormation => "run-formation".to_string(),
                SortPassKind::Merge {
                    merged_groups,
                    singleton_groups,
                } => {
                    if singleton_groups > 0 {
                        format!("merge({merged_groups} groups, {singleton_groups} held)")
                    } else {
                        format!("merge({merged_groups} groups)")
                    }
                }
            },
        }
    }
}

/// Which executable route a candidate [`Plan`] takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateKind {
    /// The BMMC route: the one-pass fast paths or the Section 5
    /// factoring, DP-fused.
    Bmmc,
    /// The general-permutation route: external merge sort on the
    /// target addresses under the given merge strategy.
    Sort(MergeStrategy),
}

impl CandidateKind {
    /// Stable short name: `"bmmc"`, `"sort-single"`, `"sort-double"`,
    /// `"sort-forecast"` — the labels the CLI candidate table and the
    /// bench `planner` section use.
    pub fn name(&self) -> &'static str {
        match self {
            CandidateKind::Bmmc => "bmmc",
            CandidateKind::Sort(MergeStrategy::SingleBuffered) => "sort-single",
            CandidateKind::Sort(MergeStrategy::DoubleBuffered) => "sort-double",
            CandidateKind::Sort(MergeStrategy::Forecast) => "sort-forecast",
        }
    }
}

/// An executable plan: a typed step sequence with exact per-step I/O
/// counts and a modeled wall-clock. Produced by [`Plan::bmmc`],
/// [`Plan::from_passes`], and [`Plan::sort`]; consumed by
/// [`crate::algorithm::execute_plan_ir`] (BMMC route) and — because
/// `extsort` is a sibling crate — by the CLI/bench layers for the sort
/// route, which exact-check the measured counts against the plan.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Which route this plan takes.
    pub candidate: CandidateKind,
    /// The steps, in execution order.
    pub steps: Vec<PlanStep>,
}

impl Plan {
    /// The BMMC-route plan for `perm` on `geom`: the one-pass fast
    /// paths or the Section 5 factoring, fused by [`fuse_passes_dp`].
    pub fn bmmc(perm: &Bmmc, geom: &Geometry) -> Result<Plan> {
        let passes = plan_passes(perm, geom.b(), geom.m())?;
        Ok(Plan::from_passes(&passes, geom.b(), geom.m()))
    }

    /// Places an explicit pass list on the IR, DP-fused.
    pub fn from_passes(passes: &[Pass], b: usize, m: usize) -> Plan {
        let fused = fuse_passes_dp(passes, b, m);
        Plan {
            candidate: CandidateKind::Bmmc,
            steps: fused.steps.into_iter().map(PlanStep::Bmmc).collect(),
        }
    }

    /// The general-permutation plan on `geom` under `strategy`:
    /// run formation plus the exact merge-level schedule. `None` when
    /// memory is too small to merge (fan-in < 2).
    pub fn sort(geom: &Geometry, strategy: MergeStrategy) -> Option<Plan> {
        let levels = bounds::merge_sort_levels(geom, strategy)?;
        let stripes = geom.stripes() as u64;
        let mut steps = vec![PlanStep::Sort(SortPass {
            kind: SortPassKind::RunFormation,
            io: StepIo {
                reads: stripes,
                read_pattern: AccessPattern::Sequential,
                writes: stripes,
                write_pattern: AccessPattern::Sequential,
            },
        })];
        for level in levels {
            // Striped strategies read one stripe per refill but hop
            // between the interleaved runs (Random); the forecasting
            // merge performs `D` independent single-block refills per
            // merged stripe. Writes stream each group's output run.
            steps.push(PlanStep::Sort(SortPass {
                kind: SortPassKind::Merge {
                    merged_groups: level.merged_groups,
                    singleton_groups: level.singleton_groups,
                },
                io: StepIo {
                    reads: level.parallel_ios - level.merged_stripes,
                    read_pattern: AccessPattern::Random,
                    writes: level.merged_stripes,
                    write_pattern: AccessPattern::Sequential,
                },
            }));
        }
        Some(Plan {
            candidate: CandidateKind::Sort(strategy),
            steps,
        })
    }

    /// Number of steps (disk round-trips / sort passes).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Exact total parallel I/Os of the plan on `geom`. For the BMMC
    /// route this is `num_steps · 2N/BD`; for the sort route it equals
    /// [`crate::bounds::merge_sort_ios`] exactly.
    pub fn parallel_ios(&self, geom: &Geometry) -> u64 {
        self.steps.iter().map(|s| s.io(geom).parallel_ios()).sum()
    }

    /// Modeled wall-clock of the plan on `geom` under `timing` (see
    /// [`StepIo::modeled_ms`]). Deterministic — a pure function of the
    /// plan and the model, so crossover picks are gateable.
    pub fn modeled_ms(&self, geom: &Geometry, timing: &TimingModel) -> f64 {
        self.steps
            .iter()
            .map(|s| s.io(geom).modeled_ms(timing))
            .sum()
    }

    /// The BMMC steps as a [`FusedPlan`] for the fused executors;
    /// `None` for sort-route plans.
    pub fn fused_plan(&self) -> Option<FusedPlan> {
        let mut steps = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            match step {
                PlanStep::Bmmc(fp) => steps.push(fp.clone()),
                PlanStep::Sort(_) => return None,
            }
        }
        Some(FusedPlan { steps })
    }

    /// One-line description: candidate name plus the step labels.
    pub fn describe(&self) -> String {
        let labels: Vec<String> = self.steps.iter().map(PlanStep::label).collect();
        format!("{}: {}", self.candidate.name(), labels.join("; "))
    }
}

/// Every executable candidate plan for performing `perm` on `geom`:
/// the DP-fused BMMC route (when `perm` factors — it always does for a
/// nonsingular matrix) followed by the three external-sort routes
/// (when the geometry can merge). Order is stable; [`choose`] breaks
/// cost ties by this order.
pub fn candidates(perm: &Bmmc, geom: &Geometry) -> Vec<Plan> {
    let mut out = Vec::new();
    if let Ok(plan) = Plan::bmmc(perm, geom) {
        out.push(plan);
    }
    for strategy in [
        MergeStrategy::SingleBuffered,
        MergeStrategy::DoubleBuffered,
        MergeStrategy::Forecast,
    ] {
        if let Some(plan) = Plan::sort(geom, strategy) {
            out.push(plan);
        }
    }
    out
}

/// Picks the cheapest candidate: minimal modeled wall-clock under
/// `timing`, ties broken by exact parallel-I/O count, then by
/// [`candidates`] order. Returns `None` only for an empty slice.
pub fn choose<'a>(plans: &'a [Plan], geom: &Geometry, timing: &TimingModel) -> Option<&'a Plan> {
    plans.iter().min_by(|a, b| {
        let (ma, mb) = (a.modeled_ms(geom, timing), b.modeled_ms(geom, timing));
        ma.partial_cmp(&mb)
            .expect("modeled costs are finite")
            .then(a.parallel_ios(geom).cmp(&b.parallel_ios(geom)))
    })
}

/// Fuses a pass plan by interval dynamic programming over the whole
/// sequence (see the module docs for the gather-split legality rule).
/// Guarantees:
///
/// * never more steps than [`fuse_passes_greedy`];
/// * when the step counts tie, the greedy plan is returned verbatim —
///   placement, I/O, and message counts stay bit-identical everywhere
///   greedy was already optimal;
/// * strictly fewer steps where a re-association exists (e.g. the
///   `MLD;MRC;MLD` case of `tests/planner.rs`).
pub fn fuse_passes_dp(passes: &[Pass], b: usize, m: usize) -> FusedPlan {
    let greedy = fuse_passes_greedy(passes, b, m);
    let l = passes.len();
    if l <= 1 {
        return greedy;
    }

    // comp[i][j]: composition A_j ⋯ A_i of passes i..=j (affine).
    let mut comp: Vec<Vec<Option<Bmmc>>> = vec![vec![None; l]; l];
    for i in 0..l {
        comp[i][i] = Some(passes[i].as_bmmc());
        for j in i + 1..l {
            let prefix = comp[i][j - 1].clone().expect("filled above");
            comp[i][j] = Some(passes[j].as_bmmc().compose(&prefix));
        }
    }
    // step[i][j]: the cheapest one-step execution of interval [i, j],
    // if any split makes it legal.
    let mut step: Vec<Vec<Option<FusedPass>>> = vec![vec![None; l]; l];
    for i in 0..l {
        for j in i..l {
            step[i][j] = interval_step(passes, &comp, i, j, b, m);
        }
    }

    // Prefix DP: dp[k] = fewest steps covering passes[0..k].
    let mut dp = vec![usize::MAX; l + 1];
    let mut back = vec![0usize; l + 1];
    dp[0] = 0;
    for j in 0..l {
        for i in 0..=j {
            if step[i][j].is_some() && dp[i] != usize::MAX && dp[i] + 1 < dp[j + 1] {
                dp[j + 1] = dp[i] + 1;
                back[j + 1] = i;
            }
        }
    }

    // Tie-break: greedy groups are always legal intervals, so
    // dp[l] ≤ greedy; on equality keep greedy's exact plan.
    if dp[l] == usize::MAX || dp[l] >= greedy.num_steps() {
        return greedy;
    }
    let mut cut = l;
    let mut steps_rev = Vec::with_capacity(dp[l]);
    while cut > 0 {
        let i = back[cut];
        steps_rev.push(
            step[i][cut - 1]
                .take()
                .expect("backtracked interval is legal"),
        );
        cut = i;
    }
    steps_rev.reverse();
    FusedPlan { steps: steps_rev }
}

/// The committed `MLD;MRC;MLD` re-association workload (the DP
/// fuser's flagship regression case, also a `planner`-section bench
/// row): a three-pass chain greedy pair fusion executes in two steps
/// but the DP executes in one.
///
/// Construction, at boundaries `(b, m)` with `n` address bits: let
/// `F = I + e_m e_bᵀ` (a lower-left unit — an involution satisfying
/// the MLD kernel condition, hence in MLD ∩ MLD⁻¹) and `E = Fᵀ` (an
/// upper-right unit, MRC). Then:
///
/// * `p₁ = F·E` is MLD but **not** MLD⁻¹ (`(FE)⁻¹ = EF` zeroes the
///   `(b, b)` entry, putting `e_b` in `ker α` while `δ e_b ≠ 0`);
/// * `p₂ = R`, an MRC chosen so `R·F·E` is in no one-pass class — and
///   for *every* MRC it is already outside MLD⁻¹, because
///   `(R·F·E)⁻¹ = E·F·R⁻¹` is MLD iff `E·F` is (right-multiplication
///   by an MRC preserves the kernel condition) and `E·F` is not;
/// * `p₃ = (EF)²·R⁻¹`, which is MLD because `(EF)² = I + e_b e_mᵀ +
///   e_m e_bᵀ + e_m e_mᵀ` satisfies the kernel condition and the
///   `R⁻¹` factor drops out of it.
///
/// Greedy: `[p₁]` scatters, `R·F·E` classifies nowhere, so the group
/// closes; `[p₂+p₃]` fuse by the discipline rule — two steps. DP: the
/// whole composition telescopes, `p₃·p₂·p₁ = (EF)²·(EF)⁻¹ = E·F`,
/// which is MLD⁻¹ — the full-gather split executes all three passes
/// in one round-trip, strictly fewer steps *and* parallel I/Os.
pub fn reassociation_case(n: usize, b: usize, m: usize) -> Vec<Pass> {
    use crate::catalog;
    use crate::factoring::PassKind;
    use crate::factors::{column_addition_matrix, eraser, ColAdd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(b + 1 < m && m < n, "need b < m < n with a nonempty band");
    let f =
        Bmmc::linear(eraser(n, b, m, &[ColAdd { src: m, dst: b }])).expect("units are nonsingular");
    let e = Bmmc::linear(column_addition_matrix(n, &[ColAdd { src: b, dst: m }]))
        .expect("units are nonsingular");
    let p1 = f.compose(&e); // F·E ∈ MLD \ MLD⁻¹
    let ef = e.compose(&f); // E·F = (F·E)⁻¹, the telescoped target
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let p2 = (0..200)
        .map(|_| catalog::random_mrc(&mut rng, n, m))
        .find(|r| {
            let c2 = r.compose(&p1);
            !is_mrc(c2.matrix(), m) && !is_mld(c2.matrix(), b, m)
        })
        .expect("an MRC breaking the pair composition exists");
    let p3 = ef.compose(&ef).compose(&p2.inverse()); // (EF)²·R⁻¹ ∈ MLD
    debug_assert!(is_mld(p1.matrix(), b, m) && !is_mld_inverse(p1.matrix(), b, m));
    debug_assert!(is_mld(p3.matrix(), b, m));
    debug_assert!(is_mld_inverse(p3.compose(&p2).compose(&p1).matrix(), b, m));
    let pass = |perm: &Bmmc, kind: PassKind| Pass {
        matrix: perm.matrix().clone(),
        complement: perm.complement().clone(),
        kind,
    };
    vec![
        pass(&p1, PassKind::Mld),
        pass(&p2, PassKind::Mrc),
        pass(&p3, PassKind::Mld),
    ]
}

/// The cheapest legal one-step execution of passes `i..=j`, trying
/// every gather split `s`: prefix `G = A_{s-1} ⋯ A_i` (empty when
/// `s = i`) must be in MLD⁻¹, suffix `W = A_j ⋯ A_s` (identity when
/// `s = j+1`) in MLD (striped writes when it is MRC). Preference
/// order: fewest random-access sides, then the shortest gather prefix.
fn interval_step(
    passes: &[Pass],
    comp: &[Vec<Option<Bmmc>>],
    i: usize,
    j: usize,
    b: usize,
    m: usize,
) -> Option<FusedPass> {
    let composed = |x: usize, y: usize| comp[x][y].as_ref().expect("interval composed");
    let c = composed(i, j);
    let mut best: Option<(u32, FusedPass)> = None;
    for s in i..=j + 1 {
        let gather = if s == i {
            None
        } else {
            let g = composed(i, s - 1);
            if !is_mld_inverse(g.matrix(), b, m) {
                continue;
            }
            Some(g.clone())
        };
        let striped_write = if s == j + 1 {
            true // empty suffix: the gather map is the whole step
        } else {
            let w = composed(s, j);
            if is_mrc(w.matrix(), m) {
                true
            } else if is_mld(w.matrix(), b, m) {
                false
            } else {
                continue;
            }
        };
        let write = if striped_write {
            WriteDiscipline::Striped
        } else {
            WriteDiscipline::Scatter
        };
        let random_sides = u32::from(gather.is_some()) + u32::from(!striped_write);
        if best.as_ref().is_some_and(|(c0, _)| *c0 <= random_sides) {
            continue;
        }
        let fused = FusedPass {
            matrix: c.matrix().clone(),
            complement: c.complement().clone(),
            gather,
            write,
            replaced: passes[i..=j].iter().map(|p| p.kind).collect(),
        };
        let done = random_sides == 0;
        best = Some((random_sides, fused));
        if done {
            break;
        }
    }
    // Defensive: a lone pass always executes as itself even if its
    // matrix defies its planner label.
    if best.is_none() && i == j {
        return Some(FusedPass::from_single(&passes[i]));
    }
    best.map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::factoring::PassKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    fn pass_of(perm: &Bmmc, kind: PassKind) -> Pass {
        Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind,
        }
    }

    #[test]
    fn dp_beats_greedy_on_the_reassociation_case() {
        let g = geom();
        let passes = reassociation_case(g.n(), g.b(), g.m());
        assert_eq!(
            passes.iter().map(|p| p.kind).collect::<Vec<_>>(),
            vec![PassKind::Mld, PassKind::Mrc, PassKind::Mld]
        );
        let greedy = fuse_passes_greedy(&passes, g.b(), g.m());
        let dp = fuse_passes_dp(&passes, g.b(), g.m());
        assert_eq!(greedy.num_steps(), 2, "greedy must be stuck at two steps");
        assert_eq!(dp.num_steps(), 1, "DP must find the re-association");
        assert!(dp.predicted_ios(&g) < greedy.predicted_ios(&g));
        let mut composed = Bmmc::identity(g.n());
        for p in &passes {
            composed = p.as_bmmc().compose(&composed);
        }
        assert!(dp.verify(&composed), "DP plan must recompose the product");
        let step = &dp.steps[0];
        assert!(
            step.gather.is_some(),
            "the split gathers through the full MLD⁻¹ composition"
        );
        assert_eq!(step.write, WriteDiscipline::Striped);
    }

    #[test]
    fn dp_ties_return_the_greedy_plan_verbatim() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let perm = catalog::random_bmmc(&mut rng, g.n());
            let passes = plan_passes(&perm, g.b(), g.m()).unwrap();
            let greedy = fuse_passes_greedy(&passes, g.b(), g.m());
            let dp = fuse_passes_dp(&passes, g.b(), g.m());
            assert!(dp.num_steps() <= greedy.num_steps());
            if dp.num_steps() == greedy.num_steps() {
                for (a, b2) in dp.steps.iter().zip(&greedy.steps) {
                    assert_eq!(a.matrix, b2.matrix);
                    assert_eq!(a.complement, b2.complement);
                    assert_eq!(a.write, b2.write);
                    assert_eq!(a.replaced, b2.replaced);
                    assert_eq!(
                        a.gather.as_ref().map(|g2| g2.matrix().clone()),
                        b2.gather.as_ref().map(|g2| g2.matrix().clone())
                    );
                }
            }
        }
    }

    #[test]
    fn sort_plan_replays_the_bounds_schedule_exactly() {
        for strategy in [
            MergeStrategy::SingleBuffered,
            MergeStrategy::DoubleBuffered,
            MergeStrategy::Forecast,
        ] {
            let g = Geometry::new(1 << 17, 1 << 3, 1 << 4, 1 << 12).unwrap();
            let plan = Plan::sort(&g, strategy).expect("geometry merges");
            assert_eq!(
                plan.parallel_ios(&g),
                bounds::merge_sort_ios(&g, strategy).unwrap(),
                "{strategy:?}"
            );
            assert_eq!(
                plan.num_steps(),
                bounds::merge_sort_passes(&g, strategy).unwrap()
            );
        }
    }

    #[test]
    fn bmmc_plan_ios_match_the_fused_step_count() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(4);
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let plan = Plan::bmmc(&perm, &g).unwrap();
        assert_eq!(
            plan.parallel_ios(&g),
            (plan.num_steps() * g.ios_per_pass()) as u64
        );
        assert!(plan.fused_plan().is_some());
    }

    #[test]
    fn choose_prefers_striped_bmmc_over_seek_bound_sorts_on_hdd() {
        let g = Geometry::new(1 << 17, 1 << 3, 1 << 4, 1 << 12).unwrap();
        let perm = catalog::bit_reversal(g.n());
        let plans = candidates(&perm, &g);
        assert!(plans.len() >= 2, "bmmc and at least one sort route");
        let pick = choose(&plans, &g, &TimingModel::hdd()).unwrap();
        assert_eq!(pick.candidate, CandidateKind::Bmmc);
    }

    #[test]
    fn modeled_cost_separates_equal_io_plans() {
        // An MRC pass and an MLD pass cost the same parallel I/Os but
        // different modeled time on a seek-heavy device.
        let g = geom();
        let mrc = Plan::from_passes(
            &[pass_of(
                &catalog::random_mrc(&mut StdRng::seed_from_u64(5), g.n(), g.m()),
                PassKind::Mrc,
            )],
            g.b(),
            g.m(),
        );
        let mld = Plan::from_passes(
            &[pass_of(
                &catalog::random_mld(&mut StdRng::seed_from_u64(5), g.n(), g.b(), g.m()),
                PassKind::Mld,
            )],
            g.b(),
            g.m(),
        );
        let t = TimingModel::hdd();
        assert_eq!(mrc.parallel_ios(&g), mld.parallel_ios(&g));
        assert!(mrc.modeled_ms(&g, &t) < mld.modeled_ms(&g, &t));
    }
}
