//! The Section 5 factoring engine: any BMMC characteristic matrix `A`
//! is factored as
//!
//! ```text
//!   A = F · E_g⁻¹ S_g⁻¹ · E_{g−1}⁻¹ S_{g−1}⁻¹ ⋯ E_1⁻¹ S_1⁻¹ · P⁻¹
//! ```
//!
//! (eq. 18), where `P = T·R` (trailer · reducer) and `F` are MRC and
//! each grouping `E_i⁻¹ S_i⁻¹` — with `P⁻¹` folded into the first —
//! is MLD (Theorem 17). Reading factors right to left (Corollary 2)
//! gives a plan of `g + 1` one-pass permutations with
//! `g = ⌈rank γ̂ / lg(M/B)⌉` (eq. 17), which Lemma 20 bounds by
//! `⌈rank γ / lg(M/B)⌉ + 1` in terms of the lower bound's submatrix
//! `γ = A_{b..n−1, 0..b−1}` — Theorem 21.

use crate::bmmc::Bmmc;
use crate::classes::{is_mld, is_mrc};
use crate::error::{BmmcError, Result};
use crate::factors::{eraser, reducer, swapper, trailer, ColAdd};
use gf2::elim::{inverse, solve, Elimination, IndependentSet};
use gf2::{BitMatrix, BitVec};

/// Which one-pass class a pass belongs to (determines the executor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassKind {
    /// Memory-rearrangement/complement: striped reads *and* writes.
    Mrc,
    /// Memoryload-dispersal: striped reads, independent writes.
    Mld,
    /// Inverse of an MLD permutation: independent reads, striped
    /// writes (the mirrored discipline — Section 7's "the inverse of
    /// any one-pass permutation is a one-pass permutation").
    MldInverse,
}

impl PassKind {
    /// True if this discipline *reads* whole source memoryloads with
    /// striped I/Os (MRC and MLD). The pass-fusion planner
    /// ([`crate::fusion`]) may glue such a pass onto a predecessor
    /// that writes whole memoryloads.
    pub fn reads_whole_memoryloads(&self) -> bool {
        matches!(self, PassKind::Mrc | PassKind::Mld)
    }

    /// True if this discipline *writes* whole target memoryloads with
    /// striped I/Os (MRC and MLD⁻¹) — the other half of the fusion
    /// discipline rule.
    pub fn writes_whole_memoryloads(&self) -> bool {
        matches!(self, PassKind::Mrc | PassKind::MldInverse)
    }
}

/// One pass of the plan: a one-pass BMMC permutation.
#[derive(Clone, Debug)]
pub struct Pass {
    /// The pass's characteristic matrix.
    pub matrix: BitMatrix,
    /// The pass's complement vector (zero for all but the final pass).
    pub complement: BitVec,
    /// The class this pass was verified to belong to.
    pub kind: PassKind,
}

impl Pass {
    /// The pass as a standalone BMMC permutation.
    pub fn as_bmmc(&self) -> Bmmc {
        Bmmc::new(self.matrix.clone(), self.complement.clone())
            .expect("pass factors are nonsingular by construction")
    }
}

/// The full factorization, retaining the individual Section 5 factors
/// for inspection, plus the executable pass plan.
#[derive(Clone, Debug)]
pub struct Factorization {
    /// `P = T·R`: the trailer–reducer product (MRC).
    pub p: BitMatrix,
    /// The swap/erase rounds `(S_i, E_i)`, `i = 1..g`, in the order
    /// they were applied to transform `A` into `F`.
    pub rounds: Vec<(BitMatrix, BitMatrix)>,
    /// The final MRC factor `F`.
    pub f: BitMatrix,
    /// The executable passes in execution order (first pass first).
    pub passes: Vec<Pass>,
}

impl Factorization {
    /// `g`: number of swap/erase rounds (eq. 17).
    pub fn g(&self) -> usize {
        self.rounds.len()
    }

    /// Number of one-pass permutations in the plan (`g + 1`, except a
    /// single pass when `g = 0`).
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Recomposes the passes and checks they reproduce `perm`:
    /// the product of pass matrices, last pass leftmost, must equal
    /// `A`, and complements must compose to `c`.
    pub fn verify(&self, perm: &Bmmc) -> bool {
        let n = perm.bits();
        let mut composed = Bmmc::identity(n);
        for pass in &self.passes {
            composed = pass.as_bmmc().compose(&composed);
        }
        composed == *perm
    }
}

/// Factors a BMMC permutation into a one-pass plan at boundaries
/// `b = lg B`, `m = lg M` (Section 5).
///
/// Returns an error if `m ≤ b` (the model needs at least two blocks of
/// memory for the factoring to make progress) or `m ≥ n`.
///
/// ```
/// use bmmc::{catalog, factor};
///
/// // Bit reversal on 13-bit addresses, B = 2^3, M = 2^8.
/// let perm = catalog::bit_reversal(13);
/// let fac = factor(&perm, 3, 8).unwrap();
/// assert!(fac.verify(&perm));           // passes recompose to A
/// assert!(fac.num_passes() <= 2);       // ⌈rank γ̂ / lg(M/B)⌉ + 1
/// ```
pub fn factor(perm: &Bmmc, b: usize, m: usize) -> Result<Factorization> {
    factor_chunked(perm, b, m, m - b)
}

/// [`factor`] with an explicit swap/erase *chunk size* — the number of
/// lower-left columns eliminated per round. Section 5 uses the full
/// middle-section width `m − b`, which is optimal; smaller chunks are
/// exposed for the ablation study (`g` grows to `⌈rank γ̂ / chunk⌉`,
/// and so does the pass count).
///
/// # Panics
/// Panics if `chunk` is 0 or exceeds `m − b`.
pub fn factor_chunked(perm: &Bmmc, b: usize, m: usize, chunk: usize) -> Result<Factorization> {
    let n = perm.bits();
    if !(b < m && m < n) {
        return Err(BmmcError::Dimension(format!(
            "factoring requires b < m < n, got b={b}, m={m}, n={n}"
        )));
    }
    assert!(
        chunk >= 1 && chunk <= m - b,
        "chunk size {chunk} must be in 1..={}",
        m - b
    );
    let a = perm.matrix().clone();

    // --- Step 1: trailer T — make the trailing (n−m)x(n−m) submatrix
    // nonsingular by adding columns of γ into δ (Section 5,
    // "Creating a nonsingular trailing submatrix").
    let t = build_trailer(&a, m);
    let a1 = a.mul(&t);
    debug_assert!(
        gf2::elim::is_nonsingular(&a1.submatrix(m..n, m..n)),
        "trailer failed to produce a nonsingular trailing submatrix"
    );

    // --- Step 2: reducer R — zero the linearly dependent columns of
    // the lower-left (n−m)xm submatrix, leaving rank γ̂ independent
    // columns and zeros ("reduced form").
    let r = build_reducer(&a1, m);
    let a2 = a1.mul(&r);
    let p = t.mul(&r);
    debug_assert!(is_mrc(&p, m), "P = T·R must be MRC");

    // --- Step 3: repeated swap/erase rounds — swap nonzero lower-left
    // columns into the middle section (≤ m−b at a time), then zero the
    // middle section by adding trailing-basis columns.
    let mut cur = a2;
    let mut rounds: Vec<(BitMatrix, BitMatrix)> = Vec::new();
    loop {
        let lower = cur.submatrix(m..n, 0..m);
        let nonzero: Vec<usize> = (0..m).filter(|&j| !lower.column(j).is_zero()).collect();
        if nonzero.is_empty() {
            break;
        }
        assert!(
            rounds.len() <= m,
            "swap/erase loop failed to terminate (bug in factoring)"
        );
        // Swap nonzero left-section columns into zero middle-section
        // columns (entire columns, not just the lower parts).
        let nz_left: Vec<usize> = nonzero.iter().copied().filter(|&j| j < b).collect();
        let zero_middle: Vec<usize> = (b..m).filter(|&j| lower.column(j).is_zero()).collect();
        let pairs: Vec<(usize, usize)> = nz_left
            .iter()
            .copied()
            .zip(zero_middle.iter().copied())
            .collect();
        let s = swapper(n, m, &pairs);
        cur = cur.mul(&s);

        // Erase nonzero middle columns (up to `chunk` of them per
        // round) by solving δ̂·w = v and adding the selected
        // right-section columns into each.
        let lower = cur.submatrix(m..n, 0..m);
        let delta_hat = cur.submatrix(m..n, m..n);
        let mut adds: Vec<ColAdd> = Vec::new();
        let mut erased = 0usize;
        for j in b..m {
            if erased == chunk {
                break;
            }
            let v = lower.column(j);
            if v.is_zero() {
                continue;
            }
            erased += 1;
            let w = solve(&delta_hat, &v)
                .expect("trailing submatrix is nonsingular, so every column is reachable");
            for k in w.iter_ones() {
                adds.push(ColAdd { src: m + k, dst: j });
            }
        }
        let e = eraser(n, b, m, &adds);
        cur = cur.mul(&e);
        rounds.push((s, e));
    }
    let f = cur;
    debug_assert!(is_mrc(&f, m), "final factor F must be MRC");

    // --- Step 4: assemble the executable passes, rightmost factor
    // first (Corollary 2). Erasers and swappers are involutions, so
    // E⁻¹ = E and S⁻¹ = S; only P needs an explicit inverse.
    let p_inv = inverse(&p).expect("P is a product of nonsingular factors");
    let mut passes: Vec<Pass> = Vec::new();
    let zero_c = BitVec::zeros(n);
    if rounds.is_empty() {
        // A = F·P⁻¹ — a single MRC pass.
        let only = f.mul(&p_inv);
        debug_assert!(is_mrc(&only, m));
        passes.push(Pass {
            matrix: only,
            complement: perm.complement().clone(),
            kind: PassKind::Mrc,
        });
    } else {
        for (i, (s, e)) in rounds.iter().enumerate() {
            // Group (E_i⁻¹ S_i⁻¹) = E_i·S_i; the first also absorbs P⁻¹.
            let mut grp = e.mul(s);
            if i == 0 {
                grp = grp.mul(&p_inv);
            }
            debug_assert!(
                is_mld(&grp, b, m),
                "pass {i} is not MLD (Theorem 17 violated)"
            );
            passes.push(Pass {
                matrix: grp,
                complement: zero_c.clone(),
                kind: PassKind::Mld,
            });
        }
        passes.push(Pass {
            matrix: f.clone(),
            complement: perm.complement().clone(),
            kind: PassKind::Mrc,
        });
    }

    Ok(Factorization {
        p,
        rounds,
        f,
        passes,
    })
}

/// Builds the trailer matrix for step 1: find a maximal independent
/// set `V` among the columns of `δ = A_{m..n−1, m..n−1}`, extend it to
/// a basis of GF(2)^{n−m} with columns `W` drawn from
/// `γ = A_{m..n−1, 0..m−1}`, and add each `w ∈ W` into a distinct
/// dependent column of `δ`.
fn build_trailer(a: &BitMatrix, m: usize) -> BitMatrix {
    let n = a.rows();
    let lower = a.submatrix(m..n, 0..n);
    let mut set = IndependentSet::new();
    let mut v_cols: Vec<usize> = Vec::new(); // independent right-section columns
    let mut vbar: Vec<usize> = Vec::new(); // dependent right-section columns
    for j in m..n {
        if set.insert(&lower.column(j)) {
            v_cols.push(j);
        } else {
            vbar.push(j);
        }
    }
    let mut w_cols: Vec<usize> = Vec::new();
    for j in 0..m {
        if set.len() == n - m {
            break;
        }
        if set.insert(&lower.column(j)) {
            w_cols.push(j);
        }
    }
    assert_eq!(
        set.len(),
        n - m,
        "rows m..n of a nonsingular matrix must have full rank"
    );
    let adds: Vec<ColAdd> = w_cols
        .into_iter()
        .zip(vbar)
        .map(|(src, dst)| ColAdd { src, dst })
        .collect();
    trailer(n, m, &adds)
}

/// Builds the reducer matrix for step 2: zero every linearly dependent
/// column of the lower-left `(n−m) x m` submatrix by adding the pivot
/// columns that sum to it.
fn build_reducer(a1: &BitMatrix, m: usize) -> BitMatrix {
    let n = a1.rows();
    let gamma = a1.submatrix(m..n, 0..m);
    let elim = Elimination::new(&gamma);
    let mut adds: Vec<ColAdd> = Vec::new();
    for j in elim.free_columns() {
        if gamma.column(j).is_zero() {
            continue;
        }
        for k in elim.combination_of_pivots(j) {
            adds.push(ColAdd { src: k, dst: j });
        }
    }
    reducer(n, m, &adds)
}

/// `g` as predicted by eq. 17 from the reduced-form rank: the number
/// of swap/erase rounds the factoring will use.
pub fn predicted_rounds(perm: &Bmmc, m: usize, lg_mb: usize) -> usize {
    let n = perm.bits();
    let rank = gf2::elim::rank(&perm.matrix().submatrix(m..n, 0..m));
    rank.div_ceil(lg_mb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use gf2::elim::rank;
    use gf2::sample::random_with_submatrix_rank;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Paper Figure 2 boundaries: n=13, b=3, m=8.
    const N: usize = 13;
    const B: usize = 3;
    const M: usize = 8;

    fn check(perm: &Bmmc, b: usize, m: usize) -> Factorization {
        let fac = factor(perm, b, m).expect("factoring failed");
        assert!(fac.verify(perm), "factorization does not recompose to A");
        // Every intermediate pass MLD, final pass MRC.
        for (i, pass) in fac.passes.iter().enumerate() {
            match pass.kind {
                PassKind::Mld => {
                    assert!(is_mld(&pass.matrix, b, m), "pass {i} claims MLD but is not")
                }
                PassKind::Mrc => {
                    assert_eq!(i, fac.passes.len() - 1, "MRC pass must be last");
                    assert!(is_mrc(&pass.matrix, m), "final pass not MRC");
                }
                PassKind::MldInverse => {
                    panic!("Section 5 factoring never emits MLD⁻¹ passes")
                }
            }
        }
        fac
    }

    #[test]
    fn identity_factors_to_one_pass() {
        let id = Bmmc::identity(N);
        let fac = check(&id, B, M);
        assert_eq!(fac.num_passes(), 1);
        assert_eq!(fac.g(), 0);
    }

    #[test]
    fn mrc_input_factors_to_one_pass() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let p = catalog::random_mrc(&mut rng, N, M);
            let fac = check(&p, B, M);
            assert_eq!(fac.num_passes(), 1, "MRC permutations are one pass");
        }
    }

    #[test]
    fn gray_code_is_one_pass() {
        let g = catalog::gray_code(N);
        let fac = check(&g, B, M);
        assert_eq!(fac.num_passes(), 1);
    }

    #[test]
    fn random_bmmc_factors_and_verifies() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let p = catalog::random_bmmc(&mut rng, N);
            check(&p, B, M);
        }
    }

    #[test]
    fn pass_count_matches_eq17() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..20 {
            let p = catalog::random_bmmc(&mut rng, N);
            let fac = check(&p, B, M);
            // g = ⌈rank γ̂ / (m−b)⌉ where γ̂ is the *reduced* lower-left
            // block; its rank equals rank of the original lower-left
            // block A_{m..n, 0..m} (column ops preserve rank).
            let expect_g = predicted_rounds(&p, M, M - B);
            assert_eq!(fac.g(), expect_g, "g != ⌈rank γ̂/(m−b)⌉");
            assert_eq!(fac.num_passes(), expect_g + 1);
        }
    }

    #[test]
    fn theorem21_pass_bound_via_lemma20() {
        // passes ≤ ⌈rank γ / lg(M/B)⌉ + 2 with γ = A_{b..n, 0..b}.
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..30 {
            let p = catalog::random_bmmc(&mut rng, N);
            let fac = check(&p, B, M);
            let gamma_rank = rank(&p.matrix().submatrix(B..N, 0..B));
            let bound = gamma_rank.div_ceil(M - B) + 2;
            assert!(
                fac.num_passes() <= bound,
                "passes {} exceed Theorem 21 bound {bound} (rank γ = {gamma_rank})",
                fac.num_passes()
            );
        }
    }

    #[test]
    fn prescribed_rank_sweep_factors() {
        let mut rng = StdRng::seed_from_u64(45);
        for r in 0..=B.min(N - B) {
            let a = random_with_submatrix_rank(&mut rng, N, B, r);
            let p = Bmmc::linear(a).unwrap();
            let fac = check(&p, B, M);
            let bound = r.div_ceil(M - B) + 2;
            assert!(
                fac.num_passes() <= bound,
                "rank {r}: {} > {bound}",
                fac.num_passes()
            );
        }
    }

    #[test]
    fn bit_reversal_factors() {
        let p = catalog::bit_reversal(N);
        let fac = check(&p, B, M);
        // Bit reversal has rank γ = min(b, n−b) = 3 → at most
        // ⌈3/5⌉ + 2 = 3 passes.
        assert!(fac.num_passes() <= 3);
    }

    #[test]
    fn transpose_factors() {
        for lg_r in 1..N {
            let p = catalog::transpose(N, lg_r);
            let fac = check(&p, B, M);
            assert!(fac.verify(&p), "transpose lg_r={lg_r}");
        }
    }

    #[test]
    fn complement_carried_by_final_pass() {
        let mut rng = StdRng::seed_from_u64(46);
        let p = catalog::random_bmmc(&mut rng, N);
        assert!(
            !p.complement().is_zero(),
            "sampler should give nonzero c here"
        );
        let fac = check(&p, B, M);
        for pass in &fac.passes[..fac.passes.len() - 1] {
            assert!(pass.complement.is_zero(), "only the final pass carries c");
        }
        assert_eq!(fac.passes.last().unwrap().complement, *p.complement());
    }

    #[test]
    fn chunked_factoring_recomposes_at_every_chunk() {
        let mut rng = StdRng::seed_from_u64(48);
        let p = catalog::random_bmmc(&mut rng, N);
        for chunk in 1..=(M - B) {
            let fac = factor_chunked(&p, B, M, chunk).unwrap();
            assert!(fac.verify(&p), "chunk {chunk} does not recompose");
            for pass in &fac.passes[..fac.passes.len() - 1] {
                assert!(is_mld(&pass.matrix, B, M), "chunk {chunk}: pass not MLD");
            }
        }
    }

    #[test]
    fn smaller_chunks_never_use_fewer_passes() {
        // The ablation claim: the Section 5 chunk size (m−b) is
        // optimal; passes = ⌈rank γ̂/chunk⌉ + 1 grows as chunk shrinks.
        let mut rng = StdRng::seed_from_u64(49);
        for _ in 0..5 {
            let p = catalog::random_bmmc(&mut rng, N);
            let rank_gm = gf2::elim::rank(&p.matrix().submatrix(M..N, 0..M));
            let mut prev = usize::MAX;
            for chunk in (1..=(M - B)).rev() {
                let fac = factor_chunked(&p, B, M, chunk).unwrap();
                assert_eq!(
                    fac.num_passes(),
                    if rank_gm == 0 {
                        1
                    } else {
                        rank_gm.div_ceil(chunk) + 1
                    },
                    "chunk {chunk}: wrong pass count"
                );
                assert!(fac.num_passes() >= prev.min(fac.num_passes()));
                prev = fac.num_passes();
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn chunk_zero_rejected() {
        let id = Bmmc::identity(N);
        let _ = factor_chunked(&id, B, M, 0);
    }

    #[test]
    fn rejects_degenerate_boundaries() {
        let id = Bmmc::identity(8);
        assert!(factor(&id, 3, 3).is_err()); // b == m
        assert!(factor(&id, 2, 8).is_err()); // m == n
    }

    #[test]
    fn small_b_zero_geometry() {
        // B = 1 (b = 0): left section empty; everything must still work.
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..10 {
            let p = catalog::random_bmmc(&mut rng, 9);
            let fac = factor(&p, 0, 4).unwrap();
            assert!(fac.verify(&p));
        }
    }
}
