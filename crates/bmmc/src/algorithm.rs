//! The asymptotically optimal BMMC algorithm (Theorem 21), end to end:
//! factor the characteristic matrix (Section 5), fuse adjacent passes
//! where they compose within the memory model ([`crate::fusion`]),
//! then execute the plan on a disk system, ping-ponging between the
//! source and target portions.

use crate::bmmc::Bmmc;
use crate::classes::{is_mld, is_mld_inverse, is_mrc};
use crate::error::{BmmcError, Result};
use crate::factoring::{factor, Factorization, Pass, PassKind};
use crate::fusion::{execute_fused_with_strategy, fuse_passes, FusedPlan};
use crate::passes::{execute_pass_with_strategy, EvalStrategy, PassStats};
use pdm::{DiskSystem, IoStats, MsgStats, PassEngine, Record};

/// Statistics for one *executed* step: one disk round-trip realizing
/// one or more original planned passes (several when the pass fuser
/// folded adjacent passes — see [`crate::fusion`]).
#[derive(Clone, Debug)]
pub struct StepStats {
    /// Kinds of the original planned passes this step realized, in
    /// order (length 1 for an unfused step).
    pub kinds: Vec<PassKind>,
    /// I/O performed by this step alone.
    pub ios: IoStats,
}

impl StepStats {
    /// True if this step realized more than one planned pass.
    pub fn fused(&self) -> bool {
        self.kinds.len() > 1
    }

    /// Display label, e.g. `"Mrc"` or `"Mrc+Mld"`.
    pub fn label(&self) -> String {
        crate::fusion::kinds_label(&self.kinds)
    }
}

impl From<PassStats> for StepStats {
    fn from(p: PassStats) -> Self {
        StepStats {
            kinds: vec![p.kind],
            ios: p.ios,
        }
    }
}

/// The result of performing a BMMC permutation.
#[derive(Clone, Debug)]
pub struct BmmcReport {
    /// Per-step kinds and I/O counts, in execution order.
    pub passes: Vec<StepStats>,
    /// Total I/O across all steps.
    pub total: IoStats,
    /// Transport messages and wire bytes moved by all steps —
    /// identically zero when the disk system is served in process
    /// (channels move buffers, not messages).
    pub msgs: MsgStats,
    /// The portion (0 or 1) holding the permuted data afterwards.
    pub final_portion: usize,
}

impl BmmcReport {
    /// Number of passes (disk round-trips) executed.
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Number of passes the plan contained before fusion.
    pub fn planned_passes(&self) -> usize {
        self.passes.iter().map(|s| s.kinds.len()).sum()
    }

    /// Disk round-trips saved by pass fusion.
    pub fn passes_saved(&self) -> usize {
        self.planned_passes() - self.num_passes()
    }
}

/// Plans the pass sequence for `perm` at boundaries `(b, m)`.
///
/// Fast paths for the one-pass classes, exactly as Section 6 urges
/// ("run even faster algorithms for any of the special cases … whenever
/// possible"):
/// * MRC → one striped-read/striped-write pass,
/// * MLD → one striped-read/independent-write pass (Theorem 15),
/// * MLD⁻¹ → one independent-read/striped-write pass (Section 7's
///   "the inverse of any one-pass permutation is a one-pass
///   permutation"),
/// * anything else → the Section 5 factoring.
pub fn plan_passes(perm: &Bmmc, b: usize, m: usize) -> Result<Vec<Pass>> {
    let a = perm.matrix();
    if is_mrc(a, m) {
        return Ok(vec![Pass {
            matrix: a.clone(),
            complement: perm.complement().clone(),
            kind: PassKind::Mrc,
        }]);
    }
    if is_mld(a, b, m) {
        return Ok(vec![Pass {
            matrix: a.clone(),
            complement: perm.complement().clone(),
            kind: PassKind::Mld,
        }]);
    }
    if is_mld_inverse(a, b, m) {
        return Ok(vec![Pass {
            matrix: a.clone(),
            complement: perm.complement().clone(),
            kind: PassKind::MldInverse,
        }]);
    }
    Ok(factor(perm, b, m)?.passes)
}

/// Executes a sequence of one-pass permutations, fusing adjacent
/// passes that compose within the memory model ([`crate::fusion`]) —
/// the default execution path. Data starts in portion 0; each executed
/// step flips portions; the report names the final portion. One
/// [`PassEngine`] (and so one pair of memoryload buffers) is shared
/// across all steps.
///
/// The final placement is byte-identical to
/// [`execute_passes_unfused`]; only the intermediate disk round-trips
/// (and so the I/O totals) differ.
pub fn execute_passes<R: Record>(sys: &mut DiskSystem<R>, passes: &[Pass]) -> Result<BmmcReport> {
    execute_passes_strategy(sys, passes, EvalStrategy::default())
}

/// [`execute_passes`] with an explicit address-evaluation strategy
/// (see [`EvalStrategy`]): placement and I/O counts are identical
/// across strategies, only the in-memory kernel work differs. The
/// `addr_eval` benchmark uses [`EvalStrategy::PerAddress`] as its
/// end-to-end baseline.
pub fn execute_passes_strategy<R: Record>(
    sys: &mut DiskSystem<R>,
    passes: &[Pass],
    strategy: EvalStrategy,
) -> Result<BmmcReport> {
    let geom = sys.geometry();
    execute_fused_plan_strategy(sys, &fuse_passes(passes, geom.b(), geom.m()), strategy)
}

/// Executes an already-fused plan (see [`execute_passes`], which
/// builds one automatically).
pub fn execute_fused_plan<R: Record>(
    sys: &mut DiskSystem<R>,
    plan: &FusedPlan,
) -> Result<BmmcReport> {
    execute_fused_plan_strategy(sys, plan, EvalStrategy::default())
}

/// [`execute_fused_plan`] with an explicit address-evaluation strategy.
pub fn execute_fused_plan_strategy<R: Record>(
    sys: &mut DiskSystem<R>,
    plan: &FusedPlan,
    strategy: EvalStrategy,
) -> Result<BmmcReport> {
    assert!(
        sys.portions() >= 2,
        "plan execution needs a source and a target portion"
    );
    let before = sys.stats();
    let msgs_before = sys.message_stats();
    let mut engine = PassEngine::new(sys.geometry());
    let mut stats = Vec::with_capacity(plan.num_steps());
    let mut src = 0usize;
    for step in &plan.steps {
        let dst = 1 - src;
        let step_before = sys.stats();
        execute_fused_with_strategy(&mut engine, sys, src, dst, step, strategy)?;
        stats.push(StepStats {
            kinds: step.replaced.clone(),
            ios: sys.stats().since(&step_before),
        });
        src = dst;
    }
    Ok(BmmcReport {
        passes: stats,
        total: sys.stats().since(&before),
        msgs: sys.message_stats().since(&msgs_before),
        final_portion: src,
    })
}

/// Executes a pass sequence *without* fusion: one disk round-trip per
/// planned pass, exactly as the plan was written. This is the opt-out
/// for differential testing against [`crate::passes::reference`] and
/// for measuring what fusion saves.
pub fn execute_passes_unfused<R: Record>(
    sys: &mut DiskSystem<R>,
    passes: &[Pass],
) -> Result<BmmcReport> {
    assert!(
        sys.portions() >= 2,
        "plan execution needs a source and a target portion"
    );
    let before = sys.stats();
    let msgs_before = sys.message_stats();
    let mut engine = PassEngine::new(sys.geometry());
    let mut stats = Vec::with_capacity(passes.len());
    let mut src = 0usize;
    for pass in passes {
        let dst = 1 - src;
        stats.push(
            execute_pass_with_strategy(&mut engine, sys, src, dst, pass, EvalStrategy::default())?
                .into(),
        );
        src = dst;
    }
    Ok(BmmcReport {
        passes: stats,
        total: sys.stats().since(&before),
        msgs: sys.message_stats().since(&msgs_before),
        final_portion: src,
    })
}

/// Executes an already-computed factorization (see [`execute_passes`]).
pub fn execute_plan<R: Record>(sys: &mut DiskSystem<R>, fac: &Factorization) -> Result<BmmcReport> {
    execute_passes(sys, &fac.passes)
}

/// Executes the BMMC route of a plan-IR [`crate::plan::Plan`] — the
/// executor side of the unified planner: [`crate::plan::candidates`] /
/// [`crate::plan::choose`] produce the plan, this function consumes
/// it. The executed parallel-I/O count equals
/// [`crate::plan::Plan::parallel_ios`] exactly.
///
/// # Panics
///
/// Panics on a sort-route plan: `extsort` is a sibling crate, so sort
/// plans are executed (and exact-checked against the IR) by the CLI
/// and bench layers.
pub fn execute_plan_ir<R: Record>(
    sys: &mut DiskSystem<R>,
    plan: &crate::plan::Plan,
    strategy: EvalStrategy,
) -> Result<BmmcReport> {
    let fused = plan
        .fused_plan()
        .expect("execute_plan_ir takes BMMC-route plans; sort routes run via extsort");
    execute_fused_plan_strategy(sys, &fused, strategy)
}

/// Performs the BMMC permutation `perm` on the records in portion 0,
/// using the one-pass fast paths or the Section 5 factoring. This is
/// the algorithm of Theorem 21: at most
/// `(2N/BD)(⌈rank γ / lg(M/B)⌉ + 2)` parallel I/Os.
pub fn perform_bmmc<R: Record>(sys: &mut DiskSystem<R>, perm: &Bmmc) -> Result<BmmcReport> {
    let geom = sys.geometry();
    if perm.bits() != geom.n() {
        return Err(BmmcError::GeometryMismatch {
            perm_bits: perm.bits(),
            system_bits: geom.n(),
        });
    }
    let passes = plan_passes(perm, geom.b(), geom.m())?;
    execute_passes(sys, &passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::passes::reference_permute;
    use gf2::elim::rank;
    use pdm::Geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        // N=2^10, B=2^2, D=2^2, M=2^6.
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    fn run_and_check(perm: &Bmmc, g: Geometry) -> BmmcReport {
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..g.records() as u64).collect();
        sys.load_records(0, &input);
        let report = perform_bmmc(&mut sys, perm).expect("algorithm failed");
        let expect = reference_permute(&input, |x| perm.target(x));
        assert_eq!(
            sys.dump_records(report.final_portion),
            expect,
            "records not in target order"
        );
        // Each pass costs exactly 2N/BD parallel I/Os.
        assert_eq!(
            report.total.parallel_ios() as usize,
            report.num_passes() * g.ios_per_pass()
        );
        // In-process servicing moves no transport messages.
        assert!(
            report.msgs.is_zero(),
            "in-proc run reported {}",
            report.msgs
        );
        report
    }

    #[test]
    fn random_bmmc_end_to_end() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = geom();
        for _ in 0..5 {
            let perm = catalog::random_bmmc(&mut rng, g.n());
            let report = run_and_check(&perm, g);
            // Theorem 21: I/Os ≤ 2N/BD (⌈rank γ / lg(M/B)⌉ + 2).
            let r = rank(&perm.matrix().submatrix(g.b()..g.n(), 0..g.b()));
            let bound = g.ios_per_pass() * (r.div_ceil(g.lg_mb()) + 2);
            assert!(
                (report.total.parallel_ios() as usize) <= bound,
                "{} I/Os exceed Theorem 21 bound {bound}",
                report.total.parallel_ios()
            );
        }
    }

    #[test]
    fn bit_reversal_end_to_end() {
        let g = geom();
        let report = run_and_check(&catalog::bit_reversal(g.n()), g);
        assert!(report.num_passes() <= 3);
    }

    #[test]
    fn transpose_end_to_end() {
        let g = geom();
        for lg_r in [2, 5, 8] {
            run_and_check(&catalog::transpose(g.n(), lg_r), g);
        }
    }

    #[test]
    fn gray_code_single_pass() {
        let g = geom();
        let report = run_and_check(&catalog::gray_code(g.n()), g);
        assert_eq!(report.num_passes(), 1, "Gray code is MRC: one pass");
    }

    #[test]
    fn mld_single_pass_end_to_end() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = geom();
        let perm = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
        let report = run_and_check(&perm, g);
        // MLD permutations must execute in one pass (Theorem 15).
        assert_eq!(report.num_passes(), 1, "MLD permutations are one pass");
    }

    #[test]
    fn geometry_mismatch_detected() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let perm = Bmmc::identity(4);
        assert!(matches!(
            perform_bmmc(&mut sys, &perm),
            Err(BmmcError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn payload_integrity_with_tagged_records() {
        use pdm::TaggedRecord;
        let mut rng = StdRng::seed_from_u64(63);
        let g = geom();
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(g, 2);
        let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();
        sys.load_records(0, &input);
        let report = perform_bmmc(&mut sys, &perm).unwrap();
        let out = sys.dump_records(report.final_portion);
        for (y, rec) in out.iter().enumerate() {
            assert!(rec.intact(), "payload corrupted at {y}");
            assert_eq!(perm.target(rec.key), y as u64, "record misplaced");
        }
    }
}
