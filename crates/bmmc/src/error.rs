//! Error types for the BMMC library.

use std::fmt;

/// Errors surfaced by permutation construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmmcError {
    /// The characteristic matrix is singular over GF(2) — the mapping
    /// is not a permutation.
    Singular,
    /// The matrix is not square or the complement vector length does
    /// not match.
    Dimension(String),
    /// The permutation's address width does not match the disk
    /// system's `n = lg N`.
    GeometryMismatch {
        /// Address width `n` of the permutation matrix.
        perm_bits: usize,
        /// Address width `lg N` of the disk system.
        system_bits: usize,
    },
    /// A disk-system error during execution.
    Pdm(pdm::PdmError),
    /// The supplied target-address vector is not a permutation of
    /// `0..N` (detection rejects it before matrix fitting).
    NotAPermutation(String),
}

impl fmt::Display for BmmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmmcError::Singular => {
                write!(f, "characteristic matrix is singular over GF(2)")
            }
            BmmcError::Dimension(msg) => write!(f, "dimension error: {msg}"),
            BmmcError::GeometryMismatch {
                perm_bits,
                system_bits,
            } => write!(
                f,
                "permutation is on {perm_bits}-bit addresses but the disk system has n = {system_bits}"
            ),
            BmmcError::Pdm(e) => write!(f, "disk system error: {e}"),
            BmmcError::NotAPermutation(msg) => {
                write!(f, "target vector is not a permutation: {msg}")
            }
        }
    }
}

impl std::error::Error for BmmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BmmcError::Pdm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdm::PdmError> for BmmcError {
    fn from(e: pdm::PdmError) -> Self {
        BmmcError::Pdm(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, BmmcError>;
