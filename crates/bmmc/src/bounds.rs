//! Every bound the paper states, as executable formulas.
//!
//! These power the table/figure regenerators: each experiment prints a
//! bound column (from here) next to a measured column (from the
//! simulator).

use pdm::Geometry;

/// Theorem 3 (universal lower bound), as the expression inside Ω(·):
/// `(N/BD) · (1 + rank γ / lg(M/B))` with `γ = A_{b..n−1, 0..b−1}`.
pub fn theorem3_lower(geom: &Geometry, rank_gamma: usize) -> f64 {
    geom.stripes() as f64 * (1.0 + rank_gamma as f64 / geom.lg_mb() as f64)
}

/// Theorem 21 (upper bound), exact:
/// `(2N/BD) · (⌈rank γ / lg(M/B)⌉ + 2)`.
pub fn theorem21_upper(geom: &Geometry, rank_gamma: usize) -> u64 {
    (geom.ios_per_pass() * (rank_gamma.div_ceil(geom.lg_mb()) + 2)) as u64
}

/// The exact pass count our factoring produces (eq. 17 + 1):
/// `⌈rank γ̂ / lg(M/B)⌉ + 1` with `γ̂ = A_{m..n−1, 0..m−1}`.
pub fn factoring_passes(geom: &Geometry, rank_gamma_m: usize) -> usize {
    rank_gamma_m.div_ceil(geom.lg_mb()) + 1
}

/// Section 7's sharpened lower bound, exact constants:
/// `(2N/BD) · rank γ / (2/(e ln 2) + lg(M/B))`.
pub fn precise_lower(geom: &Geometry, rank_gamma: usize) -> f64 {
    let denom = 2.0 / (std::f64::consts::E * std::f64::consts::LN_2) + geom.lg_mb() as f64;
    (geom.ios_per_pass() as f64 / 2.0) * 2.0 * rank_gamma as f64 / denom
}

/// The function `H(N, M, B)` of eq. (1), used by the *old* BMMC bound
/// of Cormen \[4\].
pub fn h_function(geom: &Geometry) -> usize {
    let (n, m, b) = (geom.n(), geom.m(), geom.b());
    let lg_mb = geom.lg_mb();
    if 2 * m <= n {
        // M ≤ √N
        4 * b.div_ceil(lg_mb) + 9
    } else if 2 * m < n + b {
        // √N < M < √(NB)
        4 * (n - b).div_ceil(lg_mb) + 1
    } else {
        // √(NB) ≤ M
        5
    }
}

/// The old BMMC upper bound from Cormen \[4\] (Table 1):
/// `(2N/BD) · (2⌈(lg M − r)/lg(M/B)⌉ + H(N,M,B))`, where `r` is the
/// rank of the *leading* `lg M x lg M` submatrix.
pub fn old_bmmc_upper(geom: &Geometry, rank_leading: usize) -> u64 {
    let m = geom.m();
    assert!(rank_leading <= m);
    let passes = 2 * (m - rank_leading).div_ceil(geom.lg_mb()) + h_function(geom);
    (geom.ios_per_pass() * passes) as u64
}

/// The old BPC upper bound from Cormen \[4\] (Table 1):
/// `(2N/BD) · (2⌈ρ(A)/lg(M/B)⌉ + 1)` with `ρ` the cross-rank (eq. 3).
pub fn old_bpc_upper(geom: &Geometry, cross_rank: usize) -> u64 {
    let passes = 2 * cross_rank.div_ceil(geom.lg_mb()) + 1;
    (geom.ios_per_pass() * passes) as u64
}

/// The Vitter–Shriver general-permutation cost,
/// `Θ(min(N/D, (N/BD)·lg(N/B)/lg(M/B)))`, with the constants of an
/// actual external merge sort: one run-formation pass plus
/// `⌈(n−m)/(m−b)⌉` merge passes (fan-in `M/B`), each pass `2N/BD`
/// parallel I/Os; or `2N/D` one-record-at-a-time I/Os when blocks are
/// tiny. Returns `(per_record_term, sorting_term, min)` — these are
/// the I/O counts the `extsort`-based baseline actually performs.
pub fn general_permutation_bound(geom: &Geometry) -> (u64, u64, u64) {
    let per_record = (2 * geom.records() / geom.disks()) as u64;
    let merge_passes = 1 + (geom.n() - geom.m()).div_ceil(geom.lg_mb());
    let sorting = (geom.ios_per_pass() * merge_passes) as u64;
    (per_record, sorting, per_record.min(sorting))
}

/// Merge-buffering strategy of the `extsort` external merge sort,
/// mirrored here variant-for-variant (`extsort` and `bmmc` are sibling
/// crates, so the bound formulas carry their own copy of the label).
/// The `engine_sweep` bench and `tests/merge_strategies.rs` pin the
/// two enums — and the predicted-vs-measured pass and I/O counts —
/// against each other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeStrategy {
    /// One stripe buffer per run: fan-in `M/BD − 1`, striped I/O only.
    #[default]
    SingleBuffered,
    /// Two stripe buffers per run (split-phase prefetch): fan-in
    /// `(M/BD − 1)/2`.
    DoubleBuffered,
    /// Vitter–Shriver forecasting at block granularity: one block
    /// buffer per run plus one landing block and the output stripe,
    /// fan-in `M/B − D − 1 = Θ(M/B)`; merge refills are independent
    /// single-block reads (`D` read operations per stripe).
    Forecast,
}

impl MergeStrategy {
    /// The merge fan-in this strategy reaches on `geom`.
    pub fn fan_in(&self, geom: &Geometry) -> usize {
        match self {
            MergeStrategy::SingleBuffered => geom.stripes_per_memoryload().saturating_sub(1),
            MergeStrategy::DoubleBuffered => geom.stripes_per_memoryload().saturating_sub(1) / 2,
            MergeStrategy::Forecast => geom
                .blocks_per_memoryload()
                .saturating_sub(geom.disks() + 1),
        }
    }

    /// Parallel *read* operations charged per merged stripe: the
    /// striped strategies move `D` blocks per read, the forecasting
    /// merge one block per read.
    fn reads_per_stripe(&self, geom: &Geometry) -> u64 {
        match self {
            MergeStrategy::Forecast => geom.disks() as u64,
            _ => 1,
        }
    }
}

/// One merge level of the external-sort schedule, as it lands on the
/// plan IR ([`crate::plan::Plan::sort`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeLevel {
    /// Groups of ≥ 2 runs actually merged on this level.
    pub merged_groups: usize,
    /// Leftover groups of one run, left in place at zero I/O.
    pub singleton_groups: usize,
    /// Total stripes flowing through the merged groups: each costs
    /// `reads_per_stripe` parallel reads plus one striped write.
    pub merged_stripes: u64,
    /// Exact parallel I/Os of this level,
    /// `merged_stripes · (reads_per_stripe + 1)`.
    pub parallel_ios: u64,
}

/// Replays the merge schedule of `extsort::sort_by_key_with` exactly —
/// run sizes, `chunks(fan_in)` grouping, and the leftover-singleton
/// rule (a group of one run stays in place, zero I/O) — returning one
/// [`MergeLevel`] per merge pass (run formation excluded). `None` when
/// memory is too small to merge (fan-in < 2).
pub fn merge_sort_levels(geom: &Geometry, strategy: MergeStrategy) -> Option<Vec<MergeLevel>> {
    let fan_in = strategy.fan_in(geom);
    if fan_in < 2 {
        return None;
    }
    let reads_per_stripe = strategy.reads_per_stripe(geom);
    let mut levels = Vec::new();
    // Run sizes in stripes.
    let mut runs: Vec<usize> = vec![geom.stripes_per_memoryload(); geom.memoryloads()];
    while runs.len() > 1 {
        let mut level = MergeLevel {
            merged_groups: 0,
            singleton_groups: 0,
            merged_stripes: 0,
            parallel_ios: 0,
        };
        let mut next = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            if group.len() == 1 {
                level.singleton_groups += 1;
                next.push(group[0]);
                continue;
            }
            let stripes: u64 = group.iter().map(|&s| s as u64).sum();
            level.merged_groups += 1;
            level.merged_stripes += stripes;
            level.parallel_ios += stripes * (reads_per_stripe + 1);
            next.push(group.iter().sum());
        }
        runs = next;
        levels.push(level);
    }
    Some(levels)
}

/// `(passes, parallel_ios)` totals of the merge schedule: run
/// formation plus every [`MergeLevel`].
fn merge_sort_schedule(geom: &Geometry, strategy: MergeStrategy) -> Option<(usize, u64)> {
    let levels = merge_sort_levels(geom, strategy)?;
    let ios = geom.ios_per_pass() as u64 + levels.iter().map(|l| l.parallel_ios).sum::<u64>();
    Some((1 + levels.len(), ios))
}

/// The exact parallel-I/O count of the external merge sort in the
/// `extsort` crate (the executable general-permutation baseline) under
/// the given [`MergeStrategy`]: run formation (`2N/BD`) plus, per
/// merge pass, one read per block-transfer unit and one striped write
/// per stripe over every *merged* group — leftover singleton groups
/// are left in place and charge nothing. Returns `None` when memory is
/// too small to merge (fan-in < 2).
pub fn merge_sort_ios(geom: &Geometry, strategy: MergeStrategy) -> Option<u64> {
    merge_sort_schedule(geom, strategy).map(|(_, ios)| ios)
}

/// The exact pass count (run formation + merge passes) of the
/// `extsort` merge sort under the given [`MergeStrategy`]; `None` when
/// memory is too small to merge.
pub fn merge_sort_passes(geom: &Geometry, strategy: MergeStrategy) -> Option<usize> {
    merge_sort_schedule(geom, strategy).map(|(passes, _)| passes)
}

/// Section 6's detection cost in parallel reads:
/// `N/BD + ⌈(lg(N/B) + 1)/D⌉`.
pub fn detection_reads(geom: &Geometry) -> u64 {
    (geom.stripes() + (geom.lg_nb() + 1).div_ceil(geom.disks())) as u64
}

/// MRC/MLD one-pass cost: `2N/BD` (Theorem 15 / Table 1).
pub fn one_pass_ios(geom: &Geometry) -> u64 {
    geom.ios_per_pass() as u64
}

/// The trivial full-scan lower bound `Ω(N/BD)` (Lemma 9 divided by D),
/// as the expression `N/B /D` — every non-identity BMMC permutation
/// must move at least half the blocks.
pub fn trivial_lower(geom: &Geometry) -> f64 {
    geom.stripes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n_exp: u32, b_exp: u32, d_exp: u32, m_exp: u32) -> Geometry {
        Geometry::new(1 << n_exp, 1 << b_exp, 1 << d_exp, 1 << m_exp).unwrap()
    }

    #[test]
    fn theorem3_grows_with_rank() {
        let geom = g(20, 4, 2, 10);
        let base = theorem3_lower(&geom, 0);
        assert_eq!(base, geom.stripes() as f64);
        assert!(theorem3_lower(&geom, 4) > base);
        // rank γ = lg(M/B) doubles the bound.
        assert_eq!(theorem3_lower(&geom, geom.lg_mb()), 2.0 * base);
    }

    #[test]
    fn theorem21_matches_hand_computation() {
        // N=2^20, B=2^4, D=2^2, M=2^10: 2N/BD = 2^15, lg(M/B)=6.
        let geom = g(20, 4, 2, 10);
        assert_eq!(theorem21_upper(&geom, 0), (1 << 15) * 2);
        assert_eq!(theorem21_upper(&geom, 6), (1 << 15) * 3);
        assert_eq!(theorem21_upper(&geom, 7), (1 << 15) * 4);
    }

    #[test]
    fn upper_dominates_lower() {
        for rank in 0..=16 {
            let geom = g(22, 4, 3, 12);
            assert!(
                theorem21_upper(&geom, rank) as f64 >= theorem3_lower(&geom, rank),
                "rank {rank}"
            );
            assert!(
                theorem21_upper(&geom, rank) as f64 >= precise_lower(&geom, rank),
                "precise, rank {rank}"
            );
        }
    }

    #[test]
    fn precise_lower_close_to_upper_constant() {
        // Section 7: 2/(e ln 2) ≈ 1.06, so for rank γ a multiple of
        // lg(M/B) the precise lower bound is close to 2N/BD·rank/lg(M/B).
        let geom = g(24, 4, 2, 12);
        let r = 2 * geom.lg_mb();
        let lower = precise_lower(&geom, r);
        let naive = (geom.ios_per_pass() * 2) as f64;
        assert!(lower < naive);
        assert!(lower > 0.8 * naive, "constant should be close to 1");
    }

    #[test]
    fn h_function_three_regimes() {
        // M ≤ √N: n=20, m=8 (2m=16 ≤ 20), b=4 ⇒ 4·⌈4/4⌉+9 = 13.
        assert_eq!(h_function(&g(20, 4, 2, 8)), 13);
        // √N < M < √(NB): n=20, b=4, m=11 (22 > 20, 22 < 24)
        // ⇒ 4·⌈16/7⌉+1 = 13.
        assert_eq!(h_function(&g(20, 4, 2, 11)), 13);
        // √(NB) ≤ M: n=20, b=4, m=12 (24 ≥ 24) ⇒ 5.
        assert_eq!(h_function(&g(20, 4, 2, 12)), 5);
    }

    #[test]
    fn new_bound_beats_old_bmmc_bound() {
        // For any rank pair the new bound's pass count is at most the
        // old one's: ⌈r_γ/lg(M/B)⌉ + 2 vs 2⌈(lgM−r)/lg(M/B)⌉ + H ≥ 5.
        let geom = g(20, 4, 2, 10);
        for r_gamma in 0..=4 {
            for r_lead in 0..=10 {
                assert!(
                    theorem21_upper(&geom, r_gamma) <= old_bmmc_upper(&geom, r_lead),
                    "r_gamma={r_gamma}, r_lead={r_lead}"
                );
            }
        }
    }

    #[test]
    fn general_bound_min_terms() {
        let geom = g(20, 4, 2, 10);
        let (per_rec, sorting, min) = general_permutation_bound(&geom);
        assert_eq!(per_rec, 1 << 19);
        // run formation + ⌈(20−10)/6⌉ = 2 merge passes, each 2·2^14.
        assert_eq!(sorting, 3 * (2 << 14));
        assert_eq!(min, sorting.min(per_rec));
    }

    #[test]
    fn merge_sort_ios_formula() {
        // N=2^10, B=2^2, D=2^2, M=2^6: fan-in 3, 16 runs → 4 passes,
        // and merge pass 1 (16 = 5·3 + 1) leaves a 4-stripe singleton
        // in place: 4·128 − 2·4.
        let geom = g(10, 2, 2, 6);
        assert_eq!(
            merge_sort_ios(&geom, MergeStrategy::SingleBuffered),
            Some(4 * 128 - 8)
        );
        assert_eq!(
            merge_sort_passes(&geom, MergeStrategy::SingleBuffered),
            Some(4)
        );
        // M = BD: no strategy can merge.
        let tiny = g(8, 2, 2, 4);
        for s in [
            MergeStrategy::SingleBuffered,
            MergeStrategy::DoubleBuffered,
            MergeStrategy::Forecast,
        ] {
            assert_eq!(merge_sort_ios(&tiny, s), None, "{s:?}");
        }
    }

    #[test]
    fn merge_strategy_fan_ins_at_bench_geometry() {
        // The engine_sweep extsort geometry: B=2^3, D=2^4, M=2^12.
        let geom = g(18, 3, 4, 12);
        let single = MergeStrategy::SingleBuffered.fan_in(&geom);
        let double = MergeStrategy::DoubleBuffered.fan_in(&geom);
        let forecast = MergeStrategy::Forecast.fan_in(&geom);
        assert_eq!(single, 31); // M/BD − 1
        assert_eq!(double, 15); // (M/BD − 1)/2
        assert_eq!(forecast, 495); // M/B − D − 1
        assert!(
            forecast >= 8 * single,
            "forecasting must close the D× fan-in gap: {forecast} vs {single}"
        );
    }

    #[test]
    fn forecast_passes_strictly_fewer_when_single_needs_two_merges() {
        // Same B, D, M at N=2^17: 32 runs. Single-buffered (fan-in 31)
        // needs two merge passes (32 → 2 → 1, with a singleton left in
        // place in pass 1); forecasting (fan-in 495) merges all 32 at
        // once.
        let geom = g(17, 3, 4, 12);
        assert_eq!(
            merge_sort_passes(&geom, MergeStrategy::SingleBuffered),
            Some(3)
        );
        assert_eq!(merge_sort_passes(&geom, MergeStrategy::Forecast), Some(2));
        // Exact I/Os: single = 2048 + (992·2) + 2048; forecast =
        // 2048 + 1024·(D+1) — fewer passes, but block-granular reads.
        assert_eq!(
            merge_sort_ios(&geom, MergeStrategy::SingleBuffered),
            Some(6080)
        );
        assert_eq!(merge_sort_ios(&geom, MergeStrategy::Forecast), Some(19456));
    }

    #[test]
    fn forecast_passes_never_exceed_single_buffered() {
        for (n, b, d, m) in [
            (10, 2, 2, 6),
            (12, 3, 2, 8),
            (14, 4, 3, 9),
            (17, 3, 4, 12),
            (20, 3, 0, 13),
        ] {
            let geom = g(n, b, d, m);
            let (Some(fc), Some(sb)) = (
                merge_sort_passes(&geom, MergeStrategy::Forecast),
                merge_sort_passes(&geom, MergeStrategy::SingleBuffered),
            ) else {
                panic!("both strategies must fit N=2^{n}");
            };
            assert!(fc <= sb, "forecast {fc} passes vs single {sb} at N=2^{n}");
        }
    }

    #[test]
    fn detection_cost_formula() {
        // N=2^13, B=2^3, D=2^4: N/BD = 2^6, ⌈(10+1)/16⌉ = 1 → 65.
        let geom = g(13, 3, 4, 8);
        assert_eq!(detection_reads(&geom), 64 + 1);
        // Single disk: N/B + lg(N/B)+1.
        let geom1 = g(13, 3, 0, 8);
        assert_eq!(detection_reads(&geom1), 1024 + 11);
    }

    #[test]
    fn low_rank_beats_general_sort() {
        // The headline claim: when rank γ is low, the BMMC bound beats
        // the general-permutation (sorting) bound.
        let geom = g(26, 10, 2, 13); // lg(N/B)=16, lg(M/B)=3
        let (_, _, general) = general_permutation_bound(&geom);
        assert!(theorem21_upper(&geom, 0) < general);
        assert!(theorem21_upper(&geom, 1) < general);
        assert!(theorem21_upper(&geom, 3) < general);
    }
}
