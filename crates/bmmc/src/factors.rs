//! The column-operation matrix forms of Section 4: trailer, reducer,
//! swapper, and eraser matrices.
//!
//! A *column-addition matrix* `Q` has 1s on the diagonal plus
//! `q_{ij} = 1` wherever column `i` of the multiplicand is to be added
//! into column `j` (so `A·Q` performs the additions). The *dependency
//! restriction* — if column `i` is added into `j`, then `j` is not
//! added into anything — makes `Q` nonsingular (Lemma 19).
//!
//! The four specialized forms, at boundaries `b ≤ m ≤ n`:
//!
//! ```text
//! trailer T = [I 0 *; 0 I *; 0 0 I]   left/middle → right   (MRC)
//! reducer R = [* * 0; * * 0; 0 0 I]   left/middle → left/middle (MRC)
//! swapper S = [perm 0; 0 I]           permute leftmost m columns (MRC)
//! eraser  E = [I 0 0; 0 I 0; 0 * I]   right → middle         (MLD, E = E⁻¹)
//! ```

use gf2::BitMatrix;

/// A single column addition: add column `src` into column `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColAdd {
    /// Source column (added from).
    pub src: usize,
    /// Destination column (added into).
    pub dst: usize,
}

/// Builds a column-addition matrix from a list of additions.
///
/// # Panics
/// Panics if any addition violates the dependency restriction
/// (a destination column also used as a source), if `src == dst`, or
/// if an index is out of range.
pub fn column_addition_matrix(n: usize, adds: &[ColAdd]) -> BitMatrix {
    let mut is_dst = vec![false; n];
    let mut is_src = vec![false; n];
    let mut q = BitMatrix::identity(n);
    for &ColAdd { src, dst } in adds {
        assert!(src < n && dst < n, "column index out of range");
        assert_ne!(src, dst, "cannot add a column into itself");
        is_src[src] = true;
        is_dst[dst] = true;
        q.set(src, dst, true);
    }
    for j in 0..n {
        assert!(
            !(is_src[j] && is_dst[j]),
            "dependency restriction violated at column {j}: \
             a destination column may not be added into another column"
        );
    }
    q
}

/// True if `q` is a column-addition matrix: unit diagonal and the
/// dependency restriction holds for its off-diagonal 1s.
pub fn is_column_addition(q: &BitMatrix) -> bool {
    if !q.is_square() {
        return false;
    }
    let n = q.rows();
    let mut is_src = vec![false; n];
    let mut is_dst = vec![false; n];
    for i in 0..n {
        if !q.get(i, i) {
            return false;
        }
        for j in 0..n {
            if i != j && q.get(i, j) {
                is_src[i] = true;
                is_dst[j] = true;
            }
        }
    }
    (0..n).all(|j| !(is_src[j] && is_dst[j]))
}

/// Constructively factors a column-addition matrix as `Q = L · U` with
/// `L` unit lower-triangular and `U` unit upper-triangular (Lemma 19).
///
/// Writing `Q = I + N`, split `N` into its strictly-lower and
/// strictly-upper parts. The dependency restriction makes
/// `N_lower · N_upper = 0` (a destination column is never a source),
/// so `(I + N_lower)(I + N_upper) = I + N = Q` exactly.
///
/// # Panics
/// Panics if `q` is not a column-addition matrix.
pub fn lu_split(q: &BitMatrix) -> (BitMatrix, BitMatrix) {
    assert!(
        is_column_addition(q),
        "lu_split requires a column-addition matrix"
    );
    let n = q.rows();
    let mut l = BitMatrix::identity(n);
    let mut u = BitMatrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && q.get(i, j) {
                if i > j {
                    l.set(i, j, true);
                } else {
                    u.set(i, j, true);
                }
            }
        }
    }
    debug_assert_eq!(l.mul(&u), *q, "Lemma 19 factorization failed");
    (l, u)
}

/// Builds a trailer matrix: additions from the leftmost `m` columns
/// into the rightmost `n−m` columns.
///
/// # Panics
/// Panics if any addition is not left/middle → right.
pub fn trailer(n: usize, m: usize, adds: &[ColAdd]) -> BitMatrix {
    for a in adds {
        assert!(
            a.src < m && a.dst >= m && a.dst < n,
            "trailer additions must go from columns < {m} into columns ≥ {m}"
        );
    }
    column_addition_matrix(n, adds)
}

/// Builds a reducer matrix: additions within the leftmost `m` columns.
///
/// # Panics
/// Panics if any addition leaves the leftmost `m` columns or violates
/// the dependency restriction.
pub fn reducer(n: usize, m: usize, adds: &[ColAdd]) -> BitMatrix {
    for a in adds {
        assert!(
            a.src < m && a.dst < m,
            "reducer additions must stay within the leftmost {m} columns"
        );
    }
    column_addition_matrix(n, adds)
}

/// Builds a swapper matrix: a permutation of the leftmost `m` columns
/// (identity on the rest). `perm[j] = i` means source column `j` of the
/// multiplicand ends up in position ... — concretely, multiplying
/// `A·S` with `S[i][j] = 1` places column `i` of `A` at position `j`.
///
/// `pairs` lists disjoint column pairs `(x, y)`, each with `x, y < m`,
/// to be exchanged.
///
/// # Panics
/// Panics if pairs overlap or touch columns ≥ m.
pub fn swapper(n: usize, m: usize, pairs: &[(usize, usize)]) -> BitMatrix {
    let mut used = vec![false; n];
    let mut s = BitMatrix::identity(n);
    for &(x, y) in pairs {
        assert!(
            x < m && y < m,
            "swapper pairs must be within the leftmost {m} columns"
        );
        assert!(
            x != y && !used[x] && !used[y],
            "swapper pairs must be disjoint"
        );
        used[x] = true;
        used[y] = true;
        s.set(x, x, false);
        s.set(y, y, false);
        s.set(x, y, true);
        s.set(y, x, true);
    }
    s
}

/// Builds an eraser matrix: additions from the rightmost `n−m` columns
/// into the middle columns `b..m`. Erasers are involutions
/// (Section 4: "any matrix of this form is its own inverse").
///
/// # Panics
/// Panics if any addition is not right → middle.
pub fn eraser(n: usize, b: usize, m: usize, adds: &[ColAdd]) -> BitMatrix {
    for a in adds {
        assert!(
            a.src >= m && a.src < n && a.dst >= b && a.dst < m,
            "eraser additions must go from columns ≥ {m} into columns in {b}..{m}"
        );
    }
    column_addition_matrix(n, adds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{is_mld, is_mrc};
    use gf2::elim::is_nonsingular;

    #[test]
    fn paper_section4_example() {
        // The worked example: Q adds column 0 into columns 1 and 2,
        // and column 3 into column 1 (n = 4).
        let q = column_addition_matrix(
            4,
            &[
                ColAdd { src: 0, dst: 1 },
                ColAdd { src: 0, dst: 2 },
                ColAdd { src: 3, dst: 1 },
            ],
        );
        let expect: BitMatrix = "1110; 0100; 0010; 0101".parse().unwrap();
        assert_eq!(q, expect);
        assert!(is_column_addition(&q));

        let a: BitMatrix = "1011; 0110; 1100; 0101".parse().unwrap();
        let expect_product: BitMatrix = "1001; 0110; 1010; 0001".parse().unwrap();
        assert_eq!(a.mul(&q), expect_product);
    }

    #[test]
    fn lemma19_lu_split_constructive() {
        // The constructive form of Lemma 19: Q = L·U with unit
        // triangular factors, including the paper's worked example.
        let q = column_addition_matrix(
            4,
            &[
                ColAdd { src: 0, dst: 1 },
                ColAdd { src: 0, dst: 2 },
                ColAdd { src: 3, dst: 1 },
            ],
        );
        let (l, u) = lu_split(&q);
        assert_eq!(l.mul(&u), q);
        // L unit lower-triangular, U unit upper-triangular.
        for i in 0..4 {
            assert!(l.get(i, i) && u.get(i, i));
            for j in (i + 1)..4 {
                assert!(!l.get(i, j), "L has an upper entry");
                assert!(!u.get(j, i), "U has a lower entry");
            }
        }
        // Matches the paper's example factors for its Q.
        let paper_q: BitMatrix = "1110; 0100; 0010; 0101".parse().unwrap();
        let (pl, pu) = lu_split(&paper_q);
        let expect_l: BitMatrix = "1000; 0100; 0010; 0101".parse().unwrap();
        let expect_u: BitMatrix = "1110; 0100; 0010; 0001".parse().unwrap();
        assert_eq!(pl, expect_l);
        assert_eq!(pu, expect_u);
        assert!(is_nonsingular(&paper_q));
    }

    #[test]
    #[should_panic(expected = "column-addition")]
    fn lu_split_rejects_non_column_addition() {
        let a: BitMatrix = "01; 10".parse().unwrap(); // zero diagonal
        lu_split(&a);
    }

    #[test]
    fn lemma19_column_addition_nonsingular() {
        // Every column-addition matrix is nonsingular.
        let q = column_addition_matrix(
            5,
            &[
                ColAdd { src: 0, dst: 2 },
                ColAdd { src: 1, dst: 2 },
                ColAdd { src: 4, dst: 3 },
            ],
        );
        assert!(is_nonsingular(&q));
    }

    #[test]
    #[should_panic(expected = "dependency restriction")]
    fn dependency_restriction_enforced() {
        // Column 1 receives an addition and is also a source.
        column_addition_matrix(3, &[ColAdd { src: 0, dst: 1 }, ColAdd { src: 1, dst: 2 }]);
    }

    #[test]
    fn trailer_is_mrc() {
        let (n, m) = (6, 4);
        let t = trailer(
            n,
            m,
            &[ColAdd { src: 0, dst: 4 }, ColAdd { src: 2, dst: 5 }],
        );
        assert!(is_mrc(&t, m), "trailer form must be MRC");
        assert!(is_column_addition(&t));
    }

    #[test]
    #[should_panic(expected = "trailer additions")]
    fn trailer_rejects_wrong_direction() {
        trailer(6, 4, &[ColAdd { src: 4, dst: 0 }]);
    }

    #[test]
    fn reducer_is_mrc() {
        let (n, m) = (6, 4);
        let r = reducer(
            n,
            m,
            &[ColAdd { src: 0, dst: 1 }, ColAdd { src: 2, dst: 1 }],
        );
        assert!(is_mrc(&r, m), "reducer form must be MRC");
    }

    #[test]
    fn swapper_is_mrc_and_swaps() {
        let (n, m) = (6, 4);
        let s = swapper(n, m, &[(0, 2), (1, 3)]);
        assert!(is_mrc(&s, m));
        // A·S should exchange columns 0↔2 and 1↔3.
        let a = BitMatrix::identity(n);
        let prod = a.mul(&s);
        assert!(prod.get(0, 2) && prod.get(2, 0));
        assert!(prod.get(1, 3) && prod.get(3, 1));
        assert!(!prod.get(0, 0) && !prod.get(2, 2));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn swapper_rejects_overlap() {
        swapper(6, 4, &[(0, 1), (1, 2)]);
    }

    #[test]
    fn eraser_is_mld_and_involution() {
        let (b, m, n) = (1, 3, 6);
        let e = eraser(
            n,
            b,
            m,
            &[
                ColAdd { src: 3, dst: 1 },
                ColAdd { src: 4, dst: 2 },
                ColAdd { src: 5, dst: 1 },
            ],
        );
        assert!(is_mld(&e, b, m), "eraser form must be MLD");
        assert!(e.mul(&e).is_identity(), "eraser must be an involution");
    }

    #[test]
    #[should_panic(expected = "eraser additions")]
    fn eraser_rejects_additions_into_left() {
        // dst = 0 < b = 1 is the low (offset) section: not allowed.
        eraser(6, 1, 3, &[ColAdd { src: 4, dst: 0 }]);
    }

    #[test]
    fn column_addition_effect_matches_manual_xor() {
        let a: BitMatrix = "1011; 0110; 1100; 0101".parse().unwrap();
        let q = column_addition_matrix(4, &[ColAdd { src: 1, dst: 3 }]);
        let prod = a.mul(&q);
        let mut manual = a.clone();
        manual.xor_col_into(1, 3);
        assert_eq!(prod, manual);
    }
}
