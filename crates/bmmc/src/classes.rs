//! Permutation subclasses: BPC, MRC, MLD, and their predicates.
//!
//! All predicates take the characteristic matrix together with the
//! relevant boundary logarithms (`b = lg B`, `m = lg M`), matching the
//! paper's block decompositions:
//!
//! * **BPC** — `A` is a permutation matrix (Table 1).
//! * **MRC** — leading `m x m` and trailing `(n−m) x (n−m)` submatrices
//!   nonsingular, lower-left `(n−m) x m` zero (Table 1). One pass.
//! * **MLD** — `A` nonsingular with the *kernel condition* (eq. 4)
//!   `ker α ⊆ ker δ`, where `α = A_{b..m−1, 0..m−1}` and
//!   `δ = A_{m..n−1, 0..m−1}`. One pass with striped reads and
//!   independent writes (Section 3).

use gf2::elim::is_nonsingular;
use gf2::kernel::kernel_contained_in;
use gf2::perm::is_permutation_matrix;
use gf2::BitMatrix;

/// True if `a` characterizes a BMMC permutation: square and
/// nonsingular over GF(2).
pub fn is_bmmc(a: &BitMatrix) -> bool {
    is_nonsingular(a)
}

/// True if `a` characterizes a BPC permutation: a permutation matrix.
pub fn is_bpc(a: &BitMatrix) -> bool {
    is_permutation_matrix(a)
}

/// True if `a` characterizes an MRC permutation at memory boundary `m`:
///
/// ```text
///        m      n−m
///   [ nonsing  arbitrary ]  m
///   [    0     nonsing   ]  n−m
/// ```
pub fn is_mrc(a: &BitMatrix, m: usize) -> bool {
    let n = a.rows();
    if !a.is_square() || m > n {
        return false;
    }
    a.submatrix(m..n, 0..m).is_zero()
        && is_nonsingular(&a.submatrix(0..m, 0..m))
        && is_nonsingular(&a.submatrix(m..n, m..n))
}

/// True if `a` characterizes an MLD permutation at boundaries `b ≤ m`:
/// nonsingular and `ker α ⊆ ker δ` (eq. 4). Uses the two-step check of
/// Section 6: compute a basis of `ker α` and verify `δ` annihilates it.
pub fn is_mld(a: &BitMatrix, b: usize, m: usize) -> bool {
    let n = a.rows();
    if !a.is_square() || b > m || m > n {
        return false;
    }
    if !is_nonsingular(a) {
        return false;
    }
    let alpha = a.submatrix(b..m, 0..m);
    let delta = a.submatrix(m..n, 0..m);
    kernel_contained_in(&alpha, &delta)
}

/// True if `a` is the *inverse* of an MLD permutation — the class the
/// paper's conclusion points at ("the inverse of any one-pass
/// permutation is a one-pass permutation"). Such permutations run in
/// one pass with the mirrored discipline: independent reads, striped
/// writes (see [`crate::passes`]).
pub fn is_mld_inverse(a: &BitMatrix, b: usize, m: usize) -> bool {
    match gf2::elim::inverse(a) {
        Some(inv) => is_mld(&inv, b, m),
        None => false,
    }
}

/// Class membership flags for one characteristic matrix under a given
/// `(b, m)` geometry. `mrc ⊆ mld ⊆ bmmc` always holds (Section 3:
/// "any MRC permutation is an MLD permutation").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassFlags {
    /// Nonsingular over GF(2).
    pub bmmc: bool,
    /// Permutation matrix.
    pub bpc: bool,
    /// Memory-rearrangement/complement: one pass, striped in and out.
    pub mrc: bool,
    /// Memoryload-dispersal: one pass, striped reads, independent
    /// writes.
    pub mld: bool,
    /// Inverse of an MLD permutation: one pass, independent reads,
    /// striped writes.
    pub mld_inverse: bool,
}

/// Classifies a matrix under boundaries `(b, m)`.
pub fn classify(a: &BitMatrix, b: usize, m: usize) -> ClassFlags {
    ClassFlags {
        bmmc: is_bmmc(a),
        bpc: is_bpc(a),
        mrc: is_mrc(a, m),
        mld: is_mld(a, b, m),
        mld_inverse: is_mld_inverse(a, b, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::sample::{random_matrix, random_nonsingular};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(s: &str) -> BitMatrix {
        s.parse().unwrap()
    }

    #[test]
    fn identity_is_everything() {
        let i = BitMatrix::identity(6);
        let f = classify(&i, 2, 4);
        assert!(f.bmmc && f.bpc && f.mrc && f.mld && f.mld_inverse);
    }

    #[test]
    fn eraser_inverse_is_mld_inverse() {
        // Erasers are involutions, so they are both MLD and MLD⁻¹.
        let e = m("100; 010; 011");
        assert!(is_mld(&e, 1, 2));
        assert!(is_mld_inverse(&e, 1, 2));
    }

    #[test]
    fn mld_inverse_need_not_be_mld() {
        // Take an MLD matrix that is not MRC; its inverse is MLD⁻¹ but
        // typically not MLD.
        use gf2::elim::inverse;
        let mut rng = StdRng::seed_from_u64(22);
        let (b, mm, n) = (2usize, 5usize, 9usize);
        let mut found = false;
        for _ in 0..100 {
            let p = crate::catalog::random_mld(&mut rng, n, b, mm);
            let inv = inverse(p.matrix()).unwrap();
            if !is_mld(&inv, b, mm) {
                assert!(is_mld_inverse(&inv, b, mm));
                found = true;
                break;
            }
        }
        assert!(found, "every sampled MLD inverse was MLD — class collapse?");
    }

    #[test]
    fn mrc_requires_zero_lower_left() {
        // n=4, m=2. Lower-left nonzero => not MRC.
        let a = m("1000; 0100; 1010; 0001");
        assert!(is_bmmc(&a));
        assert!(!is_mrc(&a, 2));
        // Zero lower-left, nonsingular blocks => MRC.
        let b = m("1010; 0110; 0010; 0001");
        assert!(is_mrc(&b, 2));
    }

    #[test]
    fn every_mrc_is_mld() {
        // Section 3: the lower-left of an MRC matrix is 0, so its
        // kernel is everything, which contains ker α.
        let mut rng = StdRng::seed_from_u64(21);
        let (b, mm, n) = (2, 4, 7);
        for _ in 0..50 {
            let mut a = BitMatrix::zeros(n, n);
            a.set_block(0, 0, &random_nonsingular(&mut rng, mm));
            a.set_block(mm, mm, &random_nonsingular(&mut rng, n - mm));
            a.set_block(0, mm, &random_matrix(&mut rng, mm, n - mm));
            assert!(is_mrc(&a, mm));
            assert!(is_mld(&a, b, mm), "MRC matrix failed MLD check:\n{a:?}");
        }
    }

    #[test]
    fn eraser_form_is_mld() {
        // Section 4: the erasure matrix form [I 0 0; 0 I 0; 0 * I] is
        // MLD. Take b=1, m=2, n=3 and the * = 1.
        let e = m("100; 010; 011");
        assert!(is_mld(&e, 1, 2));
        assert!(!is_mrc(&e, 2));
    }

    #[test]
    fn paper_counterexample_not_mld() {
        // Section 3's MRC·MLD product with reversed order is not MLD
        // (b = m−b = n−m = 1 ⇒ b=1, m=2, n=3).
        let product = m("010; 100; 011");
        assert!(is_bmmc(&product));
        assert!(!is_bpc(&product)); // it has a 2-one row
        assert!(!is_mld(&product, 1, 2));
    }

    #[test]
    fn singular_is_nothing() {
        let s = m("11; 11");
        let f = classify(&s, 1, 1);
        assert!(!f.bmmc && !f.bpc && !f.mrc && !f.mld);
    }

    #[test]
    fn bpc_detection() {
        let p = gf2::perm::permutation_matrix(&[2, 0, 1, 3]);
        assert!(is_bpc(&p));
        assert!(is_bmmc(&p));
    }

    #[test]
    fn bpc_crossing_m_is_not_mld() {
        // A permutation matrix that moves bit 0 across the memory
        // boundary m=2 cannot be one-pass: swap bits 0 and 2 (n=4).
        let p = gf2::perm::permutation_matrix(&[2, 1, 0, 3]);
        assert!(!is_mld(&p, 1, 2));
        assert!(!is_mrc(&p, 2));
    }

    #[test]
    fn bpc_within_sections_is_mrc() {
        // Permutation that keeps bits within [0,m) and [m,n): one pass.
        let p = gf2::perm::permutation_matrix(&[1, 0, 3, 2]);
        assert!(is_mrc(&p, 2));
        assert!(is_mld(&p, 1, 2));
    }
}
