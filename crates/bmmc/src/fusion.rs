//! Pass-pair fusion: skip the disk round-trip between adjacent passes
//! of a multi-pass plan.
//!
//! A plan from [`crate::factoring::factor`], [`crate::plan_passes`],
//! or [`crate::bpc_baseline`] is a sequence of one-pass permutations,
//! and the executor pays a full disk round-trip *between* passes: pass
//! `k` writes its output to a portion and pass `k+1` immediately reads
//! the same records back. But both rearrangements are known GF(2)
//! affine maps — whenever they compose within the `M`-record memory
//! model, one read, one composed in-memory rearrangement, and one
//! write suffice, halving the parallel I/O for that pair. The
//! [`fuse_passes`] planner folds passes into [`FusedPass`] groups —
//! since the plan-IR refactor by whole-plan dynamic programming
//! ([`crate::plan::fuse_passes_dp`]), with the original greedy pair
//! fuser kept as [`fuse_passes_greedy`] — and [`execute_fused_with`]
//! runs each group in a single pass of `2N/BD` parallel I/Os.
//!
//! # Legality rule
//!
//! Two adjacent passes `p1; p2` (first `p1`, then `p2`) fuse when the
//! intermediate portion can be reconstructed one memoryload at a time
//! in RAM. Writing the composed matrix `C = A₂·A₁` (and complement
//! `c = A₂c₁ ⊕ c₂`), the planner applies two rules, in order:
//!
//! 1. **Discipline rule — unconditional.** If `p1` *writes* whole
//!    target memoryloads (MRC or MLD⁻¹: striped writes) and `p2`
//!    *reads* whole source memoryloads (MRC or MLD: striped reads),
//!    the intermediate memoryload `p1` would have written is exactly
//!    the memoryload `p2` would have read — so the fused pass keeps
//!    `p1`'s read side, applies the composed rearrangement, and writes
//!    with `p2`'s write side. No rank condition is needed: the pairs
//!    MRC∘MRC, MLD∘MRC, MRC∘MLD⁻¹ and MLD∘MLD⁻¹ (composition order:
//!    right first) always fuse, and a fused group keeps absorbing
//!    passes while its write side stays striped. The four resulting
//!    read/write shapes are the three classic disciplines plus the
//!    gathered-read/scattered-write executor
//!    ([`crate::passes`]' `execute_gather_scatter`), which also
//!    realizes the Section 7 remark that the composition of an MLD
//!    permutation with an MLD inverse is one pass
//!    ([`crate::extensions::perform_mld_pair`]).
//! 2. **Rank rule — conditional.** Otherwise (`p1` scatters blocks, or
//!    `p2` gathers blocks), the pair still fuses if the *composed*
//!    matrix `C` is itself one-pass executable, i.e. classifies as
//!    MRC, MLD, or MLD⁻¹ at the geometry's `(b, m)` boundaries —
//!    equivalently, each source memoryload maps under `C` onto whole
//!    target memoryloads (MRC: nonsingular leading `m×m` submatrix and
//!    zero lower-left, Table 1) or whole target blocks (MLD: the
//!    kernel condition `ker α ⊆ ker δ` of eq. 4; MLD⁻¹ mirrored).
//!    The checks are rank computations on `C`'s submatrices via
//!    [`gf2::elim`] (see [`crate::classes`]). This covers e.g.
//!    MRC∘MLD pairs whose composition happens to stay memoryload-
//!    dispersal — the paper's Section 3 warns the MLD class is *not*
//!    closed under composition, which is exactly why the check is a
//!    rank condition rather than unconditional.
//!
//! Pairs where `p1` scatters and the composition leaves the one-pass
//! classes do **not** fuse: an intermediate memoryload of such a pair
//! is assembled from arbitrary `B`-record subsets of several source
//! memoryloads, which no `M/BD`-I/O read discipline can gather.
//!
//! Correctness does not depend on the classifier: each fused group is
//! executed by the generalized executors of [`crate::passes`], whose
//! debug assertions check the whole-memoryload / whole-block /
//! evenly-spread properties (Lemmas 12–14, property 3) on every unit.
//!
//! # What fuses in practice
//!
//! * The Section 5 factoring of a *generic* BMMC matrix is already
//!   pass-minimal for its rank (eq. 17), so its interior MLD pairs
//!   rarely satisfy the rank rule — the paper's optimality is
//!   respected.
//! * The [`crate::bpc_baseline`] plan `(MLD, MRC)×k, MRC` fuses every
//!   `MRC_i; MLD_{i+1}` seam and the trailing `MRC; MRC` pair by the
//!   discipline rule: `2k+1` planned passes execute as `k+1` steps —
//!   asymptotically the 2× round-trip saving this module exists for.
//! * Chains of MRC passes, and any `MLD⁻¹ …` prefix followed by
//!   striped-reading passes, collapse completely (`k` passes → 1).

use crate::bmmc::Bmmc;
use crate::classes::{is_mld, is_mld_inverse, is_mrc};
use crate::error::{BmmcError, Result};
use crate::eval::PassEval;
use crate::factoring::{Pass, PassKind};
use crate::passes::{self, EvalStrategy};
use gf2::{BitMatrix, BitVec};
use pdm::{DiskSystem, Geometry, PassEngine, Record};

/// How a fused pass reads each unit of `M` records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadDiscipline {
    /// Striped reads of whole source memoryloads (MRC/MLD heritage).
    Striped,
    /// Independent gathers of whole source blocks (MLD⁻¹ heritage).
    Gather,
}

/// How a fused pass writes each unit of `M` records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteDiscipline {
    /// Striped writes of whole target memoryloads (MRC/MLD⁻¹
    /// heritage).
    Striped,
    /// Independent scatters of whole target blocks (MLD heritage).
    Scatter,
}

/// One executed step of a fused plan: one disk round-trip realizing
/// one or more original one-pass permutations.
#[derive(Clone, Debug)]
pub struct FusedPass {
    /// Composed characteristic matrix of the group (`A_k ⋯ A_1`).
    pub matrix: BitMatrix,
    /// Composed complement vector.
    pub complement: BitVec,
    /// Present iff the reads are gathered: the affine *gather map*
    /// `G` defining the iteration units — unit `u` reads the source
    /// records `{x : G(x) ∈ memoryload u}`. For a lone MLD⁻¹ pass the
    /// gather map is the pass itself; after absorbing later passes it
    /// stays the *first* pass of the group.
    pub gather: Option<Bmmc>,
    /// The write side (the last absorbed pass's write discipline).
    pub write: WriteDiscipline,
    /// Kinds of the original passes this step replaces, in execution
    /// order (length 1 for an unfused pass).
    pub replaced: Vec<PassKind>,
}

impl FusedPass {
    pub(crate) fn from_single(pass: &Pass) -> Self {
        FusedPass {
            matrix: pass.matrix.clone(),
            complement: pass.complement.clone(),
            gather: matches!(pass.kind, PassKind::MldInverse).then(|| pass.as_bmmc()),
            write: match pass.kind {
                PassKind::Mrc | PassKind::MldInverse => WriteDiscipline::Striped,
                PassKind::Mld => WriteDiscipline::Scatter,
            },
            replaced: vec![pass.kind],
        }
    }

    /// The read side of this step.
    pub fn reads(&self) -> ReadDiscipline {
        if self.gather.is_some() {
            ReadDiscipline::Gather
        } else {
            ReadDiscipline::Striped
        }
    }

    /// Number of original passes this step replaces.
    pub fn num_replaced(&self) -> usize {
        self.replaced.len()
    }

    /// True if this step replaces more than one original pass.
    pub fn is_fused(&self) -> bool {
        self.replaced.len() > 1
    }

    /// The composed permutation this step performs.
    pub fn as_bmmc(&self) -> Bmmc {
        Bmmc::new(self.matrix.clone(), self.complement.clone())
            .expect("fused groups compose nonsingular factors")
    }

    /// Display label, e.g. `"Mrc"` or `"Mrc+Mld"`.
    pub fn label(&self) -> String {
        kinds_label(&self.replaced)
    }
}

/// Display label for a (possibly fused) run of pass kinds, e.g.
/// `"Mrc"` or `"Mrc+Mld"` — shared by [`FusedPass::label`] and
/// [`crate::algorithm::StepStats::label`].
pub fn kinds_label(kinds: &[PassKind]) -> String {
    kinds
        .iter()
        .map(|k| format!("{k:?}"))
        .collect::<Vec<_>>()
        .join("+")
}

/// A fused execution plan: the steps to run, each one disk round-trip.
#[derive(Clone, Debug)]
pub struct FusedPlan {
    /// Executable steps in execution order.
    pub steps: Vec<FusedPass>,
}

impl FusedPlan {
    /// Number of executed steps (disk round-trips).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of original planned passes.
    pub fn planned_passes(&self) -> usize {
        self.steps.iter().map(FusedPass::num_replaced).sum()
    }

    /// Disk round-trips saved by fusion.
    pub fn passes_saved(&self) -> usize {
        self.planned_passes() - self.num_steps()
    }

    /// Predicted parallel I/Os for the fused execution (`2N/BD` per
    /// step).
    pub fn predicted_ios(&self, geom: &Geometry) -> usize {
        self.num_steps() * geom.ios_per_pass()
    }

    /// Predicted parallel I/Os for the *unfused* execution of the same
    /// plan.
    pub fn unfused_ios(&self, geom: &Geometry) -> usize {
        self.planned_passes() * geom.ios_per_pass()
    }

    /// Recomposes the steps and checks they reproduce `perm` (the
    /// product of step permutations, last step leftmost).
    pub fn verify(&self, perm: &Bmmc) -> bool {
        let mut composed = Bmmc::identity(perm.bits());
        for step in &self.steps {
            composed = step.as_bmmc().compose(&composed);
        }
        composed == *perm
    }
}

/// Fuses a pass plan at boundaries `b = lg B`, `m = lg M`. Since the
/// plan-IR refactor this is the dynamic-programming whole-plan fuser
/// ([`crate::plan::fuse_passes_dp`]): it never produces more steps
/// than the greedy pair fuser ([`fuse_passes_greedy`]), returns the
/// greedy plan verbatim when the step counts tie, and finds
/// re-associations pair fusion misses (e.g. `MLD;MRC;MLD`).
///
/// ```
/// use bmmc::{catalog, fusion::fuse_passes, plan_passes};
///
/// // A Gray-code + bit-complement permutation is MRC: a chain of MRC
/// // passes collapses to one step.
/// let g = catalog::gray_code(10);
/// let passes = plan_passes(&g, 2, 6).unwrap();
/// let doubled: Vec<_> = passes.iter().chain(passes.iter()).cloned().collect();
/// let plan = fuse_passes(&doubled, 2, 6);
/// assert_eq!(plan.planned_passes(), 2);
/// assert_eq!(plan.num_steps(), 1); // MRC∘MRC always fuses
/// ```
pub fn fuse_passes(passes: &[Pass], b: usize, m: usize) -> FusedPlan {
    crate::plan::fuse_passes_dp(passes, b, m)
}

/// The original greedy left-to-right pair fuser: absorbs each pass
/// into the current group when the discipline or rank rule (see the
/// module docs) allows it. Kept as the DP fuser's tie-break target and
/// regression baseline — the DP provably never does worse.
pub fn fuse_passes_greedy(passes: &[Pass], b: usize, m: usize) -> FusedPlan {
    let mut steps: Vec<FusedPass> = Vec::new();
    for pass in passes {
        if let Some(group) = steps.last_mut() {
            if try_absorb(group, pass, b, m) {
                continue;
            }
        }
        steps.push(FusedPass::from_single(pass));
    }
    FusedPlan { steps }
}

/// Attempts to absorb `next` into `group`; true on success.
fn try_absorb(group: &mut FusedPass, next: &Pass, b: usize, m: usize) -> bool {
    // Rule 1 — discipline: the group ends on whole-memoryload writes
    // and `next` begins on whole-memoryload reads, so the intermediate
    // memoryload exists in RAM and never needs the disk.
    if group.write == WriteDiscipline::Striped && next.kind.reads_whole_memoryloads() {
        let composed = next.as_bmmc().compose(&group.as_bmmc());
        group.matrix = composed.matrix().clone();
        group.complement = composed.complement().clone();
        group.write = match next.kind {
            PassKind::Mld => WriteDiscipline::Scatter,
            _ => WriteDiscipline::Striped,
        };
        group.replaced.push(next.kind);
        return true;
    }
    // Rule 2 — rank check: the composed map is itself one-pass
    // executable, so the whole group collapses to a classified pass.
    let composed = next.as_bmmc().compose(&group.as_bmmc());
    let (gather, write) = if is_mrc(composed.matrix(), m) {
        (None, WriteDiscipline::Striped)
    } else if is_mld(composed.matrix(), b, m) {
        (None, WriteDiscipline::Scatter)
    } else if is_mld_inverse(composed.matrix(), b, m) {
        (Some(composed.clone()), WriteDiscipline::Striped)
    } else {
        return false;
    };
    group.matrix = composed.matrix().clone();
    group.complement = composed.complement().clone();
    group.gather = gather;
    group.write = write;
    group.replaced.push(next.kind);
    true
}

/// Executes one fused step on a caller-provided engine, moving all `N`
/// records from portion `src` to portion `dst`. Costs exactly `2N/BD`
/// parallel I/Os regardless of how many original passes the step
/// replaces.
pub fn execute_fused_with<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    step: &FusedPass,
) -> Result<()> {
    execute_fused_with_strategy(engine, sys, src, dst, step, EvalStrategy::default())
}

/// [`execute_fused_with`] with an explicit address-evaluation strategy
/// (see [`EvalStrategy`]); placement and I/O accounting are identical
/// across strategies.
pub fn execute_fused_with_strategy<R: Record>(
    engine: &mut PassEngine<R>,
    sys: &mut DiskSystem<R>,
    src: usize,
    dst: usize,
    step: &FusedPass,
    strategy: EvalStrategy,
) -> Result<()> {
    let geom = sys.geometry();
    let n = geom.n();
    if step.matrix.rows() != n {
        return Err(BmmcError::GeometryMismatch {
            perm_bits: step.matrix.rows(),
            system_bits: n,
        });
    }
    assert_ne!(src, dst, "source and target portions must differ");
    let b = geom.b() as u32;
    let ev = PassEval::new(&step.as_bmmc(), b);
    match (&step.gather, step.write) {
        (None, WriteDiscipline::Striped) => {
            passes::execute_mrc(engine, sys, src, dst, &ev, strategy)
        }
        (None, WriteDiscipline::Scatter) => {
            passes::execute_mld(engine, sys, src, dst, &ev, strategy)
        }
        (Some(g), WriteDiscipline::Striped) => {
            let inv_ev = PassEval::new(&g.inverse(), b);
            passes::execute_mld_inverse(engine, sys, src, dst, &ev, &inv_ev, strategy)
        }
        (Some(g), WriteDiscipline::Scatter) => {
            let inv_ev = PassEval::new(&g.inverse(), b);
            passes::execute_gather_scatter(engine, sys, src, dst, &ev, &inv_ev, strategy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::passes::reference_permute;
    use pdm::{Geometry, IoStats, ServiceMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// N=2^10, B=2^2, D=2^2, M=2^6 → b=2, d=2, m=6, n=10.
    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    fn pass_of(perm: &Bmmc, kind: PassKind) -> Pass {
        Pass {
            matrix: perm.matrix().clone(),
            complement: perm.complement().clone(),
            kind,
        }
    }

    /// Runs a fused plan end to end and checks the final placement
    /// against the composed reference permutation; returns
    /// (plan, total IoStats).
    fn run_fused(g: Geometry, passes: &[Pass], mode: ServiceMode) -> (FusedPlan, IoStats) {
        let plan = fuse_passes(passes, g.b(), g.m());
        let mut composed = Bmmc::identity(g.n());
        for p in passes {
            composed = p.as_bmmc().compose(&composed);
        }
        assert!(plan.verify(&composed), "fused plan does not recompose");
        let input: Vec<u64> = (0..g.records() as u64).collect();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.set_service_mode(mode);
        sys.load_records(0, &input);
        let mut engine = PassEngine::new(g);
        let mut src = 0;
        for step in &plan.steps {
            let dst = 1 - src;
            execute_fused_with(&mut engine, &mut sys, src, dst, step).unwrap();
            src = dst;
        }
        let expect = reference_permute(&input, |x| composed.target(x));
        assert_eq!(sys.dump_records(src), expect, "wrong final placement");
        (plan, sys.stats())
    }

    #[test]
    fn mrc_chain_collapses_to_one_step() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = geom();
        let chain: Vec<Pass> = (0..4)
            .map(|_| pass_of(&catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc))
            .collect();
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let (plan, ios) = run_fused(g, &chain, mode);
            assert_eq!(plan.num_steps(), 1, "MRC chain must fully fuse");
            assert_eq!(plan.passes_saved(), 3);
            assert_eq!(ios.parallel_ios() as usize, g.ios_per_pass());
            assert_eq!(ios.striped_writes, ios.parallel_writes);
        }
    }

    #[test]
    fn mrc_then_mld_fuses_to_one_scattering_step() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = geom();
        let plan_passes = vec![
            pass_of(&catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc),
            pass_of(
                &catalog::random_mld(&mut rng, g.n(), g.b(), g.m()),
                PassKind::Mld,
            ),
        ];
        let (plan, ios) = run_fused(g, &plan_passes, ServiceMode::Serial);
        assert_eq!(plan.num_steps(), 1);
        assert_eq!(plan.steps[0].reads(), ReadDiscipline::Striped);
        assert_eq!(plan.steps[0].write, WriteDiscipline::Scatter);
        // Exactly half the unfused cost.
        assert_eq!(ios.parallel_ios() as usize, g.ios_per_pass());
        assert_eq!(plan.unfused_ios(&g), 2 * g.ios_per_pass());
    }

    #[test]
    fn mld_inverse_then_mrc_fuses_with_gathered_reads() {
        let mut rng = StdRng::seed_from_u64(73);
        let g = geom();
        let inv = catalog::random_mld(&mut rng, g.n(), g.b(), g.m()).inverse();
        let plan_passes = vec![
            pass_of(&inv, PassKind::MldInverse),
            pass_of(&catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc),
        ];
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let (plan, ios) = run_fused(g, &plan_passes, mode);
            assert_eq!(plan.num_steps(), 1);
            assert_eq!(plan.steps[0].reads(), ReadDiscipline::Gather);
            assert_eq!(plan.steps[0].write, WriteDiscipline::Striped);
            assert_eq!(ios.parallel_ios() as usize, g.ios_per_pass());
            assert_eq!(ios.striped_writes, ios.parallel_writes);
        }
    }

    #[test]
    fn mld_inverse_then_mld_fuses_gather_to_scatter() {
        // The gathered-read/scattered-write discipline: both sides
        // independent, still one pass (the Section 7 composition).
        let mut rng = StdRng::seed_from_u64(74);
        let g = geom();
        let z = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
        let y = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
        let plan_passes = vec![
            pass_of(&z.inverse(), PassKind::MldInverse),
            pass_of(&y, PassKind::Mld),
        ];
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let (plan, ios) = run_fused(g, &plan_passes, mode);
            assert_eq!(plan.num_steps(), 1);
            assert_eq!(plan.steps[0].reads(), ReadDiscipline::Gather);
            assert_eq!(plan.steps[0].write, WriteDiscipline::Scatter);
            assert_eq!(ios.parallel_ios() as usize, g.ios_per_pass());
        }
    }

    #[test]
    fn mld_then_mrc_does_not_fuse_in_general() {
        // An MLD pass scatters blocks; unless the composition lands
        // back in a one-pass class (rank rule), the pair must stay two
        // steps. Find such a pair and check it executes correctly.
        let mut rng = StdRng::seed_from_u64(75);
        let g = geom();
        let mut found = false;
        for _ in 0..50 {
            let mld = catalog::random_mld(&mut rng, g.n(), g.b(), g.m());
            let mrc = catalog::random_mrc(&mut rng, g.n(), g.m());
            let composed = mrc.compose(&mld);
            if is_mld(composed.matrix(), g.b(), g.m())
                || is_mld_inverse(composed.matrix(), g.b(), g.m())
                // The DP fuser can also gather *through* the MLD pass
                // when it happens to be MLD⁻¹ too — exclude that.
                || is_mld_inverse(mld.matrix(), g.b(), g.m())
            {
                continue;
            }
            let plan_passes = vec![pass_of(&mld, PassKind::Mld), pass_of(&mrc, PassKind::Mrc)];
            let (plan, ios) = run_fused(g, &plan_passes, ServiceMode::Serial);
            assert_eq!(plan.num_steps(), 2, "illegal pair must not fuse");
            assert_eq!(ios.parallel_ios() as usize, 2 * g.ios_per_pass());
            found = true;
            break;
        }
        assert!(found, "no non-fusable MLD;MRC pair sampled");
    }

    #[test]
    fn rank_rule_fuses_composition_landing_in_mld() {
        // MLD;MLD where the composition is MLD again: the discipline
        // rule does not apply (first pass scatters), but the rank rule
        // fires. Take Z then Z⁻¹·Y for MLD Y — composition is Y.
        // Z⁻¹·Y is usually not in any one-pass class by itself, so
        // construct directly: p1 = MLD Z, p2 with matrix Y·Z⁻¹ won't
        // generally be a *pass*. Instead use two erasers (involutions,
        // MLD) whose product is another eraser-form MLD matrix.
        let g = geom();
        let (b, m, n) = (g.b(), g.m(), g.n());
        let e1 = crate::factors::eraser(n, b, m, &[crate::factors::ColAdd { src: m, dst: b }]);
        let e2 = crate::factors::eraser(
            n,
            b,
            m,
            &[crate::factors::ColAdd {
                src: m + 1,
                dst: b + 1,
            }],
        );
        let p1 = Bmmc::linear(e1).unwrap();
        let p2 = Bmmc::linear(e2).unwrap();
        assert!(is_mld(p1.matrix(), b, m) && is_mld(p2.matrix(), b, m));
        let product = p2.compose(&p1);
        assert!(
            is_mld(product.matrix(), b, m),
            "eraser product should stay MLD"
        );
        let plan_passes = vec![pass_of(&p1, PassKind::Mld), pass_of(&p2, PassKind::Mld)];
        let (plan, ios) = run_fused(g, &plan_passes, ServiceMode::Serial);
        assert_eq!(plan.num_steps(), 1, "rank rule should fuse MLD;MLD here");
        assert_eq!(ios.parallel_ios() as usize, g.ios_per_pass());
    }

    #[test]
    fn gather_headed_group_keeps_absorbing_striped_readers() {
        // MLD⁻¹; MRC; MRC; MLD → one gathered-read, scattered-write
        // step (the group's write side stays striped until the MLD).
        let mut rng = StdRng::seed_from_u64(76);
        let g = geom();
        let plan_passes = vec![
            pass_of(
                &catalog::random_mld(&mut rng, g.n(), g.b(), g.m()).inverse(),
                PassKind::MldInverse,
            ),
            pass_of(&catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc),
            pass_of(&catalog::random_mrc(&mut rng, g.n(), g.m()), PassKind::Mrc),
            pass_of(
                &catalog::random_mld(&mut rng, g.n(), g.b(), g.m()),
                PassKind::Mld,
            ),
        ];
        let (plan, ios) = run_fused(g, &plan_passes, ServiceMode::Threaded);
        assert_eq!(plan.num_steps(), 1, "whole chain must fuse");
        assert_eq!(plan.passes_saved(), 3);
        assert_eq!(plan.steps[0].label(), "MldInverse+Mrc+Mrc+Mld");
        assert_eq!(ios.parallel_ios() as usize, g.ios_per_pass());
    }

    #[test]
    fn complements_compose_through_fusion() {
        // Nonzero complements on both passes of a fused pair.
        let g = geom();
        let rev = catalog::vector_reversal(g.n()); // identity matrix, c = 1…1
        let gray = catalog::gray_code(g.n());
        let plan_passes = vec![
            pass_of(&rev, PassKind::Mrc),
            pass_of(&gray, PassKind::Mrc),
            pass_of(&rev, PassKind::Mrc),
        ];
        let (plan, _) = run_fused(g, &plan_passes, ServiceMode::Serial);
        assert_eq!(plan.num_steps(), 1);
    }

    #[test]
    fn empty_and_singleton_plans() {
        let g = geom();
        assert_eq!(fuse_passes(&[], g.b(), g.m()).num_steps(), 0);
        let mut rng = StdRng::seed_from_u64(77);
        let p = pass_of(
            &catalog::random_mld(&mut rng, g.n(), g.b(), g.m()),
            PassKind::Mld,
        );
        let plan = fuse_passes(std::slice::from_ref(&p), g.b(), g.m());
        assert_eq!(plan.num_steps(), 1);
        assert_eq!(plan.passes_saved(), 0);
        assert!(!plan.steps[0].is_fused());
    }

    #[test]
    fn bpc_baseline_plan_halves_round_trips() {
        // The flagship workload: the baseline's (MLD, MRC)×k + MRC
        // plan fuses to k+1 steps.
        let mut rng = StdRng::seed_from_u64(78);
        let g = geom();
        for _ in 0..5 {
            let perm = catalog::random_bpc(&mut rng, g.n());
            let plan_passes = crate::bpc_baseline::bpc_baseline_plan(&perm, g.b(), g.m())
                .unwrap()
                .passes;
            if plan_passes.len() < 3 {
                continue; // no crossing chunks: nothing to fuse
            }
            let k = (plan_passes.len() - 1) / 2;
            let (plan, ios) = run_fused(g, &plan_passes, ServiceMode::Serial);
            assert!(
                plan.num_steps() <= k + 1,
                "baseline plan of {} passes should fuse to at most {} steps, got {}",
                plan_passes.len(),
                k + 1,
                plan.num_steps()
            );
            assert_eq!(
                ios.parallel_ios() as usize,
                plan.num_steps() * g.ios_per_pass(),
                "fused execution must charge one pass per step"
            );
        }
    }
}
