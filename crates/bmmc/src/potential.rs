//! The Aggarwal–Vitter potential function used in the Section 2 lower
//! bound, made executable.
//!
//! For target group `i` (the records destined for target block `i`),
//! `g_block(i, k)` counts members of group `i` currently in block `k`,
//! and the togetherness function of a block is
//! `Σ_i f(g_block(i, k))` with `f(x) = x lg x`. The potential `Φ` is
//! the sum over all blocks (plus memory, which is empty between
//! passes). The paper shows:
//!
//! * `Φ(0) = N (lg B − rank γ)` for a BMMC permutation (eq. 9, via
//!   Lemma 10),
//! * `Φ(final) = N lg B`,
//! * each parallel I/O increases `Φ` by at most
//!   `Δ_max = O(B·D·lg(M/B))`,
//!
//! which yields Theorem 3. Tracking `Φ` across the passes of the
//! algorithm shows how each pass "spends" its I/Os on potential gain —
//! the Section 7 open question asks whether a pass can always gain
//! `Ω((N/BD)·Δ_max)`.

use crate::algorithm::BmmcReport;
use crate::error::Result;
use crate::factoring::Factorization;
use crate::passes::execute_pass;
use pdm::{BlockRef, DiskSystem, Record};
use std::collections::HashMap;

/// `f(x) = x lg x`, continuously extended with `f(0) = 0`.
pub fn f(x: f64) -> f64 {
    if x > 0.0 {
        x * x.log2()
    } else {
        0.0
    }
}

/// The togetherness value of one multiset of group counts.
pub fn togetherness(counts: impl IntoIterator<Item = usize>) -> f64 {
    counts.into_iter().map(|c| f(c as f64)).sum()
}

/// Computes `Φ` for the records currently in `portion` of the disk
/// system (memory assumed empty, as it is between passes).
/// `target_block_of` maps a record to its final target block number.
pub fn potential<R: Record>(
    sys: &mut DiskSystem<R>,
    portion: usize,
    mut target_block_of: impl FnMut(&R) -> u64,
) -> f64 {
    let geom = sys.geometry();
    let base = sys.portion_base(portion);
    let mut phi = 0.0;
    let mut groups: HashMap<u64, usize> = HashMap::new();
    for slot in 0..geom.stripes() {
        for disk in 0..geom.disks() {
            let block = sys.peek_block(BlockRef {
                disk,
                slot: base + slot,
            });
            groups.clear();
            for rec in &block {
                *groups.entry(target_block_of(rec)).or_insert(0) += 1;
            }
            phi += togetherness(groups.values().copied());
        }
    }
    phi
}

/// The closed-form initial potential for a BMMC permutation (eq. 9):
/// `Φ(0) = N (lg B − rank γ)` with `γ = A_{b..n−1, 0..b−1}`.
pub fn initial_potential_formula(records: usize, lg_b: usize, rank_gamma: usize) -> f64 {
    records as f64 * (lg_b as f64 - rank_gamma as f64)
}

/// The final potential `Φ(t) = N lg B` (every block fully together).
pub fn final_potential(records: usize, lg_b: usize) -> f64 {
    (records * lg_b) as f64
}

/// The Section 7 sharpened per-I/O potential gain limit:
/// `Δ_max ≤ B (2/(e ln 2) + lg(M/B))`, times `D` for D disks.
pub fn delta_max(block: usize, disks: usize, lg_mb: usize) -> f64 {
    block as f64
        * disks as f64
        * (2.0 / (std::f64::consts::E * std::f64::consts::LN_2) + lg_mb as f64)
}

/// Executes a factorization pass by pass, recording `Φ` before the
/// first pass and after each pass. Records must carry their original
/// source address via `key_of`, and `target` is the overall
/// permutation being performed.
///
/// Returns the report and the potential trajectory
/// (`trajectory.len() == passes + 1`).
pub fn trace_potential<R: Record>(
    sys: &mut DiskSystem<R>,
    fac: &Factorization,
    key_of: impl Fn(&R) -> u64 + Copy,
    target: impl Fn(u64) -> u64 + Copy,
) -> Result<(BmmcReport, Vec<f64>)> {
    let b = sys.geometry().b();
    let group = move |rec: &R| target(key_of(rec)) >> b;
    let mut trajectory = vec![potential(sys, 0, group)];
    let before = sys.stats();
    let msgs_before = sys.message_stats();
    let mut stats = Vec::with_capacity(fac.passes.len());
    let mut src = 0usize;
    for pass in &fac.passes {
        let dst = 1 - src;
        stats.push(execute_pass(sys, src, dst, pass)?.into());
        src = dst;
        trajectory.push(potential(sys, src, group));
    }
    Ok((
        BmmcReport {
            passes: stats,
            total: sys.stats().since(&before),
            msgs: sys.message_stats().since(&msgs_before),
            final_portion: src,
        },
        trajectory,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::factoring::factor;
    use gf2::elim::rank;
    use pdm::{Geometry, TaggedRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    #[test]
    fn f_properties() {
        assert_eq!(f(0.0), 0.0);
        assert_eq!(f(1.0), 0.0);
        assert_eq!(f(2.0), 2.0);
        assert_eq!(f(4.0), 8.0);
    }

    #[test]
    fn togetherness_of_full_block() {
        // B records all in one group: f(B) = B lg B.
        assert_eq!(togetherness([4]), 8.0);
        // Split across 4 groups: zero.
        assert_eq!(togetherness([1, 1, 1, 1]), 0.0);
    }

    fn loaded_system(g: Geometry) -> DiskSystem<TaggedRecord> {
        let mut sys = DiskSystem::new_mem(g, 2);
        let input: Vec<TaggedRecord> = (0..g.records() as u64).map(TaggedRecord::new).collect();
        sys.load_records(0, &input);
        sys
    }

    #[test]
    fn initial_potential_matches_eq9() {
        // Lemma 10 ⇒ Φ(0) = N (lg B − rank γ). Check on random BMMC
        // permutations with various γ ranks.
        let mut rng = StdRng::seed_from_u64(81);
        let g = geom();
        for r in 0..=g.b().min(g.n() - g.b()) {
            let a = gf2::sample::random_with_submatrix_rank(&mut rng, g.n(), g.b(), r);
            let perm = crate::Bmmc::linear(a).unwrap();
            let mut sys = loaded_system(g);
            let got = potential(&mut sys, 0, |rec| perm.target(rec.key) >> g.b());
            let expect = initial_potential_formula(g.records(), g.b(), r);
            assert!(
                (got - expect).abs() < 1e-6,
                "rank {r}: Φ(0) = {got}, eq. (9) says {expect}"
            );
        }
    }

    #[test]
    fn identity_starts_at_final_potential() {
        let g = geom();
        let mut sys = loaded_system(g);
        let got = potential(&mut sys, 0, |rec| rec.key >> g.b());
        assert_eq!(got, final_potential(g.records(), g.b()));
    }

    #[test]
    fn trajectory_ends_at_n_lg_b_and_is_monotone() {
        let mut rng = StdRng::seed_from_u64(82);
        let g = geom();
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let fac = factor(&perm, g.b(), g.m()).unwrap();
        let mut sys = loaded_system(g);
        let (report, traj) = trace_potential(
            &mut sys,
            &fac,
            |rec: &TaggedRecord| rec.key,
            |x| perm.target(x),
        )
        .unwrap();
        assert_eq!(traj.len(), report.num_passes() + 1);
        let fin = final_potential(g.records(), g.b());
        assert!(
            (traj.last().unwrap() - fin).abs() < 1e-6,
            "final Φ = {} ≠ N lg B = {fin}",
            traj.last().unwrap()
        );
        // Initial value matches eq. (9).
        let r = rank(&perm.matrix().submatrix(g.b()..g.n(), 0..g.b()));
        let init = initial_potential_formula(g.records(), g.b(), r);
        assert!((traj[0] - init).abs() < 1e-6);
    }

    #[test]
    fn per_io_gain_respects_delta_max() {
        // Across each pass, the potential gain divided by the number of
        // parallel I/Os in the pass must not exceed Δ_max.
        let mut rng = StdRng::seed_from_u64(83);
        let g = geom();
        let perm = catalog::random_bmmc(&mut rng, g.n());
        let fac = factor(&perm, g.b(), g.m()).unwrap();
        let mut sys = loaded_system(g);
        let (report, traj) = trace_potential(
            &mut sys,
            &fac,
            |rec: &TaggedRecord| rec.key,
            |x| perm.target(x),
        )
        .unwrap();
        let dmax = delta_max(g.block(), g.disks(), g.lg_mb());
        for (i, w) in traj.windows(2).enumerate() {
            let gain = w[1] - w[0];
            let ios = report.passes[i].ios.parallel_ios() as f64;
            assert!(
                gain <= dmax * ios + 1e-6,
                "pass {i} gained {gain} over {ios} I/Os (Δ_max = {dmax})"
            );
        }
    }

    #[test]
    fn lemma10_group_structure() {
        // Each source block maps to exactly 2^r target blocks with
        // B/2^r records each.
        let mut rng = StdRng::seed_from_u64(84);
        let g = geom();
        let b = g.b();
        for r in 0..=b.min(g.n() - b) {
            let a = gf2::sample::random_with_submatrix_rank(&mut rng, g.n(), b, r);
            let perm = crate::Bmmc::linear(a).unwrap();
            for k in [0usize, 7, 100] {
                // source block k: addresses kB .. kB+B.
                let mut groups: HashMap<u64, usize> = HashMap::new();
                for off in 0..g.block() as u64 {
                    let x = (k as u64) * g.block() as u64 + off;
                    *groups.entry(perm.target(x) >> b).or_insert(0) += 1;
                }
                assert_eq!(groups.len(), 1 << r, "block {k}: wrong group count");
                for (&i, &cnt) in &groups {
                    assert_eq!(cnt, g.block() >> r, "block {k} group {i}");
                }
            }
        }
    }
}
