//! A multi-pass BPC baseline with the pass structure of the earlier
//! algorithm of Cormen \[4\]: `2⌈ρ/lg(M/B)⌉ + 1` passes.
//!
//! The full pseudocode of \[4\] is not reproduced in the paper, but its
//! bound is (Table 1), and this baseline realizes an algorithm of the
//! same shape so that the old-vs-new comparison can be *executed*, not
//! just tabulated:
//!
//! 1. Identify the source bits below the memory boundary `m` that must
//!    move above it, and vice versa. For a permutation matrix these
//!    counts are equal — the `m`-cross-rank `ρ_m(A)`.
//! 2. Exchange them in chunks of at most `lg(M/B) = m − b` bit
//!    positions. Each chunked exchange is itself a BMMC permutation
//!    with `rank A_{m.., ..m} ≤ m − b`, so the Section 5 engine
//!    realizes it in exactly **two** passes.
//! 3. Finish with one MRC pass for the residual section-preserving
//!    rearrangement and the complement vector.
//!
//! Total: `2⌈ρ_m/(m−b)⌉ + 1` passes, which never exceeds the \[4\] bound
//! `2⌈ρ(A)/(m−b)⌉ + 1` because `ρ = max(ρ_b, ρ_m) ≥ ρ_m`. The new
//! algorithm (Theorem 21) uses `⌈rank γ̂/(m−b)⌉ + 1 ≤ ⌈ρ_m·…⌉` —
//! roughly half the passes — which is exactly the improvement the
//! paper claims ("reduces the innermost factor of 2 … to a factor
//! of 1").

use crate::algorithm::{execute_passes, BmmcReport};
use crate::bmmc::Bmmc;
use crate::classes::{is_bpc, is_mrc};
use crate::error::{BmmcError, Result};
use crate::factoring::{factor, Pass, PassKind};
use gf2::perm::{permutation_matrix, permutation_of_matrix};
use pdm::{DiskSystem, Record};

/// The baseline's plan: a list of one-pass permutations.
#[derive(Clone, Debug)]
pub struct BpcPlan {
    /// Passes in execution order.
    pub passes: Vec<Pass>,
    /// The m-cross-rank that determined the chunk count.
    pub rho_m: usize,
}

/// Builds the baseline plan for a BPC permutation at boundaries
/// `(b, m)`.
///
/// Returns an error if `perm` is not BPC.
pub fn bpc_baseline_plan(perm: &Bmmc, b: usize, m: usize) -> Result<BpcPlan> {
    let n = perm.bits();
    if !is_bpc(perm.matrix()) {
        return Err(BmmcError::Dimension(
            "baseline requires a BPC (permutation-matrix) input".to_string(),
        ));
    }
    if !(b < m && m < n) {
        return Err(BmmcError::Dimension(format!(
            "baseline requires b < m < n, got b={b}, m={m}, n={n}"
        )));
    }
    let pi = permutation_of_matrix(perm.matrix());
    // Bits that must cross the memory boundary, in each direction.
    let up: Vec<usize> = (0..m).filter(|&j| pi[j] >= m).collect();
    let down: Vec<usize> = (m..n).filter(|&j| pi[j] < m).collect();
    assert_eq!(up.len(), down.len(), "permutation crossing counts differ");
    let rho_m = up.len();

    let chunk = m - b;
    let mut passes: Vec<Pass> = Vec::new();
    // Running permutation applied so far (as a bit-position map).
    let mut applied: Vec<usize> = (0..n).collect();
    for (ups, downs) in up.chunks(chunk).zip(down.chunks(chunk)) {
        // Exchange bit positions ups[i] ↔ downs[i].
        let mut tau: Vec<usize> = (0..n).collect();
        for (&x, &y) in ups.iter().zip(downs.iter()) {
            tau.swap(x, y);
        }
        let tau_perm = Bmmc::linear(permutation_matrix(&tau))
            .expect("transposition products are permutations");
        // Realize the exchange with the Section 5 engine: rank of its
        // lower-left m-boundary block is |ups| ≤ m−b ⇒ exactly 2
        // passes (1 MLD + 1 MRC).
        let fac = factor(&tau_perm, b, m)?;
        debug_assert!(
            fac.num_passes() <= 2,
            "chunked exchange took {} passes",
            fac.num_passes()
        );
        passes.extend(fac.passes);
        // Track composition: applied := tau ∘ applied.
        for a in applied.iter_mut() {
            *a = tau[*a];
        }
    }
    // Residual sigma = pi ∘ applied⁻¹ must preserve both sections.
    let mut sigma = vec![0usize; n];
    for j in 0..n {
        sigma[applied[j]] = pi[j];
    }
    let sigma_matrix = permutation_matrix(&sigma);
    let residual_identity = sigma_matrix.is_identity() && perm.complement().is_zero();
    if !residual_identity {
        assert!(
            is_mrc(&sigma_matrix, m),
            "residual permutation crosses the memory boundary (bug)"
        );
        passes.push(Pass {
            matrix: sigma_matrix,
            complement: perm.complement().clone(),
            kind: PassKind::Mrc,
        });
    }
    Ok(BpcPlan { passes, rho_m })
}

/// Executes the baseline plan, data in portion 0. The report's pass
/// count realizes the \[4\]-style bound `2⌈ρ_m/lg(M/B)⌉ + 1`.
pub fn perform_bpc_baseline<R: Record>(sys: &mut DiskSystem<R>, perm: &Bmmc) -> Result<BmmcReport> {
    let geom = sys.geometry();
    if perm.bits() != geom.n() {
        return Err(BmmcError::GeometryMismatch {
            perm_bits: perm.bits(),
            system_bits: geom.n(),
        });
    }
    let plan = bpc_baseline_plan(perm, geom.b(), geom.m())?;
    execute_passes(sys, &plan.passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::passes::reference_permute;
    use gf2::perm::bpc_cross_rank;
    use pdm::Geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap()
    }

    fn run(perm: &Bmmc) -> BmmcReport {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..g.records() as u64).collect();
        sys.load_records(0, &input);
        let report = perform_bpc_baseline(&mut sys, perm).unwrap();
        let expect = reference_permute(&input, |x| perm.target(x));
        assert_eq!(sys.dump_records(report.final_portion), expect);
        report
    }

    #[test]
    fn baseline_performs_random_bpc() {
        let mut rng = StdRng::seed_from_u64(91);
        let g = geom();
        for _ in 0..5 {
            let perm = catalog::random_bpc(&mut rng, g.n());
            let report = run(&perm);
            // [4]'s pass bound with ρ = max(ρ_b, ρ_m).
            let rho = bpc_cross_rank(perm.matrix(), g.b(), g.m());
            let bound = 2 * rho.div_ceil(g.lg_mb()) + 1;
            assert!(
                report.num_passes() <= bound,
                "{} passes exceed old bound {bound}",
                report.num_passes()
            );
        }
    }

    #[test]
    fn baseline_matches_its_pass_formula() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = geom();
        for _ in 0..5 {
            let perm = catalog::random_bpc(&mut rng, g.n());
            let plan = bpc_baseline_plan(&perm, g.b(), g.m()).unwrap();
            let expect = if plan.rho_m == 0 {
                // no exchanges; possibly a single residual MRC pass
                plan.passes.len()
            } else {
                2 * plan.rho_m.div_ceil(g.lg_mb()) + 1
            };
            assert_eq!(plan.passes.len(), expect);
        }
    }

    #[test]
    fn new_algorithm_never_slower_than_baseline() {
        let mut rng = StdRng::seed_from_u64(93);
        let g = geom();
        for _ in 0..10 {
            let perm = catalog::random_bpc(&mut rng, g.n());
            let baseline = run(&perm);
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
            let new = crate::algorithm::perform_bmmc(&mut sys, &perm).unwrap();
            assert!(
                new.num_passes() <= baseline.num_passes(),
                "new {} > baseline {}",
                new.num_passes(),
                baseline.num_passes()
            );
        }
    }

    #[test]
    fn bit_reversal_baseline() {
        let g = geom();
        let report = run(&catalog::bit_reversal(g.n()));
        let rho = bpc_cross_rank(catalog::bit_reversal(g.n()).matrix(), g.b(), g.m());
        assert!(report.num_passes() <= 2 * rho.div_ceil(g.lg_mb()) + 1);
    }

    #[test]
    fn section_preserving_bpc_is_one_pass() {
        // A BPC permutation with no m-crossing: swap bits within each
        // section only.
        let g = geom();
        let n = g.n();
        let mut pi: Vec<usize> = (0..n).collect();
        pi.swap(0, 3); // below m = 6
        pi.swap(7, 9); // above m
        let perm = Bmmc::linear(permutation_matrix(&pi)).unwrap();
        let report = run(&perm);
        assert_eq!(report.num_passes(), 1);
    }

    #[test]
    fn rejects_non_bpc() {
        let mut rng = StdRng::seed_from_u64(94);
        let g = geom();
        // A random BMMC matrix is almost surely not a permutation
        // matrix; ensure the sampler gave us a non-BPC one.
        let perm = loop {
            let p = catalog::random_bmmc(&mut rng, g.n());
            if !is_bpc(p.matrix()) {
                break p;
            }
        };
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        assert!(perform_bpc_baseline(&mut sys, &perm).is_err());
    }
}
