//! Minimal hand-rolled argument parsing (the workspace's dependency
//! policy has no CLI-parser crate; the surface is small enough that a
//! flag walker is clearer than a framework).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--flag value` / `--flag`
/// pairs.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv[1..]`. Flags are `--name value` except for the
    /// boolean flags listed in `bools`, which take no value.
    pub fn parse(argv: impl IntoIterator<Item = String>, bools: &[&str]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if bools.contains(&name) {
                    out.flags.insert(name.to_string(), String::new());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    out.flags.insert(name.to_string(), value);
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else {
                return Err(format!("unexpected positional argument {tok:?}"));
            }
        }
        Ok(out)
    }

    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// True if boolean `--name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// The value of `--name` or an error naming the flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }
}

/// Parses an integer that may use `2^k` notation.
pub fn parse_pow2(s: &str) -> Result<usize, String> {
    if let Some(exp) = s.strip_prefix("2^") {
        let e: u32 = exp.parse().map_err(|_| format!("bad exponent in {s:?}"))?;
        if e >= usize::BITS {
            return Err(format!("{s} overflows usize"));
        }
        Ok(1usize << e)
    } else {
        s.parse().map_err(|_| format!("bad integer {s:?}"))
    }
}

/// Parses a geometry flag `N,B,D,M` (each `2^k` or decimal).
pub fn parse_geometry(s: &str) -> Result<pdm::Geometry, String> {
    let parts: Vec<&str> = s.split(',').map(str::trim).collect();
    if parts.len() != 4 {
        return Err(format!(
            "geometry must be N,B,D,M (e.g. 2^16,2^4,2^3,2^10), got {s:?}"
        ));
    }
    let vals: Vec<usize> = parts
        .iter()
        .map(|p| parse_pow2(p))
        .collect::<Result<_, _>>()?;
    pdm::Geometry::new(vals[0], vals[1], vals[2], vals[3]).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(argv("run --builtin gray --verify"), &["verify"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("builtin"), Some("gray"));
        assert!(a.has("verify"));
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(argv("run --builtin"), &[]).is_err());
    }

    #[test]
    fn unexpected_positional_is_an_error() {
        assert!(Args::parse(argv("run stray"), &[]).is_err());
    }

    #[test]
    fn pow2_notation() {
        assert_eq!(parse_pow2("2^10").unwrap(), 1024);
        assert_eq!(parse_pow2("64").unwrap(), 64);
        assert!(parse_pow2("2^x").is_err());
        assert!(parse_pow2("2^99").is_err());
    }

    #[test]
    fn geometry_parsing() {
        let g = parse_geometry("2^16,2^4,2^3,2^10").unwrap();
        assert_eq!(g.records(), 1 << 16);
        assert_eq!(g.block(), 16);
        assert!(parse_geometry("1,2,3").is_err());
        assert!(parse_geometry("2^4,2^4,2^3,2^10").is_err()); // M ≥ N
    }
}
