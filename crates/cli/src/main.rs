//! `bmmc-cli` — drive the BMMC permutation library from the shell.
//!
//! ```text
//! bmmc-cli info    --builtin bit-reversal --geometry 2^16,2^4,2^3,2^10
//! bmmc-cli factor  --builtin random:7     --geometry 2^13,2^3,2^4,2^8
//! bmmc-cli run     --builtin transpose:8  --geometry 2^16,2^4,2^3,2^10 --verify
//! bmmc-cli run     --spec perm.bmmc       --geometry ... --algorithm sort
//! bmmc-cli detect  --targets targets.txt  --geometry 2^13,2^3,2^4,2^8
//! bmmc-cli spec    --builtin gray --n 13
//! bmmc-cli submit  --socket /tmp/pdm.sock --job sort --records 2^16 --memory 2^10
//! ```

mod args;
mod builtins;
mod commands;
mod service;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
bmmc-cli — BMMC permutations on a simulated parallel disk system

USAGE:
  bmmc-cli <command> [flags]

COMMANDS:
  info     classify a permutation and print every bound the paper states
  factor   print the Section 5 factoring, the fused pass plan, and the
           full candidate table (predicted I/Os, modeled wall-clock,
           and which route auto picks)
  run      perform the permutation on the simulated disk array
  detect   run Section 6 detection on a vector of target addresses
  spec     print a permutation in the spec file format
  submit   send a job to a running pdm-served instance
  status   one job's progress (--id N) or the service overview
  cancel   request cancellation of a submitted job
  help     this text

COMMON FLAGS:
  --geometry N,B,D,M    disk geometry, powers of two (e.g. 2^16,2^4,2^3,2^10)
  --builtin NAME        a named permutation (see below)
  --spec FILE           read the permutation from a spec file instead

RUN FLAGS:
  --algorithm WHICH     auto (default) | factor | sort | bpc. auto
                        costs every candidate plan (DP-fused BMMC
                        route and all three sort strategies) with the
                        seek-aware wall-clock model (--timing, default
                        hdd), prints the table, and runs the cheapest
  --merge WHICH         sort merge strategy: single (default, striped,
                        fan-in M/BD−1) | double (split-phase stripe
                        prefetch, halved fan-in) | forecast (block-
                        granular Vitter–Shriver forecasting, fan-in
                        M/B−D−1)
  --backend WHICH       mem (default) | file — file runs every pass
                        against one real file per disk (positional I/O)
  --dir PATH            file backend: directory for the per-disk files
                        (default: a self-cleaning temp directory)
  --threaded            service parallel I/Os on persistent per-disk
                        threads (overlapped reads; same charged cost)
  --transport WHICH     how disk commands reach the disks: inproc
                        (default, channels) | uds (one pdm-diskd worker
                        process per disk over Unix sockets) | sim
                        (deterministic simulated network; latency and
                        bandwidth charged into --timing). Placement and
                        parallel-I/O counts are identical across all
                        three; message/byte counters are printed for
                        uds and sim
  --timing MODEL        also simulate service time: hdd | ssd
  --retries N           allow N retries per disk operation after a
                        retryable failure (transient fault, timeout,
                        severed link), with worker respawn for uds;
                        default 0 = fail fast. A non-clean run prints
                        its recovery ledger
  --transient-fault OP,DISK
                        inject a one-shot transient transfer fault on
                        DISK at parallel I/O OP (testing; pair with
                        --retries to watch it recover)
  --chunk K             swap/erase chunk-size override (ablation)
  --verify              scan the output and confirm every placement
  --no-fuse             disable pass-pair fusion (one round-trip per
                        planned pass, for differential comparison)

SERVICE FLAGS (submit / status / cancel):
  --socket PATH         the pdm-served Unix socket (required)
  --job KIND            submit: bmmc | bpc | sort | permute
  --records 2^k         submit: problem size N in records
  --memory 2^k          submit: memory size M in records (B and D are
                        the server's)
  --seed N              submit: permutation/shuffle seed (default 0)
  --fault OP,DISK       submit: sever DISK at parallel I/O OP (testing)
  --max-retries N       submit: let the service re-run the job up to N
                        times after a retryable failure (default 0)
  --deadline-ms N       submit: fail the job if not done N ms after
                        submission (bounds the retry loop)
  --detach              submit: print the job id instead of waiting
  --id N                status/cancel: the job id

DETECT FLAGS:
  --targets FILE        one target address per line (decimal), length N
  --shuffle SEED        use a random non-BMMC shuffle instead

SPEC FLAGS:
  --n BITS              address width for --builtin (spec has no geometry)

BUILTINS:
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv, &["verify", "no-fuse", "threaded", "detach"]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match parsed.command.as_str() {
        "info" => commands::info(&parsed),
        "factor" => commands::factor(&parsed),
        "run" => commands::run(&parsed),
        "detect" => commands::detect(&parsed),
        "spec" => commands::spec(&parsed),
        "submit" => service::submit(&parsed),
        "status" => service::status(&parsed),
        "cancel" => service::cancel(&parsed),
        "help" | "" => {
            println!("{USAGE}{}", builtins::BUILTIN_HELP);
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `bmmc-cli help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
