//! Named built-in permutations for the CLI, resolved against an
//! address width `n`. Parameterized names use `name:value` syntax.

use bmmc::{catalog, Bmmc};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The catalog of `--builtin` names shown by `bmmc-cli help`.
pub const BUILTIN_HELP: &str = "\
  identity            the identity permutation
  bit-reversal        FFT reordering (bit i <-> bit n-1-i)
  vector-reversal     y = x XOR (2^n - 1)
  gray                binary-reflected Gray code
  gray-inv            inverse Gray code
  shuffle             perfect shuffle (rotate bits up by 1)
  unshuffle           inverse perfect shuffle
  morton              Z-order interleave (even n)
  transpose:K         R x S matrix transpose with lg R = K
  rotation:K          rotate address bits up by K
  hypercube:MASK      y = x XOR MASK (MASK decimal or 0x..)
  butterfly:K         swap bit K with bit 0
  swap-fields:K       exchange bit fields [0,K) and [K,2K)
  random:SEED         random BMMC (seeded)
  random-bpc:SEED     random BPC (seeded)
  random-mrc:SEED     random MRC for the geometry's m (seeded)
  random-mld:SEED     random MLD for the geometry's (b, m) (seeded)";

/// Resolves a builtin name to a permutation on `n`-bit addresses.
/// `b` and `m` parameterize the class samplers.
pub fn resolve(name: &str, n: usize, b: usize, m: usize) -> Result<Bmmc, String> {
    let (head, param) = match name.split_once(':') {
        Some((h, p)) => (h, Some(p)),
        None => (name, None),
    };
    let need = |what: &str| -> Result<&str, String> {
        param.ok_or_else(|| format!("builtin {head:?} needs a parameter: {head}:{what}"))
    };
    let parse_k = |p: &str| -> Result<usize, String> {
        p.parse()
            .map_err(|_| format!("bad parameter {p:?} for {head}"))
    };
    let parse_seed = |p: Option<&str>| -> u64 { p.and_then(|s| s.parse().ok()).unwrap_or(0) };
    match head {
        "identity" => Ok(Bmmc::identity(n)),
        "bit-reversal" => Ok(catalog::bit_reversal(n)),
        "vector-reversal" => Ok(catalog::vector_reversal(n)),
        "gray" => Ok(catalog::gray_code(n)),
        "gray-inv" => Ok(catalog::gray_code_inverse(n)),
        "shuffle" => Ok(catalog::perfect_shuffle(n)),
        "unshuffle" => Ok(catalog::perfect_unshuffle(n)),
        "morton" => {
            if !n.is_multiple_of(2) {
                return Err(format!("morton needs an even address width, n = {n}"));
            }
            Ok(catalog::morton(n))
        }
        "transpose" => {
            let k = parse_k(need("lgR")?)?;
            if k > n {
                return Err(format!("transpose: lg R = {k} exceeds n = {n}"));
            }
            Ok(catalog::transpose(n, k))
        }
        "rotation" => {
            let k = parse_k(need("K")?)?;
            Ok(catalog::rotation(n, k % n.max(1)))
        }
        "hypercube" => {
            let p = need("MASK")?;
            let mask = if let Some(hex) = p.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).map_err(|_| format!("bad mask {p:?}"))?
            } else {
                p.parse().map_err(|_| format!("bad mask {p:?}"))?
            };
            if n < 64 && mask >= (1 << n) {
                return Err(format!("mask {mask:#x} does not fit in {n} bits"));
            }
            Ok(catalog::hypercube(n, mask))
        }
        "butterfly" => {
            let k = parse_k(need("K")?)?;
            if k >= n {
                return Err(format!("butterfly: stage {k} out of range for n = {n}"));
            }
            Ok(catalog::butterfly(n, k))
        }
        "swap-fields" => {
            let k = parse_k(need("K")?)?;
            if 2 * k > n {
                return Err(format!("swap-fields: 2K = {} exceeds n = {n}", 2 * k));
            }
            Ok(catalog::swap_fields(n, k))
        }
        "random" => Ok(catalog::random_bmmc(
            &mut StdRng::seed_from_u64(parse_seed(param)),
            n,
        )),
        "random-bpc" => Ok(catalog::random_bpc(
            &mut StdRng::seed_from_u64(parse_seed(param)),
            n,
        )),
        "random-mrc" => Ok(catalog::random_mrc(
            &mut StdRng::seed_from_u64(parse_seed(param)),
            n,
            m,
        )),
        "random-mld" => Ok(catalog::random_mld(
            &mut StdRng::seed_from_u64(parse_seed(param)),
            n,
            b,
            m,
        )),
        other => Err(format!(
            "unknown builtin {other:?}; available:\n{BUILTIN_HELP}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_plain_names() {
        for name in [
            "identity",
            "bit-reversal",
            "vector-reversal",
            "gray",
            "gray-inv",
            "shuffle",
            "unshuffle",
            "morton",
        ] {
            let p = resolve(name, 10, 2, 6).unwrap();
            assert_eq!(p.bits(), 10, "{name}");
        }
    }

    #[test]
    fn resolves_parameterized() {
        assert!(resolve("transpose:5", 10, 2, 6).is_ok());
        assert!(resolve("hypercube:0x3f", 10, 2, 6).is_ok());
        assert!(resolve("butterfly:9", 10, 2, 6).is_ok());
        assert!(resolve("swap-fields:5", 10, 2, 6).is_ok());
        assert!(resolve("random:7", 10, 2, 6).is_ok());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(resolve("transpose", 10, 2, 6).is_err()); // missing param
        assert!(resolve("transpose:11", 10, 2, 6).is_err());
        assert!(resolve("butterfly:10", 10, 2, 6).is_err());
        assert!(resolve("morton", 9, 2, 6).is_err());
        assert!(resolve("hypercube:2048", 10, 2, 6).is_err());
        assert!(resolve("nope", 10, 2, 6).is_err());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = resolve("random:42", 12, 3, 8).unwrap();
        let b = resolve("random:42", 12, 3, 8).unwrap();
        let c = resolve("random:43", 12, 3, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
