//! Subcommand implementations.

use crate::args::{parse_geometry, parse_pow2, Args};
use crate::builtins;
use bmmc::algorithm::{execute_passes, execute_passes_unfused, BmmcReport};
use bmmc::bpc_baseline::bpc_baseline_plan;
use bmmc::detect::{detect_bmmc, Detection};
use bmmc::fusion::fuse_passes;
use bmmc::verify::{verify_permutation, VerifyOutcome};
use bmmc::{
    bounds, candidates, choose, classify, factor_chunked, plan_passes, spec, Bmmc, CandidateKind,
    PassKind, Plan,
};
use gf2::elim::rank;
use gf2::perm::bpc_cross_rank;
use pdm::{Backend, DiskSystem, Geometry, TempDir, TimingModel, TransportConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::PathBuf;

/// Loads the permutation from `--builtin` or `--spec` and checks it
/// fits the geometry.
fn load_perm(a: &Args, geom: &Geometry) -> Result<Bmmc, String> {
    let perm = match (a.get("builtin"), a.get("spec")) {
        (Some(name), None) => builtins::resolve(name, geom.n(), geom.b(), geom.m())?,
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            spec::parse_spec(&text).map_err(|e| e.to_string())?
        }
        _ => return Err("give exactly one of --builtin NAME or --spec FILE".to_string()),
    };
    if perm.bits() != geom.n() {
        return Err(format!(
            "permutation is on {}-bit addresses but the geometry has n = {}",
            perm.bits(),
            geom.n()
        ));
    }
    Ok(perm)
}

fn geometry(a: &Args) -> Result<Geometry, String> {
    parse_geometry(a.require("geometry")?)
}

/// Builds the disk array per `--backend` (mem, the default, or file),
/// `--dir`, `--transport`, and `--threaded`. Every algorithm the CLI
/// can run takes `&mut DiskSystem`, so the choice is invisible
/// downstream. A file-backed system without an explicit `--dir` uses a
/// self-cleaning temp dir whose guard is parked in `scratch` for the
/// command's duration.
fn build_system(
    a: &Args,
    geom: Geometry,
    scratch: &mut Option<TempDir>,
) -> Result<DiskSystem<u64>, String> {
    let backend = match a.get("backend").unwrap_or("mem") {
        "mem" => Backend::Mem,
        "file" => {
            let dir = match a.get("dir") {
                Some(d) => PathBuf::from(d),
                None => {
                    let guard = TempDir::new("bmmc-cli");
                    let dir = guard.path().to_path_buf();
                    *scratch = Some(guard);
                    dir
                }
            };
            Backend::File { dir }
        }
        other => return Err(format!("unknown backend {other:?} (expected mem or file)")),
    };
    let transport = match a.get("transport").unwrap_or("inproc") {
        "inproc" => TransportConfig::InProc,
        "uds" => TransportConfig::Uds(Default::default()),
        "sim" => TransportConfig::SimNet(Default::default()),
        other => {
            return Err(format!(
                "unknown transport {other:?} (expected inproc, uds, or sim)"
            ))
        }
    };
    let mut sys = DiskSystem::new_with_transport(geom, 2, &backend, &transport)
        .map_err(|e| format!("disk system: {e}"))?;
    if a.has("threaded") {
        sys.set_threaded(true);
    }
    if let Some(r) = a.get("retries") {
        let retries: u32 = r.parse().map_err(|_| format!("bad --retries {r:?}"))?;
        let mut policy = pdm::RetryPolicy::fault_tolerant();
        policy.max_attempts = retries.saturating_add(1);
        sys.set_retry_policy(policy);
    }
    if let Some(fault) = a.get("transient-fault") {
        let (op, disk) = fault
            .split_once(',')
            .ok_or_else(|| format!("--transient-fault wants OP,DISK, got {fault:?}"))?;
        let op: u64 = op
            .trim()
            .parse()
            .map_err(|_| format!("bad fault op {op:?}"))?;
        let disk: usize = disk
            .trim()
            .parse()
            .map_err(|_| format!("bad fault disk {disk:?}"))?;
        sys.set_faults(pdm::FaultPlan::new().fail_transient_at(op, disk));
    }
    Ok(sys)
}

/// The timing model candidate plans are costed under (`--timing`,
/// default hdd — seek-dominated devices are where the route choice
/// matters most).
fn costing_timing(a: &Args) -> Result<TimingModel, String> {
    match a.get("timing") {
        None | Some("hdd") => Ok(TimingModel::hdd()),
        Some("ssd") => Ok(TimingModel::ssd()),
        Some(other) => Err(format!("unknown timing model {other:?}")),
    }
}

/// Maps a planner merge strategy onto the `extsort` executor's.
fn extsort_strategy(s: bounds::MergeStrategy) -> extsort::MergeStrategy {
    match s {
        bounds::MergeStrategy::SingleBuffered => extsort::MergeStrategy::SingleBuffered,
        bounds::MergeStrategy::DoubleBuffered => extsort::MergeStrategy::DoubleBuffered,
        bounds::MergeStrategy::Forecast => extsort::MergeStrategy::Forecast,
    }
}

/// Prints the full candidate table — steps, exact predicted parallel
/// I/Os, seek-aware modeled wall-clock, and which plan `auto` picks —
/// and returns the pick.
fn print_candidates(perm: &Bmmc, geom: &Geometry, timing: &TimingModel) -> Result<Plan, String> {
    let plans = candidates(perm, geom);
    let chosen = choose(&plans, geom, timing)
        .ok_or("no candidate plan applies to this geometry")?
        .clone();
    println!("candidate plans:");
    for plan in &plans {
        let mark = if plan.candidate == chosen.candidate {
            "->"
        } else {
            "  "
        };
        let labels: Vec<String> = plan.steps.iter().map(|s| s.label()).collect();
        println!(
            " {mark} {:<13} {:>2} step(s) {:>8} parallel I/Os {:>12.2} ms modeled  [{}]",
            plan.candidate.name(),
            plan.num_steps(),
            plan.parallel_ios(geom),
            plan.modeled_ms(geom, timing),
            labels.join("; ")
        );
    }
    println!("auto picks: {}", chosen.candidate.name());
    Ok(chosen)
}

/// `bmmc-cli info`: classification, ranks, and every bound.
pub fn info(a: &Args) -> Result<(), String> {
    let geom = geometry(a)?;
    let perm = load_perm(a, &geom)?;
    let (n, b, m) = (geom.n(), geom.b(), geom.m());
    let flags = classify(perm.matrix(), b, m);
    let r_gamma = rank(&perm.matrix().submatrix(b..n, 0..b));
    let r_gamma_m = rank(&perm.matrix().submatrix(m..n, 0..m));
    let r_lead = rank(&perm.matrix().submatrix(0..m, 0..m));

    println!(
        "geometry      N=2^{n} B=2^{} D=2^{} M=2^{m}  (one pass = {} parallel I/Os)",
        geom.b(),
        geom.d(),
        geom.ios_per_pass()
    );
    println!(
        "classes       BMMC={} BPC={} MRC={} MLD={} MLD⁻¹={}",
        flags.bmmc, flags.bpc, flags.mrc, flags.mld, flags.mld_inverse
    );
    println!(
        "ranks         rank γ (b-split) = {r_gamma}, rank γ̂ (m-split) = {r_gamma_m}, \
         leading m×m = {r_lead}"
    );
    if flags.bpc {
        println!(
            "cross-rank    ρ(A) = {} (old BPC bound {} I/Os)",
            bpc_cross_rank(perm.matrix(), b, m),
            bounds::old_bpc_upper(&geom, bpc_cross_rank(perm.matrix(), b, m))
        );
    }
    println!(
        "Theorem 3     lower bound expression = {:.0} parallel I/Os",
        bounds::theorem3_lower(&geom, r_gamma)
    );
    println!(
        "§7 precise    lower bound = {:.0} parallel I/Os",
        bounds::precise_lower(&geom, r_gamma)
    );
    println!(
        "Theorem 21    upper bound = {} parallel I/Os ({} passes predicted)",
        bounds::theorem21_upper(&geom, r_gamma),
        bounds::factoring_passes(&geom, r_gamma_m)
    );
    println!(
        "old BMMC [4]  upper bound = {} parallel I/Os (H = {})",
        bounds::old_bmmc_upper(&geom, r_lead),
        bounds::h_function(&geom)
    );
    let (per_rec, sort, min) = bounds::general_permutation_bound(&geom);
    println!("general perm  min({per_rec}, {sort}) = {min} parallel I/Os (sorting baseline)");
    println!(
        "detection     {} parallel reads (Section 6)",
        bounds::detection_reads(&geom)
    );
    Ok(())
}

/// `bmmc-cli factor`: the Section 5 plan, pass by pass.
pub fn factor(a: &Args) -> Result<(), String> {
    let geom = geometry(a)?;
    let perm = load_perm(a, &geom)?;
    let chunk = match a.get("chunk") {
        Some(s) => parse_pow2(s)?,
        None => geom.lg_mb(),
    };
    let fac = factor_chunked(&perm, geom.b(), geom.m(), chunk).map_err(|e| e.to_string())?;
    println!(
        "factored into {} pass(es) with {} swap/erase round(s), chunk = {chunk}:",
        fac.num_passes(),
        fac.g()
    );
    for (i, pass) in fac.passes.iter().enumerate() {
        println!(
            "  pass {}: {:?}  ({} I/O discipline)",
            i + 1,
            pass.kind,
            match pass.kind {
                PassKind::Mrc => "striped reads, striped writes",
                PassKind::Mld => "striped reads, independent writes",
                PassKind::MldInverse => "independent reads, striped writes",
            }
        );
    }
    if !fac.verify(&perm) {
        return Err("internal error: factorization does not recompose".to_string());
    }
    println!("recomposition check: passes compose back to A ✓");

    // The fused execution plan: adjacent passes that compose within
    // the memory model collapse into single disk round-trips.
    let fused = fuse_passes(&fac.passes, geom.b(), geom.m());
    if !fused.verify(&perm) {
        return Err("internal error: fused plan does not recompose".to_string());
    }
    println!(
        "fused plan: {} executed step(s) for {} planned pass(es):",
        fused.num_steps(),
        fused.planned_passes()
    );
    for (i, step) in fused.steps.iter().enumerate() {
        println!(
            "  step {}: {}  ({:?} reads, {:?} writes){}",
            i + 1,
            step.label(),
            step.reads(),
            step.write,
            if step.is_fused() {
                format!(
                    "  — fuses {} passes into one round-trip",
                    step.num_replaced()
                )
            } else {
                String::new()
            }
        );
    }
    println!(
        "predicted I/O: {} parallel I/Os fused vs {} unfused ({} round-trip(s) saved)",
        fused.predicted_ios(&geom),
        fused.unfused_ios(&geom),
        fused.passes_saved()
    );

    // The planner's view: every candidate route costed both ways.
    let timing = costing_timing(a)?;
    print_candidates(&perm, &geom, &timing)?;
    Ok(())
}

/// `bmmc-cli run`: perform the permutation and report costs.
pub fn run(a: &Args) -> Result<(), String> {
    let geom = geometry(a)?;
    let perm = load_perm(a, &geom)?;
    // Keeps an implicit file-backend scratch dir alive (and removed on
    // exit, even an early error return) for the whole command.
    let mut scratch: Option<TempDir> = None;
    let mut sys = build_system(a, geom, &mut scratch)?;
    match a.get("timing") {
        Some("hdd") => sys.set_timing(TimingModel::hdd()),
        Some("ssd") => sys.set_timing(TimingModel::ssd()),
        Some(other) => return Err(format!("unknown timing model {other:?}")),
        None => {}
    }
    sys.load_records(0, &(0..geom.records() as u64).collect::<Vec<_>>());

    let algorithm = a.get("algorithm").unwrap_or("auto");
    let fuse = !a.has("no-fuse");
    let execute =
        |sys: &mut DiskSystem<u64>, passes: &[bmmc::Pass]| -> Result<BmmcReport, String> {
            if fuse {
                execute_passes(sys, passes).map_err(|e| e.to_string())
            } else {
                execute_passes_unfused(sys, passes).map_err(|e| e.to_string())
            }
        };
    let report = match algorithm {
        "auto" => {
            let timing = costing_timing(a)?;
            let chosen = print_candidates(&perm, &geom, &timing)?;
            match chosen.candidate {
                CandidateKind::Bmmc => {
                    let passes =
                        plan_passes(&perm, geom.b(), geom.m()).map_err(|e| e.to_string())?;
                    execute(&mut sys, &passes)?
                }
                CandidateKind::Sort(strategy) => {
                    return run_sort_route(
                        a,
                        &mut sys,
                        &perm,
                        extsort_strategy(strategy),
                        Some((&chosen, &geom)),
                    );
                }
            }
        }
        "factor" => {
            let chunk = match a.get("chunk") {
                Some(s) => parse_pow2(s)?,
                None => geom.lg_mb(),
            };
            let fac =
                factor_chunked(&perm, geom.b(), geom.m(), chunk).map_err(|e| e.to_string())?;
            execute(&mut sys, &fac.passes)?
        }
        "bpc" => {
            let plan = bpc_baseline_plan(&perm, geom.b(), geom.m()).map_err(|e| e.to_string())?;
            execute(&mut sys, &plan.passes)?
        }
        "sort" => {
            let merge: extsort::MergeStrategy = a.get("merge").unwrap_or("single").parse()?;
            return run_sort_route(a, &mut sys, &perm, merge, None);
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let kinds: Vec<String> = report.passes.iter().map(|p| p.label()).collect();
    println!(
        "{} pass(es) {:?}: {}",
        report.num_passes(),
        kinds,
        report.total
    );
    print_transport_costs(&report.msgs, &sys);
    print_recovery(&sys);
    if report.passes_saved() > 0 {
        println!(
            "pass fusion saved {} disk round-trip(s): {} planned passes ran as {} steps",
            report.passes_saved(),
            report.planned_passes(),
            report.num_passes()
        );
    }
    if let Some(t) = sys.timing() {
        println!(
            "simulated time: {:.2} s ({} seeks, {} sequential accesses)",
            t.elapsed_ms() / 1000.0,
            t.seeks(),
            t.sequential_accesses()
        );
    }
    if a.has("verify") {
        verify_and_report(&mut sys, report.final_portion, &perm)?;
    }
    Ok(())
}

/// The sort route of `bmmc-cli run`: external merge sort on target
/// addresses. When `auto` routed here, `predicted` carries the chosen
/// [`Plan`] and the measured parallel I/Os are exact-checked against
/// the planner's count.
fn run_sort_route(
    a: &Args,
    sys: &mut DiskSystem<u64>,
    perm: &Bmmc,
    merge: extsort::MergeStrategy,
    predicted: Option<(&Plan, &Geometry)>,
) -> Result<(), String> {
    let rep = extsort::general_permute_with(
        sys,
        |&x| x,
        |x| perm.target(x),
        extsort::SortConfig { merge },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "sort baseline ({} merge, fan-in {}): {} passes, {}",
        rep.strategy.as_str(),
        rep.fan_in,
        rep.passes,
        rep.total
    );
    if let Some((plan, geom)) = predicted {
        let planned = plan.parallel_ios(geom);
        let measured = rep.total.parallel_ios();
        if planned != measured {
            return Err(format!(
                "internal error: planner predicted {planned} parallel I/Os, executor measured \
                 {measured}"
            ));
        }
        println!("planner check: measured I/Os match the plan exactly ({planned})");
    }
    print_transport_costs(&rep.msgs, sys);
    print_recovery(sys);
    if a.has("verify") {
        verify_and_report(sys, rep.final_portion, perm)?;
    }
    if let Some(t) = sys.timing() {
        println!(
            "simulated time: {:.2} s ({} seeks)",
            t.elapsed_ms() / 1000.0,
            t.seeks()
        );
    }
    Ok(())
}

/// Prints the transport cost line for a remote run; in-process runs
/// move no messages and print nothing.
fn print_transport_costs(msgs: &pdm::MsgStats, sys: &DiskSystem<u64>) {
    if msgs.is_zero() {
        return;
    }
    print!("transport: {msgs}");
    let net = sys.network_ms();
    if net > 0.0 {
        print!(", {net:.2} ms simulated network time");
    }
    println!();
}

/// Prints the recovery ledger for a run that needed the retry layer;
/// clean runs (no retries, timeouts, or respawns) print nothing.
fn print_recovery(sys: &DiskSystem<u64>) {
    let r = sys.retry_stats();
    if !r.is_clean() {
        println!("recovery: {r}");
    }
}

fn verify_and_report(sys: &mut DiskSystem<u64>, portion: usize, perm: &Bmmc) -> Result<(), String> {
    match verify_permutation(sys, portion, perm, |&k| k).map_err(|e| e.to_string())? {
        VerifyOutcome::Correct { reads } => {
            println!("verified: every record at its target address ({reads} reads)");
            Ok(())
        }
        VerifyOutcome::Misplaced {
            address, found_key, ..
        } => Err(format!(
            "VERIFICATION FAILED: address {address} holds record {found_key}"
        )),
    }
}

/// `bmmc-cli detect`: Section 6 detection on a target vector.
pub fn detect(a: &Args) -> Result<(), String> {
    let geom = geometry(a)?;
    let targets: Vec<u64> = match (a.get("targets"), a.get("shuffle"), a.get("builtin")) {
        (Some(path), None, None) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let vals: Result<Vec<u64>, _> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::parse)
                .collect();
            vals.map_err(|e| format!("bad target line: {e}"))?
        }
        (None, Some(seed), None) => {
            let seed: u64 = seed.parse().map_err(|_| "bad --shuffle seed".to_string())?;
            let mut v: Vec<u64> = (0..geom.records() as u64).collect();
            v.shuffle(&mut StdRng::seed_from_u64(seed));
            v
        }
        (None, None, Some(_)) => {
            let perm = load_perm(a, &geom)?;
            perm.target_vector()
        }
        _ => {
            return Err(
                "give exactly one of --targets FILE, --shuffle SEED, or --builtin NAME".to_string(),
            )
        }
    };
    if targets.len() != geom.records() {
        return Err(format!(
            "target vector has {} entries, geometry needs N = {}",
            targets.len(),
            geom.records()
        ));
    }
    let mut sys = bmmc::detect::load_target_vector(geom, &targets);
    match detect_bmmc(&mut sys, 0).map_err(|e| e.to_string())? {
        Detection::Bmmc { perm, stats } => {
            let flags = classify(perm.matrix(), geom.b(), geom.m());
            println!(
                "BMMC: yes ({} reads: {} candidate + {} verify; bound {})",
                stats.total(),
                stats.candidate_reads,
                stats.verify_reads,
                bounds::detection_reads(&geom)
            );
            println!(
                "classes: BPC={} MRC={} MLD={} MLD⁻¹={}",
                flags.bpc, flags.mrc, flags.mld, flags.mld_inverse
            );
            print!("{}", spec::to_spec(&perm));
        }
        Detection::NotBmmc { reason, stats } => {
            println!("BMMC: no ({:?}; {} reads)", reason, stats.total());
        }
    }
    Ok(())
}

/// `bmmc-cli spec`: print a builtin in the spec format.
pub fn spec(a: &Args) -> Result<(), String> {
    let n = parse_pow2(a.get("n").unwrap_or("13"))?;
    if n == 0 || n > 64 {
        return Err(format!("--n {n} out of range 1..=64"));
    }
    // For spec output, (b, m) only matter for the class samplers; use
    // a canonical split.
    let b = (n / 4).max(1);
    let m = (n * 2 / 3).max(b + 1);
    let name = a.require("builtin")?;
    let perm = builtins::resolve(name, n, b, m.min(n - 1))?;
    print!("{}", spec::to_spec(&perm));
    Ok(())
}
