//! The `submit` / `status` / `cancel` subcommands: a thin client for
//! the `pdm-served` job service ([`pdm_served::client::Client`]).

use crate::args::{parse_pow2, Args};
use pdm_served::client::Client;
use pdm_served::core::JobStatus;
use pdm_served::job::{JobKind, JobSpec};
use std::path::Path;

fn connect(a: &Args) -> Result<Client, String> {
    let socket = a.require("socket")?;
    Client::connect(Path::new(socket)).map_err(|e| e.to_string())
}

/// `bmmc-cli submit --socket PATH --job KIND --records 2^k --memory 2^k
/// [--seed N] [--merge WHICH] [--verify] [--fault OP,DISK]
/// [--max-retries N] [--deadline-ms N] [--detach]`
///
/// Submits one job. By default waits for the result and prints the
/// report; `--detach` prints the job id and returns immediately.
pub fn submit(a: &Args) -> Result<(), String> {
    let kind = JobKind::parse(a.require("job")?)
        .ok_or_else(|| "unknown --job (want bmmc | bpc | sort | permute)".to_string())?;
    let records = parse_pow2(a.require("records")?)?;
    let memory = parse_pow2(a.require("memory")?)?;
    let mut spec = JobSpec::new(
        kind,
        records,
        memory,
        a.get("seed")
            .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
            .transpose()?
            .unwrap_or(0),
    );
    if let Some(merge) = a.get("merge") {
        spec.merge = merge.parse()?;
    }
    spec.verify = a.has("verify");
    if let Some(fault) = a.get("fault") {
        let (op, disk) = fault
            .split_once(',')
            .ok_or_else(|| format!("--fault wants OP,DISK, got {fault:?}"))?;
        spec.fault = Some((
            op.trim()
                .parse()
                .map_err(|_| format!("bad fault op {op:?}"))?,
            disk.trim()
                .parse()
                .map_err(|_| format!("bad fault disk {disk:?}"))?,
        ));
    }
    if let Some(r) = a.get("max-retries") {
        spec.max_retries = r.parse().map_err(|_| format!("bad --max-retries {r:?}"))?;
    }
    if let Some(d) = a.get("deadline-ms") {
        spec.deadline_ms = Some(d.parse().map_err(|_| format!("bad --deadline-ms {d:?}"))?);
    }

    let mut client = connect(a)?;
    let id = client
        .submit(&spec)
        .map_err(|e| e.to_string())?
        .map_err(|reject| format!("submit refused: {reject}"))?;
    if a.has("detach") {
        println!("job {id} submitted ({})", kind.as_str());
        return Ok(());
    }
    println!("job {id} submitted ({}), waiting…", kind.as_str());
    let status = client
        .result(id)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("server forgot job {id}"))?;
    print_status(&status);
    match status.report {
        Some(_) => Ok(()),
        None => Err(status
            .error
            .unwrap_or_else(|| "job ended without a report".into())),
    }
}

/// `bmmc-cli status --socket PATH [--id N]`
///
/// With `--id`, prints one job's snapshot; without, prints the
/// service overview.
pub fn status(a: &Args) -> Result<(), String> {
    let mut client = connect(a)?;
    match a.get("id") {
        Some(id) => {
            let id: u64 = id.parse().map_err(|_| format!("bad --id {id:?}"))?;
            let status = client
                .status(id)
                .map_err(|e| e.to_string())?
                .ok_or_else(|| format!("no such job {id}"))?;
            print_status(&status);
            Ok(())
        }
        None => {
            let o = client.overview().map_err(|e| e.to_string())?;
            print!(
                "service: {} queued, {} running, {} finished, {} free slots/disk",
                o.queued, o.running, o.finished, o.free_slots
            );
            if o.respawns > 0 {
                print!(", {} worker respawns", o.respawns);
            }
            println!();
            Ok(())
        }
    }
}

/// `bmmc-cli cancel --socket PATH --id N`
pub fn cancel(a: &Args) -> Result<(), String> {
    let id: u64 = a
        .require("id")?
        .parse()
        .map_err(|_| "bad --id".to_string())?;
    let mut client = connect(a)?;
    if client.cancel(id).map_err(|e| e.to_string())? {
        println!("job {id}: cancellation requested");
    } else {
        println!("job {id}: not live (already finished, or unknown)");
    }
    Ok(())
}

fn print_status(s: &JobStatus) {
    print!(
        "job {} ({}): {}{} — {} charged ({} read + {} write, {} striped)",
        s.id,
        s.kind.as_str(),
        s.state.as_str(),
        if s.attempts > 1 {
            format!(" after {} attempts", s.attempts)
        } else {
            String::new()
        },
        s.usage.io.parallel_ios(),
        s.usage.io.parallel_reads,
        s.usage.io.parallel_writes,
        s.usage.io.striped_reads + s.usage.io.striped_writes,
    );
    match (&s.report, &s.error) {
        (Some(r), _) => {
            print!(", {} passes", r.passes);
            if r.verified {
                print!(", verified");
            }
            println!();
        }
        (None, Some(e)) => println!(" — {e}"),
        (None, None) => println!(),
    }
}
