//! End-to-end tests of the `bmmc-cli` binary via `std::process`.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bmmc-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn bmmc-cli");
    assert!(
        out.status.success(),
        "bmmc-cli {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn run_err(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn bmmc-cli");
    assert!(
        !out.status.success(),
        "bmmc-cli {args:?} unexpectedly succeeded"
    );
    String::from_utf8(out.stderr).expect("utf8 stderr")
}

const GEOM: &str = "2^12,2^2,2^2,2^7";

#[test]
fn help_lists_builtins() {
    let text = run_ok(&["help"]);
    assert!(text.contains("bit-reversal"));
    assert!(text.contains("COMMANDS"));
}

#[test]
fn info_prints_bounds() {
    let text = run_ok(&["info", "--builtin", "bit-reversal", "--geometry", GEOM]);
    assert!(text.contains("Theorem 3"));
    assert!(text.contains("Theorem 21"));
    assert!(text.contains("BPC=true"));
}

#[test]
fn run_with_verify_succeeds() {
    let text = run_ok(&[
        "run",
        "--builtin",
        "transpose:6",
        "--geometry",
        GEOM,
        "--verify",
    ]);
    assert!(text.contains("verified"));
}

#[test]
fn run_sort_algorithm() {
    let text = run_ok(&[
        "run",
        "--builtin",
        "gray",
        "--geometry",
        GEOM,
        "--algorithm",
        "sort",
        "--verify",
    ]);
    assert!(text.contains("sort baseline"));
    assert!(text.contains("verified"));
}

#[test]
fn run_sort_with_forecast_merge() {
    // GEOM has M/B = 32, D = 4: forecast fan-in 27 vs single 31.
    let text = run_ok(&[
        "run",
        "--builtin",
        "bit-reversal",
        "--geometry",
        GEOM,
        "--algorithm",
        "sort",
        "--merge",
        "forecast",
        "--verify",
    ]);
    assert!(
        text.contains("sort baseline (forecast merge, fan-in 27)"),
        "{text}"
    );
    assert!(text.contains("verified"));
}

#[test]
fn run_sort_rejects_unknown_merge_strategy() {
    let err = run_err(&[
        "run",
        "--builtin",
        "gray",
        "--geometry",
        GEOM,
        "--algorithm",
        "sort",
        "--merge",
        "triple",
    ]);
    assert!(err.contains("unknown merge strategy"), "{err}");
}

#[test]
fn run_on_file_backend_verifies() {
    // Default --dir: the CLI provisions (and removes) its own scratch
    // directory; the permutation must still verify end to end.
    let text = run_ok(&[
        "run",
        "--builtin",
        "bit-reversal",
        "--geometry",
        GEOM,
        "--backend",
        "file",
        "--threaded",
        "--verify",
    ]);
    assert!(text.contains("verified"), "file backend run:\n{text}");
}

#[test]
fn run_on_file_backend_with_explicit_dir() {
    let dir = pdm::TempDir::new("bmmc-cli-test");
    let dir_arg = dir.path().to_str().unwrap();
    let text = run_ok(&[
        "run",
        "--builtin",
        "gray",
        "--geometry",
        GEOM,
        "--backend",
        "file",
        "--dir",
        dir_arg,
        "--algorithm",
        "sort",
        "--verify",
    ]);
    assert!(text.contains("verified"), "file backend sort:\n{text}");
    // The per-disk files land where asked (D = 2^2 at this geometry).
    for d in 0..4 {
        assert!(
            dir.path().join(format!("disk{d:03}.bin")).is_file(),
            "missing disk file {d}"
        );
    }
}

#[test]
fn run_rejects_unknown_backend() {
    let err = run_err(&[
        "run",
        "--builtin",
        "gray",
        "--geometry",
        GEOM,
        "--backend",
        "tape",
    ]);
    assert!(err.contains("unknown backend"), "{err}");
}

#[test]
fn run_with_timing_model() {
    let text = run_ok(&[
        "run",
        "--builtin",
        "random:3",
        "--geometry",
        GEOM,
        "--timing",
        "hdd",
    ]);
    assert!(text.contains("simulated time"));
}

#[test]
fn factor_prints_plan() {
    let text = run_ok(&["factor", "--builtin", "random:9", "--geometry", GEOM]);
    assert!(text.contains("pass 1"));
    assert!(text.contains("recomposition check"));
    // PR 3: the fused execution plan and its predicted savings.
    assert!(text.contains("fused plan:"));
    assert!(text.contains("predicted I/O:"));
}

#[test]
fn bpc_baseline_reports_fusion_savings() {
    // Bit reversal crosses the memory boundary at this geometry, so
    // the BPC baseline plan has (MLD, MRC)+ MRC seams that fuse.
    let fused = run_ok(&[
        "run",
        "--builtin",
        "bit-reversal",
        "--geometry",
        GEOM,
        "--algorithm",
        "bpc",
        "--verify",
    ]);
    assert!(
        fused.contains("pass fusion saved"),
        "no fusion reported:\n{fused}"
    );
    assert!(fused.contains("verified"));
    // The opt-out executes every planned pass and reports no savings.
    let unfused = run_ok(&[
        "run",
        "--builtin",
        "bit-reversal",
        "--geometry",
        GEOM,
        "--algorithm",
        "bpc",
        "--no-fuse",
        "--verify",
    ]);
    assert!(!unfused.contains("pass fusion saved"));
    assert!(unfused.contains("verified"));
}

#[test]
fn detect_positive_and_negative() {
    let pos = run_ok(&["detect", "--builtin", "gray", "--geometry", GEOM]);
    assert!(pos.contains("BMMC: yes"));
    assert!(pos.contains("MRC=true"));
    let neg = run_ok(&["detect", "--shuffle", "1", "--geometry", GEOM]);
    assert!(neg.contains("BMMC: no"));
}

#[test]
fn spec_round_trips_through_file() {
    let text = run_ok(&["spec", "--builtin", "bit-reversal", "--n", "12"]);
    assert!(text.starts_with("bmmc 12"));
    let dir = std::env::temp_dir().join(format!("bmmc-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("perm.bmmc");
    std::fs::write(&path, &text).unwrap();
    let run = run_ok(&[
        "run",
        "--spec",
        path.to_str().unwrap(),
        "--geometry",
        GEOM,
        "--verify",
    ]);
    assert!(run.contains("verified"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported() {
    let err = run_err(&["run", "--builtin", "nope", "--geometry", GEOM]);
    assert!(err.contains("unknown builtin"));
    let err = run_err(&["run", "--builtin", "gray", "--geometry", "3,3,3,3"]);
    assert!(err.contains("power of two"));
    let err = run_err(&["frobnicate"]);
    assert!(err.contains("unknown command"));
    let err = run_err(&["run", "--geometry", GEOM]);
    assert!(err.contains("exactly one of"));
}
