//! Steady-state allocation freedom of the engine hot loop.
//!
//! The [`pdm::PassEngine`] owns all its plan storage — the memoryload
//! buffers, the run-length [`pdm::BlockBatches`] gather/scatter sets
//! (plus the [`pdm::BatchCursor`] that materialises their batches),
//! the striped-plan reference scratch, and the write-ticket list — and the
//! [`pdm::DiskSystem`] admission path reuses its validation scratch.
//! After a warm-up pass, streaming further passes through the engine
//! in the serial service mode must perform **zero** heap allocations,
//! for striped and for gather/scatter plans alike. (The threaded mode
//! is exempt: its channel machinery allocates per operation by
//! design.)
//!
//! Verified the blunt way: a counting `#[global_allocator]` wraps the
//! system allocator, and the second pass must leave the counter
//! untouched. This file holds only these tests so no other test's
//! allocations can interfere.

use pdm::engine::{PassEngine, ReadPlan, WritePlan};
use pdm::{BlockRef, DiskSystem, Geometry, ServiceMode};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// N=512, B=2, D=4, M=64: 8 memoryloads of 8 stripes each.
fn geom() -> Geometry {
    Geometry::new(512, 2, 4, 64).unwrap()
}

#[test]
fn striped_pass_is_allocation_free_after_warmup() {
    let g = geom();
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.set_service_mode(ServiceMode::Serial);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    let mut engine = PassEngine::new(g);
    let run = |sys: &mut DiskSystem<u64>, engine: &mut PassEngine<u64>, src, dst| {
        engine
            .run_pass(
                sys,
                |ml, _gather| ReadPlan::Memoryload { portion: src, ml },
                |ml, data, _scratch, _scatter| {
                    data.reverse();
                    WritePlan::Memoryload { portion: dst, ml }
                },
            )
            .unwrap();
    };
    run(&mut sys, &mut engine, 0, 1); // warm-up
    let before = allocations();
    run(&mut sys, &mut engine, 1, 0);
    assert_eq!(
        allocations() - before,
        0,
        "striped engine pass allocated in steady state"
    );
}

/// The file backend must not break the guarantee: `FileDisk` transfers
/// serialize through a staging buffer allocated once at creation, so a
/// steady-state pass over real files is as allocation-free as the
/// MemDisk one (the data just additionally crosses a syscall).
#[test]
fn file_backed_striped_pass_is_allocation_free_after_warmup() {
    let g = geom();
    let dir = pdm::TempDir::new("pdm-alloc-file");
    let mut sys: DiskSystem<u64> = DiskSystem::new_file(g, 2, dir.path()).unwrap();
    sys.set_service_mode(ServiceMode::Serial);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    let mut engine = PassEngine::new(g);
    let run = |sys: &mut DiskSystem<u64>, engine: &mut PassEngine<u64>, src, dst| {
        engine
            .run_pass(
                sys,
                |ml, _gather| ReadPlan::Memoryload { portion: src, ml },
                |ml, data, _scratch, _scatter| {
                    data.reverse();
                    WritePlan::Memoryload { portion: dst, ml }
                },
            )
            .unwrap();
    };
    run(&mut sys, &mut engine, 0, 1); // warm-up
    let before = allocations();
    run(&mut sys, &mut engine, 1, 0);
    assert_eq!(
        allocations() - before,
        0,
        "file-backed engine pass allocated in steady state"
    );
    assert_eq!(
        sys.dump_records(0),
        (0..g.records() as u64).collect::<Vec<_>>()
    );
}

#[test]
fn gather_scatter_pass_is_allocation_free_after_warmup() {
    let g = geom();
    let spm = g.stripes_per_memoryload();
    let disks = g.disks();
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.set_service_mode(ServiceMode::Serial);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    let bases = [sys.portion_base(0), sys.portion_base(1)];
    let mut engine = PassEngine::new(g);
    // Gather the memoryload's stripes as explicit independent batches
    // and scatter them back likewise — the plan *shapes* the fused
    // executors use, with closures that themselves allocate nothing.
    let run = |sys: &mut DiskSystem<u64>, engine: &mut PassEngine<u64>, src: usize, dst: usize| {
        engine
            .run_pass(
                sys,
                |ml, gather| {
                    gather.reset(disks);
                    for s in 0..spm {
                        for disk in 0..disks {
                            gather.push(BlockRef {
                                disk,
                                slot: bases[src] + ml * spm + s,
                            });
                        }
                    }
                    ReadPlan::Gather
                },
                |ml, _data, _scratch, scatter| {
                    scatter.reset(disks);
                    for s in 0..spm {
                        for disk in 0..disks {
                            scatter.push(BlockRef {
                                disk,
                                slot: bases[dst] + ml * spm + s,
                            });
                        }
                    }
                    WritePlan::Scatter
                },
            )
            .unwrap();
    };
    run(&mut sys, &mut engine, 0, 1); // warm-up
    let before = allocations();
    run(&mut sys, &mut engine, 1, 0);
    assert_eq!(
        allocations() - before,
        0,
        "gather/scatter engine pass allocated in steady state"
    );
    assert_eq!(
        sys.dump_records(0),
        (0..g.records() as u64).collect::<Vec<_>>()
    );
}
