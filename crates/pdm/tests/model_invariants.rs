//! Model-level invariants of the PDM simulator, including fault
//! propagation and property-based layout checks.

use pdm::{BlockRef, DiskSystem, FaultPlan, Geometry, Layout, PdmError};
use proptest::prelude::*;

#[test]
fn every_io_moves_at_most_one_block_per_disk() {
    // The core model rule: requesting two blocks on the same disk in
    // one operation is an error, regardless of slots.
    let g = Geometry::new(1 << 8, 1 << 2, 1 << 2, 1 << 5).unwrap();
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 1);
    for slot_a in 0..4 {
        for slot_b in 0..4 {
            let err = sys
                .read_blocks(&[
                    BlockRef {
                        disk: 1,
                        slot: slot_a,
                    },
                    BlockRef {
                        disk: 1,
                        slot: slot_b,
                    },
                ])
                .unwrap_err();
            assert!(matches!(err, PdmError::DuplicateDisk { disk: 1 }));
        }
    }
    assert_eq!(
        sys.stats().parallel_ios(),
        0,
        "failed ops must not be charged"
    );
}

#[test]
fn fault_aborts_pass_and_propagates() {
    // A fault mid-algorithm must surface as an error from the
    // algorithm, not silent corruption.
    let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    sys.set_faults(FaultPlan::new().fail_at(37, 1));
    bmmc_like_identity(g.n());
    let result = run_reverse(&mut sys, ());
    assert!(matches!(result, Err(PdmError::Fault { op: 37, disk: 1 })));
}

/// Minimal stand-in: a reversal of stripes implemented directly with
/// the pdm API (this crate cannot depend on `bmmc`).
fn bmmc_like_identity(_n: usize) {}

fn run_reverse(sys: &mut DiskSystem<u64>, _p: ()) -> Result<(), PdmError> {
    let stripes = sys.geometry().stripes();
    for s in 0..stripes {
        let data = sys.read_stripe(s)?;
        sys.write_stripe(sys.portion_base(1) + (stripes - 1 - s), &data)?;
    }
    Ok(())
}

#[test]
fn stats_account_every_block() {
    let g = Geometry::new(1 << 10, 1 << 3, 1 << 2, 1 << 6).unwrap();
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
    sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
    for s in 0..g.stripes() {
        let data = sys.read_stripe(s).unwrap();
        sys.write_stripe(g.stripes() + s, &data).unwrap();
    }
    let st = sys.stats();
    assert_eq!(st.blocks_read, (g.stripes() * g.disks()) as u64);
    assert_eq!(st.blocks_written, (g.stripes() * g.disks()) as u64);
    assert_eq!(st.parallel_ios(), 2 * g.stripes() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_round_trip(b in 0u32..6, d in 0u32..5, extra_m in 0u32..4, extra_n in 1u32..6) {
        let m = b + d + extra_m;
        let n = m + extra_n;
        prop_assume!(n <= 24);
        let l = Layout::from_bits(b, d, m, n);
        for x in (0..(1u64 << n)).step_by(((1u64 << n) / 64).max(1) as usize) {
            prop_assert_eq!(l.compose(l.offset(x), l.disk(x), l.stripe(x)), x);
            prop_assert_eq!(l.compose_block(l.block(x), l.offset(x)), x);
            prop_assert_eq!(l.disk_of_block(l.block(x)), l.disk(x));
            prop_assert_eq!(l.stripe_of_block(l.block(x)), l.stripe(x));
            prop_assert_eq!(l.memoryload(x), x >> m);
        }
    }

    #[test]
    fn load_dump_round_trip_random_geometry(
        b_exp in 0usize..3,
        d_exp in 0usize..3,
        m_extra in 1usize..3,
        n_extra in 1usize..3,
        seed in any::<u64>(),
    ) {
        let b = 1usize << b_exp;
        let d = 1usize << d_exp;
        let m = (b * d) << m_extra;
        let n = m << n_extra;
        let g = Geometry::new(n, b, d, m).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 1);
        let records: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        sys.load_records(0, &records);
        prop_assert_eq!(sys.dump_records(0), records);
    }

    #[test]
    fn memoryload_reads_agree_with_direct_reads(ml_pick in 0usize..4) {
        let g = Geometry::new(1 << 10, 1 << 2, 1 << 2, 1 << 6).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 1);
        sys.load_records(0, &(0..g.records() as u64).collect::<Vec<_>>());
        let ml = ml_pick % g.memoryloads();
        let got = sys.read_memoryload(0, ml).unwrap();
        let expect: Vec<u64> =
            ((ml * g.memory()) as u64..((ml + 1) * g.memory()) as u64).collect();
        prop_assert_eq!(got, expect);
    }
}
