//! Error types for the parallel disk model.

use std::fmt;

/// Errors surfaced by the PDM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdmError {
    /// The geometry violates the Vitter–Shriver model constraints.
    Config(String),
    /// An injected fault fired on the given disk during the given
    /// parallel I/O operation (see [`crate::fault`]).
    Fault { op: u64, disk: usize },
    /// A request addressed a block outside the disk.
    OutOfRange {
        disk: usize,
        slot: usize,
        slots_per_disk: usize,
    },
    /// More than one block was addressed on a single disk within one
    /// parallel I/O operation.
    DuplicateDisk { disk: usize },
    /// An independent (non-striped) access was attempted while the
    /// system is restricted to striped I/O.
    StripedOnly,
    /// A real-file backend I/O failure.
    Io(String),
}

impl fmt::Display for PdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdmError::Config(msg) => write!(f, "invalid PDM configuration: {msg}"),
            PdmError::Fault { op, disk } => {
                write!(f, "injected fault on disk {disk} at parallel I/O #{op}")
            }
            PdmError::OutOfRange {
                disk,
                slot,
                slots_per_disk,
            } => write!(
                f,
                "block {slot} out of range on disk {disk} (capacity {slots_per_disk} blocks)"
            ),
            PdmError::DuplicateDisk { disk } => write!(
                f,
                "parallel I/O addresses disk {disk} more than once (model allows at most one block per disk)"
            ),
            PdmError::StripedOnly => write!(
                f,
                "independent access rejected: the system is restricted to striped I/O"
            ),
            PdmError::Io(msg) => write!(f, "backend I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PdmError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PdmError>;
