//! Error types for the parallel disk model.

use std::fmt;

/// Errors surfaced by the PDM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdmError {
    /// The geometry violates the Vitter–Shriver model constraints.
    Config(String),
    /// An injected fault fired on the given disk during the given
    /// parallel I/O operation (see [`crate::fault`]).
    Fault {
        /// Zero-based parallel I/O operation number the fault fired on.
        op: u64,
        /// Disk index the fault was injected against.
        disk: usize,
    },
    /// A request addressed a block outside the disk.
    OutOfRange {
        /// Disk index the request addressed.
        disk: usize,
        /// The out-of-range block slot.
        slot: usize,
        /// The disk's capacity in block slots.
        slots_per_disk: usize,
    },
    /// More than one block was addressed on a single disk within one
    /// parallel I/O operation.
    DuplicateDisk {
        /// The disk addressed more than once.
        disk: usize,
    },
    /// An independent (non-striped) access was attempted while the
    /// system is restricted to striped I/O.
    StripedOnly,
    /// A record type of the wrong serialized width was used against a
    /// file-backed disk created for a different record geometry (the
    /// backend would otherwise slice the on-disk bytes at the wrong
    /// stride — silent corruption or an out-of-bounds panic).
    RecordSize {
        /// Serialized record width the disk was created with.
        expected: usize,
        /// Serialized width of the record type used in the request.
        actual: usize,
    },
    /// An injected *transient* transfer fault fired and the retry
    /// budget ([`crate::retry::RetryPolicy::max_attempts`]) was
    /// exhausted before the operation could succeed. With retries
    /// enabled (`max_attempts > 1`) a transient fault is absorbed by
    /// the retry layer and never reaches a caller.
    TransientFault {
        /// Zero-based parallel I/O operation number the fault fired on.
        op: u64,
        /// Disk index the fault was injected against.
        disk: usize,
        /// The attempt (0-based) that gave up.
        attempt: u32,
    },
    /// A per-operation timeout ([`crate::retry::RetryPolicy::op_timeout_ms`])
    /// expired before the disk answered — a stuck or straggling
    /// worker. Retryable under the policy, like a transient fault.
    Timeout {
        /// The disk that failed to answer in time.
        disk: usize,
        /// Zero-based parallel I/O operation number that timed out.
        op: u64,
        /// The attempt (0-based) that gave up.
        attempt: u32,
        /// The timeout budget (or the simulated straggler delay) in
        /// milliseconds.
        ms: u64,
    },
    /// The transport link to a disk's service worker dropped — the
    /// worker process died, the socket closed, or a disconnect fault
    /// was injected ([`crate::fault::FaultPlan::disconnect_at`]). The
    /// operation that observed the break fails; buffers still return
    /// to the pool.
    Disconnected {
        /// The disk whose transport link broke.
        disk: usize,
    },
    /// The worker at the far end of a transport speaks a different
    /// wire-protocol version ([`crate::proto::PROTO_VERSION`]); the
    /// connection is refused during the handshake, before any data
    /// moves.
    ProtocolVersion {
        /// The disk whose worker was refused.
        disk: usize,
        /// The version this side speaks.
        expected: u32,
        /// The version the worker announced.
        actual: u32,
    },
    /// The owning job was cancelled while waiting for (or before
    /// requesting) a fair-share grant ([`crate::sched`]): the
    /// operation is refused before it is serviced or charged, and the
    /// error unwinds the job's pass through the engine's abort path
    /// with every buffer recycled.
    Cancelled {
        /// The cancelled job's identifier ([`crate::sched::JobId`]).
        job: u64,
    },
    /// A real-file backend I/O failure.
    Io(String),
}

impl PdmError {
    /// Patches the real disk index into an error produced below the
    /// [`crate::system::DiskSystem`] layer. [`crate::backend::DiskUnit`]s
    /// and the wire protocol ([`crate::proto`]) don't know the disk's
    /// position in the array, so [`PdmError::OutOfRange`],
    /// [`PdmError::Disconnected`], [`PdmError::ProtocolVersion`],
    /// [`PdmError::TransientFault`], and [`PdmError::Timeout`] arrive
    /// with a placeholder index; every other error is returned
    /// unchanged.
    pub fn with_disk(self, disk: usize) -> PdmError {
        match self {
            PdmError::OutOfRange {
                slot,
                slots_per_disk,
                ..
            } => PdmError::OutOfRange {
                disk,
                slot,
                slots_per_disk,
            },
            PdmError::Disconnected { .. } => PdmError::Disconnected { disk },
            PdmError::ProtocolVersion {
                expected, actual, ..
            } => PdmError::ProtocolVersion {
                disk,
                expected,
                actual,
            },
            PdmError::TransientFault { op, attempt, .. } => {
                PdmError::TransientFault { op, disk, attempt }
            }
            PdmError::Timeout {
                op, attempt, ms, ..
            } => PdmError::Timeout {
                disk,
                op,
                attempt,
                ms,
            },
            other => other,
        }
    }

    /// True for errors the retry layer may legitimately retry: the
    /// failure was observed *before or during* one transfer, the
    /// transfer did not happen (or is idempotent to replay), and a
    /// later attempt can succeed — transient faults, per-op timeouts,
    /// and severed transport links (whose workers may be respawned).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PdmError::TransientFault { .. }
                | PdmError::Timeout { .. }
                | PdmError::Disconnected { .. }
        )
    }
}

impl fmt::Display for PdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdmError::Config(msg) => write!(f, "invalid PDM configuration: {msg}"),
            PdmError::Fault { op, disk } => {
                write!(f, "injected fault on disk {disk} at parallel I/O #{op}")
            }
            PdmError::OutOfRange {
                disk,
                slot,
                slots_per_disk,
            } => write!(
                f,
                "block {slot} out of range on disk {disk} (capacity {slots_per_disk} blocks)"
            ),
            PdmError::DuplicateDisk { disk } => write!(
                f,
                "parallel I/O addresses disk {disk} more than once (model allows at most one block per disk)"
            ),
            PdmError::StripedOnly => write!(
                f,
                "independent access rejected: the system is restricted to striped I/O"
            ),
            PdmError::RecordSize { expected, actual } => write!(
                f,
                "record size mismatch: disk was created for {expected}-byte records, \
                 request uses {actual}-byte records"
            ),
            PdmError::TransientFault { op, disk, attempt } => write!(
                f,
                "transient fault on disk {disk} at parallel I/O #{op} (gave up at attempt {attempt})"
            ),
            PdmError::Timeout {
                disk,
                op,
                attempt,
                ms,
            } => write!(
                f,
                "disk {disk} timed out after {ms} ms at parallel I/O #{op} (gave up at attempt {attempt})"
            ),
            PdmError::Disconnected { disk } => write!(
                f,
                "transport to disk {disk} disconnected (worker gone or link severed)"
            ),
            PdmError::ProtocolVersion {
                disk,
                expected,
                actual,
            } => write!(
                f,
                "disk {disk} worker speaks wire-protocol version {actual}, expected {expected}"
            ),
            PdmError::Cancelled { job } => write!(f, "job {job} cancelled"),
            PdmError::Io(msg) => write!(f, "backend I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PdmError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: `with_disk` must patch the disk index into the
    /// retryable taxonomy (`TransientFault`, `Timeout`) instead of
    /// dropping those variants through the catch-all arm, and the
    /// rendered diagnostics must name disk, op, and attempt.
    #[test]
    fn with_disk_preserves_retryable_taxonomy() {
        let e = PdmError::TransientFault {
            op: 17,
            disk: usize::MAX,
            attempt: 2,
        }
        .with_disk(3);
        assert_eq!(
            e,
            PdmError::TransientFault {
                op: 17,
                disk: 3,
                attempt: 2
            }
        );
        let msg = e.to_string();
        for needle in ["disk 3", "#17", "attempt 2"] {
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }

        let e = PdmError::Timeout {
            disk: usize::MAX,
            op: 9,
            attempt: 1,
            ms: 250,
        }
        .with_disk(5);
        assert_eq!(
            e,
            PdmError::Timeout {
                disk: 5,
                op: 9,
                attempt: 1,
                ms: 250
            }
        );
        let msg = e.to_string();
        for needle in ["disk 5", "#9", "attempt 1", "250 ms"] {
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn retryable_classification() {
        assert!(PdmError::Disconnected { disk: 0 }.is_retryable());
        assert!(PdmError::TransientFault {
            op: 0,
            disk: 0,
            attempt: 0
        }
        .is_retryable());
        assert!(PdmError::Timeout {
            disk: 0,
            op: 0,
            attempt: 0,
            ms: 1
        }
        .is_retryable());
        assert!(!PdmError::Fault { op: 0, disk: 0 }.is_retryable());
        assert!(!PdmError::StripedOnly.is_retryable());
        assert!(!PdmError::Io("x".into()).is_retryable());
    }
}
