//! Error types for the parallel disk model.

use std::fmt;

/// Errors surfaced by the PDM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdmError {
    /// The geometry violates the Vitter–Shriver model constraints.
    Config(String),
    /// An injected fault fired on the given disk during the given
    /// parallel I/O operation (see [`crate::fault`]).
    Fault {
        /// Zero-based parallel I/O operation number the fault fired on.
        op: u64,
        /// Disk index the fault was injected against.
        disk: usize,
    },
    /// A request addressed a block outside the disk.
    OutOfRange {
        /// Disk index the request addressed.
        disk: usize,
        /// The out-of-range block slot.
        slot: usize,
        /// The disk's capacity in block slots.
        slots_per_disk: usize,
    },
    /// More than one block was addressed on a single disk within one
    /// parallel I/O operation.
    DuplicateDisk {
        /// The disk addressed more than once.
        disk: usize,
    },
    /// An independent (non-striped) access was attempted while the
    /// system is restricted to striped I/O.
    StripedOnly,
    /// A record type of the wrong serialized width was used against a
    /// file-backed disk created for a different record geometry (the
    /// backend would otherwise slice the on-disk bytes at the wrong
    /// stride — silent corruption or an out-of-bounds panic).
    RecordSize {
        /// Serialized record width the disk was created with.
        expected: usize,
        /// Serialized width of the record type used in the request.
        actual: usize,
    },
    /// The transport link to a disk's service worker dropped — the
    /// worker process died, the socket closed, or a disconnect fault
    /// was injected ([`crate::fault::FaultPlan::disconnect_at`]). The
    /// operation that observed the break fails; buffers still return
    /// to the pool.
    Disconnected {
        /// The disk whose transport link broke.
        disk: usize,
    },
    /// The worker at the far end of a transport speaks a different
    /// wire-protocol version ([`crate::proto::PROTO_VERSION`]); the
    /// connection is refused during the handshake, before any data
    /// moves.
    ProtocolVersion {
        /// The disk whose worker was refused.
        disk: usize,
        /// The version this side speaks.
        expected: u32,
        /// The version the worker announced.
        actual: u32,
    },
    /// The owning job was cancelled while waiting for (or before
    /// requesting) a fair-share grant ([`crate::sched`]): the
    /// operation is refused before it is serviced or charged, and the
    /// error unwinds the job's pass through the engine's abort path
    /// with every buffer recycled.
    Cancelled {
        /// The cancelled job's identifier ([`crate::sched::JobId`]).
        job: u64,
    },
    /// A real-file backend I/O failure.
    Io(String),
}

impl PdmError {
    /// Patches the real disk index into an error produced below the
    /// [`crate::system::DiskSystem`] layer. [`crate::backend::DiskUnit`]s
    /// and the wire protocol ([`crate::proto`]) don't know the disk's
    /// position in the array, so [`PdmError::OutOfRange`],
    /// [`PdmError::Disconnected`], and [`PdmError::ProtocolVersion`]
    /// arrive with a placeholder index; every other error is returned
    /// unchanged.
    pub fn with_disk(self, disk: usize) -> PdmError {
        match self {
            PdmError::OutOfRange {
                slot,
                slots_per_disk,
                ..
            } => PdmError::OutOfRange {
                disk,
                slot,
                slots_per_disk,
            },
            PdmError::Disconnected { .. } => PdmError::Disconnected { disk },
            PdmError::ProtocolVersion {
                expected, actual, ..
            } => PdmError::ProtocolVersion {
                disk,
                expected,
                actual,
            },
            other => other,
        }
    }
}

impl fmt::Display for PdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdmError::Config(msg) => write!(f, "invalid PDM configuration: {msg}"),
            PdmError::Fault { op, disk } => {
                write!(f, "injected fault on disk {disk} at parallel I/O #{op}")
            }
            PdmError::OutOfRange {
                disk,
                slot,
                slots_per_disk,
            } => write!(
                f,
                "block {slot} out of range on disk {disk} (capacity {slots_per_disk} blocks)"
            ),
            PdmError::DuplicateDisk { disk } => write!(
                f,
                "parallel I/O addresses disk {disk} more than once (model allows at most one block per disk)"
            ),
            PdmError::StripedOnly => write!(
                f,
                "independent access rejected: the system is restricted to striped I/O"
            ),
            PdmError::RecordSize { expected, actual } => write!(
                f,
                "record size mismatch: disk was created for {expected}-byte records, \
                 request uses {actual}-byte records"
            ),
            PdmError::Disconnected { disk } => write!(
                f,
                "transport to disk {disk} disconnected (worker gone or link severed)"
            ),
            PdmError::ProtocolVersion {
                disk,
                expected,
                actual,
            } => write!(
                f,
                "disk {disk} worker speaks wire-protocol version {actual}, expected {expected}"
            ),
            PdmError::Cancelled { job } => write!(f, "job {job} cancelled"),
            PdmError::Io(msg) => write!(f, "backend I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PdmError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PdmError>;
