//! Record types stored on the simulated disks.
//!
//! The PDM moves opaque fixed-size records; BMMC permutations are
//! *address* permutations, so algorithms never inspect record contents.
//! Tests and experiments use records that carry their original source
//! address so that final placement can be verified.

/// Marker trait for types that can live on a simulated disk.
///
/// Blanket-implemented; any `Copy + Default + Send + Sync + 'static`
/// type qualifies (e.g. `u64`, [`TaggedRecord`]). `Sync` is required so
/// that shared slices of records can cross into the per-disk service
/// threads.
pub trait Record: Copy + Default + Send + Sync + 'static {}
impl<T: Copy + Default + Send + Sync + 'static> Record for T {}

/// A record with a stable identity and a payload word, used throughout
/// the test suite and experiments to verify permutations end-to-end.
#[derive(Copy, Clone, Default, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaggedRecord {
    /// The record's original source address (its identity).
    pub key: u64,
    /// Arbitrary payload; travels with the record.
    pub payload: u64,
}

impl TaggedRecord {
    /// A record whose payload is a cheap hash of the key, so payload
    /// corruption is detectable independently of key placement.
    pub fn new(key: u64) -> Self {
        TaggedRecord {
            key,
            payload: key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17),
        }
    }

    /// True if the payload still matches the key.
    pub fn intact(&self) -> bool {
        *self == TaggedRecord::new(self.key)
    }
}

/// Fixed-width byte serialization, required by the file-backed disks.
///
/// [`crate::backend::FileDisk`] pins [`ByteRecord::BYTES`] at creation
/// time and rejects any later access with a record type of a different
/// width ([`crate::PdmError::RecordSize`]) — the on-disk byte geometry
/// belongs to the disk, not to whichever type a call site happens to
/// use.
pub trait ByteRecord: Copy {
    /// Serialized size in bytes.
    const BYTES: usize;
    /// Writes exactly [`Self::BYTES`] bytes.
    fn to_bytes(&self, out: &mut [u8]);
    /// Reads exactly [`Self::BYTES`] bytes.
    fn from_bytes(bytes: &[u8]) -> Self;
}

impl ByteRecord for u64 {
    const BYTES: usize = 8;
    fn to_bytes(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.to_le_bytes());
    }
    fn from_bytes(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes[..8].try_into().unwrap())
    }
}

impl ByteRecord for u8 {
    const BYTES: usize = 1;
    fn to_bytes(&self, out: &mut [u8]) {
        out[0] = *self;
    }
    fn from_bytes(bytes: &[u8]) -> Self {
        bytes[0]
    }
}

impl ByteRecord for u32 {
    const BYTES: usize = 4;
    fn to_bytes(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.to_le_bytes());
    }
    fn from_bytes(bytes: &[u8]) -> Self {
        u32::from_le_bytes(bytes[..4].try_into().unwrap())
    }
}

impl ByteRecord for TaggedRecord {
    const BYTES: usize = 16;
    fn to_bytes(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..16].copy_from_slice(&self.payload.to_le_bytes());
    }
    fn from_bytes(bytes: &[u8]) -> Self {
        TaggedRecord {
            key: u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            payload: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_record_integrity() {
        let r = TaggedRecord::new(42);
        assert!(r.intact());
        let broken = TaggedRecord {
            key: 42,
            payload: 0,
        };
        assert!(!broken.intact());
    }

    #[test]
    fn byte_round_trip_u64() {
        let mut buf = [0u8; 8];
        0xdead_beef_u64.to_bytes(&mut buf);
        assert_eq!(u64::from_bytes(&buf), 0xdead_beef);
    }

    #[test]
    fn byte_round_trip_tagged() {
        let r = TaggedRecord::new(123456789);
        let mut buf = [0u8; 16];
        r.to_bytes(&mut buf);
        assert_eq!(TaggedRecord::from_bytes(&buf), r);
    }
}
