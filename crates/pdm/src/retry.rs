//! Retry policy and accounting for fault recovery.
//!
//! PRs 6–7 built clean *fail-fast*: typed errors, proven buffer
//! hygiene, a severed link answering every in-flight command. This
//! module adds the *recovery* half: a [`RetryPolicy`] bounds how many
//! times the [`crate::system::DiskSystem`] may re-attempt a
//! retryable failure ([`crate::error::PdmError::is_retryable`]) with
//! exponential backoff, whether stuck workers are timed out, and
//! whether dead transport links may be respawned
//! ([`crate::parallel::Transport::respawn`]).
//!
//! Every recovery action lands in a [`RetryStats`] ledger that rides
//! alongside [`crate::stats::IoStats`] / [`crate::stats::MsgStats`]
//! into reports and CLI output, so recovery is *exactly* accountable:
//! a run that absorbed `k` injected transient faults shows exactly
//! `k` retries, and a run that revived one killed worker shows
//! exactly one respawn. Retried operations are **charged once** — the
//! parallel-I/O counts of a recovered run equal a clean run's, which
//! is what the recovery equivalence tests pin.

use std::fmt;

/// Bounds on the retry layer. The default (`max_attempts == 1`) is
/// PR 6/7's fail-fast behavior: no retries, no timeouts, no respawns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (`>= 1`).
    /// `1` disables the retry layer entirely.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is
    /// `min(base_backoff_ms << (k-1), max_backoff_ms)` milliseconds.
    /// Zero (the default) retries immediately — what the deterministic
    /// tests use.
    pub base_backoff_ms: u64,
    /// Cap on one backoff interval.
    pub max_backoff_ms: u64,
    /// Per-operation completion timeout. `None` (the default) waits
    /// forever, as before. With a budget, a worker that exceeds it is
    /// treated as stuck: its link is severed so the in-flight buffers
    /// come home, and the failure surfaces (or retries) as
    /// [`crate::error::PdmError::Timeout`].
    pub op_timeout_ms: Option<u64>,
    /// Allow reviving dead transport links mid-retry
    /// ([`crate::parallel::Transport::respawn`]) — for Unix-socket
    /// transports this relaunches the `pdm-diskd` worker process and
    /// replays the handshake.
    pub respawn: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            op_timeout_ms: None,
            respawn: false,
        }
    }
}

impl RetryPolicy {
    /// A fault-tolerant profile: up to 4 attempts, immediate retries,
    /// worker respawn enabled, no completion timeout. Deterministic
    /// (no wall-clock sleeps), so tests and benches use it as-is.
    pub fn fault_tolerant() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            op_timeout_ms: None,
            respawn: true,
        }
    }

    /// True when at least one retry is allowed.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The backoff before retry `attempt` (1-based): exponential in
    /// the base, capped at `max_backoff_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 || attempt == 0 {
            return 0;
        }
        self.base_backoff_ms
            .checked_shl(attempt - 1)
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_ms.max(self.base_backoff_ms))
    }
}

/// The recovery ledger: what the retry layer actually did. Rides next
/// to [`crate::stats::IoStats`] and [`crate::stats::MsgStats`] in
/// reports; all-zero on a clean fail-fast run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Operation attempts, including every first try.
    pub attempts: u64,
    /// Re-attempts after a retryable failure (== attempts minus
    /// operations admitted).
    pub retries: u64,
    /// Transient transfer faults observed (injected or real).
    pub transient_faults: u64,
    /// Per-op timeouts observed (stuck workers, oversized stragglers).
    pub timeouts: u64,
    /// Total backoff milliseconds charged before retries.
    pub backoff_ms: u64,
    /// Dead transport links revived (worker processes relaunched).
    pub respawns: u64,
}

impl RetryStats {
    /// True when the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.timeouts == 0 && self.respawns == 0 && self.transient_faults == 0
    }

    /// The delta from `earlier` to `self` (both cumulative).
    pub fn since(&self, earlier: &RetryStats) -> RetryStats {
        RetryStats {
            attempts: self.attempts - earlier.attempts,
            retries: self.retries - earlier.retries,
            transient_faults: self.transient_faults - earlier.transient_faults,
            timeouts: self.timeouts - earlier.timeouts,
            backoff_ms: self.backoff_ms - earlier.backoff_ms,
            respawns: self.respawns - earlier.respawns,
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.transient_faults += other.transient_faults;
        self.timeouts += other.timeouts;
        self.backoff_ms += other.backoff_ms;
        self.respawns += other.respawns;
    }
}

impl fmt::Display for RetryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} retries ({} transient, {} timeout), {} respawns, {} ms backoff",
            self.retries, self.transient_faults, self.timeouts, self.respawns, self.backoff_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fail_fast() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.retries_enabled());
        assert_eq!(p.op_timeout_ms, None);
        assert!(!p.respawn);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 50,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        assert_eq!(p.backoff_ms(4), 50, "capped");
        assert_eq!(p.backoff_ms(63), 50, "shift overflow saturates");
        // Zero base never sleeps, whatever the attempt.
        assert_eq!(RetryPolicy::fault_tolerant().backoff_ms(3), 0);
    }

    #[test]
    fn stats_since_and_merge() {
        let mut a = RetryStats {
            attempts: 10,
            retries: 2,
            transient_faults: 2,
            timeouts: 0,
            backoff_ms: 30,
            respawns: 1,
        };
        let earlier = RetryStats {
            attempts: 4,
            retries: 1,
            transient_faults: 1,
            timeouts: 0,
            backoff_ms: 10,
            respawns: 0,
        };
        let d = a.since(&earlier);
        assert_eq!(d.attempts, 6);
        assert_eq!(d.retries, 1);
        assert_eq!(d.respawns, 1);
        a.merge(&d);
        assert_eq!(a.attempts, 16);
        assert!(!a.is_clean());
        assert!(RetryStats::default().is_clean());
        let shown = a.to_string();
        assert!(shown.contains("retries"), "{shown}");
    }
}
