//! An optional service-time model layered over the parallel-I/O count.
//!
//! The paper's cost model deliberately ignores head movement and
//! rotational latency (Section 1: "programmers often have no control
//! over these factors"). This module makes that abstraction *visible*:
//! each block access is charged a positioning cost — cheap if it is
//! sequential with the disk's previous access, expensive otherwise —
//! plus a transfer cost, and a parallel I/O takes as long as its
//! slowest disk (the operations are barrier-synchronous in the model).
//!
//! With the tracker enabled one can quantify, e.g., how much more a
//! one-pass MLD permutation (independent, scattered writes) costs in
//! simulated time than an MRC pass (purely sequential stripes) with
//! the *same* parallel-I/O count.

/// Per-disk service-time parameters (milliseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingModel {
    /// Positioning cost when the access is not sequential with the
    /// disk's previous access.
    pub seek_ms: f64,
    /// Positioning cost when it is (same or next slot).
    pub sequential_ms: f64,
    /// Transfer time per block.
    pub transfer_ms: f64,
}

impl TimingModel {
    /// A commodity-drive-flavoured default: 8 ms seek, 0.05 ms track
    /// continuation, 0.2 ms per block transfer.
    pub fn hdd() -> Self {
        TimingModel {
            seek_ms: 8.0,
            sequential_ms: 0.05,
            transfer_ms: 0.2,
        }
    }

    /// A solid-state-flavoured model where positioning barely matters.
    pub fn ssd() -> Self {
        TimingModel {
            seek_ms: 0.02,
            sequential_ms: 0.02,
            transfer_ms: 0.05,
        }
    }
}

/// Accumulates simulated elapsed time for a disk array.
#[derive(Clone, Debug)]
pub struct TimingTracker {
    model: TimingModel,
    /// Last slot accessed on each disk (None before first access).
    last_slot: Vec<Option<usize>>,
    elapsed_ms: f64,
    busy_ms: Vec<f64>,
    /// Reused per-operation busy scratch (see [`TimingTracker::record`]).
    op_busy_ms: Vec<f64>,
    seeks: u64,
    sequential: u64,
    network_ms: f64,
}

impl TimingTracker {
    /// A tracker for `disks` disks under `model`.
    pub fn new(model: TimingModel, disks: usize) -> Self {
        TimingTracker {
            model,
            last_slot: vec![None; disks],
            elapsed_ms: 0.0,
            busy_ms: vec![0.0; disks],
            op_busy_ms: vec![0.0; disks],
            seeks: 0,
            sequential: 0,
            network_ms: 0.0,
        }
    }

    /// Records one parallel I/O touching the given `(disk, slot)`
    /// pairs. The operation's duration is the maximum *per-disk* service
    /// time (barrier synchronization): when one operation charges
    /// several blocks to the same disk — gather/scatter batches do —
    /// that disk services them back to back, so its contribution to the
    /// makespan is the **sum** of its access costs, not the costliest
    /// single access.
    pub fn record(&mut self, accesses: impl IntoIterator<Item = (usize, usize)>) {
        self.op_busy_ms.fill(0.0);
        for (disk, slot) in accesses {
            let sequential = match self.last_slot[disk] {
                Some(prev) => slot == prev || slot == prev + 1,
                None => false,
            };
            let cost = if sequential {
                self.sequential += 1;
                self.model.sequential_ms
            } else {
                self.seeks += 1;
                self.model.seek_ms
            } + self.model.transfer_ms;
            self.last_slot[disk] = Some(slot);
            self.busy_ms[disk] += cost;
            self.op_busy_ms[disk] += cost;
        }
        let op_ms = self.op_busy_ms.iter().copied().fold(0.0f64, f64::max);
        self.elapsed_ms += op_ms;
    }

    /// Adds simulated *network* time to the makespan — the SimNet
    /// transport ([`crate::transport::SimNetModel`]) charges each frame
    /// latency plus bandwidth-proportional transfer time here. The
    /// charge is serialized (not overlapped with disk service): all
    /// frames funnel through the client's single network interface, so
    /// this is the link-limited bound rather than an optimistic
    /// overlap.
    pub fn add_network_ms(&mut self, ms: f64) {
        self.network_ms += ms;
        self.elapsed_ms += ms;
    }

    /// Simulated network time accrued so far (zero unless a SimNet
    /// transport is in use).
    pub fn network_ms(&self) -> f64 {
        self.network_ms
    }

    /// Simulated elapsed (makespan) time so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// Per-disk busy time.
    pub fn busy_ms(&self) -> &[f64] {
        &self.busy_ms
    }

    /// Number of accesses charged the full seek.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Number of accesses charged the sequential rate.
    pub fn sequential_accesses(&self) -> u64 {
        self.sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel {
            seek_ms: 10.0,
            sequential_ms: 1.0,
            transfer_ms: 0.5,
        }
    }

    #[test]
    fn first_access_is_a_seek() {
        let mut t = TimingTracker::new(model(), 2);
        t.record([(0, 0)]);
        assert_eq!(t.seeks(), 1);
        assert!((t.elapsed_ms() - 10.5).abs() < 1e-9);
    }

    #[test]
    fn sequential_access_is_cheap() {
        let mut t = TimingTracker::new(model(), 1);
        t.record([(0, 0)]);
        t.record([(0, 1)]); // next slot: sequential
        t.record([(0, 1)]); // same slot: sequential
        t.record([(0, 5)]); // jump: seek
        assert_eq!(t.seeks(), 2);
        assert_eq!(t.sequential_accesses(), 2);
        assert!((t.elapsed_ms() - (10.5 + 1.5 + 1.5 + 10.5)).abs() < 1e-9);
    }

    #[test]
    fn parallel_op_takes_slowest_disk() {
        let mut t = TimingTracker::new(model(), 2);
        t.record([(0, 0)]); // seed disk 0 at slot 0
                            // Disk 0 sequential (1.5), disk 1 first access = seek (10.5):
                            // the op costs max = 10.5.
        t.record([(0, 1), (1, 3)]);
        assert!((t.elapsed_ms() - (10.5 + 10.5)).abs() < 1e-9);
        assert!((t.busy_ms()[0] - 12.0).abs() < 1e-9);
        assert!((t.busy_ms()[1] - 10.5).abs() < 1e-9);
    }

    /// Regression test: an operation that charges several blocks to
    /// the same disk used to take the max over *single accesses*
    /// (10.5 here) instead of the per-disk sum — undercounting the
    /// makespan whenever gather/scatter batches stack a disk.
    #[test]
    fn multi_access_per_disk_sums_within_the_op() {
        let mut t = TimingTracker::new(model(), 2);
        // Disk 0: seek (10.5) then sequential continuation (1.5) →
        // busy 12.0 in this one op. Disk 1: one seek (10.5).
        t.record([(0, 3), (0, 4), (1, 7)]);
        assert!((t.elapsed_ms() - 12.0).abs() < 1e-9, "{}", t.elapsed_ms());
        assert!((t.busy_ms()[0] - 12.0).abs() < 1e-9);
        assert!((t.busy_ms()[1] - 10.5).abs() < 1e-9);
        assert_eq!(t.seeks(), 2);
        assert_eq!(t.sequential_accesses(), 1);
        // The makespan is never below the busiest disk's total.
        t.record([(0, 5), (0, 6), (0, 7)]); // 3 sequential: 4.5
        assert!((t.elapsed_ms() - 16.5).abs() < 1e-9);
    }

    #[test]
    fn network_time_extends_the_makespan() {
        let mut t = TimingTracker::new(model(), 1);
        t.record([(0, 0)]); // 10.5
        t.add_network_ms(2.25);
        t.add_network_ms(0.75);
        assert!((t.network_ms() - 3.0).abs() < 1e-9);
        assert!((t.elapsed_ms() - 13.5).abs() < 1e-9);
        // Disk accounting is untouched.
        assert!((t.busy_ms()[0] - 10.5).abs() < 1e-9);
    }

    #[test]
    fn backwards_jump_is_a_seek() {
        let mut t = TimingTracker::new(model(), 1);
        t.record([(0, 5)]);
        t.record([(0, 4)]);
        assert_eq!(t.seeks(), 2);
    }
}
