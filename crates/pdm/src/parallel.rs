//! Concurrent servicing of a parallel I/O operation.
//!
//! A parallel I/O touches at most one block on each disk; the transfers
//! are independent by construction, so they can be serviced by one
//! thread per participating disk. For [`crate::backend::MemDisk`] this
//! is pure overhead, but for [`crate::backend::FileDisk`] it overlaps
//! real system calls exactly the way a hardware disk array would.
//! The `DiskSystem` chooses between this path and a serial loop via
//! [`crate::system::DiskSystem::set_threaded`].

use crate::backend::DiskUnit;
use crate::error::{PdmError, Result};
use crate::record::Record;
use parking_lot::Mutex;

/// Reads one block from each `(disk, slot)` pair concurrently.
/// `outs[i]` receives the block for request `i`; requests must address
/// distinct disks.
pub fn threaded_read<R: Record>(
    units: &mut [Box<dyn DiskUnit<R>>],
    reqs: &[(usize, usize)],
    outs: &mut [Vec<R>],
) -> Result<()> {
    debug_assert_eq!(reqs.len(), outs.len());
    // Scatter the per-request output buffers into disk-indexed slots so
    // each spawned thread gets a disjoint `&mut`.
    let mut by_disk: Vec<Option<(usize, &mut Vec<R>)>> = (0..units.len()).map(|_| None).collect();
    for (&(disk, slot), out) in reqs.iter().zip(outs.iter_mut()) {
        by_disk[disk] = Some((slot, out));
    }
    let errors: Mutex<Vec<PdmError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (unit, job) in units.iter_mut().zip(by_disk) {
            if let Some((slot, out)) = job {
                let errors = &errors;
                s.spawn(move || {
                    if let Err(e) = unit.read(slot, out) {
                        errors.lock().push(e);
                    }
                });
            }
        }
    });
    match errors.into_inner().pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Writes one block to each `(disk, slot)` pair concurrently.
/// Requests must address distinct disks.
pub fn threaded_write<R: Record>(
    units: &mut [Box<dyn DiskUnit<R>>],
    writes: &[(usize, usize, &[R])],
) -> Result<()> {
    let mut by_disk: Vec<Option<(usize, &[R])>> = (0..units.len()).map(|_| None).collect();
    for &(disk, slot, data) in writes {
        by_disk[disk] = Some((slot, data));
    }
    let errors: Mutex<Vec<PdmError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (unit, job) in units.iter_mut().zip(by_disk) {
            if let Some((slot, data)) = job {
                let errors = &errors;
                s.spawn(move || {
                    if let Err(e) = unit.write(slot, data) {
                        errors.lock().push(e);
                    }
                });
            }
        }
    });
    match errors.into_inner().pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemDisk;

    fn units(block: usize, slots: usize, disks: usize) -> Vec<Box<dyn DiskUnit<u64>>> {
        (0..disks)
            .map(|_| Box::new(MemDisk::<u64>::new(block, slots)) as Box<dyn DiskUnit<u64>>)
            .collect()
    }

    #[test]
    fn threaded_round_trip() {
        let mut u = units(2, 4, 4);
        let data: Vec<Vec<u64>> = (0..4u64).map(|d| vec![d * 10, d * 10 + 1]).collect();
        let writes: Vec<(usize, usize, &[u64])> = data
            .iter()
            .enumerate()
            .map(|(d, v)| (d, d % 4, v.as_slice()))
            .collect();
        threaded_write(&mut u, &writes).unwrap();

        let reqs: Vec<(usize, usize)> = (0..4).map(|d| (d, d % 4)).collect();
        let mut outs: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 2]).collect();
        threaded_read(&mut u, &reqs, &mut outs).unwrap();
        assert_eq!(outs, data);
    }

    #[test]
    fn threaded_read_propagates_errors() {
        let mut u = units(2, 2, 2);
        let reqs = [(0usize, 5usize)]; // out of range
        let mut outs = vec![vec![0u64; 2]];
        assert!(threaded_read(&mut u, &reqs, &mut outs).is_err());
    }
}
