//! Concurrent servicing of parallel I/O operations.
//!
//! A parallel I/O touches at most one block on each disk; the transfers
//! are independent by construction, so each disk can be serviced by its
//! own worker. The worker is reached through a [`Transport`]: the
//! request/reply protocol ([`Cmd`] / [`Completion`]) is the same
//! whether the worker is a thread in this process, a `pdm-diskd`
//! process behind a Unix-domain socket, or a deterministic simulated
//! network (see [`crate::transport`]). Three disciplines exist:
//!
//! * [`DiskPool`] — **persistent** workers, one per disk, fed through
//!   transports. Commands carry owned block buffers (recycled by the
//!   caller's buffer pool), so an in-process transfer costs one channel
//!   round-trip instead of a thread spawn. Because submission and
//!   completion are decoupled, a caller can keep an operation in
//!   flight while it computes — this is what the [`crate::engine`]
//!   pipeline uses to overlap the permute of memoryload *k* with the
//!   reads of memoryload *k+1*, and the overlap survives remoteness:
//!   over a socket the requests pipeline the same way.
//! * [`threaded_read`] / [`threaded_write`] — the legacy
//!   spawn-per-operation discipline retained as
//!   [`crate::system::ServiceMode::SpawnPerOp`] for comparison
//!   benchmarks (`engine_sweep`): every parallel I/O pays `D` thread
//!   spawns and joins.
//!
//! For [`crate::backend::MemDisk`] threading is pure overhead either
//! way, but for [`crate::backend::FileDisk`] it overlaps real system
//! calls exactly the way a hardware disk array would. The `DiskSystem`
//! chooses the discipline via
//! [`crate::system::DiskSystem::set_service_mode`].

use crate::backend::DiskUnit;
use crate::error::{PdmError, Result};
use crate::record::Record;
use crate::stats::MsgStats;
use parking_lot::Mutex;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A command for one disk's service thread. Buffers travel by value:
/// the worker fills (read) or drains (write) the buffer and sends it
/// back in the [`Completion`], so the caller's pool can recycle it.
pub enum Cmd<R: Record> {
    /// Read block `slot` into `buf` and reply on `done`.
    Read {
        /// Block slot on this disk.
        slot: usize,
        /// Destination buffer, exactly one block long.
        buf: Vec<R>,
        /// Caller's request index, echoed in the completion.
        idx: usize,
        /// Completion channel.
        done: Sender<Completion<R>>,
    },
    /// Write `buf` to block `slot` and reply on `done`.
    Write {
        /// Block slot on this disk.
        slot: usize,
        /// Source buffer, exactly one block long.
        buf: Vec<R>,
        /// Caller's request index, echoed in the completion.
        idx: usize,
        /// Completion channel.
        done: Sender<Completion<R>>,
    },
    /// Shut the worker down (it returns its unit to the joiner).
    Stop,
}

/// The result of one block transfer, carrying the buffer back for
/// reuse.
pub struct Completion<R> {
    /// The request index from the [`Cmd`].
    pub idx: usize,
    /// The disk that serviced the request.
    pub disk: usize,
    /// The block buffer (filled with data for reads).
    pub buf: Vec<R>,
    /// Transfer outcome.
    pub result: Result<()>,
}

/// One disk's end of the request/reply protocol.
///
/// A transport accepts [`Cmd`]s and eventually answers each on the
/// command's completion channel. The contract that keeps every caller
/// drain-loop transport-agnostic:
///
/// * **Submission never blocks on the reply** (it may block briefly on
///   a socket write).
/// * **Every command is answered exactly once**, including after the
///   link dies: a transport failure surfaces *through the completion*
///   as [`PdmError::Disconnected`] with the buffer attached, never as
///   a panic or a silently dropped command. Buffer-pool hygiene is
///   therefore identical on every path.
/// * Replies may arrive in any order across disks; per disk they
///   follow submission order.
pub trait Transport<R: Record>: Send {
    /// The disk this transport serves.
    fn disk(&self) -> usize;

    /// Submits a command; the reply arrives on the command's `done`
    /// channel. [`Cmd::Stop`] is a no-op here — shutdown is driven by
    /// [`Transport::shutdown`].
    fn submit(&mut self, cmd: Cmd<R>);

    /// Data-plane messages and bytes moved so far. Identically zero
    /// for in-process transports, where commands cross by reference.
    fn message_stats(&self) -> MsgStats {
        MsgStats::default()
    }

    /// Takes (returns and resets) the simulated network milliseconds
    /// accrued since the last call. Zero for everything but the SimNet
    /// transport.
    fn take_sim_ms(&mut self) -> f64 {
        0.0
    }

    /// Severs the link as a fault-injection action
    /// ([`crate::fault::FaultPlan::disconnect_at`]): in-flight and
    /// subsequent commands complete with [`PdmError::Disconnected`].
    /// The link stays dead (unless revived by [`Transport::respawn`]).
    fn inject_disconnect(&mut self);

    /// Attempts to revive a dead link. `Ok(true)` means the transport
    /// actually relaunched/reconnected its worker, `Ok(false)` means
    /// the link was already healthy, and `Err` means this transport
    /// cannot recover (the default — recovery is opt-in per
    /// transport). The [`crate::system::DiskSystem`] retry layer calls
    /// this on a `Disconnected` completion when the
    /// [`crate::retry::RetryPolicy`] allows respawns, and counts a
    /// respawn in [`crate::retry::RetryStats`] only on `Ok(true)`.
    fn respawn(&mut self) -> Result<bool> {
        Err(PdmError::Io(format!(
            "disk {}: transport does not support respawn",
            self.disk()
        )))
    }

    /// Gracefully shuts the worker down, returning the disk unit when
    /// it lives in this process (`None` for remote workers, whose
    /// storage dies with them). Idempotent.
    fn shutdown(&mut self) -> Option<Box<dyn DiskUnit<R>>>;
}

/// Answers `cmd` with [`PdmError::Disconnected`], returning its buffer
/// through the completion so the caller's pool can recycle it. Public
/// so out-of-crate [`Transport`] implementations (the service's disk
/// farm) can honour the severed-link contract.
pub fn fail_disconnected<R: Record>(cmd: Cmd<R>, disk: usize) {
    match cmd {
        Cmd::Read { buf, idx, done, .. } | Cmd::Write { buf, idx, done, .. } => {
            let _ = done.send(Completion {
                idx,
                disk,
                buf,
                result: Err(PdmError::Disconnected { disk }),
            });
        }
        Cmd::Stop => {}
    }
}

/// The in-process transport: a persistent service thread that owns its
/// [`DiskUnit`] and receives commands over a channel — buffers cross
/// by ownership transfer, no bytes are serialized, and
/// [`Transport::message_stats`] stays zero. This is the default
/// transport and preserves the pre-transport `DiskPool` behaviour
/// exactly.
pub struct InProcTransport<R: Record> {
    disk: usize,
    tx: Sender<Cmd<R>>,
    join: Option<JoinHandle<Box<dyn DiskUnit<R>>>>,
    dead: bool,
}

impl<R: Record> InProcTransport<R> {
    /// Spawns the service thread for `disk` over `unit`.
    pub fn new(disk: usize, mut unit: Box<dyn DiskUnit<R>>) -> Self {
        let (tx, rx): (Sender<Cmd<R>>, Receiver<Cmd<R>>) = channel();
        let join = std::thread::Builder::new()
            .name(format!("pdm-disk-{disk}"))
            .spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Read {
                            slot,
                            mut buf,
                            idx,
                            done,
                        } => {
                            let result = unit.read(slot, &mut buf);
                            let _ = done.send(Completion {
                                idx,
                                disk,
                                buf,
                                result,
                            });
                        }
                        Cmd::Write {
                            slot,
                            buf,
                            idx,
                            done,
                        } => {
                            let result = unit.write(slot, &buf);
                            let _ = done.send(Completion {
                                idx,
                                disk,
                                buf,
                                result,
                            });
                        }
                        Cmd::Stop => break,
                    }
                }
                unit
            })
            .expect("failed to spawn disk service thread");
        InProcTransport {
            disk,
            tx,
            join: Some(join),
            dead: false,
        }
    }
}

impl<R: Record> Transport<R> for InProcTransport<R> {
    fn disk(&self) -> usize {
        self.disk
    }

    fn submit(&mut self, cmd: Cmd<R>) {
        if self.dead || self.join.is_none() {
            fail_disconnected(cmd, self.disk);
            return;
        }
        if let Err(send_err) = self.tx.send(cmd) {
            // Service thread gone: answer the command ourselves.
            self.dead = true;
            fail_disconnected(send_err.0, self.disk);
        }
    }

    fn inject_disconnect(&mut self) {
        // The service thread stays alive (its unit must survive a
        // later shutdown); the *link* is what dies.
        self.dead = true;
    }

    fn respawn(&mut self) -> Result<bool> {
        // The severed link is a flag over a still-running service
        // thread whose unit (and data) survived; reviving it is a
        // reconnect, not a relaunch — but it is a real recovery
        // action, so report Ok(true) when the link was dead.
        if self.join.is_none() {
            return Err(PdmError::Io(format!(
                "disk {}: service thread already shut down",
                self.disk
            )));
        }
        Ok(std::mem::take(&mut self.dead))
    }

    fn shutdown(&mut self) -> Option<Box<dyn DiskUnit<R>>> {
        let join = self.join.take()?;
        let _ = self.tx.send(Cmd::Stop);
        Some(join.join().expect("disk service thread panicked"))
    }
}

impl<R: Record> Drop for InProcTransport<R> {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(Cmd::Stop);
            let _ = join.join();
        }
    }
}

/// Persistent per-disk workers behind [`Transport`]s.
///
/// With [`DiskPool::new`] every worker is an in-process service thread
/// owning its [`DiskUnit`] ([`InProcTransport`]);
/// [`DiskPool::from_transports`] generalizes to remote workers (see
/// [`crate::transport`]). [`DiskPool::into_units`] shuts in-process
/// workers down and hands the units back (used when the
/// [`crate::system::DiskSystem`] switches service modes).
pub struct DiskPool<R: Record> {
    transports: Vec<Box<dyn Transport<R>>>,
}

impl<R: Record> DiskPool<R> {
    /// Spawns one in-process service thread per unit.
    pub fn new(units: Vec<Box<dyn DiskUnit<R>>>) -> Self {
        Self::from_transports(
            units
                .into_iter()
                .enumerate()
                .map(|(disk, unit)| {
                    Box::new(InProcTransport::new(disk, unit)) as Box<dyn Transport<R>>
                })
                .collect(),
        )
    }

    /// A pool over pre-built transports, one per disk in disk order.
    pub fn from_transports(transports: Vec<Box<dyn Transport<R>>>) -> Self {
        for (d, t) in transports.iter().enumerate() {
            assert_eq!(t.disk(), d, "transports must be in disk order");
        }
        DiskPool { transports }
    }

    /// Number of disks (workers).
    pub fn disks(&self) -> usize {
        self.transports.len()
    }

    /// Submits a command to `disk`'s worker. Non-blocking; the reply
    /// arrives on the command's `done` channel (a dead link answers
    /// with [`PdmError::Disconnected`] there, buffer attached).
    pub fn submit(&mut self, disk: usize, cmd: Cmd<R>) {
        self.transports[disk].submit(cmd);
    }

    /// Aggregate data-plane message counters across all disks.
    pub fn message_stats(&self) -> MsgStats {
        let mut total = MsgStats::default();
        for t in &self.transports {
            total.merge(&t.message_stats());
        }
        total
    }

    /// Per-disk data-plane message counters, in disk order.
    pub fn message_stats_per_disk(&self) -> Vec<MsgStats> {
        self.transports.iter().map(|t| t.message_stats()).collect()
    }

    /// Takes the simulated network time accrued across all disks since
    /// the last call (SimNet transports only).
    pub fn take_sim_ms(&mut self) -> f64 {
        self.transports.iter_mut().map(|t| t.take_sim_ms()).sum()
    }

    /// Severs the link to `disk` (fault injection).
    pub fn inject_disconnect(&mut self, disk: usize) {
        self.transports[disk].inject_disconnect();
    }

    /// Attempts to revive the link to `disk` (see
    /// [`Transport::respawn`]).
    pub fn respawn(&mut self, disk: usize) -> Result<bool> {
        self.transports[disk].respawn()
    }

    /// Shuts down the workers and returns their disk units in disk
    /// order. Panics if any worker is remote — remote storage cannot
    /// be pulled back into this process, and the `DiskSystem` never
    /// asks to.
    pub fn into_units(mut self) -> Vec<Box<dyn DiskUnit<R>>> {
        self.transports
            .iter_mut()
            .map(|t| {
                t.shutdown()
                    .expect("remote transports host no local disk unit")
            })
            .collect()
    }
}

/// Reads one block from each `(disk, slot)` pair concurrently by
/// spawning one short-lived thread per request (the legacy
/// spawn-per-operation discipline). `outs[i]` receives the block for
/// request `i`; requests must address distinct disks.
pub fn threaded_read<R: Record>(
    units: &mut [Box<dyn DiskUnit<R>>],
    reqs: &[(usize, usize)],
    outs: Vec<&mut [R]>,
) -> Result<()> {
    debug_assert_eq!(reqs.len(), outs.len());
    // Scatter the per-request output buffers into disk-indexed slots so
    // each spawned thread gets a disjoint `&mut`.
    let mut by_disk: Vec<Option<(usize, &mut [R])>> = (0..units.len()).map(|_| None).collect();
    for (&(disk, slot), out) in reqs.iter().zip(outs) {
        by_disk[disk] = Some((slot, out));
    }
    let errors: Mutex<Vec<PdmError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (disk, (unit, job)) in units.iter_mut().zip(by_disk).enumerate() {
            if let Some((slot, out)) = job {
                let errors = &errors;
                s.spawn(move || {
                    if let Err(e) = unit.read(slot, out) {
                        // Units report a placeholder disk index; patch
                        // in the real one while we still know it.
                        errors.lock().push(e.with_disk(disk));
                    }
                });
            }
        }
    });
    match errors.into_inner().pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Writes one block to each `(disk, slot)` pair concurrently with one
/// short-lived thread per request (legacy discipline). Requests must
/// address distinct disks.
pub fn threaded_write<R: Record>(
    units: &mut [Box<dyn DiskUnit<R>>],
    writes: &[(usize, usize, &[R])],
) -> Result<()> {
    let mut by_disk: Vec<Option<(usize, &[R])>> = (0..units.len()).map(|_| None).collect();
    for &(disk, slot, data) in writes {
        by_disk[disk] = Some((slot, data));
    }
    let errors: Mutex<Vec<PdmError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (disk, (unit, job)) in units.iter_mut().zip(by_disk).enumerate() {
            if let Some((slot, data)) = job {
                let errors = &errors;
                s.spawn(move || {
                    if let Err(e) = unit.write(slot, data) {
                        errors.lock().push(e.with_disk(disk));
                    }
                });
            }
        }
    });
    match errors.into_inner().pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemDisk;

    fn units(block: usize, slots: usize, disks: usize) -> Vec<Box<dyn DiskUnit<u64>>> {
        (0..disks)
            .map(|_| Box::new(MemDisk::<u64>::new(block, slots)) as Box<dyn DiskUnit<u64>>)
            .collect()
    }

    #[test]
    fn threaded_round_trip() {
        let mut u = units(2, 4, 4);
        let data: Vec<Vec<u64>> = (0..4u64).map(|d| vec![d * 10, d * 10 + 1]).collect();
        let writes: Vec<(usize, usize, &[u64])> = data
            .iter()
            .enumerate()
            .map(|(d, v)| (d, d % 4, v.as_slice()))
            .collect();
        threaded_write(&mut u, &writes).unwrap();

        let reqs: Vec<(usize, usize)> = (0..4).map(|d| (d, d % 4)).collect();
        let mut flat = [0u64; 8];
        threaded_read(&mut u, &reqs, flat.chunks_exact_mut(2).collect()).unwrap();
        let got: Vec<Vec<u64>> = flat.chunks_exact(2).map(|c| c.to_vec()).collect();
        assert_eq!(got, data);
    }

    #[test]
    fn threaded_read_propagates_errors_naming_the_disk() {
        let mut u = units(2, 2, 2);
        let reqs = [(1usize, 5usize)]; // out of range on disk 1
        let mut out = vec![0u64; 2];
        let err = threaded_read(&mut u, &reqs, vec![out.as_mut_slice()]).unwrap_err();
        assert!(
            matches!(
                err,
                PdmError::OutOfRange {
                    disk: 1,
                    slot: 5,
                    ..
                }
            ),
            "diagnostic must name the failing disk, got {err}"
        );
        let err = threaded_write(&mut u, &[(1, 5, &[0u64, 0][..])]).unwrap_err();
        assert!(matches!(err, PdmError::OutOfRange { disk: 1, .. }));
    }

    #[test]
    fn pool_round_trip_and_unit_recovery() {
        let mut pool = DiskPool::new(units(2, 4, 4));
        assert_eq!(pool.disks(), 4);
        // Write a distinct block to each disk, all in flight at once.
        let (tx, rx) = channel();
        for d in 0..4usize {
            pool.submit(
                d,
                Cmd::Write {
                    slot: d,
                    buf: vec![d as u64 * 10, d as u64 * 10 + 1],
                    idx: d,
                    done: tx.clone(),
                },
            );
        }
        for _ in 0..4 {
            let c = rx.recv().unwrap();
            c.result.unwrap();
        }
        // Read them back concurrently.
        for d in 0..4usize {
            pool.submit(
                d,
                Cmd::Read {
                    slot: d,
                    buf: vec![0u64; 2],
                    idx: d,
                    done: tx.clone(),
                },
            );
        }
        let mut got = vec![Vec::new(); 4];
        for _ in 0..4 {
            let c = rx.recv().unwrap();
            c.result.unwrap();
            assert_eq!(c.idx, c.disk);
            got[c.idx] = c.buf;
        }
        for (d, blk) in got.iter().enumerate() {
            assert_eq!(blk, &vec![d as u64 * 10, d as u64 * 10 + 1]);
        }
        // Workers hand their units back intact.
        let mut recovered = pool.into_units();
        let mut out = [0u64; 2];
        recovered[3].read(3, &mut out).unwrap();
        assert_eq!(out, [30, 31]);
    }

    #[test]
    fn pool_propagates_unit_errors_with_buffer() {
        let mut pool = DiskPool::new(units(2, 2, 1));
        let (tx, rx) = channel();
        pool.submit(
            0,
            Cmd::Read {
                slot: 9, // out of range
                buf: vec![0u64; 2],
                idx: 0,
                done: tx,
            },
        );
        let c = rx.recv().unwrap();
        assert!(c.result.is_err());
        assert_eq!(c.buf.len(), 2, "buffer must come back even on error");
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = DiskPool::new(units(2, 2, 3));
        drop(pool); // must not hang or leak threads
    }

    #[test]
    fn inproc_transport_reports_zero_messages() {
        let mut pool = DiskPool::new(units(2, 2, 2));
        let (tx, rx) = channel();
        pool.submit(
            0,
            Cmd::Write {
                slot: 1,
                buf: vec![7u64, 8],
                idx: 0,
                done: tx,
            },
        );
        rx.recv().unwrap().result.unwrap();
        assert!(pool.message_stats().is_zero());
        assert!(pool.message_stats_per_disk().iter().all(MsgStats::is_zero));
        assert_eq!(pool.take_sim_ms(), 0.0);
    }

    #[test]
    fn injected_disconnect_answers_with_buffer_and_stays_dead() {
        let mut pool = DiskPool::new(units(2, 4, 2));
        pool.inject_disconnect(1);
        for _ in 0..2 {
            let (tx, rx) = channel();
            pool.submit(
                1,
                Cmd::Read {
                    slot: 0,
                    buf: vec![0u64; 2],
                    idx: 3,
                    done: tx,
                },
            );
            let c = rx.recv().unwrap();
            assert!(matches!(c.result, Err(PdmError::Disconnected { disk: 1 })));
            assert_eq!(c.buf.len(), 2, "buffer must come back on disconnect");
            assert_eq!(c.idx, 3);
        }
        // The other disk is unaffected.
        let (tx, rx) = channel();
        pool.submit(
            0,
            Cmd::Read {
                slot: 0,
                buf: vec![0u64; 2],
                idx: 0,
                done: tx,
            },
        );
        rx.recv().unwrap().result.unwrap();
    }

    #[test]
    fn respawn_revives_a_severed_inproc_link_with_data_intact() {
        let mut pool = DiskPool::new(units(2, 4, 2));
        let (tx, rx) = channel();
        pool.submit(
            1,
            Cmd::Write {
                slot: 0,
                buf: vec![41u64, 42],
                idx: 0,
                done: tx.clone(),
            },
        );
        rx.recv().unwrap().result.unwrap();
        // Healthy link: nothing to revive.
        assert!(!pool.respawn(1).unwrap());
        pool.inject_disconnect(1);
        pool.submit(
            1,
            Cmd::Read {
                slot: 0,
                buf: vec![0u64; 2],
                idx: 0,
                done: tx.clone(),
            },
        );
        let c = rx.recv().unwrap();
        assert!(matches!(c.result, Err(PdmError::Disconnected { disk: 1 })));
        // Revive and re-read: the unit (and its data) survived.
        assert!(pool.respawn(1).unwrap());
        pool.submit(
            1,
            Cmd::Read {
                slot: 0,
                buf: c.buf,
                idx: 0,
                done: tx,
            },
        );
        let c = rx.recv().unwrap();
        c.result.unwrap();
        assert_eq!(c.buf, vec![41, 42]);
    }
}
