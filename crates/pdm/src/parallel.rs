//! Concurrent servicing of parallel I/O operations.
//!
//! A parallel I/O touches at most one block on each disk; the transfers
//! are independent by construction, so they can be serviced by one
//! thread per participating disk. Two threaded disciplines exist:
//!
//! * [`DiskPool`] — **persistent** service threads, one per disk, fed
//!   over channels. Commands carry owned block buffers (recycled by the
//!   caller's buffer pool), so a transfer costs one channel round-trip
//!   instead of a thread spawn. Because submission and completion are
//!   decoupled, a caller can keep an operation in flight while it
//!   computes — this is what the [`crate::engine`] pipeline uses to
//!   overlap the permute of memoryload *k* with the reads of
//!   memoryload *k+1*.
//! * [`threaded_read`] / [`threaded_write`] — the legacy
//!   spawn-per-operation discipline retained as
//!   [`crate::system::ServiceMode::SpawnPerOp`] for comparison
//!   benchmarks (`engine_sweep`): every parallel I/O pays `D` thread
//!   spawns and joins.
//!
//! For [`crate::backend::MemDisk`] threading is pure overhead either
//! way, but for [`crate::backend::FileDisk`] it overlaps real system
//! calls exactly the way a hardware disk array would. The `DiskSystem`
//! chooses the discipline via
//! [`crate::system::DiskSystem::set_service_mode`].

use crate::backend::DiskUnit;
use crate::error::{PdmError, Result};
use crate::record::Record;
use parking_lot::Mutex;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A command for one disk's service thread. Buffers travel by value:
/// the worker fills (read) or drains (write) the buffer and sends it
/// back in the [`Completion`], so the caller's pool can recycle it.
pub enum Cmd<R: Record> {
    /// Read block `slot` into `buf` and reply on `done`.
    Read {
        /// Block slot on this disk.
        slot: usize,
        /// Destination buffer, exactly one block long.
        buf: Vec<R>,
        /// Caller's request index, echoed in the completion.
        idx: usize,
        /// Completion channel.
        done: Sender<Completion<R>>,
    },
    /// Write `buf` to block `slot` and reply on `done`.
    Write {
        /// Block slot on this disk.
        slot: usize,
        /// Source buffer, exactly one block long.
        buf: Vec<R>,
        /// Caller's request index, echoed in the completion.
        idx: usize,
        /// Completion channel.
        done: Sender<Completion<R>>,
    },
    /// Shut the worker down (it returns its unit to the joiner).
    Stop,
}

/// The result of one block transfer, carrying the buffer back for
/// reuse.
pub struct Completion<R> {
    /// The request index from the [`Cmd`].
    pub idx: usize,
    /// The disk that serviced the request.
    pub disk: usize,
    /// The block buffer (filled with data for reads).
    pub buf: Vec<R>,
    /// Transfer outcome.
    pub result: Result<()>,
}

/// Persistent per-disk service threads.
///
/// Each worker owns its [`DiskUnit`] for the pool's lifetime;
/// [`DiskPool::into_units`] shuts the workers down and hands the units
/// back (used when the [`crate::system::DiskSystem`] switches service
/// modes).
pub struct DiskPool<R: Record> {
    senders: Vec<Sender<Cmd<R>>>,
    joins: Vec<Option<JoinHandle<Box<dyn DiskUnit<R>>>>>,
}

impl<R: Record> DiskPool<R> {
    /// Spawns one service thread per unit.
    pub fn new(units: Vec<Box<dyn DiskUnit<R>>>) -> Self {
        let mut senders = Vec::with_capacity(units.len());
        let mut joins = Vec::with_capacity(units.len());
        for (disk, mut unit) in units.into_iter().enumerate() {
            let (tx, rx): (Sender<Cmd<R>>, Receiver<Cmd<R>>) = channel();
            let join = std::thread::Builder::new()
                .name(format!("pdm-disk-{disk}"))
                .spawn(move || {
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            Cmd::Read {
                                slot,
                                mut buf,
                                idx,
                                done,
                            } => {
                                let result = unit.read(slot, &mut buf);
                                let _ = done.send(Completion {
                                    idx,
                                    disk,
                                    buf,
                                    result,
                                });
                            }
                            Cmd::Write {
                                slot,
                                buf,
                                idx,
                                done,
                            } => {
                                let result = unit.write(slot, &buf);
                                let _ = done.send(Completion {
                                    idx,
                                    disk,
                                    buf,
                                    result,
                                });
                            }
                            Cmd::Stop => break,
                        }
                    }
                    unit
                })
                .expect("failed to spawn disk service thread");
            senders.push(tx);
            joins.push(Some(join));
        }
        DiskPool { senders, joins }
    }

    /// Number of disks (workers).
    pub fn disks(&self) -> usize {
        self.senders.len()
    }

    /// Submits a command to `disk`'s worker. Non-blocking; the reply
    /// arrives on the command's `done` channel.
    pub fn submit(&self, disk: usize, cmd: Cmd<R>) {
        self.senders[disk]
            .send(cmd)
            .expect("disk service thread terminated unexpectedly");
    }

    /// Shuts down the workers and returns their disk units in disk
    /// order.
    pub fn into_units(mut self) -> Vec<Box<dyn DiskUnit<R>>> {
        for tx in &self.senders {
            let _ = tx.send(Cmd::Stop);
        }
        self.joins
            .iter_mut()
            .map(|j| {
                j.take()
                    .expect("worker already joined")
                    .join()
                    .expect("disk service thread panicked")
            })
            .collect()
    }
}

impl<R: Record> Drop for DiskPool<R> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Cmd::Stop);
        }
        for j in self.joins.iter_mut() {
            if let Some(h) = j.take() {
                let _ = h.join();
            }
        }
    }
}

/// Reads one block from each `(disk, slot)` pair concurrently by
/// spawning one short-lived thread per request (the legacy
/// spawn-per-operation discipline). `outs[i]` receives the block for
/// request `i`; requests must address distinct disks.
pub fn threaded_read<R: Record>(
    units: &mut [Box<dyn DiskUnit<R>>],
    reqs: &[(usize, usize)],
    outs: Vec<&mut [R]>,
) -> Result<()> {
    debug_assert_eq!(reqs.len(), outs.len());
    // Scatter the per-request output buffers into disk-indexed slots so
    // each spawned thread gets a disjoint `&mut`.
    let mut by_disk: Vec<Option<(usize, &mut [R])>> = (0..units.len()).map(|_| None).collect();
    for (&(disk, slot), out) in reqs.iter().zip(outs) {
        by_disk[disk] = Some((slot, out));
    }
    let errors: Mutex<Vec<PdmError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (disk, (unit, job)) in units.iter_mut().zip(by_disk).enumerate() {
            if let Some((slot, out)) = job {
                let errors = &errors;
                s.spawn(move || {
                    if let Err(e) = unit.read(slot, out) {
                        // Units report a placeholder disk index; patch
                        // in the real one while we still know it.
                        errors.lock().push(e.with_disk(disk));
                    }
                });
            }
        }
    });
    match errors.into_inner().pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Writes one block to each `(disk, slot)` pair concurrently with one
/// short-lived thread per request (legacy discipline). Requests must
/// address distinct disks.
pub fn threaded_write<R: Record>(
    units: &mut [Box<dyn DiskUnit<R>>],
    writes: &[(usize, usize, &[R])],
) -> Result<()> {
    let mut by_disk: Vec<Option<(usize, &[R])>> = (0..units.len()).map(|_| None).collect();
    for &(disk, slot, data) in writes {
        by_disk[disk] = Some((slot, data));
    }
    let errors: Mutex<Vec<PdmError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (disk, (unit, job)) in units.iter_mut().zip(by_disk).enumerate() {
            if let Some((slot, data)) = job {
                let errors = &errors;
                s.spawn(move || {
                    if let Err(e) = unit.write(slot, data) {
                        errors.lock().push(e.with_disk(disk));
                    }
                });
            }
        }
    });
    match errors.into_inner().pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemDisk;

    fn units(block: usize, slots: usize, disks: usize) -> Vec<Box<dyn DiskUnit<u64>>> {
        (0..disks)
            .map(|_| Box::new(MemDisk::<u64>::new(block, slots)) as Box<dyn DiskUnit<u64>>)
            .collect()
    }

    #[test]
    fn threaded_round_trip() {
        let mut u = units(2, 4, 4);
        let data: Vec<Vec<u64>> = (0..4u64).map(|d| vec![d * 10, d * 10 + 1]).collect();
        let writes: Vec<(usize, usize, &[u64])> = data
            .iter()
            .enumerate()
            .map(|(d, v)| (d, d % 4, v.as_slice()))
            .collect();
        threaded_write(&mut u, &writes).unwrap();

        let reqs: Vec<(usize, usize)> = (0..4).map(|d| (d, d % 4)).collect();
        let mut flat = [0u64; 8];
        threaded_read(&mut u, &reqs, flat.chunks_exact_mut(2).collect()).unwrap();
        let got: Vec<Vec<u64>> = flat.chunks_exact(2).map(|c| c.to_vec()).collect();
        assert_eq!(got, data);
    }

    #[test]
    fn threaded_read_propagates_errors_naming_the_disk() {
        let mut u = units(2, 2, 2);
        let reqs = [(1usize, 5usize)]; // out of range on disk 1
        let mut out = vec![0u64; 2];
        let err = threaded_read(&mut u, &reqs, vec![out.as_mut_slice()]).unwrap_err();
        assert!(
            matches!(
                err,
                PdmError::OutOfRange {
                    disk: 1,
                    slot: 5,
                    ..
                }
            ),
            "diagnostic must name the failing disk, got {err}"
        );
        let err = threaded_write(&mut u, &[(1, 5, &[0u64, 0][..])]).unwrap_err();
        assert!(matches!(err, PdmError::OutOfRange { disk: 1, .. }));
    }

    #[test]
    fn pool_round_trip_and_unit_recovery() {
        let pool = DiskPool::new(units(2, 4, 4));
        assert_eq!(pool.disks(), 4);
        // Write a distinct block to each disk, all in flight at once.
        let (tx, rx) = channel();
        for d in 0..4usize {
            pool.submit(
                d,
                Cmd::Write {
                    slot: d,
                    buf: vec![d as u64 * 10, d as u64 * 10 + 1],
                    idx: d,
                    done: tx.clone(),
                },
            );
        }
        for _ in 0..4 {
            let c = rx.recv().unwrap();
            c.result.unwrap();
        }
        // Read them back concurrently.
        for d in 0..4usize {
            pool.submit(
                d,
                Cmd::Read {
                    slot: d,
                    buf: vec![0u64; 2],
                    idx: d,
                    done: tx.clone(),
                },
            );
        }
        let mut got = vec![Vec::new(); 4];
        for _ in 0..4 {
            let c = rx.recv().unwrap();
            c.result.unwrap();
            assert_eq!(c.idx, c.disk);
            got[c.idx] = c.buf;
        }
        for (d, blk) in got.iter().enumerate() {
            assert_eq!(blk, &vec![d as u64 * 10, d as u64 * 10 + 1]);
        }
        // Workers hand their units back intact.
        let mut recovered = pool.into_units();
        let mut out = [0u64; 2];
        recovered[3].read(3, &mut out).unwrap();
        assert_eq!(out, [30, 31]);
    }

    #[test]
    fn pool_propagates_unit_errors_with_buffer() {
        let pool = DiskPool::new(units(2, 2, 1));
        let (tx, rx) = channel();
        pool.submit(
            0,
            Cmd::Read {
                slot: 9, // out of range
                buf: vec![0u64; 2],
                idx: 0,
                done: tx,
            },
        );
        let c = rx.recv().unwrap();
        assert!(c.result.is_err());
        assert_eq!(c.buf.len(), 2, "buffer must come back even on error");
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = DiskPool::new(units(2, 2, 3));
        drop(pool); // must not hang or leak threads
    }
}
